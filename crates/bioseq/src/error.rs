//! Error type shared by all bioseq operations.

use std::fmt;
use std::io;

/// Convenience result alias for fallible bioseq operations.
pub type Result<T> = std::result::Result<T, BioError>;

/// Errors produced while parsing or manipulating biological sequences.
#[derive(Debug)]
pub enum BioError {
    /// A byte outside the accepted alphabet was encountered.
    InvalidBase {
        /// The offending byte.
        byte: u8,
        /// Zero-based position within the sequence.
        pos: usize,
    },
    /// A byte that is not a valid amino-acid code was encountered.
    InvalidResidue {
        /// The offending byte.
        byte: u8,
        /// Zero-based position within the sequence.
        pos: usize,
    },
    /// FASTA input was structurally malformed.
    MalformedFasta {
        /// One-based line number of the problem.
        line: usize,
        /// Human-readable description.
        reason: String,
    },
    /// A k-mer size outside the supported range was requested.
    BadKmerSize(usize),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for BioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BioError::InvalidBase { byte, pos } => {
                write!(f, "invalid nucleotide byte 0x{byte:02x} at position {pos}")
            }
            BioError::InvalidResidue { byte, pos } => {
                write!(f, "invalid amino-acid byte 0x{byte:02x} at position {pos}")
            }
            BioError::MalformedFasta { line, reason } => {
                write!(f, "malformed FASTA at line {line}: {reason}")
            }
            BioError::BadKmerSize(k) => {
                write!(f, "k-mer size {k} outside supported range 1..=32")
            }
            BioError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for BioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BioError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for BioError {
    fn from(e: io::Error) -> Self {
        BioError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = BioError::InvalidBase { byte: b'?', pos: 7 };
        assert!(e.to_string().contains("position 7"));
        let e = BioError::BadKmerSize(40);
        assert!(e.to_string().contains("40"));
        let e = BioError::MalformedFasta {
            line: 3,
            reason: "body before header".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let e: BioError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}

//! FASTQ reading, writing, and quality-based preprocessing.
//!
//! The paper's dataset was "sequenced using the 100 bp paired-end
//! protocol on ... Illumina HiSeq2000 machines" and base-called with
//! CASAVA — i.e. the raw input to Fig. 1's preprocessing stage is
//! FASTQ. This module provides the FASTQ layer: Phred+33 qualities,
//! round-trip I/O, and the sliding-window quality trimming that "data
//! cleaning" tools (Trimmomatic, Sickle) perform.

use crate::error::{BioError, Result};
use crate::fasta::Record;
use crate::seq::DnaSeq;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Phred+33 encoding offset.
pub const PHRED_OFFSET: u8 = 33;

/// Highest sane Phred score (Illumina caps around Q41; we allow Q60).
pub const MAX_PHRED: u8 = 60;

/// A FASTQ record: sequence plus per-base Phred qualities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Identifier (text after `@`, before whitespace).
    pub id: String,
    /// Remainder of the header line.
    pub desc: String,
    /// The bases.
    pub seq: DnaSeq,
    /// Phred scores (NOT ASCII-encoded), one per base.
    pub qual: Vec<u8>,
}

impl FastqRecord {
    /// Creates a record, validating that qualities match the sequence
    /// length and stay within the Phred range.
    pub fn new(
        id: impl Into<String>,
        desc: impl Into<String>,
        seq: DnaSeq,
        qual: Vec<u8>,
    ) -> Result<Self> {
        if qual.len() != seq.len() {
            return Err(BioError::MalformedFasta {
                line: 0,
                reason: format!(
                    "quality length {} != sequence length {}",
                    qual.len(),
                    seq.len()
                ),
            });
        }
        if let Some(&q) = qual.iter().find(|&&q| q > MAX_PHRED) {
            return Err(BioError::MalformedFasta {
                line: 0,
                reason: format!("phred score {q} above {MAX_PHRED}"),
            });
        }
        Ok(FastqRecord {
            id: id.into(),
            desc: desc.into(),
            seq,
            qual,
        })
    }

    /// Mean Phred score (0.0 for an empty read).
    pub fn mean_quality(&self) -> f64 {
        if self.qual.is_empty() {
            return 0.0;
        }
        self.qual.iter().map(|&q| q as f64).sum::<f64>() / self.qual.len() as f64
    }

    /// Expected number of sequencing errors in the read
    /// (sum of `10^(-q/10)`).
    pub fn expected_errors(&self) -> f64 {
        self.qual
            .iter()
            .map(|&q| 10f64.powf(-(q as f64) / 10.0))
            .sum()
    }

    /// Drops the quality track, yielding a FASTA record.
    pub fn into_fasta(self) -> Record {
        Record::new(self.id, self.desc, self.seq)
    }

    /// Renders the record in 4-line FASTQ.
    pub fn to_fastq_string(&self) -> String {
        let qline: String = self
            .qual
            .iter()
            .map(|&q| (q + PHRED_OFFSET) as char)
            .collect();
        let header = if self.desc.is_empty() {
            format!("@{}", self.id)
        } else {
            format!("@{} {}", self.id, self.desc)
        };
        format!("{header}\n{}\n+\n{qline}\n", self.seq)
    }

    /// Trims the read with a sliding window: scanning from the 5' end,
    /// the read is cut at the first window of `window` bases whose
    /// mean quality falls below `min_mean_q`; leading bases below
    /// `min_lead_q` are removed first. Returns `None` when fewer than
    /// `min_len` bases survive.
    pub fn trim_quality(
        &self,
        window: usize,
        min_mean_q: f64,
        min_lead_q: u8,
        min_len: usize,
    ) -> Option<FastqRecord> {
        let n = self.qual.len();
        let start = self.qual.iter().position(|&q| q >= min_lead_q).unwrap_or(n);
        let mut end = n;
        if window > 0 && start < n {
            let w = window.min(n - start);
            let mut i = start;
            while i + w <= n {
                let mean: f64 =
                    self.qual[i..i + w].iter().map(|&q| q as f64).sum::<f64>() / w as f64;
                if mean < min_mean_q {
                    end = i;
                    break;
                }
                i += 1;
            }
        }
        if end <= start || end - start < min_len {
            return None;
        }
        Some(FastqRecord {
            id: self.id.clone(),
            desc: self.desc.clone(),
            seq: self.seq.slice(start, end),
            qual: self.qual[start..end].to_vec(),
        })
    }
}

/// Streaming FASTQ reader (strict 4-line records).
pub struct FastqReader<R: Read> {
    inner: BufReader<R>,
    line_no: usize,
}

impl<R: Read> FastqReader<R> {
    /// Wraps a reader.
    pub fn new(inner: R) -> Self {
        FastqReader {
            inner: BufReader::new(inner),
            line_no: 0,
        }
    }

    fn read_line(&mut self, buf: &mut String) -> Result<usize> {
        buf.clear();
        let n = self.inner.read_line(buf)?;
        if n > 0 {
            self.line_no += 1;
            while buf.ends_with('\n') || buf.ends_with('\r') {
                buf.pop();
            }
        }
        Ok(n)
    }

    fn err(&self, reason: impl Into<String>) -> BioError {
        BioError::MalformedFasta {
            line: self.line_no,
            reason: reason.into(),
        }
    }

    /// Reads the next record, or `Ok(None)` at end of input.
    pub fn next_record(&mut self) -> Result<Option<FastqRecord>> {
        let mut header = String::new();
        // Skip blank lines between records.
        loop {
            if self.read_line(&mut header)? == 0 {
                return Ok(None);
            }
            if !header.trim().is_empty() {
                break;
            }
        }
        let rest = header
            .strip_prefix('@')
            .ok_or_else(|| self.err(format!("expected '@' header, found {header:?}")))?;
        let (id, desc) = match rest.split_once(char::is_whitespace) {
            Some((i, d)) => (i.to_string(), d.trim().to_string()),
            None => (rest.to_string(), String::new()),
        };
        if id.is_empty() {
            return Err(self.err("empty FASTQ id"));
        }
        let mut seq_line = String::new();
        if self.read_line(&mut seq_line)? == 0 {
            return Err(self.err("truncated record: missing sequence"));
        }
        let mut plus = String::new();
        if self.read_line(&mut plus)? == 0 || !plus.starts_with('+') {
            return Err(self.err("missing '+' separator"));
        }
        let mut qual_line = String::new();
        if self.read_line(&mut qual_line)? == 0 {
            return Err(self.err("truncated record: missing qualities"));
        }
        let seq =
            DnaSeq::from_ascii(seq_line.as_bytes()).map_err(|e| BioError::MalformedFasta {
                line: self.line_no - 2,
                reason: format!("record {id:?}: {e}"),
            })?;
        let qual: Vec<u8> = qual_line
            .bytes()
            .map(|b| {
                b.checked_sub(PHRED_OFFSET)
                    .filter(|&q| q <= MAX_PHRED)
                    .ok_or_else(|| self.err(format!("bad quality byte 0x{b:02x}")))
            })
            .collect::<Result<_>>()?;
        FastqRecord::new(id, desc, seq, qual).map(Some)
    }

    /// Collects every remaining record.
    pub fn read_all(&mut self) -> Result<Vec<FastqRecord>> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// Parses all records from a string.
pub fn parse_str(s: &str) -> Result<Vec<FastqRecord>> {
    FastqReader::new(s.as_bytes()).read_all()
}

/// Reads a FASTQ file from disk.
pub fn read_file(path: impl AsRef<Path>) -> Result<Vec<FastqRecord>> {
    let f = std::fs::File::open(path)?;
    FastqReader::new(f).read_all()
}

/// Writes records to any writer.
pub fn write_records<W: Write>(mut w: W, records: &[FastqRecord]) -> Result<()> {
    for r in records {
        w.write_all(r.to_fastq_string().as_bytes())?;
    }
    Ok(())
}

/// Writes a FASTQ file to disk.
pub fn write_file(path: impl AsRef<Path>, records: &[FastqRecord]) -> Result<()> {
    let f = std::fs::File::create(path)?;
    let mut buf = std::io::BufWriter::new(f);
    write_records(&mut buf, records)?;
    buf.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, seq: &str, quals: &[u8]) -> FastqRecord {
        FastqRecord::new(
            id,
            "",
            DnaSeq::from_ascii(seq.as_bytes()).unwrap(),
            quals.to_vec(),
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths_and_range() {
        assert!(
            FastqRecord::new("a", "", DnaSeq::from_ascii(b"ACGT").unwrap(), vec![30; 3]).is_err()
        );
        assert!(
            FastqRecord::new("a", "", DnaSeq::from_ascii(b"ACGT").unwrap(), vec![99; 4]).is_err()
        );
        assert!(rec("a", "ACGT", &[30, 30, 30, 30]).mean_quality() == 30.0);
    }

    #[test]
    fn round_trip() {
        let original = vec![
            rec("r1", "ACGT", &[40, 35, 30, 2]),
            rec("r2", "GGNN", &[0, 0, 41, 41]),
        ];
        let mut text = String::new();
        for r in &original {
            text.push_str(&r.to_fastq_string());
        }
        let parsed = parse_str(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn header_desc_survives() {
        let text = "@read_1 lane=3 tile=7\nAC\n+\nII\n";
        let recs = parse_str(text).unwrap();
        assert_eq!(recs[0].id, "read_1");
        assert_eq!(recs[0].desc, "lane=3 tile=7");
        assert_eq!(recs[0].qual, vec![40, 40]); // 'I' = 73 - 33
    }

    #[test]
    fn malformed_records_error_with_position() {
        assert!(parse_str("not fastq\n").is_err());
        assert!(parse_str("@a\nACGT\nMISSING_PLUS\nIIII\n").is_err());
        assert!(parse_str("@a\nACGT\n+\n").is_err());
        assert!(parse_str("@a\nACGT\n+\nI\u{7}II\n").is_err()); // control char
        match parse_str("@a\nACGZ\n+\nIIII\n") {
            Err(BioError::MalformedFasta { reason, .. }) => assert!(reason.contains("a")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expected_errors_math() {
        // Q10 = 0.1 error probability, Q20 = 0.01.
        let r = rec("a", "AC", &[10, 20]);
        assert!((r.expected_errors() - 0.11).abs() < 1e-9);
        assert_eq!(rec("e", "", &[]).mean_quality(), 0.0);
    }

    #[test]
    fn trimming_cuts_low_quality_tail() {
        // 8 good bases then 4 terrible ones. The cut lands at the
        // start of the first window whose mean falls below the
        // threshold: windows at 5 (mean 29) and 6 (mean 20) pass, the
        // window at 7 (mean 11) fails, so 7 bases survive.
        let quals = [38, 38, 38, 38, 38, 38, 38, 38, 2, 2, 2, 2];
        let r = rec("a", "ACGTACGTACGT", &quals);
        let t = r.trim_quality(4, 20.0, 10, 4).unwrap();
        assert_eq!(t.seq.len(), 7);
        assert_eq!(t.qual.len(), 7);
        assert_eq!(t.seq.as_bytes(), b"ACGTACG");
    }

    #[test]
    fn trimming_removes_bad_leading_bases() {
        let quals = [2, 2, 38, 38, 38, 38, 38, 38];
        let r = rec("a", "NNACGTAC", &quals);
        let t = r.trim_quality(4, 20.0, 10, 4).unwrap();
        assert_eq!(t.seq.as_bytes(), b"ACGTAC");
    }

    #[test]
    fn trimming_rejects_hopeless_reads() {
        let quals = [2u8; 10];
        let r = rec("junk", "ACGTACGTAC", &quals);
        assert!(r.trim_quality(4, 20.0, 10, 4).is_none());
        // Survivor shorter than min_len is also rejected.
        let quals = [38, 38, 2, 2, 2, 2, 2, 2, 2, 2];
        let r = rec("short", "ACGTACGTAC", &quals);
        assert!(r.trim_quality(2, 20.0, 10, 4).is_none());
    }

    #[test]
    fn perfect_read_is_untouched() {
        let r = rec("good", "ACGTACGT", &[40; 8]);
        let t = r.trim_quality(4, 20.0, 10, 4).unwrap();
        assert_eq!(t, r);
    }

    #[test]
    fn into_fasta_drops_quality() {
        let r = rec("x", "ACGT", &[40; 4]);
        let f = r.clone().into_fasta();
        assert_eq!(f.id, "x");
        assert_eq!(f.seq, r.seq);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("bioseq_fastq_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reads.fastq");
        let records = vec![rec("r1", "ACGTAC", &[40, 38, 36, 34, 32, 30])];
        write_file(&path, &records).unwrap();
        assert_eq!(read_file(&path).unwrap(), records);
        std::fs::remove_file(path).ok();
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! blast2cap3: protein-guided transcript assembly.
//!
//! This is the application the paper turns into a Pegasus workflow.
//! Given an assembled (redundant) transcript set and the BLASTX
//! alignment of those transcripts against a related-species protein
//! database, blast2cap3:
//!
//! 1. assigns each transcript to the protein it hits best
//!    ([`cluster`]), so transcripts sharing a protein form a cluster;
//! 2. hands each cluster to CAP3, which merges overlapping cluster
//!    members into contigs ([`tasks::run_cap3_chunk`]);
//! 3. concatenates the merged contigs with every transcript that
//!    joined nothing ([`tasks::extract_unjoined`]).
//!
//! Two drivers exist:
//!
//! * [`serial`] — the faithful port of the original Python script:
//!   clusters are processed strictly one after another (the 100-hour
//!   baseline of the paper);
//! * [`parallel`] — an in-process thread-parallel runner that
//!   processes the same task decomposition the Pegasus workflow uses
//!   (split into `n` chunks, CAP3 per chunk, merge), for measuring
//!   real speedups without a workflow engine.
//!
//! The workflow-facing task kernels in [`tasks`] correspond one-to-one
//! to the ovals of the paper's Fig. 2/Fig. 3 DAGs; the `pegasus-wms` +
//! `condor` crates execute them as a real DAG.

pub mod cluster;
pub mod files;
pub mod parallel;
pub mod pipeline;
pub mod serial;
pub mod split;
pub mod tasks;
pub mod workflow;

pub use cluster::{cluster_by_best_hit, Clusters};
pub use pipeline::{run_pipeline, PipelineConfig, PipelineReport};
pub use serial::run_serial;

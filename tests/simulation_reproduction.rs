//! Integration tests asserting the paper's evaluation findings hold
//! on the calibrated simulator — the machine-checkable form of
//! EXPERIMENTS.md.

use blast2cap3_pegasus::experiment::{
    calibrate_workload, calibrated_chunk_costs, simulate_blast2cap3,
};
use gridsim::platforms::SERIAL_REFERENCE_SECONDS;

const SEED: u64 = 20140519;

/// Paper Fig. 4 + abstract: the Pegasus implementation cuts more than
/// 95 % of the serial runtime (at the paper's reported operating
/// points n >= 100 on Sandhills; "100 hours -> ~3 hours").
#[test]
fn fig4_workflow_beats_serial_by_95_percent() {
    for n in [100usize, 300, 500] {
        let out = simulate_blast2cap3("sandhills", n, SEED, 3);
        assert!(out.run.succeeded());
        let reduction = 1.0 - out.run.wall_time / SERIAL_REFERENCE_SECONDS;
        assert!(
            reduction > 0.95,
            "n={n}: reduction {reduction:.3} below the paper's >95%"
        );
    }
}

/// Paper Fig. 4: Sandhills beats OSG at n = 10, 100, and 300 despite
/// OSG's larger resource pool.
#[test]
fn fig4_sandhills_beats_osg() {
    for n in [10usize, 100, 300] {
        let sh = simulate_blast2cap3("sandhills", n, SEED, 10);
        let og = simulate_blast2cap3("osg", n, SEED, 10);
        assert!(sh.run.succeeded() && og.run.succeeded());
        assert!(
            sh.run.wall_time < og.run.wall_time,
            "n={n}: sandhills {:.0}s must beat osg {:.0}s",
            sh.run.wall_time,
            og.run.wall_time
        );
    }
}

/// Paper §VI-A: n = 10 is ≈4x slower than n >= 100 on Sandhills
/// (41,593 s vs ~10,000 s; "approximately 80%" improvement), and the
/// gap between the n >= 100 points is small.
#[test]
fn fig4_sandhills_n_shape() {
    let w10 = simulate_blast2cap3("sandhills", 10, SEED, 3).run.wall_time;
    let w100 = simulate_blast2cap3("sandhills", 100, SEED, 3).run.wall_time;
    let w300 = simulate_blast2cap3("sandhills", 300, SEED, 3).run.wall_time;
    let w500 = simulate_blast2cap3("sandhills", 500, SEED, 3).run.wall_time;
    let improvement = 1.0 - w100 / w10;
    assert!(
        improvement > 0.6,
        "n=100 must improve on n=10 by the paper's ~80% (got {:.0}%)",
        100.0 * improvement
    );
    // The n >= 100 points sit within a narrow band.
    let hi = w100.max(w300).max(w500);
    let lo = w100.min(w300).min(w500);
    assert!(
        hi / lo < 1.3,
        "n>=100 walls should be close: {w100:.0}/{w300:.0}/{w500:.0}"
    );
}

/// Paper §VI-A: n = 300 gives the optimum among the measured points on
/// Sandhills.
#[test]
fn optimum_is_at_300_clusters() {
    let walls: Vec<(usize, f64)> = [10usize, 100, 300, 500]
        .iter()
        .map(|&n| {
            (
                n,
                simulate_blast2cap3("sandhills", n, SEED, 3).run.wall_time,
            )
        })
        .collect();
    let best = walls
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    assert_eq!(best.0, 300, "walls: {walls:?}");
}

/// Paper Fig. 5: Waiting Time is small and negligible on Sandhills but
/// large on OSG; Download/Install Time exists only on OSG.
#[test]
fn fig5_waiting_and_install_contrast() {
    let sh = simulate_blast2cap3("sandhills", 300, SEED, 10);
    let og = simulate_blast2cap3("osg", 300, SEED, 10);
    let sh_cap3 = sh.stats.for_type("run_cap3").unwrap();
    let og_cap3 = og.stats.for_type("run_cap3").unwrap();
    assert!(
        sh_cap3.waiting_mean < 120.0,
        "sandhills waiting must be negligible, got {:.0}s",
        sh_cap3.waiting_mean
    );
    assert!(
        og_cap3.waiting_mean > 5.0 * sh_cap3.waiting_mean,
        "osg waiting must dwarf sandhills ({:.0}s vs {:.0}s)",
        og_cap3.waiting_mean,
        sh_cap3.waiting_mean
    );
    assert_eq!(sh_cap3.install_mean, 0.0);
    assert!(og_cap3.install_mean > 0.0);
    // run_cap3 needs 3 packages; the single-package list tasks install
    // faster — the planner models the catalogs, not a constant.
    let og_list = og.stats.for_type("list_transcripts").unwrap();
    assert!(og_cap3.install_mean > og_list.install_mean);
}

/// Paper §VII: "if comparing only the actual duration and running time
/// of tasks on both platforms, ignoring the Waiting Time and the
/// Download/Install Time, OSG gives significantly better results."
#[test]
fn fig5_osg_kickstart_beats_sandhills() {
    for n in [100usize, 300, 500] {
        let sh = simulate_blast2cap3("sandhills", n, SEED, 10);
        let og = simulate_blast2cap3("osg", n, SEED, 10);
        let shk = sh.stats.for_type("run_cap3").unwrap().kickstart_mean;
        let ogk = og.stats.for_type("run_cap3").unwrap().kickstart_mean;
        assert!(
            ogk < shk,
            "n={n}: OSG kickstart ({ogk:.0}s) must beat Sandhills ({shk:.0}s)"
        );
    }
}

/// Paper Fig. 5: Kickstart Time per task decreases as n grows.
#[test]
fn fig5_kickstart_decreases_with_n() {
    let mut last = f64::INFINITY;
    for n in [10usize, 100, 300, 500] {
        let out = simulate_blast2cap3("sandhills", n, SEED, 3);
        let k = out.stats.for_type("run_cap3").unwrap().kickstart_mean;
        assert!(k < last, "kickstart must shrink with n (n={n}: {k:.0}s)");
        last = k;
    }
}

/// Paper §VI-A: failures and retries were observed on OSG but none on
/// Sandhills.
#[test]
fn failures_only_on_osg() {
    let sh = simulate_blast2cap3("sandhills", 300, SEED, 10);
    let og = simulate_blast2cap3("osg", 300, SEED, 10);
    assert_eq!(sh.stats.retries, 0, "no failures on the campus cluster");
    assert!(og.stats.retries > 0, "preemptions must appear on OSG");
    assert!(og.stats.cumulative_badput > 0.0);
}

/// The decomposition floor: no chunk can cost less than the largest
/// single protein cluster, which is why wall time flattens for
/// n >= 100 (the paper's "more than 100 clusters doesn't decrease this
/// running time significantly").
#[test]
fn max_cluster_is_the_flattening_floor() {
    let cal = calibrate_workload(SEED);
    let c500 = calibrated_chunk_costs(&cal, 500);
    let max_chunk = c500.iter().cloned().fold(0.0f64, f64::max);
    assert!(max_chunk >= cal.max_cluster_cost() - 1.0);
    // And the serial total is conserved by any chunking.
    for n in [10usize, 300] {
        let total: f64 = calibrated_chunk_costs(&cal, n).iter().sum();
        assert!((total - cal.serial_total).abs() < 1.0);
    }
}

/// OSG pre-staging (the paper's future work) recovers a large part of
/// the Sandhills/OSG gap.
#[test]
fn prestaging_software_helps_osg() {
    let normal = simulate_blast2cap3("osg", 300, SEED, 10);
    let staged = simulate_blast2cap3("osg_prestaged", 300, SEED, 10);
    assert!(normal.run.succeeded() && staged.run.succeeded());
    let n_install = normal.stats.for_type("run_cap3").unwrap().install_mean;
    let s_install = staged.stats.for_type("run_cap3").unwrap().install_mean;
    assert!(n_install > 0.0);
    assert_eq!(s_install, 0.0);
}

//! End-to-end convenience pipeline over synthetic data.
//!
//! Bundles the full paper dataflow — synthetic transcriptome in place
//! of the wheat data, BLASTX-like alignment, protein-guided CAP3
//! merging — behind one call, for examples and experiments.

use crate::parallel::{run_parallel, ParallelReport};
use crate::serial::{run_serial, SerialReport};
use bioseq::simulate::{generate, TranscriptomeConfig};
use bioseq::stats::{assembly_stats, reduction_ratio, AssemblyStats};
use blastx::search::{SearchParams, Searcher};
use blastx::tabular::TabularRecord;
use cap3::Cap3Params;

/// How the merging stage is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Original one-cluster-at-a-time control flow.
    Serial,
    /// Workflow decomposition: `n_chunks` chunks over `threads`
    /// workers.
    Parallel {
        /// Number of `run_cap3` chunks (the paper's `n`).
        n_chunks: usize,
        /// Worker threads (0 = one per core).
        threads: usize,
    },
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Synthetic transcriptome shape.
    pub transcriptome: TranscriptomeConfig,
    /// Aligner tuning.
    pub search: SearchParams,
    /// Aligner worker threads (0 = one per core).
    pub search_threads: usize,
    /// CAP3 cutoffs.
    pub cap3: Cap3Params,
    /// Merge-stage driver.
    pub mode: Mode,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            transcriptome: TranscriptomeConfig::default(),
            search: SearchParams::default(),
            search_threads: 0,
            cap3: Cap3Params::default(),
            mode: Mode::Parallel {
                n_chunks: 300,
                threads: 0,
            },
        }
    }
}

/// What happened, end to end.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Number of input transcripts.
    pub input_count: usize,
    /// Number of BLASTX tabular rows produced.
    pub alignment_rows: usize,
    /// Number of output sequences (contigs + unjoined).
    pub output_count: usize,
    /// Input-to-output sequence-count reduction fraction (the paper
    /// cites 8–9 % on wheat).
    pub reduction: f64,
    /// Summary statistics of the input transcript set.
    pub input_stats: AssemblyStats,
    /// Summary statistics of the output set.
    pub output_stats: AssemblyStats,
    /// The serial report, when `Mode::Serial` was used.
    pub serial: Option<SerialReport>,
    /// The parallel report, when `Mode::Parallel` was used.
    pub parallel: Option<ParallelReport>,
}

/// Runs the full synthetic pipeline per `cfg`.
pub fn run_pipeline(cfg: &PipelineConfig) -> PipelineReport {
    let data = generate(&cfg.transcriptome);
    let searcher =
        Searcher::new(data.proteins.clone(), cfg.search.clone()).expect("non-empty protein db");
    let queries: Vec<(String, bioseq::seq::DnaSeq)> = data
        .transcripts
        .iter()
        .map(|r| (r.id.clone(), r.seq.clone()))
        .collect();
    let hsps = searcher.search_many(&queries, cfg.search_threads);
    let alignments: Vec<TabularRecord> = hsps.iter().map(TabularRecord::from).collect();

    let input_count = data.transcripts.len();
    let input_stats = assembly_stats(&data.transcripts);
    let (output, serial, parallel) = match cfg.mode {
        Mode::Serial => {
            let rep = run_serial(&data.transcripts, &alignments, &cfg.cap3);
            (rep.output.clone(), Some(rep), None)
        }
        Mode::Parallel { n_chunks, threads } => {
            let rep = run_parallel(&data.transcripts, &alignments, &cfg.cap3, n_chunks, threads);
            (rep.output.clone(), None, Some(rep))
        }
    };
    PipelineReport {
        input_count,
        alignment_rows: alignments.len(),
        output_count: output.len(),
        reduction: reduction_ratio(input_count, output.len()),
        input_stats,
        output_stats: assembly_stats(&output),
        serial,
        parallel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(mode: Mode) -> PipelineConfig {
        PipelineConfig {
            transcriptome: TranscriptomeConfig {
                n_families: 15,
                family_size_mean: 3.5,
                family_size_cap: 10,
                ..TranscriptomeConfig::tiny(21)
            },
            search_threads: 2,
            mode,
            ..Default::default()
        }
    }

    #[test]
    fn pipeline_reduces_transcript_count() {
        let report = run_pipeline(&small_cfg(Mode::Serial));
        assert!(report.input_count > 15);
        assert!(report.alignment_rows > 0, "aligner must find family hits");
        assert!(
            report.output_count < report.input_count,
            "protein-guided merging must reduce redundancy: {} -> {}",
            report.input_count,
            report.output_count
        );
        assert!(report.reduction > 0.0);
        // Merged output has longer sequences on average.
        assert!(report.output_stats.mean_len >= report.input_stats.mean_len);
    }

    #[test]
    fn serial_and_parallel_modes_agree_on_counts() {
        let s = run_pipeline(&small_cfg(Mode::Serial));
        let p = run_pipeline(&small_cfg(Mode::Parallel {
            n_chunks: 4,
            threads: 2,
        }));
        assert_eq!(s.input_count, p.input_count);
        assert_eq!(s.output_count, p.output_count);
        assert!((s.reduction - p.reduction).abs() < 1e-12);
        assert!(s.serial.is_some() && s.parallel.is_none());
        assert!(p.parallel.is_some() && p.serial.is_none());
    }

    #[test]
    fn report_reduction_matches_paper_mechanism_range() {
        // Not the exact 8-9% (that depends on dataset scale), but the
        // reduction must be material and below total collapse.
        let report = run_pipeline(&small_cfg(Mode::Serial));
        assert!(report.reduction > 0.05, "reduction={}", report.reduction);
        assert!(report.reduction < 0.95, "reduction={}", report.reduction);
    }
}

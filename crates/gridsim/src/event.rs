//! A deterministic discrete-event queue.
//!
//! Events are ordered by simulated time; ties break by insertion
//! sequence so runs are reproducible regardless of floating-point
//! coincidences.
//!
//! The implementation is a *calendar queue*: time is divided into
//! fixed-width days (`DAY_WIDTH` simulated seconds), the current day's
//! events live in one unsorted bucket, and future days hang off a
//! sorted day index. Simulation time advances almost monotonically —
//! `pop` drains the current day, then steps to the next occupied one —
//! so nearly every operation touches only the small current-day
//! bucket instead of rebalancing a global heap. The pop order is
//! still *exactly* the binary-heap order it replaced: the global
//! minimum by `(time, seq)`, bit-for-bit, because days partition the
//! time axis monotonically and in-bucket ties are resolved by a full
//! `(time, seq)` scan.
//!
//! Events scheduled in the "past" (before the current day) are legal —
//! an eviction completes *now* — and land in the current bucket, where
//! the scan finds them first.

use std::collections::BTreeMap;

/// Width of one calendar day in simulated seconds. The queue holds
/// only in-flight work (bounded by slots, not workflow size), so day
/// buckets stay small; the exact value only trades bucket length
/// against day-index hops and never affects pop order.
const DAY_WIDTH: f64 = 64.0;

/// A scheduled event of payload `T`.
#[derive(Debug, Clone)]
struct Scheduled<T> {
    time: f64,
    seq: u64,
    payload: T,
}

/// Day index of an event time: `floor(time / DAY_WIDTH)`, saturating
/// (negative times clamp to day 0, `+inf` to the last day). Monotone
/// in `time`, so cross-day order is time order.
fn day_of(time: f64) -> u64 {
    (time / DAY_WIDTH).floor() as u64
}

/// Lifetime depth and occupancy statistics of one [`EventQueue`]:
/// the raw material of the simulator's self-observability gauges
/// (`pegasus_sim_event_queue_*` in the metrics exposition).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Total events ever scheduled.
    pub scheduled: u64,
    /// Maximum simultaneously pending events.
    pub peak_depth: usize,
    /// Maximum simultaneously occupied calendar-day buckets
    /// (current bucket included while non-empty).
    pub peak_buckets: usize,
}

/// Min-queue of timed events (calendar-bucketed).
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    /// Events of `current_day` plus any scheduled into the past.
    current: Vec<Scheduled<T>>,
    /// The day `current` covers.
    current_day: u64,
    /// Buckets for days strictly after `current_day`, keyed by day.
    future: BTreeMap<u64, Vec<Scheduled<T>>>,
    len: usize,
    seq: u64,
    stats: QueueStats,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            current: Vec::new(),
            current_day: 0,
            future: BTreeMap::new(),
            len: 0,
            seq: 0,
            stats: QueueStats::default(),
        }
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN.
    pub fn schedule(&mut self, time: f64, payload: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let ev = Scheduled {
            time,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.len += 1;
        let day = day_of(time);
        if day <= self.current_day {
            // Today, or a past insert: both are popped from the
            // current bucket, where the min-scan orders them exactly.
            self.current.push(ev);
        } else {
            self.future.entry(day).or_default().push(ev);
        }
        self.stats.scheduled += 1;
        self.stats.peak_depth = self.stats.peak_depth.max(self.len);
        let occupied = self.future.len() + usize::from(!self.current.is_empty());
        self.stats.peak_buckets = self.stats.peak_buckets.max(occupied);
    }

    /// Position of the minimum `(time, seq)` event in the current
    /// bucket, assuming it is non-empty.
    fn min_in_current(&self) -> usize {
        let mut best = 0;
        for i in 1..self.current.len() {
            let (a, b) = (&self.current[i], &self.current[best]);
            if (a.time, a.seq) < (b.time, b.seq) {
                best = i;
            }
        }
        best
    }

    /// Advances `current` to the next occupied day if today is drained.
    fn advance(&mut self) {
        if self.current.is_empty() {
            if let Some((day, bucket)) = self.future.pop_first() {
                self.current = bucket;
                self.current_day = day;
            }
        }
    }

    /// Removes and returns the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.advance();
        if self.current.is_empty() {
            return None;
        }
        let i = self.min_in_current();
        let s = self.current.swap_remove(i);
        self.len -= 1;
        Some((s.time, s.payload))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        let bucket = if self.current.is_empty() {
            self.future.first_key_value().map(|(_, b)| b)?
        } else {
            &self.current
        };
        bucket
            .iter()
            .map(|s| (s.time, s.seq))
            .min_by(|a, b| a.partial_cmp(b).expect("event times are finite"))
            .map(|(t, _)| t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lifetime depth/occupancy statistics (peaks never reset).
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "c");
        q.schedule(1.0, "a");
        q.schedule(3.0, "b");
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((3.0, "b")));
        assert_eq!(q.pop(), Some((5.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "first");
        q.schedule(2.0, "second");
        q.schedule(2.0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_times_panic() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(10.0, 10);
        q.schedule(1.0, 1);
        assert_eq!(q.pop(), Some((1.0, 1)));
        q.schedule(5.0, 5);
        q.schedule(0.5, 0); // in the "past": still valid, pops first
        assert_eq!(q.pop(), Some((0.5, 0)));
        assert_eq!(q.pop(), Some((5.0, 5)));
        assert_eq!(q.pop(), Some((10.0, 10)));
    }

    #[test]
    fn events_across_many_days_pop_in_heap_order() {
        // Cross-check against the reference order: sort by (time, seq).
        // Times straddle many day buckets, collide inside buckets, and
        // include same-time ties and far-future outliers.
        let times = [
            0.0, 63.9, 64.0, 64.1, 128.0, 5.0, 5.0, 1000.0, 999.5, 64.0, 100_000.0, 0.25,
        ];
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut expect: Vec<(f64, usize)> = times.iter().copied().zip(0..).collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut got = Vec::new();
        while let Some(ev) = q.pop() {
            got.push(ev);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn mostly_monotone_stream_with_past_inserts() {
        // The simulation pattern: pop an event, schedule a few more a
        // bit later (and occasionally "now", i.e. in the past relative
        // to in-bucket neighbours). Order must match (time, seq).
        let mut q = EventQueue::new();
        let mut reference: Vec<(f64, u64)> = Vec::new();
        let mut seq = 0u64;
        let sched = |q: &mut EventQueue<u64>, t: f64, r: &mut Vec<(f64, u64)>, seq: &mut u64| {
            q.schedule(t, *seq);
            r.push((t, *seq));
            *seq += 1;
        };
        for i in 0..50 {
            sched(&mut q, i as f64 * 7.3, &mut reference, &mut seq);
        }
        let mut clock = 0.0;
        let mut popped = Vec::new();
        while let Some((t, id)) = q.pop() {
            assert!(t >= clock, "time went backwards");
            clock = t;
            popped.push((t, id));
            if id % 3 == 0 && seq < 200 {
                sched(&mut q, clock + 91.7, &mut reference, &mut seq);
                sched(&mut q, clock, &mut reference, &mut seq); // "now"
            }
        }
        reference.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(popped, reference);
    }

    #[test]
    fn stats_track_scheduled_peak_depth_and_bucket_occupancy() {
        let mut q = EventQueue::new();
        assert_eq!(q.stats(), QueueStats::default());
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        q.schedule(500.0, "far"); // a second (future-day) bucket
        let s = q.stats();
        assert_eq!(s.scheduled, 3);
        assert_eq!(s.peak_depth, 3);
        assert_eq!(s.peak_buckets, 2);
        // Draining never lowers the peaks.
        while q.pop().is_some() {}
        assert!(q.is_empty());
        let s = q.stats();
        assert_eq!(s.scheduled, 3);
        assert_eq!(s.peak_depth, 3);
        assert_eq!(s.peak_buckets, 2);
        // Refilling keeps counting from where the lifetime left off.
        q.schedule(1000.0, "again");
        assert_eq!(q.stats().scheduled, 4);
        assert_eq!(q.stats().peak_depth, 3);
    }

    #[test]
    fn peek_time_looks_into_future_days() {
        let mut q = EventQueue::new();
        q.schedule(500.0, "far");
        assert_eq!(q.peek_time(), Some(500.0));
        q.schedule(499.0, "near");
        assert_eq!(q.peek_time(), Some(499.0));
    }
}

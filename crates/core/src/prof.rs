//! Engine self-profiling: a wall-clock scope stack over the hot path.
//!
//! Workflow-time spans ([`crate::trace`]) measure *simulated* seconds;
//! this module measures where the engine itself spends *real* time —
//! DAX parsing, interning, CSR construction, planning, simulation, and
//! serve round execution. Each instrumented region opens a [`scope`]
//! whose RAII guard records an `(label, seconds)` sample on drop.
//!
//! Profiling is **off by default** and gated behind a single global
//! flag ([`set_enabled`]). While disabled, [`scope`] is a relaxed
//! atomic load and an empty guard — no clock reads, no allocation —
//! so instrumented code paths stay byte-identical in output and
//! within noise in throughput (pinned by the bench gate). The CLI
//! turns it on under `--profile` and renders the collected samples as
//! a one-line summary plus `pegasus_engine_phase_seconds` histograms
//! through the metrics registry.
//!
//! Samples are thread-local: the engine is single-threaded per run,
//! and the serve daemon's scheduler thread owns all rounds, so the
//! collecting thread is always the thread that ran the scopes.

use crate::metrics::MetricsRegistry;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static SAMPLES: RefCell<Vec<(&'static str, f64)>> = const { RefCell::new(Vec::new()) };
}

/// Turns sample collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// `true` when profiling scopes are currently recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The RAII guard of one profiled region; records its sample when
/// dropped (only if profiling was enabled when the scope opened).
#[must_use = "a profiling scope measures until it is dropped"]
pub struct Scope {
    label: &'static str,
    start: Option<Instant>,
}

/// Opens a profiled region labelled `label` (e.g. `"plan.parse"`).
/// A no-op unless [`set_enabled`]\(true) was called.
pub fn scope(label: &'static str) -> Scope {
    Scope {
        label,
        start: enabled().then(Instant::now),
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let secs = start.elapsed().as_secs_f64();
            SAMPLES.with(|s| s.borrow_mut().push((self.label, secs)));
        }
    }
}

/// Drains every sample the current thread collected, in scope-close
/// order.
pub fn take_samples() -> Vec<(&'static str, f64)> {
    SAMPLES.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

/// Aggregates samples per label (first-seen order) into `(label,
/// total seconds, count)` triples.
pub fn aggregate(samples: &[(&'static str, f64)]) -> Vec<(&'static str, f64, usize)> {
    let mut agg: Vec<(&'static str, f64, usize)> = Vec::new();
    for &(label, secs) in samples {
        match agg.iter_mut().find(|(l, _, _)| *l == label) {
            Some((_, total, count)) => {
                *total += secs;
                *count += 1;
            }
            None => agg.push((label, secs, 1)),
        }
    }
    agg
}

/// Renders the `--profile` one-liner: `profile: plan.parse=0.012s
/// plan=0.034s ...`, phases in first-seen order; `profile: (no
/// samples)` when nothing was recorded.
pub fn summary(samples: &[(&'static str, f64)]) -> String {
    let agg = aggregate(samples);
    if agg.is_empty() {
        return "profile: (no samples)".to_string();
    }
    let mut out = String::from("profile:");
    for (label, total, _) in agg {
        out.push_str(&format!(" {label}={total:.3}s"));
    }
    out
}

/// Histogram buckets for engine phases: geometric decades from 1 µs
/// to 100 s of *wall-clock* time (workflow-time phases use the much
/// coarser [`crate::metrics::PHASE_BUCKETS`]).
pub const ENGINE_PHASE_BUCKETS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0];

/// Folds samples into `registry` as `pegasus_engine_phase_seconds`
/// histograms labelled by phase. Callers gate this behind the
/// `--profile` flag so expositions stay byte-identical when profiling
/// is off.
pub fn export(registry: &mut MetricsRegistry, samples: &[(&'static str, f64)]) {
    registry.declare_histogram(
        crate::metrics::names::ENGINE_PHASE_SECONDS,
        "Wall-clock seconds the engine spent in each internal phase.",
        ENGINE_PHASE_BUCKETS,
    );
    for &(label, secs) in samples {
        registry.observe(
            crate::metrics::names::ENGINE_PHASE_SECONDS,
            &[("phase", label)],
            secs,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_scopes_record_nothing() {
        set_enabled(false);
        let _ = take_samples();
        {
            let _s = scope("noop.phase");
        }
        assert!(take_samples().is_empty());
    }

    #[test]
    fn enabled_scopes_record_and_drain() {
        set_enabled(true);
        let _ = take_samples();
        {
            let _s = scope("test.outer");
            let _inner = scope("test.inner");
        }
        set_enabled(false);
        let samples = take_samples();
        // Inner closes first, then outer.
        let labels: Vec<&str> = samples.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["test.inner", "test.outer"]);
        assert!(samples.iter().all(|(_, s)| *s >= 0.0));
        assert!(take_samples().is_empty(), "drained");
    }

    #[test]
    fn summary_aggregates_per_label_in_first_seen_order() {
        let samples = vec![("b.phase", 0.5), ("a.phase", 1.0), ("b.phase", 0.25)];
        let agg = aggregate(&samples);
        assert_eq!(agg, vec![("b.phase", 0.75, 2), ("a.phase", 1.0, 1)]);
        let line = summary(&samples);
        assert_eq!(line, "profile: b.phase=0.750s a.phase=1.000s");
        assert_eq!(summary(&[]), "profile: (no samples)");
    }

    #[test]
    fn export_lands_in_the_engine_phase_histogram() {
        let mut reg = MetricsRegistry::new();
        export(&mut reg, &[("plan", 0.005), ("plan", 0.015), ("sim", 2.0)]);
        let text = reg.render();
        assert!(
            text.contains("pegasus_engine_phase_seconds_bucket{phase=\"plan\""),
            "{text}"
        );
        assert!(text.contains("phase=\"sim\""), "{text}");
        // Nothing is exported without an explicit call: a fresh
        // registry stays empty, which is what keeps goldens stable.
        assert_eq!(MetricsRegistry::new().render(), "");
    }
}

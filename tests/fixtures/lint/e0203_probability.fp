plan impossible
preemption-storm start=0 duration=100 kill-probability=1.5

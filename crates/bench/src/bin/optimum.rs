//! §VI-A — the optimum cluster count on Sandhills.
//!
//! Sweeps n beyond the paper's four points and locates the minimum
//! wall time. Paper claims: n = 10 costs 41,593 s; n ∈ {100, 300,
//! 500} cost ≈ 10,000 s (an ~80 % improvement over n = 10); **n =
//! 300 gives the optimum** with the allocated Sandhills resources.
//!
//! Output: `target/experiments/optimum.csv`.

use blast2cap3_pegasus::experiment::simulate_blast2cap3;
use wms_bench::{ascii_bars, human_duration, write_experiment_file, DEFAULT_SEED};

fn main() {
    let sweep = [10usize, 25, 50, 100, 200, 300, 400, 500, 750, 1000];
    let mut csv = String::from("n,wall_time_s\n");
    let mut rows = Vec::new();
    let mut best = (0usize, f64::INFINITY);
    for &n in &sweep {
        let out = simulate_blast2cap3("sandhills", n, DEFAULT_SEED, 3);
        assert!(out.run.succeeded());
        let wall = out.run.wall_time;
        csv.push_str(&format!("{n},{wall:.1}\n"));
        rows.push((format!("n={n:<4}"), wall));
        if wall < best.1 {
            best = (n, wall);
        }
        println!("n={n:<5} wall={wall:>9.1}s ({})", human_duration(wall));
    }
    println!();
    println!(
        "{}",
        ascii_bars(
            "Sandhills wall time vs n (finer sweep than Fig. 4)",
            &rows,
            "s",
            60
        )
    );
    let w10 = rows[0].1;
    if let Some(w100) = rows.iter().find(|(l, _)| l.trim() == "n=100").map(|r| r.1) {
        println!(
            "n=100 improves on n=10 by {:.0}% (paper: ~80%)",
            100.0 * (1.0 - w100 / w10)
        );
    }
    println!(
        "optimum at n = {} ({:.1}s); paper reports n = 300 as optimal",
        best.0, best.1
    );
    let path = write_experiment_file("optimum.csv", &csv);
    println!("series written to {}", path.display());
}

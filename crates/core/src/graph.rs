//! Compressed sparse row (CSR) adjacency for workflow DAGs.
//!
//! The workflow and planner layers used to rebuild
//! `Vec<Vec<JobId>>` adjacency lists — one heap allocation per node —
//! every time a traversal ran. [`Csr`] packs the same adjacency into
//! two flat arrays: `offsets[v]..offsets[v+1]` brackets node `v`'s
//! neighbor slice in `targets`. Construction is a stable counting
//! sort over the edge list (two passes, no per-node allocation), and
//! degree queries are O(1) pointer arithmetic.
//!
//! Neighbor order is the *edge input order* — exactly the order the
//! old push-based builders produced — so traversals that tie-break by
//! adjacency-list position (Kahn's queue, level assignment) are
//! bit-for-bit reproducible against the pre-CSR implementation.

use crate::symbols::JobId;
use std::ops::Index;

/// A directed graph's adjacency in compressed sparse row form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` brackets `v`'s neighbors; length
    /// `n + 1`.
    offsets: Vec<u32>,
    /// Concatenated neighbor lists, in edge input order per node.
    targets: Vec<JobId>,
}

impl Csr {
    /// Builds the *forward* adjacency (children): `targets` of edge
    /// `(a, b)` lists `b` under `a`.
    pub fn forward(n: usize, edges: &[(JobId, JobId)]) -> Csr {
        Csr::build(n, edges, |&(a, b)| (a, b))
    }

    /// Builds the *reverse* adjacency (parents): edge `(a, b)` lists
    /// `a` under `b`.
    pub fn reverse(n: usize, edges: &[(JobId, JobId)]) -> Csr {
        Csr::build(n, edges, |&(a, b)| (b, a))
    }

    fn build(
        n: usize,
        edges: &[(JobId, JobId)],
        orient: impl Fn(&(JobId, JobId)) -> (JobId, JobId),
    ) -> Csr {
        let _prof = crate::prof::scope("graph.csr");
        let mut offsets = vec![0u32; n + 1];
        for e in edges {
            let (from, _) = orient(e);
            offsets[from.idx() + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        // Stable fill: a per-node write cursor walks forward through
        // the node's slice as its edges appear in input order.
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![JobId::default(); edges.len()];
        for e in edges {
            let (from, to) = orient(e);
            let slot = cursor[from.idx()];
            targets[slot as usize] = to;
            cursor[from.idx()] = slot + 1;
        }
        Csr { offsets, targets }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Node `v`'s neighbor slice.
    #[inline]
    pub fn neighbors(&self, v: JobId) -> &[JobId] {
        let lo = self.offsets[v.idx()] as usize;
        let hi = self.offsets[v.idx() + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Node `v`'s degree in this orientation — O(1).
    #[inline]
    pub fn degree(&self, v: JobId) -> usize {
        (self.offsets[v.idx() + 1] - self.offsets[v.idx()]) as usize
    }

    /// All degrees as a dense vector (`degrees()[v.idx()]`).
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.node_count())
            .map(|v| self.offsets[v + 1] - self.offsets[v])
            .collect()
    }

    /// Degrees in the *opposite* orientation — for a forward (children)
    /// CSR this is each node's indegree — counted in one pass over the
    /// packed targets.
    pub fn reverse_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.node_count()];
        for &t in &self.targets {
            deg[t.idx()] += 1;
        }
        deg
    }

    /// Iterates nodes as [`JobId`]s in index order.
    pub fn nodes(&self) -> impl Iterator<Item = JobId> {
        (0..self.node_count()).map(JobId::new)
    }

    /// Kahn's topological sort over this (forward) adjacency, seeded
    /// in index order and tie-broken by queue arrival — identical
    /// output to the historical `Vec<Vec<JobId>>` implementation.
    /// Returns `None` if a cycle prevents completion.
    pub fn topological_order(&self) -> Option<Vec<JobId>> {
        let n = self.node_count();
        let mut indegree = vec![0u32; n];
        for &t in &self.targets {
            indegree[t.idx()] += 1;
        }
        let mut queue: std::collections::VecDeque<JobId> =
            self.nodes().filter(|&v| indegree[v.idx()] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &c in self.neighbors(v) {
                indegree[c.idx()] -= 1;
                if indegree[c.idx()] == 0 {
                    queue.push_back(c);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }
}

impl Index<JobId> for Csr {
    type Output = [JobId];

    /// `csr[v]` is `v`'s neighbor slice, mirroring the historical
    /// `adj[v]` indexing on `Vec<Vec<JobId>>`.
    fn index(&self, v: JobId) -> &[JobId] {
        self.neighbors(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(i: usize) -> JobId {
        JobId::new(i)
    }

    fn diamond() -> Vec<(JobId, JobId)> {
        vec![(j(0), j(1)), (j(0), j(2)), (j(1), j(3)), (j(2), j(3))]
    }

    #[test]
    fn forward_and_reverse_views() {
        let g = Csr::forward(4, &diamond());
        assert_eq!(g.neighbors(j(0)), &[j(1), j(2)]);
        assert_eq!(g.neighbors(j(3)), &[] as &[JobId]);
        assert_eq!(g.degree(j(0)), 2);
        let r = Csr::reverse(4, &diamond());
        assert_eq!(r.neighbors(j(3)), &[j(1), j(2)]);
        assert_eq!(r.degree(j(0)), 0);
        assert_eq!(r.degree(j(3)), 2);
    }

    #[test]
    fn neighbor_order_follows_edge_input_order() {
        // Deliberately interleaved input: node 0's edges arrive
        // 0→3, 0→1, 0→2 around another node's edge.
        let edges = vec![(j(0), j(3)), (j(1), j(2)), (j(0), j(1)), (j(0), j(2))];
        let g = Csr::forward(4, &edges);
        assert_eq!(g.neighbors(j(0)), &[j(3), j(1), j(2)]);
        assert_eq!(g.neighbors(j(1)), &[j(2)]);
    }

    #[test]
    fn index_sugar_matches_neighbors() {
        let g = Csr::forward(4, &diamond());
        assert_eq!(&g[j(0)], g.neighbors(j(0)));
    }

    #[test]
    fn topological_order_matches_kahn_on_vecvec() {
        let g = Csr::forward(4, &diamond());
        assert_eq!(g.topological_order(), Some(vec![j(0), j(1), j(2), j(3)]));
    }

    #[test]
    fn topological_order_detects_cycles() {
        let g = Csr::forward(2, &[(j(0), j(1)), (j(1), j(0))]);
        assert_eq!(g.topological_order(), None);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = Csr::forward(0, &[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.topological_order(), Some(vec![]));
        let g = Csr::forward(3, &[]);
        assert_eq!(g.degrees(), vec![0, 0, 0]);
        assert_eq!(g.topological_order(), Some(vec![j(0), j(1), j(2)]));
    }
}

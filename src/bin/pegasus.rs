#![forbid(unsafe_code)]

//! `pegasus` — a command-line front end mirroring the Pegasus tools
//! the paper drives its experiments with:
//!
//! * `pegasus generate-dax` — emit the blast2cap3 Fig. 2 workflow as a
//!   DAX file (the role of the paper's Python DAX generator);
//! * `pegasus plan` — map a DAX onto a site (pegasus-plan): install
//!   phases, staging, optional clustering/data-reuse/cleanup;
//! * `pegasus run` — execute the planned workflow on a simulated
//!   platform (pegasus-run), with live status (pegasus-status),
//!   statistics on success (pegasus-statistics), an analyzer report on
//!   failure (pegasus-analyzer), and a rescue file for resubmission;
//! * `pegasus statistics` — statistics of a run in CSV, either by
//!   re-running the simulation or offline from a provenance event log
//!   (`--from-events`);
//! * `pegasus analyze` — pegasus-analyzer report recomputed offline
//!   from an event log;
//! * `pegasus breakdown` — the paper's Fig. 7–8 per-task phase
//!   decomposition per site/per n, live or `--from-events`;
//! * `pegasus metrics` — the metrics registry in Prometheus text
//!   exposition format: live sweep, `--from-events`, or `--scrape`
//!   against a running daemon;
//! * `pegasus lint` — compiler-style static analysis of a DAX (plus
//!   optional fault plans, run configuration, and event logs) with
//!   rustc-style diagnostics, `--deny`/`--allow` level control, and a
//!   JSON output mode for CI. A warn-only pass of the same rules runs
//!   automatically at the top of `run` and `ensemble`;
//! * `pegasus verify` — semantic verification: the temporal invariant
//!   catalog (`E08xx`) over provenance event streams (recorded, serve
//!   state directories, or a live run) and whole-plan dataflow /
//!   feasibility checks (`E06xx`) over planned DAXes. `run --verify`
//!   shadows a live run with the same catalog;
//! * `pegasus serve` — the multi-tenant ensemble daemon (pegasus-em
//!   server): submissions over a socket, journaled rounds, crash
//!   recovery, and an HTTP `/metrics` scrape endpoint;
//! * `pegasus submit` / `pegasus status` — the daemon's client side.
//!
//! Every verb is declared in [`blast2cap3_pegasus::cli::args::VERBS`];
//! parsing, `--help`, and the usage screen all derive from that table.
//!
//! Example session (mirrors §V of the paper):
//!
//! ```sh
//! pegasus generate-dax --n 300 --out b2c3.dax
//! pegasus plan --dax b2c3.dax --site osg --dot osg.dot
//! pegasus run  --dax b2c3.dax --site osg --retries 10
//! ```

use blast2cap3::workflow::{build_workflow, WorkflowParams};
use blast2cap3_pegasus::cli::args as cli_args;
use blast2cap3_pegasus::cli::args::{Parsed, Verb};
use blast2cap3_pegasus::experiment::{
    builtin_registry, calibrate_workload, calibrated_chunk_costs,
};
use blast2cap3_pegasus::serve;
use gridsim::sites::SiteRegistry;
use gridsim::{FaultPlan, FaultScript};
use pegasus_wms::analyzer::analyze;
use pegasus_wms::breakdown;
use pegasus_wms::catalog::{paper_catalogs, ReplicaCatalog};
use pegasus_wms::dax;
use pegasus_wms::engine::{Engine, EngineConfig, RetryPolicy, WorkflowOutcome};
use pegasus_wms::events;
use pegasus_wms::metrics::{self, MetricsMonitor, MetricsRegistry};
use pegasus_wms::monitor::{MultiMonitor, StatusMonitor, TimelineMonitor};
use pegasus_wms::planner::{plan, PlannerConfig};
use pegasus_wms::prof;
use pegasus_wms::rescue::RescueDag;
use pegasus_wms::statistics::{
    compute, render_csv, render_ensemble_csv, render_ensemble_text, render_text,
};
use pegasus_wms::symbols::SiteId;
use pegasus_wms::trace::{self, TraceId};
use std::process::ExitCode;

/// A verb's parsed arguments plus exit-on-error getters: the library
/// parser returns `Result`s, the binary turns them into exit code 2
/// with a pointer at the verb's `--help`.
struct Args {
    verb: &'static Verb,
    p: Parsed,
}

impl Args {
    fn bail(&self, msg: &str) -> ! {
        eprintln!("pegasus {}: {msg}", self.verb.name);
        eprintln!("(see `pegasus {} --help`)", self.verb.name);
        std::process::exit(2);
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.p.get(key)
    }

    fn require(&self, key: &str) -> &str {
        self.p.require(key).unwrap_or_else(|e| self.bail(&e))
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.p
            .parsed(key, default)
            .unwrap_or_else(|e| self.bail(&e))
    }

    fn parsed_opt<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.p.parsed_opt(key).unwrap_or_else(|e| self.bail(&e))
    }

    fn flag(&self, key: &str) -> bool {
        self.p.flag(key)
    }
}

fn default_replicas() -> ReplicaCatalog {
    let mut rc = ReplicaCatalog::new();
    rc.register("transcripts.fasta", "submit");
    rc.register("alignments.out", "submit");
    rc
}

/// The site registry every verb resolves `--site` against: the
/// built-in paper sites, or the `--sites <file>` definitions replacing
/// them wholesale.
fn load_registry(args: &Args) -> SiteRegistry {
    match args.get("sites") {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read site definitions {path}: {e}");
                std::process::exit(1);
            });
            SiteRegistry::parse(&text).unwrap_or_else(|e| {
                eprintln!("cannot load site definitions {path}: {e}");
                eprintln!("(run `pegasus lint <dax> --sites {path}` for the full report)");
                std::process::exit(1);
            })
        }
        None => builtin_registry().clone(),
    }
}

/// Resolves a site name or alias against the registry, exiting 2 with
/// the registered names on a miss.
fn resolve_site(args: &Args, registry: &SiteRegistry, name: &str) -> SiteId {
    registry
        .resolve(name)
        .unwrap_or_else(|e| args.bail(&e.to_string()))
}

/// Catalogs come from `--catalog <file>` when given, otherwise they
/// are synthesised from the site registry (for the built-ins: the
/// paper pair) with submit-host replicas of the two inputs plus any
/// files the definitions pre-stage.
fn load_catalogs(
    args: &Args,
    registry: &SiteRegistry,
) -> (
    pegasus_wms::catalog::SiteCatalog,
    pegasus_wms::catalog::TransformationCatalog,
    ReplicaCatalog,
) {
    match args.get("catalog") {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read catalog {path}: {e}");
                std::process::exit(1);
            });
            let bundle = pegasus_wms::catalog_io::parse(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse catalog {path}: {e}");
                std::process::exit(1);
            });
            (bundle.sites, bundle.transformations, bundle.replicas)
        }
        None => {
            let (_, tc) = paper_catalogs();
            let mut rc = default_replicas();
            registry.register_replicas(&mut rc);
            (registry.site_catalog(), tc, rc)
        }
    }
}

fn cmd_catalogs(args: &Args) -> ExitCode {
    let (sites, tc) = paper_catalogs();
    let rc = default_replicas();
    let text = pegasus_wms::catalog_io::to_text(
        &sites,
        &tc,
        &rc,
        &["transcripts.fasta", "alignments.out"],
    );
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &text).expect("write catalogs");
            println!("built-in catalogs written to {path}");
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn load_dax(path: &str) -> pegasus_wms::workflow::AbstractWorkflow {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    dax::from_dax(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    })
}

fn cmd_generate_dax(args: &Args) -> ExitCode {
    let n: usize = args.parsed("n", 300);
    let params = if args.flag("calibrated") {
        let cal = calibrate_workload(args.parsed("seed", 20140519u64));
        let costs = calibrated_chunk_costs(&cal, n);
        WorkflowParams::with_n(costs.len()).with_chunk_costs(costs)
    } else {
        WorkflowParams::with_n(n)
    };
    let wf = build_workflow(&params);
    let text = dax::to_dax(&wf);
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &text).expect("write DAX");
            println!("wrote {} jobs to {path}", wf.jobs.len());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn cmd_generate_workload(args: &Args) -> ExitCode {
    use pegasus_wms::synthetic;
    let size: usize = args.parsed("size", 20);
    let wf = match args.require("shape") {
        "montage" => synthetic::montage(size),
        "cybershake" => synthetic::cybershake(size),
        "epigenomics" => synthetic::epigenomics(2, size.div_ceil(2).max(1)),
        "ligo" => synthetic::ligo_inspiral(size.div_ceil(5).max(1), 5),
        other => args.bail(&format!("unknown shape {other:?}")),
    };
    let text = dax::to_dax(&wf);
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &text).expect("write DAX");
            println!("wrote {} ({} jobs) to {path}", wf.name, wf.jobs.len());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn cmd_plan(args: &Args) -> ExitCode {
    let profiling = arm_profiler(args);
    let wf = load_dax(args.require("dax"));
    let registry = load_registry(args);
    let site = resolve_site(args, &registry, args.require("site"));
    let (sites, tc, rc) = load_catalogs(args, &registry);
    let mut cfg = PlannerConfig::for_site(registry.catalog_name(site));
    if let Some(k) = args.parsed_opt::<usize>("cluster") {
        cfg.cluster_factor = Some(k);
    }
    cfg.data_reuse = args.flag("data-reuse");
    cfg.add_cleanup = args.flag("cleanup");
    let exec = match plan(&wf, &sites, &tc, &rc, &cfg) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("planning failed: {e}");
            profile_summary(profiling);
            return ExitCode::FAILURE;
        }
    };
    println!("planned {} for site {}", exec.name, exec.site);
    let mut by_kind: Vec<(String, usize)> = exec
        .counts_by_kind()
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    by_kind.sort();
    for (kind, count) in by_kind {
        println!("  {kind:<12} {count}");
    }
    println!("  edges        {}", exec.edges.len());
    println!("  install time {:.0}s total", exec.total_install_time());
    if let Ok((cp, _)) = wf.critical_path() {
        println!("  critical path {cp:.0}s (makespan lower bound)");
    }
    if let Some(dot_path) = args.get("dot") {
        std::fs::write(dot_path, exec.to_dot()).expect("write dot");
        println!("dot graph written to {dot_path}");
    }
    if args.flag("ascii") {
        println!("{}", ascii_dag(&exec));
    }
    profile_summary(profiling);
    ExitCode::SUCCESS
}

/// Renders the planned DAG as one line per level, install-carrying
/// jobs marked `*` (the Fig. 3 red rectangles), with large fan-outs
/// elided.
fn ascii_dag(exec: &pegasus_wms::planner::ExecutableWorkflow) -> String {
    use std::fmt::Write as _;
    let order = exec
        .topological_order()
        .expect("planner output is always a DAG");
    let parents = exec.parents();
    let mut level = vec![0usize; exec.jobs.len()];
    for &j in &order {
        for &p in &parents[j] {
            level[j.idx()] = level[j.idx()].max(level[p.idx()] + 1);
        }
    }
    let max_level = level.iter().copied().max().unwrap_or(0);
    let mut out = String::new();
    for l in 0..=max_level {
        let mut names: Vec<String> = exec
            .jobs
            .iter()
            .filter(|j| level[j.id.idx()] == l)
            .map(|j| {
                if j.install_hint > 0.0 {
                    format!("{}*", j.name)
                } else {
                    j.name.clone()
                }
            })
            .collect();
        names.sort();
        let shown = if names.len() > 6 {
            format!(
                "{} ... {} ({} jobs)",
                names[..3].join("  "),
                names[names.len() - 1],
                names.len()
            )
        } else {
            names.join("  ")
        };
        let _ = writeln!(out, "L{l:<2} {shown}");
        if l < max_level {
            let _ = writeln!(out, "    |");
        }
    }
    out.push_str("(* = download/install phase attached)\n");
    out
}

/// Reads and parses a provenance event log, then folds it back into a
/// [`pegasus_wms::engine::WorkflowRun`] — the offline half of the
/// `--events` / `--from-events` round trip.
fn replay_run(path: &str) -> pegasus_wms::engine::WorkflowRun {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read event log {path}: {e}");
        std::process::exit(1);
    });
    let evs = events::log::parse(&text).unwrap_or_else(|e| {
        eprintln!("bad event log {path}: {e}");
        std::process::exit(1);
    });
    events::replay(&evs).unwrap_or_else(|e| {
        eprintln!("cannot replay event log {path}: {e}");
        std::process::exit(1);
    })
}

fn cmd_statistics(args: &Args) -> ExitCode {
    if let Some(path) = args.get("from-events") {
        let run = replay_run(path);
        print!("{}", render_csv(&compute(&run)));
        return ExitCode::SUCCESS;
    }
    cmd_run(args, true)
}

fn cmd_analyze(args: &Args) -> ExitCode {
    let run = replay_run(args.require("from-events"));
    print!("{}", analyze(&run).render_text());
    if run.succeeded() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Arms the engine self-profiler when `--profile` was given; call
/// [`profile_summary`] with the returned flag once the instrumented
/// work is done.
fn arm_profiler(args: &Args) -> bool {
    let on = args.flag("profile");
    if on {
        prof::set_enabled(true);
    }
    on
}

/// Disarms the profiler, drains the collected samples, and prints the
/// one-line summary to *stderr* (stderr so stdout goldens stay
/// byte-identical). Returns the samples so callers can also export
/// them as `pegasus_engine_phase_seconds` histograms.
fn profile_summary(profiling: bool) -> Vec<(&'static str, f64)> {
    if !profiling {
        return Vec::new();
    }
    prof::set_enabled(false);
    let samples = prof::take_samples();
    eprintln!("{}", prof::summary(&samples));
    samples
}

/// Builds the retry policy `run`, `statistics`, and `ensemble` share:
/// flat retries by default, exponential backoff when `--backoff` is
/// given, plus an optional per-attempt `--timeout`.
fn retry_policy_from(args: &Args, retries: u32) -> RetryPolicy {
    let mut policy = match args.get("backoff") {
        Some(_) => RetryPolicy::exponential(retries, args.parsed("backoff", 30.0f64)),
        None => RetryPolicy::flat(retries),
    };
    if args.get("timeout").is_some() {
        policy = policy.with_timeout(args.parsed("timeout", 0.0f64));
    }
    policy
}

/// Parses `--sizes 10,100,...` (default: the paper's Fig. 4 sweep).
fn sizes_from(args: &Args) -> Vec<usize> {
    let sizes: Vec<usize> = match args.get("sizes") {
        Some(list) => list
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse()
                    .unwrap_or_else(|_| args.bail(&format!("bad --sizes entry {tok:?}")))
            })
            .collect(),
        None => vec![10, 100, 300, 500],
    };
    if sizes.is_empty() {
        args.bail("--sizes must name at least one decomposition");
    }
    sizes
}

/// Reads and parses one or more comma-separated event logs.
fn parse_event_logs(list: &str) -> Vec<Vec<pegasus_wms::events::WorkflowEvent>> {
    list.split(',')
        .map(|path| {
            let path = path.trim();
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read event log {path}: {e}");
                std::process::exit(1);
            });
            events::log::parse(&text).unwrap_or_else(|e| {
                eprintln!("bad event log {path}: {e}");
                std::process::exit(1);
            })
        })
        .collect()
}

/// The sweep sites behind `--site both` (the default for `breakdown`
/// and `metrics`): every registered non-variant site, in definition
/// order — `[sandhills, osg]` for the built-ins.
fn sweep_sites(args: &Args, registry: &SiteRegistry) -> Vec<SiteId> {
    match args.get("site").unwrap_or("both") {
        "both" => registry.sweep(),
        site => vec![resolve_site(args, registry, site)],
    }
}

/// `pegasus breakdown` — the paper's Fig. 7–8 per-task phase
/// decomposition (queue-wait / install / kickstart / post-overhead /
/// retry-badput) per site and per n, computed from the provenance
/// event stream alone: either a fresh deterministic sweep or, with
/// `--from-events`, recorded logs with no simulation at all.
fn cmd_breakdown(args: &Args) -> ExitCode {
    use blast2cap3_pegasus::experiment::simulate_blast2cap3_at;

    let mut rows = Vec::new();
    let mut all_ok = true;
    if let Some(list) = args.get("from-events") {
        for stream in parse_event_logs(list) {
            let row = breakdown::from_events(&stream).unwrap_or_else(|e| {
                eprintln!("cannot compute breakdown: {e}");
                std::process::exit(1);
            });
            all_ok &= row.completed == row.compute_jobs;
            rows.push(row);
        }
    } else {
        let registry = load_registry(args);
        let seed: u64 = args.parsed("seed", 20140519u64);
        // OSG's preemption hazard needs a deep retry budget at small n
        // (few jobs, so one unlucky task sinks the run); the paper's
        // OSG profile likewise leans on workflow-level retries.
        let retries: u32 = args.parsed("retries", 20u32);
        let cfg = EngineConfig::builder()
            .policy(retry_policy_from(args, retries))
            .seed(seed)
            .build();
        for site in sweep_sites(args, &registry) {
            for &n in &sizes_from(args) {
                let out = simulate_blast2cap3_at(&registry, site, n, seed, &cfg, None);
                all_ok &= out.run.succeeded();
                if let Some(dir) = args.get("events-dir") {
                    std::fs::create_dir_all(dir).expect("create events dir");
                    let name = registry.name(site);
                    let path = std::path::Path::new(dir).join(format!("{name}_n{n}.events"));
                    std::fs::write(&path, out.event_log()).expect("write event log");
                }
                rows.push(out.breakdown());
            }
        }
    }

    if !args.flag("quiet") {
        println!("{}", breakdown::render_table(&rows));
    }
    let (rendered, what) = if args.flag("json") {
        (breakdown::render_json(&rows), "JSON")
    } else {
        (breakdown::render_csv(&rows), "CSV")
    };
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &rendered).expect("write breakdown");
            if !args.flag("quiet") {
                println!("breakdown {what} written to {path}");
            }
        }
        None => print!("{rendered}"),
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("some workflows did not complete; breakdown covers what ran");
        ExitCode::FAILURE
    }
}

/// `pegasus metrics` — dump the metrics registry in the Prometheus
/// text exposition format, populated by a fresh deterministic sweep,
/// offline from `--from-events` logs (byte-identical to the live run
/// under the same seed), or scraped over HTTP from a running
/// `pegasus serve` daemon with `--scrape`.
fn cmd_metrics(args: &Args) -> ExitCode {
    use blast2cap3_pegasus::experiment::simulate_blast2cap3_at;

    if let Some(addr) = args.get("scrape") {
        return match serve::client::scrape(addr) {
            Ok(body) => {
                print!("{body}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("metrics: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut registry = MetricsRegistry::new();
    if let Some(list) = args.get("from-events") {
        for stream in parse_event_logs(list) {
            metrics::record_events(&mut registry, &stream).unwrap_or_else(|e| {
                eprintln!("cannot record metrics: {e}");
                std::process::exit(1);
            });
        }
    } else {
        let sites = load_registry(args);
        let seed: u64 = args.parsed("seed", 20140519u64);
        let retries: u32 = args.parsed("retries", 20u32);
        let cfg = EngineConfig::builder()
            .policy(retry_policy_from(args, retries))
            .seed(seed)
            .build();
        for site in sweep_sites(args, &sites) {
            for &n in &sizes_from(args) {
                let out = simulate_blast2cap3_at(&sites, site, n, seed, &cfg, None);
                metrics::record_events(&mut registry, &out.run.events)
                    .expect("engine streams replay");
            }
        }
    }
    let text = registry.render();
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &text).expect("write metrics");
            println!("metrics exposition written to {path}");
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

/// Gathers every lint diagnostic the given flags make checkable: the
/// DAX passes always, the config pass when `--site`/`--slots` is
/// given, the fault-plan pass per `--fault-plan`, and (only when
/// `include_event_logs`) the sanitizer per `--events`. The event-log
/// pass is opt-in because `run` uses `--events` as an *output* path.
fn collect_lint(
    args: &Args,
    dax_path: &str,
    include_event_logs: bool,
) -> Vec<pegasus_wms::lint::Diagnostic> {
    use pegasus_wms::error::{Span, WmsError};
    use pegasus_wms::lint::{self, Diagnostic};

    let mut diags = Vec::new();

    // Site-definition pass (E0501–E0507): lint `--sites` when given,
    // and build the registry the config pass resolves `--site`
    // against. A file that fails to parse or load degrades to the
    // built-ins so the remaining passes still run.
    let registry = match args.get("sites") {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read site definitions {path}: {e}");
                std::process::exit(1);
            });
            match gridsim::sites::parse_defs(&text) {
                Ok(defs) => {
                    diags.extend(gridsim::lint_sites(&defs, path, Some(&text)));
                    // Duplicate names/aliases were just reported above;
                    // the load failure adds nothing new.
                    SiteRegistry::from_defs(defs).unwrap_or_else(|_| builtin_registry().clone())
                }
                Err(e) => {
                    diags.push(gridsim::sites_lint::syntax_diagnostic(&e, path));
                    builtin_registry().clone()
                }
            }
        }
        None => builtin_registry().clone(),
    };
    let (sites, tc, _rc) = load_catalogs(args, &registry);

    let text = std::fs::read_to_string(dax_path).unwrap_or_else(|e| {
        eprintln!("cannot read {dax_path}: {e}");
        std::process::exit(1);
    });
    // The unvalidated parse keeps cyclic or conflicted workflows
    // alive so the structural pass can report the full story instead
    // of stopping at the first validation error.
    let wf = match dax::from_dax_unvalidated(&text) {
        Ok(wf) => Some(wf),
        Err(e) => {
            diags.push(lint::classify_parse_error(&e, dax_path));
            None
        }
    };
    if let Some(wf) = &wf {
        let opts = pegasus_wms::lint::DaxLintOptions {
            fan_limit: args.parsed("fan-limit", 500usize),
            source: Some(&text),
        };
        diags.extend(lint::check_workflow(wf, dax_path, Some(&tc), &opts));
    }

    let policy = retry_policy_from(args, args.parsed("retries", 3u32));
    let site = args.get("site");
    // An unresolvable --site flows through raw so the config pass can
    // report it as E0301 against the synthesised site catalog; a
    // resolvable one is canonicalised to its catalog handle (variants
    // like osg_prestaged check against their base site's entry).
    let site_for_ctx: Option<String> = site.map(|s| match registry.resolve(s) {
        Ok(id) => registry.catalog_name(id).to_string(),
        Err(_) => s.to_string(),
    });
    let faults_active = args.get("fault-plan").is_some()
        || site.is_some_and(|s| {
            registry
                .resolve(s)
                .map(|id| registry.faults_active(id))
                .unwrap_or(false)
        });
    if let Some(wf) = &wf {
        if site.is_some() || args.get("slots").is_some() {
            let ctx = lint::RunContext {
                site: site_for_ctx.as_deref(),
                sites: Some(&sites),
                transformations: Some(&tc),
                retry: Some(&policy),
                slot_budget: args.parsed_opt::<usize>("slots"),
                faults_active,
            };
            diags.extend(lint::check_config(wf, dax_path, &ctx));
        }
    }

    if let Some(list) = args.get("fault-plan") {
        for path in list.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let ptext = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read fault plan {path}: {e}");
                std::process::exit(1);
            });
            match FaultPlan::parse(&ptext) {
                Ok(plan) => {
                    let ctx = gridsim::PlanLintContext {
                        source: Some(&ptext),
                        workflow: wf.as_ref(),
                        retry: Some(&policy),
                    };
                    diags.extend(gridsim::lint_plan(&plan, path, &ctx));
                }
                Err(WmsError::FaultPlanParse { line, reason })
                    if reason.contains("must be in [0, 1]") =>
                {
                    diags.push(Diagnostic::new("E0203", path, Span::line(line), reason));
                }
                Err(WmsError::FaultPlanParse { line, reason }) => {
                    diags.push(Diagnostic::new("E0206", path, Span::line(line), reason));
                }
                Err(e) => {
                    diags.push(Diagnostic::new("E0206", path, Span::none(), e.to_string()));
                }
            }
        }
    }

    if include_event_logs {
        if let Some(list) = args.get("events") {
            for path in list.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                let etext = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("cannot read event log {path}: {e}");
                    std::process::exit(1);
                });
                match events::log::parse_lines(&etext) {
                    Ok(pairs) => diags.extend(lint::check_events(&pairs, path)),
                    Err(WmsError::EventLogParse { line, reason }) => {
                        diags.push(Diagnostic::new("E0708", path, Span::line(line), reason));
                    }
                    Err(e) => {
                        diags.push(Diagnostic::new("E0708", path, Span::none(), e.to_string()));
                    }
                }
            }
        }
    }

    diags
}

/// `pegasus lint`: the static analyzer. The one subcommand with a
/// positional argument (`<dax>`). Exits 1 when any diagnostic resolves
/// to an error under `--deny`/`--allow`, 2 on bad invocation.
fn cmd_lint(args: &Args) -> ExitCode {
    use pegasus_wms::lint;

    // `--explain CODE` and `--list` are documentation queries: they
    // need no DAX and exit before any file is touched.
    if let Some(query) = args.get("explain") {
        return match lint::explain(query) {
            Some(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("no rule named {query:?} (see `pegasus lint --list`)");
                ExitCode::FAILURE
            }
        };
    }
    if args.flag("list") {
        print!("{}", lint::render_rule_list());
        return ExitCode::SUCCESS;
    }

    let dax_path = match (args.p.positionals.as_slice(), args.get("dax")) {
        ([p], None) => p.clone(),
        ([], Some(p)) => p.to_string(),
        _ => args.bail("lint needs exactly one <dax> (positional or --dax)"),
    };

    let mut config = lint::LintConfig::default();
    if let Some(spec) = args.get("deny") {
        if let Err(tok) = config.deny(spec) {
            args.bail(&format!(
                "--deny: {tok:?} names no known lint (try a code like E0103, a rule name, or `warnings`)"
            ));
        }
    }
    if let Some(spec) = args.get("allow") {
        if let Err(tok) = config.allow(spec) {
            args.bail(&format!("--allow: {tok:?} names no known lint"));
        }
    }

    let diags = lint::resolve(collect_lint(args, &dax_path, true), &config);
    match args.get("format").unwrap_or("text") {
        "text" => print!("{}", lint::render_text(&diags)),
        "json" => print!("{}", lint::render_json(&diags)),
        other => args.bail(&format!("unknown --format {other:?} (use text or json)")),
    }
    if lint::has_errors(&diags) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Warn-only lint pass at the top of `run`: diagnostics go to stderr
/// at their default levels, never change the exit code, and stdout
/// stays byte-identical.
fn preflight_lint(args: &Args, dax_path: &str) {
    use pegasus_wms::lint;
    let diags = lint::resolve(
        collect_lint(args, dax_path, false),
        &lint::LintConfig::default(),
    );
    if !diags.is_empty() {
        eprint!("{}", lint::render_text(&diags));
    }
}

/// `pegasus ensemble` — the paper's decomposition sweep as one
/// ensemble: every `--sizes` entry becomes its own blast2cap3 workflow
/// and all of them run concurrently over the shared simulated
/// platform, under one seed and one slot budget.
fn cmd_ensemble(args: &Args) -> ExitCode {
    use blast2cap3_pegasus::experiment::simulate_blast2cap3_ensemble_at;

    let profiling = arm_profiler(args);
    let registry = load_registry(args);
    let site = resolve_site(args, &registry, args.get("site").unwrap_or("sandhills"));
    let seed: u64 = args.parsed("seed", 20140519u64);
    let retries: u32 = args.parsed("retries", 3u32);
    let sizes = sizes_from(args);

    let engine_cfg = EngineConfig::builder()
        .policy(retry_policy_from(args, retries))
        .seed(seed)
        .build();
    let slot_budget = args.parsed_opt::<usize>("slots");

    // Warn-only feasibility lint on the widest member before any
    // simulation runs: slot budgets below the width, missing software
    // on the target site, retries disabled under preemption.
    if !args.flag("quiet") {
        use pegasus_wms::lint;
        let widest = *sizes.iter().max().expect("sizes is non-empty");
        let wf = build_workflow(&WorkflowParams::with_n(widest));
        let (sites_cat, tc, _rc) = load_catalogs(args, &registry);
        let ctx = lint::RunContext {
            site: Some(registry.catalog_name(site)),
            sites: Some(&sites_cat),
            transformations: Some(&tc),
            retry: Some(&retry_policy_from(args, retries)),
            slot_budget,
            faults_active: registry.faults_active(site),
        };
        let label = format!("<blast2cap3 n={widest}>");
        let diags = lint::resolve(
            lint::check_config(&wf, &label, &ctx),
            &lint::LintConfig::default(),
        );
        if !diags.is_empty() {
            eprint!("{}", lint::render_text(&diags));
        }
    }

    let out =
        simulate_blast2cap3_ensemble_at(&registry, site, &sizes, seed, &engine_cfg, slot_budget);
    let prof_samples = profile_summary(profiling);

    // Every member's provenance stream lands in one shared registry,
    // so the ensemble exposes the same metric surface as single runs.
    let mut registry = MetricsRegistry::new();
    for run in &out.run.runs {
        metrics::record_events(&mut registry, &run.events).expect("engine streams replay");
    }
    if profiling {
        prof::export(&mut registry, &prof_samples);
    }

    if !args.flag("quiet") {
        println!("{}", render_ensemble_text(&out.stats));
        for run in &out.run.runs {
            let n = metrics::n_label(&run.name, run.records.len());
            let labels = [
                ("site", run.site.as_str()),
                ("n", n.as_str()),
                ("phase", "kickstart"),
            ];
            if let (Some(p50), Some(p95)) = (
                registry.quantile(metrics::names::PHASE_SECONDS, &labels, 0.5),
                registry.quantile(metrics::names::PHASE_SECONDS, &labels, 0.95),
            ) {
                println!("{}: kickstart p50 {p50:.0}s p95 {p95:.0}s", run.name);
            }
        }
    }
    if let Some(path) = args.get("metrics") {
        std::fs::write(path, registry.render()).expect("write metrics");
        if !args.flag("quiet") {
            println!("metrics exposition written to {path}");
        }
    }
    let csv = render_ensemble_csv(&out.stats);
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &csv).expect("write ensemble CSV");
            if !args.flag("quiet") {
                println!("ensemble rollup CSV written to {path}");
            }
        }
        None => print!("{csv}"),
    }

    if out.run.succeeded() {
        ExitCode::SUCCESS
    } else {
        let failed: Vec<&str> = out
            .run
            .runs
            .iter()
            .filter(|r| !r.succeeded())
            .map(|r| r.name.as_str())
            .collect();
        eprintln!("ensemble members failed: {}", failed.join(", "));
        ExitCode::FAILURE
    }
}

fn cmd_run(args: &Args, csv_only: bool) -> ExitCode {
    // `statistics` shares this body but declares no --profile flag,
    // so profiling is only ever armed on the `run` verb.
    let profiling = !csv_only && arm_profiler(args);
    let dax_path = args.require("dax");
    if !csv_only && !args.flag("quiet") {
        preflight_lint(args, dax_path);
    }
    let wf = load_dax(dax_path);
    let registry = load_registry(args);
    let site = resolve_site(args, &registry, args.require("site"));
    let site_name = registry.name(site);
    let seed: u64 = args.parsed("seed", 20140519u64);
    let retries: u32 = args.parsed("retries", 3u32);

    let (sites, tc, rc) = load_catalogs(args, &registry);
    let exec = match plan(
        &wf,
        &sites,
        &tc,
        &rc,
        &PlannerConfig::for_site(registry.catalog_name(site)),
    ) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("planning failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut engine_cfg = EngineConfig::builder()
        .policy(retry_policy_from(args, retries))
        .seed(seed)
        .build();

    let script = args.get("fault-plan").map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read fault plan {path}: {e}");
            std::process::exit(1);
        });
        let plan = FaultPlan::parse(&text).unwrap_or_else(|e| {
            eprintln!("bad fault plan {path}: {e}");
            std::process::exit(1);
        });
        FaultScript::new(plan, seed)
    });
    // A scripted submit-host crash is a one-time event: the rescue
    // resubmission runs on the recovered host, so it only arms on the
    // initial submission, never on --resume.
    if args.get("resume").is_none() {
        if let Some(script) = &script {
            engine_cfg.crash_after_events = script.submit_host_crash_after();
        }
    }

    if let Some(rescue_path) = args.get("resume") {
        let text = std::fs::read_to_string(rescue_path).expect("read rescue");
        let rescue = RescueDag::from_text(&text).unwrap_or_else(|e| {
            eprintln!("bad rescue file: {e}");
            std::process::exit(1);
        });
        engine_cfg.skip_done = rescue.done.iter().cloned().collect();
        if !csv_only {
            println!(
                "resuming: {} jobs marked DONE in {rescue_path}",
                rescue.done.len()
            );
        }
    }

    let mut backend = registry.backend(site, seed);
    if let Some(script) = script {
        backend = backend.with_faults(script);
    }
    let mut status = StatusMonitor::new(exec.jobs.len());
    let mut timeline = TimelineMonitor::new();
    let mut metrics_registry = MetricsRegistry::new();
    let n = metrics::n_label(&exec.name, exec.jobs.len());
    // Under --verify a shadow verifier rides the run as an extra event
    // sink and asserts the temporal invariant catalog once the stream
    // completes; findings render to stderr and fail the exit code.
    let mut shadow = args.flag("verify").then(|| {
        pegasus_wms::verify::ShadowVerifier::new(
            format!("<run {}>", exec.name),
            pegasus_wms::verify::VerifyOptions {
                slot_capacity: None,
                retry: Some(retry_policy_from(args, retries)),
            },
        )
    });
    let run = {
        let mut metrics_monitor = MetricsMonitor::new(&mut metrics_registry, site_name, &n);
        let mut multi = MultiMonitor::new();
        multi.push(&mut status);
        multi.push(&mut timeline);
        multi.push(&mut metrics_monitor);
        match shadow.as_mut() {
            Some(sink) => Engine::run_with_sink(&mut backend, &exec, &engine_cfg, &mut multi, sink),
            None => Engine::run(&mut backend, &exec, &engine_cfg, &mut multi),
        }
    };

    // Under --profile the engine's own wall-clock phases and the
    // simulator's queue gauges join the run's metric surface; both
    // are gated so default expositions stay byte-identical.
    let prof_samples = profile_summary(profiling);
    if profiling {
        backend.export_queue_metrics(&mut metrics_registry);
        prof::export(&mut metrics_registry, &prof_samples);
    }

    if !csv_only && !args.flag("quiet") {
        // pegasus-status style tail: print every 10th line.
        for line in status.history.iter().step_by(status.history.len() / 10 + 1) {
            println!("status: {line}");
        }
        // The final one-liner carries the kickstart quantiles from the
        // live metrics registry.
        let labels = [
            ("site", site_name),
            ("n", n.as_str()),
            ("phase", "kickstart"),
        ];
        match (
            metrics_registry.quantile(metrics::names::PHASE_SECONDS, &labels, 0.5),
            metrics_registry.quantile(metrics::names::PHASE_SECONDS, &labels, 0.95),
        ) {
            (Some(p50), Some(p95)) => println!(
                "status: {} | kickstart p50 {p50:.0}s p95 {p95:.0}s",
                status.status_line()
            ),
            _ => println!("status: {}", status.status_line()),
        }
    }

    let stats = compute(&run);
    if csv_only {
        print!("{}", render_csv(&stats));
    } else {
        println!("\n{}", render_text(&stats));
        println!(
            "realised peak concurrency: {} slots",
            timeline.peak_concurrency()
        );
    }
    if let Some(path) = args.get("timeline") {
        std::fs::write(path, timeline.to_csv()).expect("write timeline");
        if !csv_only {
            println!("timeline written to {path}");
        }
    }
    if let Some(path) = args.get("events") {
        std::fs::write(path, events::log::write(&run.events)).expect("write event log");
        if !csv_only {
            println!("event log written to {path}");
        }
    }
    if let Some(path) = args.get("metrics") {
        std::fs::write(path, metrics_registry.render()).expect("write metrics");
        if !csv_only {
            println!("metrics exposition written to {path}");
        }
    }

    // The shadow verdict: clean streams say so once; violations turn
    // an otherwise successful run into a failure.
    let mut verify_failed = false;
    if let Some(shadow) = &shadow {
        use pegasus_wms::lint;
        let diags = lint::resolve(shadow.finish(), &lint::LintConfig::default());
        if diags.is_empty() {
            if !csv_only && !args.flag("quiet") {
                println!("verify: {} events, invariant catalog clean", run.events.len());
            }
        } else {
            eprint!("{}", lint::render_text_as(&diags, "verify"));
            verify_failed = lint::has_errors(&diags);
        }
    }

    match &run.outcome {
        WorkflowOutcome::Success if verify_failed => ExitCode::FAILURE,
        WorkflowOutcome::Success => ExitCode::SUCCESS,
        WorkflowOutcome::Failed(rescue) => {
            let path = args
                .get("rescue-out")
                .map(String::from)
                .unwrap_or_else(|| format!("{}.rescue", run.name));
            std::fs::write(&path, rescue.to_text()).expect("write rescue");
            eprintln!("\n{}", analyze(&run).render_text());
            eprintln!("rescue DAG written to {path}; resubmit with --resume {path}");
            ExitCode::FAILURE
        }
    }
}

/// Reads one event log and folds it into a span tree, recovering the
/// trace id from the `# trace id=…` header comment when present — the
/// offline half of the `pegasus trace` round trip.
fn fold_trace_log(path: &str) -> trace::WorkflowTrace {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read event log {path}: {e}");
        std::process::exit(1);
    });
    let id = trace::trace_from_log(&text);
    let evs = events::log::parse(&text).unwrap_or_else(|e| {
        eprintln!("bad event log {path}: {e}");
        std::process::exit(1);
    });
    trace::fold(&evs, id).unwrap_or_else(|e| {
        eprintln!("cannot fold event log {path}: {e}");
        std::process::exit(1);
    })
}

/// `pegasus trace` — the end-to-end span layer: fold provenance
/// streams into workflow → job → attempt → phase span trees keyed by
/// a [`TraceId`], rendered as a plain-text tree (default) or Chrome
/// Trace Event JSON (`--format chrome`, Perfetto-loadable). Three
/// sources, all the same pure fold, so they render byte-identically
/// for the same stream:
///
/// * live (default): simulate one blast2cap3 run and derive the trace
///   id from the seed (`--events` also writes the log, trace header
///   included, for the offline round trip);
/// * `--from-events log,...`: recorded logs, trace ids recovered from
///   their header comments;
/// * `--events-dir dir`: every member log of a serve state directory
///   (or its `members/` subdirectory), smallest member id first.
fn cmd_trace(args: &Args) -> ExitCode {
    use blast2cap3_pegasus::experiment::simulate_blast2cap3_at;

    let mut traces = Vec::new();
    if let Some(list) = args.get("from-events") {
        for path in list.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            traces.push(fold_trace_log(path));
        }
    } else if let Some(dir) = args.get("events-dir") {
        let dir = std::path::Path::new(dir);
        let members = dir.join("members");
        let scan = if members.is_dir() {
            members
        } else {
            dir.to_path_buf()
        };
        let mut paths: Vec<std::path::PathBuf> = match std::fs::read_dir(&scan) {
            Ok(entries) => entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "events"))
                .collect(),
            Err(e) => {
                eprintln!("cannot read {}: {e}", scan.display());
                return ExitCode::FAILURE;
            }
        };
        // Shortest-name-first sorts m2 before m10: member-id order.
        paths.sort_by_key(|p| {
            let name = p
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned();
            (name.len(), name)
        });
        if paths.is_empty() {
            eprintln!("no .events logs under {}", scan.display());
            return ExitCode::FAILURE;
        }
        for path in paths {
            traces.push(fold_trace_log(&path.to_string_lossy()));
        }
    } else {
        let registry = load_registry(args);
        let site = resolve_site(args, &registry, args.get("site").unwrap_or("sandhills"));
        let n: usize = args.parsed("n", 100);
        let seed: u64 = args.parsed("seed", 20140519u64);
        let retries: u32 = args.parsed("retries", 20u32);
        let cfg = EngineConfig::builder()
            .policy(retry_policy_from(args, retries))
            .seed(seed)
            .build();
        let script = args.get("fault-plan").map(|path| {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read fault plan {path}: {e}");
                std::process::exit(1);
            });
            let plan = FaultPlan::parse(&text).unwrap_or_else(|e| {
                eprintln!("bad fault plan {path}: {e}");
                std::process::exit(1);
            });
            FaultScript::new(plan, seed)
        });
        let out = simulate_blast2cap3_at(&registry, site, n, seed, &cfg, script);
        // The same derivation the serve daemon applies at admission:
        // a single ad-hoc run is submission 0 under its seed.
        let id = TraceId::derive(seed, 0);
        if let Some(path) = args.get("events") {
            let text = format!(
                "{}{}",
                trace::render_log_header(id),
                events::log::append(&out.run.events)
            );
            std::fs::write(path, text).expect("write event log");
            if !args.flag("quiet") {
                eprintln!("event log written to {path}");
            }
        }
        traces.push(trace::fold(&out.run.events, Some(id)).expect("engine streams replay"));
    }

    let all_ok = traces.iter().all(|t| t.succeeded);
    let rendered = match args.get("format").unwrap_or("text") {
        "text" => trace::render_text(&traces),
        "chrome" => trace::render_chrome(&traces),
        other => args.bail(&format!("unknown --format {other:?} (use text or chrome)")),
    };
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &rendered).expect("write trace");
            if !args.flag("quiet") {
                println!("trace written to {path}");
            }
        }
        None => print!("{rendered}"),
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("some workflows did not complete; the trace covers what ran");
        ExitCode::FAILURE
    }
}

/// Collects every member event log of a serve state directory (or any
/// directory of `.events` logs), member-id order, pairing each with
/// its journaled trace id when the directory carries a journal — the
/// pairing that arms the `E0809` cross-check.
fn collect_member_streams(
    dir: &std::path::Path,
    streams: &mut Vec<(String, String, Option<TraceId>)>,
) {
    let members = dir.join("members");
    let scan = if members.is_dir() {
        members
    } else {
        dir.to_path_buf()
    };
    let mut paths: Vec<std::path::PathBuf> = match std::fs::read_dir(&scan) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "events"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", scan.display());
            std::process::exit(1);
        }
    };
    // Shortest-name-first sorts m2 before m10: member-id order.
    paths.sort_by_key(|p| {
        let name = p
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .into_owned();
        (name.len(), name)
    });
    if paths.is_empty() {
        eprintln!("no .events logs under {}", scan.display());
        std::process::exit(1);
    }
    // The journal records the trace id every member log header must
    // carry; replaying it recovers the expected ids.
    let journal = dir.join("journal");
    let traces: Vec<Option<TraceId>> = if journal.is_file() {
        let text = std::fs::read_to_string(&journal).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", journal.display());
            std::process::exit(1);
        });
        match pegasus_wms::serve::Ledger::replay(&text) {
            Ok(ledger) => ledger.submissions.iter().map(|s| s.trace).collect(),
            Err(e) => {
                eprintln!("corrupt journal {}: {e}", journal.display());
                std::process::exit(1);
            }
        }
    } else {
        Vec::new()
    };
    for path in paths {
        let name = path
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .into_owned();
        // Member logs are named m<id>.events; the id keys the journal.
        let expected = name
            .strip_prefix('m')
            .and_then(|rest| rest.strip_suffix(".events"))
            .and_then(|id| id.parse::<usize>().ok())
            .and_then(|id| traces.get(id).copied().flatten());
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read event log {}: {e}", path.display());
            std::process::exit(1);
        });
        streams.push((path.to_string_lossy().into_owned(), text, expected));
    }
}

/// `pegasus verify` — the two-layer semantic verifier. Layer 1 runs
/// the temporal invariant catalog (`E08xx`) over complete provenance
/// event streams; layer 2 (`--dax`) plans the workflow and verifies
/// its dataflow and feasibility (`E06xx`). Stream sources mirror
/// `pegasus trace`:
///
/// * `--from-events log,...`: recorded logs;
/// * a serve state directory (positional or `--events-dir`): every
///   member log, each cross-checked against its journaled trace id;
/// * a positional `.events` file;
/// * live (neither source nor `--dax`): simulate one blast2cap3 run,
///   serialize it, and verify the serialized text through the same
///   reader as the offline paths — so a live run and a later
///   `--from-events` pass over its `--events` log render identical
///   verdicts.
fn cmd_verify(args: &Args) -> ExitCode {
    use blast2cap3_pegasus::experiment::simulate_blast2cap3_at;
    use pegasus_wms::lint;
    use pegasus_wms::verify;

    let mut config = lint::LintConfig::default();
    if let Some(spec) = args.get("deny") {
        if let Err(tok) = config.deny(spec) {
            args.bail(&format!(
                "--deny: {tok:?} names no known lint (try a code like E0801, a rule name, or `warnings`)"
            ));
        }
    }
    if let Some(spec) = args.get("allow") {
        if let Err(tok) = config.allow(spec) {
            args.bail(&format!("--allow: {tok:?} names no known lint"));
        }
    }

    let retries: u32 = args.parsed("retries", 20u32);
    // The backoff/jitter envelope is only asserted when the invocation
    // states the policy (or runs live, where it is the engine's own).
    let explicit_policy = args.get("retries").is_some() || args.get("backoff").is_some();
    let mut opts = verify::VerifyOptions {
        slot_capacity: args.parsed_opt("slots"),
        retry: explicit_policy.then(|| retry_policy_from(args, retries)),
    };

    let mut diags = Vec::new();

    // Layer 2: plan the DAX for the target site and verify dataflow.
    if let Some(dax_path) = args.get("dax") {
        let wf = load_dax(dax_path);
        let registry = load_registry(args);
        let site = resolve_site(args, &registry, args.get("site").unwrap_or("sandhills"));
        let (sites, tc, rc) = load_catalogs(args, &registry);
        let exec = match plan(
            &wf,
            &sites,
            &tc,
            &rc,
            &PlannerConfig::for_site(registry.catalog_name(site)),
        ) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("planning failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let dopts = verify::DataflowOptions {
            storage_limit_bytes: args.parsed_opt("storage-limit"),
        };
        diags.extend(verify::check_plan(
            &wf,
            &exec,
            &rc,
            registry.catalog_name(site),
            dax_path,
            &dopts,
        ));
        let ens_cfg = pegasus_wms::ensemble::EnsembleConfig {
            slot_budget: args.parsed_opt("slots"),
            tenant_slots: None,
            tenant_active: None,
        };
        let width = wf.width().unwrap_or_else(|e| {
            eprintln!("cannot analyze {dax_path}: {e}");
            std::process::exit(1);
        });
        diags.extend(verify::check_ensemble_feasibility(
            &[(exec.name.clone(), width)],
            &ens_cfg,
            dax_path,
        ));
        if !args.flag("quiet") {
            println!(
                "verified plan {dax_path}: {} jobs on {}",
                exec.jobs.len(),
                exec.site
            );
        }
    }

    // Layer 1 stream sources: (label, raw text, journaled trace id).
    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read event log {path}: {e}");
            std::process::exit(1);
        })
    };
    let mut streams: Vec<(String, String, Option<TraceId>)> = Vec::new();
    if let Some(list) = args.get("from-events") {
        for path in list.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            streams.push((path.to_string(), read(path), None));
        }
    } else if let Some(dir) = args.get("events-dir") {
        collect_member_streams(std::path::Path::new(dir), &mut streams);
    } else {
        match args.p.positionals.as_slice() {
            // `--dax` alone is a pure layer-2 invocation.
            [] if args.get("dax").is_some() => {}
            [] => {
                let registry = load_registry(args);
                let site =
                    resolve_site(args, &registry, args.get("site").unwrap_or("sandhills"));
                let n: usize = args.parsed("n", 100);
                let seed: u64 = args.parsed("seed", 20140519u64);
                let cfg = EngineConfig::builder()
                    .policy(retry_policy_from(args, retries))
                    .seed(seed)
                    .build();
                let script = args.get("fault-plan").map(|path| {
                    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                        eprintln!("cannot read fault plan {path}: {e}");
                        std::process::exit(1);
                    });
                    let plan = FaultPlan::parse(&text).unwrap_or_else(|e| {
                        eprintln!("bad fault plan {path}: {e}");
                        std::process::exit(1);
                    });
                    FaultScript::new(plan, seed)
                });
                let out = simulate_blast2cap3_at(&registry, site, n, seed, &cfg, script);
                // A live run always knows its policy: arm the envelope.
                opts.retry = Some(retry_policy_from(args, retries));
                let id = TraceId::derive(seed, 0);
                let text = format!(
                    "{}{}",
                    trace::render_log_header(id),
                    events::log::append(&out.run.events)
                );
                let label = match args.get("events") {
                    Some(path) => {
                        std::fs::write(path, &text).expect("write event log");
                        if !args.flag("quiet") {
                            eprintln!("event log written to {path}");
                        }
                        path.to_string()
                    }
                    None => format!("<live n={n} seed={seed}>"),
                };
                streams.push((label, text, Some(id)));
            }
            [p] if std::path::Path::new(p).is_dir() => {
                collect_member_streams(std::path::Path::new(p), &mut streams);
            }
            [p] => streams.push((p.clone(), read(p), None)),
            _ => args.bail("verify takes at most one <events-or-dir>"),
        }
    }

    let mut total_events = 0usize;
    for (label, text, expected) in &streams {
        let evs = match events::log::parse_lines(text) {
            Ok(evs) => evs,
            Err(e) => {
                eprintln!("bad event log {label}: {e}");
                return ExitCode::FAILURE;
            }
        };
        total_events += evs.len();
        diags.extend(verify::check_stream(&evs, label, &opts));
        if let Some(exp) = expected {
            diags.extend(verify::check_trace_match(
                trace::trace_from_log(text),
                *exp,
                label,
            ));
        }
    }

    let diags = lint::resolve(diags, &config);
    match args.get("format").unwrap_or("text") {
        "text" => print!("{}", lint::render_text_as(&diags, "verify")),
        "json" => print!("{}", lint::render_json(&diags)),
        other => args.bail(&format!("unknown --format {other:?} (use text or json)")),
    }
    if !args.flag("quiet") {
        println!(
            "verify: {} stream(s), {} event(s), {} finding(s)",
            streams.len(),
            total_events,
            diags.len()
        );
    }
    if lint::has_errors(&diags) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `pegasus serve` — run the multi-tenant ensemble daemon until a
/// `shutdown` request arrives over the protocol socket.
fn cmd_serve(args: &Args) -> ExitCode {
    let opts = serve::ServeOptions {
        addr: args.get("addr").unwrap_or("127.0.0.1:7070").to_string(),
        metrics_addr: args
            .get("metrics-addr")
            .unwrap_or("127.0.0.1:7071")
            .to_string(),
        dir: std::path::PathBuf::from(args.get("dir").unwrap_or("serve-state")),
        seed: args.parsed("seed", 20140519u64),
        retries: args.parsed("retries", 3u32),
        slot_budget: args.parsed_opt("slots"),
        tenant_slots: args.parsed_opt("tenant-slots"),
        tenant_active: args.parsed_opt("tenant-active"),
        crash_after_members: args.parsed_opt("crash-after-members"),
        sites: args.get("sites").map(std::path::PathBuf::from),
    };
    match serve::serve(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `pegasus submit` — the daemon's write-side client: submit a
/// generated workload or a DAX, cancel a queued member, trigger a
/// batch of rounds, or shut the daemon down. Requests are sent in
/// cancel → submit → run → shutdown order; each response head is
/// printed on its own line.
fn cmd_submit(args: &Args) -> ExitCode {
    use pegasus_wms::serve::{
        render_response_head, Request, ResponseHead, SubmitRequest, SubmitSource,
    };

    let mut requests: Vec<Request> = Vec::new();
    if let Some(id) = args.parsed_opt::<usize>("cancel") {
        requests.push(Request::Cancel { id });
    }
    let source = match (args.parsed_opt::<usize>("n"), args.get("dax")) {
        (Some(n), None) => Some(SubmitSource::Generated { n }),
        (None, Some(path)) => Some(SubmitSource::Dax {
            path: path.to_string(),
        }),
        (None, None) => None,
        (Some(_), Some(_)) => args.bail("give either --n or --dax, not both"),
    };
    if let Some(source) = source {
        requests.push(Request::Submit(SubmitRequest {
            tenant: args
                .get("tenant")
                .unwrap_or(pegasus_wms::ensemble::DEFAULT_TENANT)
                .to_string(),
            site: args.require("site").to_string(),
            seed: args.parsed_opt("seed"),
            retries: args.parsed_opt("retries"),
            priority: args.parsed("priority", 0),
            trace: args.parsed_opt("trace"),
            source,
        }));
    }
    if args.flag("run") {
        requests.push(Request::Run);
    }
    if args.flag("shutdown") {
        requests.push(Request::Shutdown);
    }
    if requests.is_empty() {
        args.bail("nothing to do: give --n/--dax, --cancel, --run, or --shutdown");
    }

    let addr = args.get("addr").unwrap_or("127.0.0.1:7070");
    let mut conn = match serve::client::Connection::open(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("submit: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    for req in &requests {
        match conn.request(req) {
            Ok((head, payload)) => {
                println!("{}", render_response_head(&head));
                for line in payload {
                    println!("{line}");
                }
                ok &= !matches!(head, ResponseHead::Error(_));
            }
            Err(e) => {
                eprintln!("submit: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `pegasus status` — the member table, either live from a daemon
/// (`--addr`) or replayed offline from its state directory (`--dir`);
/// the two render byte-identical lines. `--rollup`/`--metrics` switch
/// the live query to the ensemble rollup CSV or the Prometheus
/// exposition.
fn cmd_status(args: &Args) -> ExitCode {
    use pegasus_wms::serve::{Request, ResponseHead};

    if let Some(dir) = args.get("dir") {
        return match serve::status_lines_offline(std::path::Path::new(dir)) {
            Ok(lines) => {
                for l in lines {
                    println!("{l}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("status: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let addr = args.get("addr").unwrap_or("127.0.0.1:7070");
    let req = if let Some(id) = args.parsed_opt::<usize>("trace") {
        Request::Trace { id }
    } else if args.flag("rollup") {
        Request::Rollup
    } else if args.flag("metrics") {
        Request::Metrics
    } else {
        Request::Status
    };
    let mut conn = match serve::client::Connection::open(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("status: {e}");
            return ExitCode::FAILURE;
        }
    };
    match conn.request(&req) {
        Ok((ResponseHead::Error(e), _)) => {
            eprintln!("status: {e}");
            ExitCode::FAILURE
        }
        Ok((_, payload)) => {
            for line in payload {
                println!("{line}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("status: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().map(String::as_str) else {
        eprint!("{}", cli_args::usage());
        return ExitCode::from(2);
    };
    if matches!(cmd, "help" | "--help" | "-h") {
        print!("{}", cli_args::usage());
        return ExitCode::SUCCESS;
    }
    let Some(verb) = cli_args::find(cmd) else {
        eprintln!("unknown subcommand {cmd:?}\n");
        eprint!("{}", cli_args::usage());
        return ExitCode::from(2);
    };
    let parsed = match verb.parse(&raw[1..]) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pegasus {}: {e}", verb.name);
            return ExitCode::from(2);
        }
    };
    if parsed.help {
        print!("{}", verb.help());
        return ExitCode::SUCCESS;
    }
    let args = Args { verb, p: parsed };
    match verb.name {
        "generate-dax" => cmd_generate_dax(&args),
        "generate-workload" => cmd_generate_workload(&args),
        "catalogs" => cmd_catalogs(&args),
        "plan" => cmd_plan(&args),
        "run" => cmd_run(&args, false),
        "statistics" => cmd_statistics(&args),
        "analyze" => cmd_analyze(&args),
        "ensemble" => cmd_ensemble(&args),
        "breakdown" => cmd_breakdown(&args),
        "trace" => cmd_trace(&args),
        "metrics" => cmd_metrics(&args),
        "lint" => cmd_lint(&args),
        "verify" => cmd_verify(&args),
        "serve" => cmd_serve(&args),
        "submit" => cmd_submit(&args),
        "status" => cmd_status(&args),
        other => {
            eprintln!("unhandled verb {other:?}");
            ExitCode::from(2)
        }
    }
}

//! Property-based tests for the translated aligner.

use bioseq::codon::reverse_translate;
use bioseq::seq::{DnaSeq, ProteinSeq};
use blastx::evalue::BLOSUM62_UNGAPPED;
use blastx::matrix::blosum62;
use blastx::search::{SearchParams, Searcher};
use blastx::tabular::TabularRecord;
use proptest::prelude::*;

fn protein_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ACDEFGHIKLMNPQRSTVWY]{30,100}").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blosum_symmetry_over_all_bytes(a in 0u8..128, b in 0u8..128) {
        prop_assert_eq!(blosum62(a, b), blosum62(b, a));
    }

    #[test]
    fn self_score_dominates_cross_score(
        p in proptest::sample::select(&b"ACDEFGHIKLMNPQRSTVWY"[..]),
        q in proptest::sample::select(&b"ACDEFGHIKLMNPQRSTVWY"[..]),
    ) {
        // BLOSUM62 diagonal dominance: s(a,a) >= s(a,b).
        prop_assert!(blosum62(p, p) >= blosum62(p, q));
    }

    #[test]
    fn encoding_protein_makes_it_findable(p in protein_string(), codon_seed in 0usize..7) {
        let prot = ProteinSeq::from_ascii(p.as_bytes()).unwrap();
        let db = vec![("target".to_string(), prot.clone())];
        let searcher = Searcher::new(db, SearchParams::default()).unwrap();
        let dna = reverse_translate(&prot, |i| i.wrapping_mul(5).wrapping_add(codon_seed));
        let hits = searcher.search_one("q", &dna);
        prop_assert!(!hits.is_empty(), "an exact coding query must hit its protein");
        prop_assert_eq!(hits[0].subject_id.as_str(), "target");
        prop_assert!(hits[0].percent_identity > 99.0);
        // And the reverse complement must hit on a negative frame.
        let rc_hits = searcher.search_one("q_rc", &dna.reverse_complement());
        prop_assert!(!rc_hits.is_empty());
        prop_assert!(!rc_hits[0].frame.is_forward());
    }

    #[test]
    fn hit_coordinates_are_in_bounds(p in protein_string()) {
        let prot = ProteinSeq::from_ascii(p.as_bytes()).unwrap();
        let db = vec![("t".to_string(), prot.clone())];
        let searcher = Searcher::new(db, SearchParams::default()).unwrap();
        let dna = reverse_translate(&prot, |i| i);
        for h in searcher.search_one("q", &dna) {
            let (lo, hi) = (h.q_start.min(h.q_end), h.q_start.max(h.q_end));
            prop_assert!(lo >= 1 && hi <= dna.len());
            prop_assert!(h.s_start >= 1 && h.s_end <= prot.len());
            prop_assert!(h.s_start <= h.s_end);
            prop_assert!(h.evalue >= 0.0);
            prop_assert!(h.length >= 1);
            prop_assert!(h.percent_identity <= 100.0 + 1e-9);
        }
    }

    #[test]
    fn evalue_monotone_in_score(s1 in 1i32..200, s2 in 1i32..200, m in 10usize..1000, n in 100usize..100_000) {
        let (lo, hi) = (s1.min(s2), s1.max(s2));
        prop_assert!(BLOSUM62_UNGAPPED.evalue(hi, m, n) <= BLOSUM62_UNGAPPED.evalue(lo, m, n));
        prop_assert!(BLOSUM62_UNGAPPED.bit_score(hi) >= BLOSUM62_UNGAPPED.bit_score(lo));
    }

    #[test]
    fn tabular_line_round_trip(
        q in "[A-Za-z0-9_]{1,16}", s in "[A-Za-z0-9_]{1,16}",
        pid in 0.0f64..100.0, len in 1usize..1000,
        mm in 0usize..100, gaps in 0usize..10,
        qs in 1usize..3000, qe in 1usize..3000,
        ss in 1usize..1000, se in 1usize..1000,
    ) {
        let rec = TabularRecord {
            query_id: q, subject_id: s,
            percent_identity: pid, length: len,
            mismatches: mm, gap_opens: gaps,
            q_start: qs, q_end: qe, s_start: ss, s_end: se,
            evalue: 3.1e-12, bit_score: 88.4,
        };
        let back = TabularRecord::parse_line(&rec.to_line()).unwrap();
        prop_assert_eq!(&back.query_id, &rec.query_id);
        prop_assert_eq!(&back.subject_id, &rec.subject_id);
        prop_assert_eq!(back.length, rec.length);
        prop_assert_eq!(back.mismatches, rec.mismatches);
        prop_assert_eq!(back.gap_opens, rec.gap_opens);
        prop_assert_eq!(back.q_start, rec.q_start);
        prop_assert_eq!(back.q_end, rec.q_end);
        prop_assert!((back.percent_identity - rec.percent_identity).abs() < 0.01);
    }

    #[test]
    fn smith_waterman_dominates_xdrop(p in protein_string(), mutate_at in 0usize..30) {
        use blastx::align::{local_align, GapParams};
        use blastx::extend::xdrop_extend;
        let q = p.as_bytes();
        let mut s = q.to_vec();
        if !s.is_empty() {
            let i = mutate_at % s.len();
            s[i] = if s[i] == b'A' { b'G' } else { b'A' };
        }
        let sw = local_align(q, &s, GapParams::default());
        if q.len() >= 4 {
            let ext = xdrop_extend(q, &s, 0, 0, 4, 20);
            prop_assert!(sw.score >= ext.score,
                "exact {} < heuristic {}", sw.score, ext.score);
        }
        // Score symmetry under argument swap (BLOSUM62 is symmetric).
        let sw_rev = local_align(&s, q, GapParams::default());
        prop_assert_eq!(sw.score, sw_rev.score);
    }

    #[test]
    fn smith_waterman_cigar_is_consistent(p in protein_string(), q in protein_string()) {
        use blastx::align::{local_align, CigarOp, GapParams};
        let a = local_align(p.as_bytes(), q.as_bytes(), GapParams::default());
        let q_cols: usize = a.cigar.iter()
            .filter(|(_, op)| matches!(op, CigarOp::AlignedPair | CigarOp::Insertion))
            .map(|(n, _)| n).sum();
        let s_cols: usize = a.cigar.iter()
            .filter(|(_, op)| matches!(op, CigarOp::AlignedPair | CigarOp::Deletion))
            .map(|(n, _)| n).sum();
        prop_assert_eq!(q_cols, a.query_range.1 - a.query_range.0);
        prop_assert_eq!(s_cols, a.subject_range.1 - a.subject_range.0);
        prop_assert!(a.identities <= a.length());
        prop_assert!(a.score >= 0);
        prop_assert!(a.query_range.1 <= p.len());
        prop_assert!(a.subject_range.1 <= q.len());
    }

    #[test]
    fn parallel_equals_serial_search(p in protein_string(), k in 2usize..5) {
        let prot = ProteinSeq::from_ascii(p.as_bytes()).unwrap();
        let db = vec![("t".to_string(), prot.clone())];
        let searcher = Searcher::new(db, SearchParams::default()).unwrap();
        let queries: Vec<(String, DnaSeq)> = (0..k)
            .map(|i| (format!("q{i}"), reverse_translate(&prot, |j| j + i)))
            .collect();
        prop_assert_eq!(
            searcher.search_many(&queries, 1),
            searcher.search_many(&queries, 4)
        );
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! A BLASTX-like translated aligner.
//!
//! blast2cap3 consumes the tabular output of a BLASTX run of the
//! transcript set against a related-species protein database; this
//! crate reimplements that producer from scratch:
//!
//! * [`matrix`] — the BLOSUM62 substitution matrix;
//! * [`seed`] — a packed-word index over the protein database;
//! * [`extend`] — ungapped X-drop extension and banded gapped
//!   refinement of seed hits into HSPs;
//! * [`evalue`] — Karlin–Altschul bit scores and E-values;
//! * [`search`] — the per-query 6-frame search driver with a
//!   crossbeam-based parallel front end;
//! * [`tabular`] — reader/writer for the 12-column `-outfmt 6` format
//!   (the `alignments.out` file of the paper).
//!
//! # Example
//!
//! ```
//! use bioseq::seq::{DnaSeq, ProteinSeq};
//! use bioseq::codon::reverse_translate;
//! use blastx::search::{SearchParams, Searcher};
//!
//! let prot = ProteinSeq::from_ascii(b"MKWVLLLFAARNDCEQGHIKWWYEEDDKKHH").unwrap();
//! let db = vec![("p1".to_string(), prot.clone())];
//! let searcher = Searcher::new(db, SearchParams::default()).unwrap();
//! // A transcript encoding p1 on the forward strand:
//! let q = reverse_translate(&prot, |i| i);
//! let hits = searcher.search_one("tx1", &q);
//! assert!(hits.iter().any(|h| h.subject_id == "p1"));
//! ```

pub mod align;
pub mod evalue;
pub mod extend;
pub mod matrix;
pub mod search;
pub mod seed;
pub mod tabular;

pub use search::{Hsp, SearchParams, Searcher};
pub use tabular::TabularRecord;

//! §VII — "Workflows running on OSG may result with excellent or very
//! poor results depending whether there are plenty or few available
//! resources", while "the running time for the both platforms ... may
//! vary for every new run".
//!
//! Quantifies run-to-run variability: the same n = 300 workflow across
//! 25 seeds on each platform model. Expected shape: the Sandhills
//! distribution is tight (dedicated allocation, no failures); the OSG
//! distribution is wide and right-skewed (opportunistic waits +
//! preemption-driven retries); OSG under a scripted preemption storm
//! (`osg+chaos`) is wider still.
//!
//! Output: `target/experiments/variance.csv`.

use blast2cap3_pegasus::experiment::{
    simulate_blast2cap3, simulate_blast2cap3_ensemble, simulate_blast2cap3_with,
};
use gridsim::{FaultPlan, FaultScript};
use pegasus_wms::engine::{EngineConfig, RetryPolicy};
use wms_bench::{human_duration, write_experiment_file, DEFAULT_SEED};

const CHAOS: &str = "\
plan variance-storm
preemption-storm start=500 duration=2500 kill-probability=0.5
straggler start=0 duration=1e9 slowdown=4 probability=0.05
";

fn simulate(site: &str, seed: u64) -> blast2cap3_pegasus::ExperimentOutcome {
    if site == "osg+chaos" {
        let script = FaultScript::new(FaultPlan::parse(CHAOS).expect("valid plan"), seed);
        let cfg = EngineConfig::builder()
            .policy(RetryPolicy::exponential(20, 30.0))
            .seed(seed)
            .build();
        simulate_blast2cap3_with("osg", 300, seed, &cfg, Some(script))
    } else {
        simulate_blast2cap3(site, 300, seed, 20)
    }
}

fn summary(walls: &mut [f64]) -> (f64, f64, f64, f64) {
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let min = walls[0];
    let max = walls[walls.len() - 1];
    let median = walls[walls.len() / 2];
    let mean = walls.iter().sum::<f64>() / walls.len() as f64;
    (min, median, mean, max)
}

fn main() {
    const RUNS: u64 = 25;
    let mut csv = String::from("platform,seed,wall_time_s,retries\n");
    let mut spreads = Vec::new();
    for site in ["sandhills", "osg", "osg+chaos"] {
        let mut walls = Vec::new();
        for k in 0..RUNS {
            let seed = DEFAULT_SEED + k;
            let out = simulate(site, seed);
            assert!(out.run.succeeded(), "{site} seed {seed}");
            csv.push_str(&format!(
                "{site},{seed},{:.1},{}\n",
                out.run.wall_time, out.stats.retries
            ));
            walls.push(out.run.wall_time);
        }
        let (min, median, mean, max) = summary(&mut walls);
        let spread = max / min;
        spreads.push((site, spread));
        println!(
            "{site:<9} over {RUNS} runs: min {:>8.0}s  median {:>8.0}s  mean {:>8.0}s  max {:>8.0}s  (max/min = {spread:.2}x, median {})",
            min, median, mean, max, human_duration(median)
        );
    }
    // Ensemble series: the {100, 300} pair as ONE ensemble per seed.
    // Its makespan is a max over members sharing the platform, so
    // opportunistic variability compounds rather than averaging out.
    for site in ["sandhills", "osg"] {
        let mut walls = Vec::new();
        for k in 0..RUNS {
            let seed = DEFAULT_SEED + k;
            let cfg = EngineConfig::builder()
                .policy(RetryPolicy::exponential(20, 30.0))
                .seed(seed)
                .build();
            let out = simulate_blast2cap3_ensemble(site, &[100, 300], seed, &cfg, None);
            assert!(out.run.succeeded(), "{site} ensemble seed {seed}");
            csv.push_str(&format!(
                "{site}+ensemble,{seed},{:.1},{}\n",
                out.run.makespan, out.stats.retries
            ));
            walls.push(out.run.makespan);
        }
        let (min, median, mean, max) = summary(&mut walls);
        println!(
            "{:<9} over {RUNS} runs: min {min:>8.0}s  median {median:>8.0}s  mean {mean:>8.0}s  max {max:>8.0}s  (max/min = {:.2}x, ensemble of n=100+300)",
            format!("{site}+ens"),
            max / min
        );
    }

    let sandhills_spread = spreads[0].1;
    let osg_spread = spreads[1].1;
    println!();
    println!(
        "OSG spread ({osg_spread:.2}x) vs Sandhills spread ({sandhills_spread:.2}x): {}",
        if osg_spread > sandhills_spread {
            "REPRODUCED — opportunistic variability dominates"
        } else {
            "DEVIATION"
        }
    );
    assert!(
        osg_spread > sandhills_spread,
        "the paper's variability contrast must reproduce"
    );
    let chaos_spread = spreads[2].1;
    println!("scripted storm widens OSG spread further: {chaos_spread:.2}x vs {osg_spread:.2}x");
    let path = write_experiment_file("variance.csv", &csv);
    println!("series written to {}", path.display());
}

//! Ablations over the design choices DESIGN.md §8 calls out:
//!
//! * horizontal task clustering on/off (Pegasus's remote-overhead
//!   optimisation, §III of the paper);
//! * retry budget on the preemption-prone OSG model;
//! * pre-staged software on OSG (the paper's stated future work).
//!
//! The measured quantity is the end-to-end plan+simulate cost; the
//! simulated wall times are printed once per configuration so the
//! ablation's *effect* is visible in the bench log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use blast2cap3::workflow::{build_workflow, WorkflowParams};
use blast2cap3_pegasus::experiment::{
    calibrate_workload, calibrated_chunk_costs, simulate_blast2cap3,
};
use gridsim::platforms::{osg, osg_churning, osg_prestaged};
use gridsim::SimBackend;
use pegasus_wms::catalog::{paper_catalogs, ReplicaCatalog};
use pegasus_wms::engine::{Engine, EngineConfig, NoopMonitor};
use pegasus_wms::planner::{plan, PlannerConfig};

fn simulate_with_clustering(n: usize, cluster_factor: Option<usize>, seed: u64) -> f64 {
    let calibration = calibrate_workload(seed);
    let chunk_costs = calibrated_chunk_costs(&calibration, n);
    let params = WorkflowParams::with_n(chunk_costs.len()).with_chunk_costs(chunk_costs);
    let wf = build_workflow(&params);
    let (sites, tc) = paper_catalogs();
    let mut rc = ReplicaCatalog::new();
    rc.register("transcripts.fasta", "submit");
    rc.register("alignments.out", "submit");
    let mut cfg = PlannerConfig::for_site("osg");
    cfg.cluster_factor = cluster_factor;
    let exec = plan(&wf, &sites, &tc, &rc, &cfg).expect("plan");
    let mut backend = SimBackend::new(osg(seed), seed);
    let run = Engine::run(
        &mut backend,
        &exec,
        &EngineConfig::builder().retries(10).build(),
        &mut NoopMonitor,
    );
    assert!(run.succeeded());
    run.wall_time
}

fn simulate_prestaged(n: usize, prestaged: bool, seed: u64) -> f64 {
    if !prestaged {
        return simulate_blast2cap3("osg", n, seed, 10).run.wall_time;
    }
    let calibration = calibrate_workload(seed);
    let chunk_costs = calibrated_chunk_costs(&calibration, n);
    let params = WorkflowParams::with_n(chunk_costs.len()).with_chunk_costs(chunk_costs);
    let wf = build_workflow(&params);
    let (sites, tc) = paper_catalogs();
    let mut rc = ReplicaCatalog::new();
    rc.register("transcripts.fasta", "submit");
    rc.register("alignments.out", "submit");
    let exec = plan(&wf, &sites, &tc, &rc, &PlannerConfig::for_site("osg")).expect("plan");
    let mut backend = SimBackend::new(osg_prestaged(seed), seed);
    let run = Engine::run(
        &mut backend,
        &exec,
        &EngineConfig::builder().retries(10).build(),
        &mut NoopMonitor,
    );
    assert!(run.succeeded());
    run.wall_time
}

fn bench_ablations(c: &mut Criterion) {
    // Print the ablation effects once, then benchmark the pipelines.
    let base = simulate_with_clustering(300, None, 42);
    let clustered = simulate_with_clustering(300, Some(4), 42);
    println!("ablation clustering @ OSG n=300: none={base:.0}s, factor4={clustered:.0}s");
    let normal = simulate_prestaged(300, false, 42);
    let staged = simulate_prestaged(300, true, 42);
    println!(
        "ablation prestage   @ OSG n=300: install-per-task={normal:.0}s, prestaged={staged:.0}s"
    );
    for retries in [3u32, 10, 30] {
        let out = simulate_blast2cap3("osg", 100, 42, retries);
        println!(
            "ablation retries    @ OSG n=100: budget={retries} wall={:.0}s succeeded={}",
            out.run.wall_time,
            out.run.succeeded()
        );
    }
    // Hazard-based vs churn-based eviction models.
    {
        let calibration = calibrate_workload(42);
        let chunk_costs = calibrated_chunk_costs(&calibration, 300);
        let params = WorkflowParams::with_n(chunk_costs.len()).with_chunk_costs(chunk_costs);
        let wf = build_workflow(&params);
        let (sites, tc) = paper_catalogs();
        let mut rc = ReplicaCatalog::new();
        rc.register("transcripts.fasta", "submit");
        rc.register("alignments.out", "submit");
        let exec = plan(&wf, &sites, &tc, &rc, &PlannerConfig::for_site("osg")).unwrap();
        let mut be = SimBackend::new(osg_churning(42), 42);
        let run = Engine::run(
            &mut be,
            &exec,
            &EngineConfig::builder().retries(20).build(),
            &mut NoopMonitor,
        );
        println!(
            "ablation eviction   @ OSG n=300: churn-model wall={:.0}s (hazard-model={normal:.0}s), {} evictions",
            run.wall_time,
            be.preemptions()
        );
    }

    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("clustering_off", |b| {
        b.iter(|| simulate_with_clustering(300, None, 42))
    });
    group.bench_function("clustering_factor4", |b| {
        b.iter(|| simulate_with_clustering(300, Some(4), 42))
    });
    group.bench_function("osg_prestaged", |b| {
        b.iter(|| simulate_prestaged(300, true, 42))
    });
    for retries in [3u32, 30] {
        group.bench_with_input(
            BenchmarkId::new("osg_retries", retries),
            &retries,
            |b, &r| b.iter(|| simulate_blast2cap3("osg", 100, 42, r).run.wall_time),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);

//! The assembly driver: candidate generation, overlap detection,
//! layout, consensus.

use crate::consensus::consensus;
use crate::layout::layout_groups;
use crate::overlap::{detect, Overlap};
use crate::params::Cap3Params;
use bioseq::fasta::Record;
use bioseq::fxhash::{FxHashMap, FxHashSet};
use bioseq::kmer::KmerIter;
use bioseq::seq::DnaSeq;

/// Result of an assembly run: merged contigs and untouched singlets,
/// mirroring CAP3's `.cap.contigs` and `.cap.singlets` files.
#[derive(Debug, Clone, PartialEq)]
pub struct Assembly {
    /// Consensus contigs (`Contig1`, `Contig2`, ... in input order of
    /// their earliest read).
    pub contigs: Vec<Record>,
    /// Reads that joined no contig, unchanged.
    pub singlets: Vec<Record>,
}

impl Assembly {
    /// Contigs followed by singlets — the concatenation blast2cap3
    /// performs after each CAP3 invocation.
    pub fn all_records(&self) -> Vec<Record> {
        let mut out = self.contigs.clone();
        out.extend(self.singlets.iter().cloned());
        out
    }

    /// Total output sequence count.
    pub fn output_count(&self) -> usize {
        self.contigs.len() + self.singlets.len()
    }
}

/// A reusable CAP3-like assembler.
#[derive(Debug, Clone)]
pub struct Assembler {
    params: Cap3Params,
}

impl Assembler {
    /// Creates an assembler with the given cutoffs.
    ///
    /// # Panics
    /// Panics if the parameters fail [`Cap3Params::validate`]; use
    /// validated parameters for fallible construction.
    pub fn new(params: Cap3Params) -> Self {
        if let Err(msg) = params.validate() {
            panic!("invalid Cap3Params: {msg}");
        }
        Assembler { params }
    }

    /// The active parameters.
    pub fn params(&self) -> &Cap3Params {
        &self.params
    }

    /// Generates candidate pairs `(i, j, flip)` with `i < j` via
    /// shared k-mers (forward) and shared reverse-complement k-mers
    /// (flipped).
    fn candidates(&self, reads: &[Record]) -> Vec<(u32, u32, bool)> {
        let k = self.params.seed_k;
        // Global k-mer index: kmer -> reads containing it (deduped).
        let mut index: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for (i, rec) in reads.iter().enumerate() {
            let mut seen: FxHashSet<u64> = FxHashSet::default();
            if let Ok(it) = KmerIter::new(rec.seq.as_bytes(), k) {
                for (_, km) in it {
                    if seen.insert(km) {
                        index.entry(km).or_default().push(i as u32);
                    }
                }
            }
        }
        let mut pairs: FxHashSet<(u32, u32, bool)> = FxHashSet::default();
        for (i, rec) in reads.iter().enumerate() {
            let i = i as u32;
            // Forward-forward sharing.
            if let Ok(it) = KmerIter::new(rec.seq.as_bytes(), k) {
                let mut seen: FxHashSet<u64> = FxHashSet::default();
                for (_, km) in it {
                    if !seen.insert(km) {
                        continue;
                    }
                    if let Some(list) = index.get(&km) {
                        if list.len() > self.params.max_bucket {
                            continue;
                        }
                        for &j in list {
                            if j > i {
                                pairs.insert((i, j, false));
                            }
                        }
                    }
                }
            }
            // Forward(i) vs reverse(j): i's RC k-mers hit j's forward index.
            let rc = rec.seq.reverse_complement();
            if let Ok(it) = KmerIter::new(rc.as_bytes(), k) {
                let mut seen: FxHashSet<u64> = FxHashSet::default();
                for (_, km) in it {
                    if !seen.insert(km) {
                        continue;
                    }
                    if let Some(list) = index.get(&km) {
                        if list.len() > self.params.max_bucket {
                            continue;
                        }
                        for &j in list {
                            if j != i {
                                let (lo, hi) = (i.min(j), i.max(j));
                                pairs.insert((lo, hi, true));
                            }
                        }
                    }
                }
            }
        }
        let mut out: Vec<(u32, u32, bool)> = pairs.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Assembles FASTQ reads, using quality-weighted consensus (the
    /// behaviour CAP3 gets from `.qual` files): a confident base
    /// outvotes several low-quality ones in each contig column.
    pub fn assemble_fastq(&self, reads: &[bioseq::fastq::FastqRecord]) -> Assembly {
        if reads.is_empty() {
            return Assembly {
                contigs: Vec::new(),
                singlets: Vec::new(),
            };
        }
        let records: Vec<Record> = reads
            .iter()
            .map(|r| Record::new(r.id.clone(), r.desc.clone(), r.seq.clone()))
            .collect();
        let quals: Vec<Vec<u8>> = reads.iter().map(|r| r.qual.clone()).collect();
        self.assemble_impl(&records, Some(&quals))
    }

    /// Assembles `reads` into contigs and singlets.
    pub fn assemble(&self, reads: &[Record]) -> Assembly {
        self.assemble_impl(reads, None)
    }

    fn assemble_impl(&self, reads: &[Record], quals: Option<&[Vec<u8>]>) -> Assembly {
        if reads.is_empty() {
            return Assembly {
                contigs: Vec::new(),
                singlets: Vec::new(),
            };
        }
        let seqs: Vec<&DnaSeq> = reads.iter().map(|r| &r.seq).collect();
        let lens: Vec<usize> = seqs.iter().map(|s| s.len()).collect();

        let mut overlaps: Vec<Overlap> = Vec::new();
        for (i, j, flip) in self.candidates(reads) {
            let a = seqs[i as usize].as_bytes();
            let found = if flip {
                let rc_j = seqs[j as usize].reverse_complement();
                detect(a, rc_j.as_bytes(), i, j, true, &self.params)
            } else {
                detect(a, seqs[j as usize].as_bytes(), i, j, false, &self.params)
            };
            if let Some(ov) = found {
                overlaps.push(ov);
            }
        }

        let (layouts, singlet_ids) = layout_groups(&lens, &overlaps);
        let owned_seqs: Vec<DnaSeq> = reads.iter().map(|r| r.seq.clone()).collect();
        let contigs: Vec<Record> = layouts
            .iter()
            .enumerate()
            .map(|(n, layout)| {
                let members: Vec<&str> = layout
                    .placements
                    .iter()
                    .map(|p| reads[p.read as usize].id.as_str())
                    .collect();
                let seq = match quals {
                    Some(q) => crate::consensus::consensus_weighted(layout, &owned_seqs, q),
                    None => consensus(layout, &owned_seqs),
                };
                Record::new(
                    format!("Contig{}", n + 1),
                    format!("reads={}", members.join(",")),
                    seq,
                )
            })
            .collect();
        let singlets: Vec<Record> = singlet_ids
            .iter()
            .map(|&i| reads[i as usize].clone())
            .collect();
        Assembly { contigs, singlets }
    }
}

impl Default for Assembler {
    fn default() -> Self {
        Assembler::new(Cap3Params::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_template(seed: u64, len: usize) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| bioseq::alphabet::DNA_BASES[rng.gen_range(0..4)])
            .collect()
    }

    fn rec(id: &str, bytes: &[u8]) -> Record {
        Record::new(id, "", DnaSeq::from_ascii(bytes).unwrap())
    }

    #[test]
    fn empty_input_gives_empty_assembly() {
        let asm = Assembler::default().assemble(&[]);
        assert!(asm.contigs.is_empty());
        assert!(asm.singlets.is_empty());
        assert_eq!(asm.output_count(), 0);
    }

    #[test]
    fn lone_read_is_a_singlet() {
        let t = random_template(1, 100);
        let asm = Assembler::default().assemble(&[rec("only", &t)]);
        assert!(asm.contigs.is_empty());
        assert_eq!(asm.singlets.len(), 1);
        assert_eq!(asm.singlets[0].id, "only");
    }

    #[test]
    fn two_overlapping_fragments_merge_exactly() {
        let t = random_template(2, 300);
        let a = rec("a", &t[..200]);
        let b = rec("b", &t[140..]);
        let asm = Assembler::default().assemble(&[a, b]);
        assert_eq!(asm.contigs.len(), 1);
        assert!(asm.singlets.is_empty());
        assert_eq!(asm.contigs[0].seq.as_bytes(), &t[..]);
        assert!(asm.contigs[0].desc.contains("a"));
        assert!(asm.contigs[0].desc.contains("b"));
    }

    #[test]
    fn three_fragments_tile_into_one_contig() {
        let t = random_template(3, 500);
        let frags = [
            rec("f0", &t[..220]),
            rec("f1", &t[150..380]),
            rec("f2", &t[320..]),
        ];
        let asm = Assembler::default().assemble(&frags);
        assert_eq!(asm.contigs.len(), 1);
        assert_eq!(asm.contigs[0].seq.as_bytes(), &t[..]);
    }

    #[test]
    fn reverse_complement_fragment_still_merges() {
        let t = random_template(4, 300);
        let a = rec("a", &t[..200]);
        let b_fwd = DnaSeq::from_ascii(&t[140..]).unwrap();
        let b = Record::new("b", "", b_fwd.reverse_complement());
        let asm = Assembler::default().assemble(&[a, b]);
        assert_eq!(asm.contigs.len(), 1, "rc fragment must merge");
        let c = &asm.contigs[0].seq;
        // Consensus equals the template or its reverse complement.
        assert!(
            c.as_bytes() == &t[..] || c.reverse_complement().as_bytes() == &t[..],
            "consensus differs from template"
        );
    }

    #[test]
    fn unrelated_reads_stay_separate() {
        let a = rec("a", &random_template(5, 200));
        let b = rec("b", &random_template(6, 200));
        let asm = Assembler::default().assemble(&[a, b]);
        assert!(asm.contigs.is_empty());
        assert_eq!(asm.singlets.len(), 2);
    }

    #[test]
    fn identity_cutoff_blocks_noisy_overlaps() {
        let t = random_template(7, 300);
        let a = rec("a", &t[..200]);
        // Corrupt the shared region heavily (~20% substitutions).
        let mut noisy = t[140..].to_vec();
        let mut rng = StdRng::seed_from_u64(8);
        for base in noisy.iter_mut().take(60) {
            if rng.gen_bool(0.2) {
                *base = if *base == b'A' { b'C' } else { b'A' };
            }
        }
        let b = rec("b", &noisy);
        let strict = Assembler::new(Cap3Params {
            min_overlap_identity: 99.0,
            ..Default::default()
        });
        let asm = strict.assemble(&[a, b]);
        assert_eq!(asm.contigs.len(), 0, "99% cutoff must reject noisy join");
    }

    #[test]
    fn two_families_assemble_independently() {
        let t1 = random_template(9, 300);
        let t2 = random_template(10, 300);
        let reads = [
            rec("x0", &t1[..200]),
            rec("x1", &t1[120..]),
            rec("y0", &t2[..200]),
            rec("y1", &t2[120..]),
        ];
        let asm = Assembler::default().assemble(&reads);
        assert_eq!(asm.contigs.len(), 2);
        assert!(asm.singlets.is_empty());
        let consensi: Vec<&[u8]> = asm.contigs.iter().map(|c| c.seq.as_bytes()).collect();
        assert!(consensi.contains(&&t1[..]));
        assert!(consensi.contains(&&t2[..]));
    }

    #[test]
    fn contained_read_is_absorbed() {
        let t = random_template(11, 300);
        let outer = rec("outer", &t);
        let inner = rec("inner", &t[80..200]);
        let asm = Assembler::default().assemble(&[outer, inner]);
        assert_eq!(asm.contigs.len(), 1);
        assert_eq!(asm.contigs[0].seq.as_bytes(), &t[..]);
    }

    #[test]
    fn output_count_reduces_with_redundancy() {
        // Paper section II: blast2cap3 reduces transcript count by
        // merging redundant fragments; verify the mechanism here.
        let t = random_template(12, 600);
        let reads: Vec<Record> = (0..6)
            .map(|i| {
                let start = i * 80;
                rec(&format!("r{i}"), &t[start..(start + 200).min(600)])
            })
            .collect();
        let asm = Assembler::default().assemble(&reads);
        assert!(asm.output_count() < reads.len());
        assert_eq!(asm.contigs.len(), 1);
    }

    #[test]
    fn fastq_assembly_uses_quality_to_resolve_conflicts() {
        use bioseq::fastq::FastqRecord;
        let t = random_template(20, 300);
        // Read a covers [0,200) perfectly at high quality; read b
        // covers [140,300) but with a low-quality error at its start
        // (inside the overlap).
        let mut b_bytes = t[140..].to_vec();
        b_bytes[10] = match b_bytes[10] {
            b'A' => b'C',
            _ => b'A',
        };
        let a = FastqRecord::new(
            "a",
            "",
            DnaSeq::from_ascii(&t[..200]).unwrap(),
            vec![40; 200],
        )
        .unwrap();
        let mut b_qual = vec![40u8; 160];
        b_qual[10] = 2;
        let b = FastqRecord::new("b", "", DnaSeq::from_ascii(&b_bytes).unwrap(), b_qual).unwrap();
        let asm = Assembler::default().assemble_fastq(&[a, b]);
        assert_eq!(asm.contigs.len(), 1);
        assert_eq!(
            asm.contigs[0].seq.as_bytes(),
            &t[..],
            "high-quality base must win the disputed column"
        );
    }

    #[test]
    fn unequal_length_flipped_fragments_assemble() {
        // Exercises the reversed-edge algebra with asymmetric lengths:
        // three fragments of different sizes, the middle one reverse
        // complemented, presented middle-first so the BFS root is the
        // flipped read.
        let t = random_template(77, 600);
        let middle_fwd = DnaSeq::from_ascii(&t[150..430]).unwrap(); // 280 bp
        let reads = vec![
            Record::new("mid_rc", "", middle_fwd.reverse_complement()),
            Record::new("left", "", DnaSeq::from_ascii(&t[..220]).unwrap()), // 220 bp
            Record::new("right", "", DnaSeq::from_ascii(&t[360..]).unwrap()), // 240 bp
        ];
        let asm = Assembler::default().assemble(&reads);
        assert_eq!(asm.contigs.len(), 1, "all three must merge");
        assert!(asm.singlets.is_empty());
        let c = &asm.contigs[0].seq;
        assert!(
            c.as_bytes() == &t[..] || c.reverse_complement().as_bytes() == &t[..],
            "consensus must reconstruct the template"
        );
    }

    #[test]
    fn fastq_assembly_empty_input() {
        let asm = Assembler::default().assemble_fastq(&[]);
        assert_eq!(asm.output_count(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid Cap3Params")]
    fn invalid_params_panic_on_construction() {
        let _ = Assembler::new(Cap3Params {
            min_overlap_len: 0,
            ..Default::default()
        });
    }
}

//! Assembler tuning parameters.

/// Parameters mirroring the CAP3 command-line cutoffs the paper's
/// pipeline relies on.
#[derive(Debug, Clone)]
pub struct Cap3Params {
    /// Minimum overlap length in bases (CAP3 `-o`, default 40).
    pub min_overlap_len: usize,
    /// Minimum overlap percent identity in `[0, 100]` (CAP3 `-p`,
    /// default 90).
    pub min_overlap_identity: f64,
    /// Seed k-mer size for overlap detection.
    pub seed_k: usize,
    /// Minimum shared-seed votes on a diagonal before the overlap is
    /// evaluated exactly.
    pub min_seed_votes: usize,
    /// Diagonals within this distance of the best are also evaluated,
    /// to tolerate small indels near read ends.
    pub diagonal_slop: usize,
    /// K-mer buckets larger than this are skipped during candidate
    /// generation (repeat masking).
    pub max_bucket: usize,
}

impl Default for Cap3Params {
    fn default() -> Self {
        Cap3Params {
            min_overlap_len: 40,
            min_overlap_identity: 90.0,
            seed_k: 12,
            min_seed_votes: 2,
            diagonal_slop: 2,
            max_bucket: 64,
        }
    }
}

impl Cap3Params {
    /// Validates parameter ranges, returning a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_overlap_len == 0 {
            return Err("min_overlap_len must be positive".into());
        }
        if !(0.0..=100.0).contains(&self.min_overlap_identity) {
            return Err(format!(
                "min_overlap_identity {} outside [0, 100]",
                self.min_overlap_identity
            ));
        }
        if self.seed_k == 0 || self.seed_k > 32 {
            return Err(format!("seed_k {} outside 1..=32", self.seed_k));
        }
        if self.seed_k > self.min_overlap_len {
            return Err(format!(
                "seed_k {} exceeds min_overlap_len {}",
                self.seed_k, self.min_overlap_len
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_cap3_conventions() {
        let p = Cap3Params::default();
        assert_eq!(p.min_overlap_len, 40);
        assert!((p.min_overlap_identity - 90.0).abs() < 1e-12);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let bad = [
            Cap3Params {
                min_overlap_len: 0,
                ..Default::default()
            },
            Cap3Params {
                min_overlap_identity: 101.0,
                ..Default::default()
            },
            Cap3Params {
                seed_k: 0,
                ..Default::default()
            },
            Cap3Params {
                seed_k: 33,
                ..Default::default()
            },
            Cap3Params {
                seed_k: 20,
                min_overlap_len: 10,
                ..Default::default()
            },
        ];
        for p in bad {
            assert!(p.validate().is_err(), "{p:?} should be invalid");
        }
    }
}

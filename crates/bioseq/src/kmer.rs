//! 2-bit packed k-mer iteration over DNA.
//!
//! The CAP3-like assembler seeds candidate overlaps with shared k-mers;
//! this module provides a rolling encoder that skips windows containing
//! ambiguous (`N`) bases, exactly as seed indices in real assemblers do.

use crate::alphabet::base_code;
use crate::error::{BioError, Result};
use crate::seq::DnaSeq;

/// A packed k-mer: the 2-bit codes of `k` bases in the low `2k` bits.
pub type PackedKmer = u64;

/// Rolling k-mer iterator over a DNA byte slice.
///
/// Yields `(start_position, packed_kmer)` for every window of `k`
/// canonical bases; windows containing `N` are skipped.
pub struct KmerIter<'a> {
    seq: &'a [u8],
    k: usize,
    mask: u64,
    /// Next position to consider as window end (exclusive).
    pos: usize,
    /// Number of valid bases accumulated in `current`.
    valid: usize,
    current: u64,
}

impl<'a> KmerIter<'a> {
    /// Creates an iterator over `seq` with window size `k` (1..=32).
    pub fn new(seq: &'a [u8], k: usize) -> Result<Self> {
        if k == 0 || k > 32 {
            return Err(BioError::BadKmerSize(k));
        }
        let mask = if k == 32 {
            u64::MAX
        } else {
            (1u64 << (2 * k)) - 1
        };
        Ok(KmerIter {
            seq,
            k,
            mask,
            pos: 0,
            valid: 0,
            current: 0,
        })
    }
}

impl Iterator for KmerIter<'_> {
    type Item = (usize, PackedKmer);

    fn next(&mut self) -> Option<Self::Item> {
        while self.pos < self.seq.len() {
            let b = self.seq[self.pos];
            self.pos += 1;
            match base_code(b) {
                Some(code) => {
                    self.current = ((self.current << 2) | code as u64) & self.mask;
                    self.valid += 1;
                    if self.valid >= self.k {
                        return Some((self.pos - self.k, self.current));
                    }
                }
                None => {
                    // Ambiguous base breaks the rolling window.
                    self.valid = 0;
                    self.current = 0;
                }
            }
        }
        None
    }
}

/// Convenience: all `(position, kmer)` pairs of a sequence.
pub fn kmers(seq: &DnaSeq, k: usize) -> Result<Vec<(usize, PackedKmer)>> {
    Ok(KmerIter::new(seq.as_bytes(), k)?.collect())
}

/// Packs a short DNA slice (length 1..=32, canonical bases only) into a
/// k-mer. Returns `None` if any base is ambiguous.
pub fn pack(seq: &[u8]) -> Option<PackedKmer> {
    if seq.is_empty() || seq.len() > 32 {
        return None;
    }
    let mut v: u64 = 0;
    for &b in seq {
        v = (v << 2) | base_code(b)? as u64;
    }
    Some(v)
}

/// Unpacks a k-mer of known size back to ASCII bases.
pub fn unpack(kmer: PackedKmer, k: usize) -> Vec<u8> {
    assert!((1..=32).contains(&k), "k out of range");
    let mut out = vec![0u8; k];
    let mut v = kmer;
    for i in (0..k).rev() {
        out[i] = crate::alphabet::code_base((v & 0b11) as u8);
        v >>= 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterates_all_windows() {
        let s = DnaSeq::from_ascii(b"ACGTAC").unwrap();
        let ks = kmers(&s, 3).unwrap();
        assert_eq!(ks.len(), 4);
        assert_eq!(ks[0].0, 0);
        assert_eq!(ks[0].1, pack(b"ACG").unwrap());
        assert_eq!(ks[3].1, pack(b"TAC").unwrap());
    }

    #[test]
    fn skips_windows_containing_n() {
        let s = DnaSeq::from_ascii(b"ACGNACGT").unwrap();
        let ks = kmers(&s, 3).unwrap();
        // Valid windows: ACG (0), then after the N: ACG (4), CGT (5).
        let positions: Vec<usize> = ks.iter().map(|&(p, _)| p).collect();
        assert_eq!(positions, vec![0, 4, 5]);
    }

    #[test]
    fn k_equal_to_length_yields_one() {
        let s = DnaSeq::from_ascii(b"ACGT").unwrap();
        let ks = kmers(&s, 4).unwrap();
        assert_eq!(ks.len(), 1);
        assert_eq!(unpack(ks[0].1, 4), b"ACGT");
    }

    #[test]
    fn k_larger_than_length_yields_none() {
        let s = DnaSeq::from_ascii(b"ACG").unwrap();
        assert!(kmers(&s, 4).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_k() {
        let s = DnaSeq::from_ascii(b"ACGT").unwrap();
        assert!(matches!(kmers(&s, 0), Err(BioError::BadKmerSize(0))));
        assert!(matches!(kmers(&s, 33), Err(BioError::BadKmerSize(33))));
    }

    #[test]
    fn pack_unpack_round_trip() {
        for s in [&b"A"[..], b"ACGT", b"TTTTTTTT", b"GATTACA"] {
            let packed = pack(s).unwrap();
            assert_eq!(unpack(packed, s.len()), s);
        }
        assert_eq!(pack(b"ACN"), None);
        assert_eq!(pack(b""), None);
    }

    #[test]
    fn k32_mask_does_not_overflow() {
        let s = DnaSeq::from_ascii(&b"ACGT".repeat(10)).unwrap();
        let ks = kmers(&s, 32).unwrap();
        assert_eq!(ks.len(), 40 - 32 + 1);
        assert_eq!(unpack(ks[0].1, 32), &b"ACGT".repeat(8)[..]);
    }

    #[test]
    fn rolling_matches_naive_pack() {
        let s = DnaSeq::from_ascii(b"GATTACAGATTACACCGGTT").unwrap();
        for k in [1usize, 2, 5, 11] {
            let rolled = kmers(&s, k).unwrap();
            let bytes = s.as_bytes();
            let naive: Vec<(usize, PackedKmer)> = (0..=bytes.len() - k)
                .filter_map(|i| pack(&bytes[i..i + k]).map(|km| (i, km)))
                .collect();
            assert_eq!(rolled, naive, "k={k}");
        }
    }
}

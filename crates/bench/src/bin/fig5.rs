//! Fig. 5 — per-task running time on Sandhills and OSG for each
//! n ∈ {10, 100, 300, 500}.
//!
//! Reproduces the paper's per-task breakdown into the three
//! pegasus-statistics components:
//!
//! * **Kickstart Time** — decreases as n grows (smaller chunks) and
//!   is *lower on OSG* for the same n (faster opportunistic nodes,
//!   paper §VII);
//! * **Waiting Time** — small and negligible on Sandhills, large and
//!   erratic on OSG;
//! * **Download/Install Time** — zero on Sandhills, paid by every
//!   task on OSG.
//!
//! Output: `target/experiments/fig5.csv` plus per-configuration
//! tables.

use blast2cap3_pegasus::experiment::simulate_blast2cap3;
use wms_bench::{write_experiment_file, DEFAULT_SEED, PAPER_N_VALUES};

const TASK_TYPES: [&str; 6] = [
    "list_transcripts",
    "list_alignments",
    "split",
    "run_cap3",
    "merge",
    "extract_unjoined",
];

fn main() {
    let mut csv =
        String::from("platform,n,task_type,count,kickstart_mean_s,waiting_mean_s,install_mean_s\n");
    for site in ["sandhills", "osg"] {
        for &n in &PAPER_N_VALUES {
            let out = simulate_blast2cap3(site, n, DEFAULT_SEED, 10);
            assert!(out.run.succeeded(), "{site} n={n} failed");
            println!("── {site}, n = {n} ───────────────────────────────────────────");
            println!(
                "  {:<18} {:>6} {:>14} {:>12} {:>14}",
                "task", "count", "kickstart(s)", "waiting(s)", "install(s)"
            );
            for t in TASK_TYPES {
                if let Some(s) = out.stats.for_type(t) {
                    println!(
                        "  {:<18} {:>6} {:>14.1} {:>12.1} {:>14.1}",
                        t, s.count, s.kickstart_mean, s.waiting_mean, s.install_mean
                    );
                    csv.push_str(&format!(
                        "{site},{n},{t},{},{:.2},{:.2},{:.2}\n",
                        s.count, s.kickstart_mean, s.waiting_mean, s.install_mean
                    ));
                }
            }
            println!();
        }
    }

    // Shape checks mirrored from the paper's narrative.
    let sh300 = simulate_blast2cap3("sandhills", 300, DEFAULT_SEED, 10);
    let osg300 = simulate_blast2cap3("osg", 300, DEFAULT_SEED, 10);
    let sh = sh300.stats.for_type("run_cap3").expect("run_cap3 stats");
    let og = osg300.stats.for_type("run_cap3").expect("run_cap3 stats");
    println!("paper shape checks @ n = 300:");
    println!(
        "  Sandhills waiting ({:.0}s) is negligible; OSG waiting ({:.0}s) is not  -> {}",
        sh.waiting_mean,
        og.waiting_mean,
        verdict(og.waiting_mean > 10.0 * sh.waiting_mean)
    );
    println!(
        "  Sandhills install = {:.0}s; every OSG task pays install ({:.0}s)      -> {}",
        sh.install_mean,
        og.install_mean,
        verdict(sh.install_mean == 0.0 && og.install_mean > 0.0)
    );
    println!(
        "  pure kickstart is lower on OSG ({:.0}s vs {:.0}s on Sandhills)        -> {}",
        og.kickstart_mean,
        sh.kickstart_mean,
        verdict(og.kickstart_mean < sh.kickstart_mean)
    );

    let path = write_experiment_file("fig5.csv", &csv);
    println!("\nseries written to {}", path.display());
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "REPRODUCED"
    } else {
        "DEVIATION"
    }
}

//! Synthetic benchmark workflows.
//!
//! The Pegasus community evaluates WMS machinery on a standard set of
//! application shapes (the "workflow gallery" of Bharathi et al.,
//! *Characterization of Scientific Workflows*, WORKS 2008). This
//! module generates simplified but structurally faithful versions of
//! the four classics, so scheduling and platform experiments are not
//! limited to the blast2cap3 shape:
//!
//! * [`montage`] — astronomy mosaicking: wide fan-out, dense pairwise
//!   fit layer, heavy fan-in;
//! * [`cybershake`] — earthquake science: two big data sources feeding
//!   a very wide two-stage fan-out;
//! * [`epigenomics`] — genome methylation: parallel deep chains merged
//!   per lane, then globally;
//! * [`ligo_inspiral`] — gravitational-wave search: grouped fan-in
//!   pyramids.
//!
//! Runtime hints follow the relative magnitudes reported in the
//! characterisation paper (seconds on a reference core).

use crate::workflow::{AbstractWorkflow, Job, LogicalFile};

fn f(name: impl Into<String>) -> LogicalFile {
    LogicalFile::named(name)
}

/// Montage with `n` input images: `n` reprojections, ~`3n/2` pairwise
/// fits, a concat+model fan-in, `n` background corrections, and the
/// final image chain.
///
/// ```
/// use pegasus_wms::synthetic::{montage, montage_job_count};
///
/// let wf = montage(10);
/// assert_eq!(wf.jobs.len(), montage_job_count(10));
/// assert!(wf.validate().is_ok());
/// assert_eq!(wf.width().unwrap(), 10); // the projection fan-out
/// ```
pub fn montage(n: usize) -> AbstractWorkflow {
    let n = n.max(2);
    let mut wf = AbstractWorkflow::new(format!("montage_{n}"));
    let mut batch = Vec::with_capacity(montage_job_count(n));
    for i in 0..n {
        batch.push(
            Job::new(format!("mProjectPP_{i}"), "mProjectPP")
                .input(f(format!("input_{i}.fits")))
                .output(f(format!("proj_{i}.fits")))
                .runtime(15.0),
        );
    }
    // Pairwise overlap fits between adjacent projections (ring).
    let mut diff_outputs = Vec::new();
    for i in 0..n {
        let j = (i + 1) % n;
        let out = format!("diff_{i}_{j}.fits");
        batch.push(
            Job::new(format!("mDiffFit_{i}_{j}"), "mDiffFit")
                .input(f(format!("proj_{i}.fits")))
                .input(f(format!("proj_{j}.fits")))
                .output(f(&out))
                .runtime(10.0),
        );
        diff_outputs.push(out);
    }
    let mut concat = Job::new("mConcatFit", "mConcatFit")
        .output(f("fits.tbl"))
        .runtime(45.0);
    for d in &diff_outputs {
        concat = concat.input(f(d));
    }
    batch.push(concat);
    batch.push(
        Job::new("mBgModel", "mBgModel")
            .input(f("fits.tbl"))
            .output(f("corrections.tbl"))
            .runtime(60.0),
    );
    for i in 0..n {
        batch.push(
            Job::new(format!("mBackground_{i}"), "mBackground")
                .input(f(format!("proj_{i}.fits")))
                .input(f("corrections.tbl"))
                .output(f(format!("corrected_{i}.fits")))
                .runtime(12.0),
        );
    }
    let mut imgtbl = Job::new("mImgtbl", "mImgtbl")
        .output(f("images.tbl"))
        .runtime(20.0);
    for i in 0..n {
        imgtbl = imgtbl.input(f(format!("corrected_{i}.fits")));
    }
    batch.push(imgtbl);
    batch.push(
        Job::new("mAdd", "mAdd")
            .input(f("images.tbl"))
            .output(f("mosaic.fits"))
            .runtime(120.0),
    );
    batch.push(
        Job::new("mShrink", "mShrink")
            .input(f("mosaic.fits"))
            .output(f("shrunken.fits"))
            .runtime(30.0),
    );
    batch.push(
        Job::new("mJPEG", "mJPEG")
            .input(f("shrunken.fits"))
            .output(f("mosaic.jpg"))
            .runtime(5.0),
    );
    wf.add_jobs(batch).expect("fresh ids");
    wf
}

/// Expected Montage job count for `n` images.
pub fn montage_job_count(n: usize) -> usize {
    let n = n.max(2);
    n + n + 1 + 1 + n + 1 + 1 + 1 + 1
}

/// CyberShake with `n` variation pairs: two `ExtractSGT` sources, `n`
/// `SeismogramSynthesis` + `n` `PeakValCalc` jobs, two zip fan-ins.
pub fn cybershake(n: usize) -> AbstractWorkflow {
    let n = n.max(1);
    let mut wf = AbstractWorkflow::new(format!("cybershake_{n}"));
    let mut batch = Vec::with_capacity(cybershake_job_count(n));
    for s in 0..2 {
        batch.push(
            Job::new(format!("ExtractSGT_{s}"), "ExtractSGT")
                .input(f(format!("sgt_{s}.bin")))
                .output(f(format!("sub_sgt_{s}.bin")))
                .runtime(110.0),
        );
    }
    let mut zip_seis = Job::new("ZipSeis", "ZipSeis")
        .output(f("seismograms.zip"))
        .runtime(30.0);
    let mut zip_psa = Job::new("ZipPSA", "ZipPSA")
        .output(f("peaks.zip"))
        .runtime(25.0);
    for i in 0..n {
        let src = i % 2;
        batch.push(
            Job::new(format!("SeismogramSynthesis_{i}"), "SeismogramSynthesis")
                .input(f(format!("sub_sgt_{src}.bin")))
                .output(f(format!("seis_{i}.grm")))
                .runtime(48.0),
        );
        batch.push(
            Job::new(format!("PeakValCalc_{i}"), "PeakValCalc")
                .input(f(format!("seis_{i}.grm")))
                .output(f(format!("peak_{i}.bsa")))
                .runtime(1.0),
        );
        zip_seis = zip_seis.input(f(format!("seis_{i}.grm")));
        zip_psa = zip_psa.input(f(format!("peak_{i}.bsa")));
    }
    batch.push(zip_seis);
    batch.push(zip_psa);
    wf.add_jobs(batch).expect("fresh ids");
    wf
}

/// Expected CyberShake job count for `n` pairs.
pub fn cybershake_job_count(n: usize) -> usize {
    2 + 2 * n.max(1) + 2
}

/// Epigenomics with `lanes` sequencing lanes of `chains` parallel
/// filter→convert→map chains each.
pub fn epigenomics(lanes: usize, chains: usize) -> AbstractWorkflow {
    let (lanes, chains) = (lanes.max(1), chains.max(1));
    let mut wf = AbstractWorkflow::new(format!("epigenomics_{lanes}x{chains}"));
    let mut batch = Vec::with_capacity(epigenomics_job_count(lanes, chains));
    let mut global_merge = Job::new("mapMergeGlobal", "mapMerge")
        .output(f("all.map"))
        .runtime(120.0);
    for l in 0..lanes {
        let mut split = Job::new(format!("fastqSplit_{l}"), "fastqSplit")
            .input(f(format!("lane_{l}.fastq")))
            .runtime(35.0);
        for c in 0..chains {
            split = split.output(f(format!("chunk_{l}_{c}.fastq")));
        }
        batch.push(split);
        let mut lane_merge = Job::new(format!("mapMerge_{l}"), "mapMerge")
            .output(f(format!("lane_{l}.map")))
            .runtime(60.0);
        for c in 0..chains {
            let stages = [
                ("filterContams", 2.0),
                ("sol2sanger", 1.0),
                ("fastq2bfq", 2.0),
                ("map", 110.0),
            ];
            let mut prev = format!("chunk_{l}_{c}.fastq");
            for (stage, cost) in stages {
                let out = format!("{stage}_{l}_{c}.out");
                batch.push(
                    Job::new(format!("{stage}_{l}_{c}"), stage)
                        .input(f(&prev))
                        .output(f(&out))
                        .runtime(cost),
                );
                prev = out;
            }
            lane_merge = lane_merge.input(f(&prev));
        }
        batch.push(lane_merge);
        global_merge = global_merge.input(f(format!("lane_{l}.map")));
    }
    batch.push(global_merge);
    batch.push(
        Job::new("maqIndex", "maqIndex")
            .input(f("all.map"))
            .output(f("all.index"))
            .runtime(45.0),
    );
    batch.push(
        Job::new("pileup", "pileup")
            .input(f("all.index"))
            .output(f("methylation.txt"))
            .runtime(55.0),
    );
    wf.add_jobs(batch).expect("fresh ids");
    wf
}

/// Expected Epigenomics job count.
pub fn epigenomics_job_count(lanes: usize, chains: usize) -> usize {
    let (lanes, chains) = (lanes.max(1), chains.max(1));
    lanes * (1 + 4 * chains + 1) + 3
}

/// LIGO Inspiral with `groups` groups of `per_group` templates each:
/// TmpltBank → Inspiral → per-group Thinca fan-in → TrigBank →
/// Inspiral2 → final Thinca.
pub fn ligo_inspiral(groups: usize, per_group: usize) -> AbstractWorkflow {
    let (groups, per_group) = (groups.max(1), per_group.max(1));
    let mut wf = AbstractWorkflow::new(format!("inspiral_{groups}x{per_group}"));
    let mut batch = Vec::with_capacity(ligo_job_count(groups, per_group));
    let mut final_thinca = Job::new("Thinca_final", "Thinca")
        .output(f("triggers.xml"))
        .runtime(10.0);
    for g in 0..groups {
        let mut thinca = Job::new(format!("Thinca_{g}"), "Thinca")
            .output(f(format!("thinca_{g}.xml")))
            .runtime(6.0);
        for i in 0..per_group {
            batch.push(
                Job::new(format!("TmpltBank_{g}_{i}"), "TmpltBank")
                    .input(f(format!("gwdata_{g}_{i}.gwf")))
                    .output(f(format!("bank_{g}_{i}.xml")))
                    .runtime(18.0),
            );
            batch.push(
                Job::new(format!("Inspiral_{g}_{i}"), "Inspiral")
                    .input(f(format!("bank_{g}_{i}.xml")))
                    .output(f(format!("insp_{g}_{i}.xml")))
                    .runtime(460.0),
            );
            thinca = thinca.input(f(format!("insp_{g}_{i}.xml")));
        }
        batch.push(thinca);
        batch.push(
            Job::new(format!("TrigBank_{g}"), "TrigBank")
                .input(f(format!("thinca_{g}.xml")))
                .output(f(format!("trigbank_{g}.xml")))
                .runtime(5.0),
        );
        batch.push(
            Job::new(format!("Inspiral2_{g}"), "Inspiral")
                .input(f(format!("trigbank_{g}.xml")))
                .output(f(format!("insp2_{g}.xml")))
                .runtime(450.0),
        );
        final_thinca = final_thinca.input(f(format!("insp2_{g}.xml")));
    }
    batch.push(final_thinca);
    wf.add_jobs(batch).expect("fresh ids");
    wf
}

/// Expected LIGO Inspiral job count.
pub fn ligo_job_count(groups: usize, per_group: usize) -> usize {
    let (g, p) = (groups.max(1), per_group.max(1));
    g * (2 * p + 3) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn montage_counts_and_shape() {
        for n in [2usize, 8, 20] {
            let wf = montage(n);
            assert_eq!(wf.jobs.len(), montage_job_count(n), "n={n}");
            wf.validate().unwrap();
            // Projections are roots; mJPEG is the single sink.
            let outs = wf.final_outputs();
            assert_eq!(outs.len(), 1);
            assert_eq!(outs[0].name, "mosaic.jpg");
            assert_eq!(wf.width().unwrap(), n);
        }
    }

    #[test]
    fn cybershake_counts_and_shape() {
        let wf = cybershake(10);
        assert_eq!(wf.jobs.len(), cybershake_job_count(10));
        wf.validate().unwrap();
        // Dominated by the synthesis fan-out.
        assert!(wf.width().unwrap() >= 10);
        let (cp, _) = wf.critical_path().unwrap();
        // source + synthesis + peak + zip on the longest chain.
        assert!(cp >= 110.0 + 48.0 + 1.0 + 25.0);
    }

    #[test]
    fn epigenomics_counts_and_depth() {
        let wf = epigenomics(2, 4);
        assert_eq!(wf.jobs.len(), epigenomics_job_count(2, 4));
        wf.validate().unwrap();
        // Depth: split + 4 chain stages + lane merge + global merge +
        // index + pileup = 9 levels.
        let depth = wf.levels().unwrap().into_iter().max().unwrap() + 1;
        assert_eq!(depth, 9);
    }

    #[test]
    fn ligo_counts_and_fan_in() {
        let wf = ligo_inspiral(3, 5);
        assert_eq!(wf.jobs.len(), ligo_job_count(3, 5));
        wf.validate().unwrap();
        let sink = wf.job_by_name("Thinca_final").unwrap();
        let edges = wf.edges().unwrap();
        let fan_in = edges.iter().filter(|&&(_, c)| c == sink).count();
        assert_eq!(fan_in, 3, "one edge per group");
    }

    #[test]
    fn degenerate_sizes_are_clamped() {
        assert!(montage(0).validate().is_ok());
        assert!(cybershake(0).validate().is_ok());
        assert!(epigenomics(0, 0).validate().is_ok());
        assert!(ligo_inspiral(0, 0).validate().is_ok());
    }

    #[test]
    fn all_shapes_round_trip_through_dax() {
        for wf in [
            montage(6),
            cybershake(6),
            epigenomics(2, 3),
            ligo_inspiral(2, 3),
        ] {
            let back = crate::dax::from_dax(&crate::dax::to_dax(&wf)).unwrap();
            assert_eq!(back.jobs.len(), wf.jobs.len());
            assert_eq!(back.edges().unwrap(), wf.edges().unwrap());
        }
    }
}

//! End-to-end integration: the real blast2cap3 workflow — real FASTA
//! and tabular files, real CAP3 merging — executed by the DAGMan
//! engine on the local Condor pool, compared against the in-memory
//! serial reference, plus failure injection and rescue-based resume
//! over the same work directory.

use bioseq::fasta;
use blast2cap3::files::names;
use blast2cap3::serial::run_serial;
use blast2cap3::workflow::{build_workflow, WorkflowParams};
use blast2cap3_pegasus::experiment::real_local_run;
use blast2cap3_pegasus::registry::build_registry;
use cap3::Cap3Params;
use condor::pool::{FailureInjector, LocalPool, PoolConfig};
use pegasus_wms::catalog::{paper_catalogs, ReplicaCatalog};
use pegasus_wms::engine::{Engine, EngineConfig, JobState, NoopMonitor, WorkflowOutcome};
use pegasus_wms::planner::{plan, PlannerConfig};
use std::collections::BTreeSet;
use std::sync::Arc;

#[test]
fn real_workflow_matches_serial_reference() {
    let out = real_local_run(10, 5, 2, 42);
    assert!(
        out.run.succeeded(),
        "workflow failed: {:?}",
        out.run.records
    );

    // Re-derive the serial reference from the files the workflow wrote.
    let transcripts = fasta::read_file(out.workdir.join(names::TRANSCRIPTS)).unwrap();
    let alignments = blastx::tabular::read_file(out.workdir.join(names::ALIGNMENTS)).unwrap();
    let serial = run_serial(&transcripts, &alignments, &Cap3Params::default());

    assert_eq!(out.final_records.len(), serial.output.len());
    let file_seqs: BTreeSet<Vec<u8>> = out
        .final_records
        .iter()
        .map(|r| r.seq.as_bytes().to_vec())
        .collect();
    let mem_seqs: BTreeSet<Vec<u8>> = serial
        .output
        .iter()
        .map(|r| r.seq.as_bytes().to_vec())
        .collect();
    assert_eq!(file_seqs, mem_seqs);
    std::fs::remove_dir_all(&out.workdir).ok();
}

#[test]
fn real_workflow_statistics_are_complete() {
    let out = real_local_run(6, 3, 2, 43);
    assert!(out.run.succeeded());
    // Every compute transformation shows up in the statistics.
    for t in [
        "list_transcripts",
        "list_alignments",
        "split",
        "run_cap3",
        "merge",
        "extract_unjoined",
    ] {
        let s = out
            .stats
            .for_type(t)
            .unwrap_or_else(|| panic!("{t} missing"));
        assert!(s.count >= 1);
        assert!(s.kickstart_mean >= 0.0);
    }
    assert_eq!(out.stats.for_type("run_cap3").unwrap().count, 3);
    assert!(out.stats.workflow_wall_time > 0.0);
    std::fs::remove_dir_all(&out.workdir).ok();
}

/// Runs the real workflow with injected failures on first attempts;
/// the engine's retries must absorb them and the output must still be
/// correct.
#[test]
fn injected_failures_are_absorbed_by_retries() {
    let out = real_local_run(6, 3, 2, 44);
    assert!(out.run.succeeded());
    let transcripts = fasta::read_file(out.workdir.join(names::TRANSCRIPTS)).unwrap();
    let alignments = blastx::tabular::read_file(out.workdir.join(names::ALIGNMENTS)).unwrap();
    let reference_count = out.final_records.len();

    // Fresh workdir with the same inputs, flaky pool this time.
    let workdir = out.workdir.with_file_name("flaky_run");
    std::fs::remove_dir_all(&workdir).ok();
    std::fs::create_dir_all(&workdir).unwrap();
    fasta::write_file(workdir.join(names::TRANSCRIPTS), &transcripts).unwrap();
    blastx::tabular::write_file(workdir.join(names::ALIGNMENTS), &alignments).unwrap();

    let wf = build_workflow(&WorkflowParams {
        n_clusters: 3,
        transcripts_bytes: 0,
        alignments_bytes: 0,
        ..Default::default()
    });
    let (sites, tc) = paper_catalogs();
    let mut cfg = PlannerConfig::for_site("osg");
    cfg.stage_data = false;
    cfg.add_create_dir = false;
    let exec = plan(&wf, &sites, &tc, &ReplicaCatalog::new(), &cfg).unwrap();

    // Every task's first attempt is "preempted".
    let injector: FailureInjector =
        Arc::new(|_name: &str, attempt: u32| (attempt == 0).then(|| "preempted".to_string()));
    let mut pool = LocalPool::with_failure_injector(
        PoolConfig {
            workers: 2,
            workdir: workdir.clone(),
            ..Default::default()
        },
        build_registry(Cap3Params::default()),
        Some(injector),
    );
    let run = Engine::run(
        &mut pool,
        &exec,
        &EngineConfig::builder().retries(2).build(),
        &mut NoopMonitor,
    );
    assert!(run.succeeded(), "retries must absorb injected preemptions");
    assert_eq!(run.total_retries() as usize, exec.jobs.len());

    let final_records = fasta::read_file(workdir.join(names::FINAL)).unwrap();
    assert_eq!(final_records.len(), reference_count);
    std::fs::remove_dir_all(&workdir).ok();
    std::fs::remove_dir_all(&out.workdir).ok();
}

/// A permanently failing task produces a rescue DAG; resubmitting over
/// the same work directory with the rescue skips the completed tasks
/// and finishes the workflow.
#[test]
fn rescue_resume_over_shared_workdir() {
    let out = real_local_run(6, 3, 2, 45);
    assert!(out.run.succeeded());
    let transcripts = fasta::read_file(out.workdir.join(names::TRANSCRIPTS)).unwrap();
    let alignments = blastx::tabular::read_file(out.workdir.join(names::ALIGNMENTS)).unwrap();
    let reference_count = out.final_records.len();

    let workdir = out.workdir.with_file_name("rescue_run");
    std::fs::remove_dir_all(&workdir).ok();
    std::fs::create_dir_all(&workdir).unwrap();
    fasta::write_file(workdir.join(names::TRANSCRIPTS), &transcripts).unwrap();
    blastx::tabular::write_file(workdir.join(names::ALIGNMENTS), &alignments).unwrap();

    let wf = build_workflow(&WorkflowParams {
        n_clusters: 3,
        transcripts_bytes: 0,
        alignments_bytes: 0,
        ..Default::default()
    });
    let (sites, tc) = paper_catalogs();
    let mut cfg = PlannerConfig::for_site("sandhills");
    cfg.stage_data = false;
    cfg.add_create_dir = false;
    let exec = plan(&wf, &sites, &tc, &ReplicaCatalog::new(), &cfg).unwrap();

    // run_cap3_1 always fails in run 1.
    let injector: FailureInjector =
        Arc::new(|name: &str, _attempt: u32| (name == "run_cap3_1").then(|| "dead node".into()));
    let mut pool1 = LocalPool::with_failure_injector(
        PoolConfig {
            workers: 2,
            workdir: workdir.clone(),
            ..Default::default()
        },
        build_registry(Cap3Params::default()),
        Some(injector),
    );
    let run1 = Engine::run(
        &mut pool1,
        &exec,
        &EngineConfig::builder().retries(1).build(),
        &mut NoopMonitor,
    );
    let rescue = match run1.outcome {
        WorkflowOutcome::Failed(r) => r,
        WorkflowOutcome::Success => panic!("run 1 should fail"),
    };
    assert!(rescue.done.contains(&"split".to_string()));
    assert!(!rescue.done.contains(&"merge".to_string()));

    // Run 2: healthy pool, same workdir, resume from the rescue.
    let mut pool2 = LocalPool::new(
        PoolConfig {
            workers: 2,
            workdir: workdir.clone(),
            ..Default::default()
        },
        build_registry(Cap3Params::default()),
    );
    let run2 = Engine::run(
        &mut pool2,
        &exec,
        &EngineConfig::builder().retries(0).rescue(&rescue).build(),
        &mut NoopMonitor,
    );
    assert!(run2.succeeded(), "resume must complete: {:?}", run2.records);
    let skipped = run2
        .records
        .iter()
        .filter(|r| r.state == JobState::SkippedDone)
        .count();
    assert_eq!(skipped, rescue.done.len());

    let final_records = fasta::read_file(workdir.join(names::FINAL)).unwrap();
    assert_eq!(final_records.len(), reference_count);
    std::fs::remove_dir_all(&workdir).ok();
    std::fs::remove_dir_all(&out.workdir).ok();
}

//! DUST-style low-complexity masking.
//!
//! BLAST masks low-complexity query regions (poly-A tails, simple
//! repeats) before seeding, because such regions generate mountains of
//! spurious hits. This is the classic symmetric-DUST scheme: score a
//! window by its triplet-composition concentration and mask windows
//! whose score exceeds a threshold.
//!
//! The score of a window with triplet counts `c_t` is
//! `sum_t c_t * (c_t - 1) / 2` divided by `(L - 1)` where `L` is the
//! number of triplets in the window; a uniform-random window scores
//! ≈ 0.5, a homopolymer scores ≈ `(L - 1) / 2`.

use crate::alphabet::base_code;
use crate::seq::DnaSeq;

/// Default window length in bases (DUST uses 64).
pub const DEFAULT_WINDOW: usize = 64;

/// Default score threshold (DUST level 20 ≈ 2.0 in this scale).
pub const DEFAULT_THRESHOLD: f64 = 2.0;

/// Triplet-concentration score of a base window; 0.0 for windows with
/// fewer than two triplets or with ambiguous bases only.
pub fn window_score(window: &[u8]) -> f64 {
    if window.len() < 4 {
        return 0.0;
    }
    let mut counts = [0u32; 64];
    let mut triplets = 0u32;
    for w in window.windows(3) {
        let (Some(a), Some(b), Some(c)) = (base_code(w[0]), base_code(w[1]), base_code(w[2]))
        else {
            continue;
        };
        counts[(a as usize) * 16 + (b as usize) * 4 + c as usize] += 1;
        triplets += 1;
    }
    if triplets < 2 {
        return 0.0;
    }
    let sum: u64 = counts
        .iter()
        .map(|&c| (c as u64) * (c as u64).saturating_sub(1) / 2)
        .sum();
    sum as f64 / (triplets - 1) as f64
}

/// Masked intervals `[start, end)` of `seq` under the given window and
/// threshold; overlapping windows are merged.
pub fn dust_intervals(seq: &[u8], window: usize, threshold: f64) -> Vec<(usize, usize)> {
    let window = window.max(8);
    let mut out: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < seq.len() {
        let end = (i + window).min(seq.len());
        if window_score(&seq[i..end]) > threshold {
            match out.last_mut() {
                Some(last) if last.1 >= i => last.1 = end,
                _ => out.push((i, end)),
            }
        }
        // Half-window stride balances sensitivity and cost.
        i += window / 2;
    }
    out
}

/// Returns a copy of `seq` with low-complexity regions replaced by `N`.
///
/// ```
/// use bioseq::dust::{dust_mask, DEFAULT_THRESHOLD, DEFAULT_WINDOW};
/// use bioseq::seq::DnaSeq;
///
/// let poly_a = DnaSeq::from_ascii(&b"A".repeat(100)).unwrap();
/// let masked = dust_mask(&poly_a, DEFAULT_WINDOW, DEFAULT_THRESHOLD);
/// assert!(masked.as_bytes().iter().all(|&b| b == b'N'));
/// ```
pub fn dust_mask(seq: &DnaSeq, window: usize, threshold: f64) -> DnaSeq {
    let mut bytes = seq.as_bytes().to_vec();
    for (s, e) in dust_intervals(seq.as_bytes(), window, threshold) {
        bytes[s..e].fill(b'N');
    }
    DnaSeq::from_ascii_unchecked(bytes)
}

/// Fraction of bases masked by [`dust_mask`] under default settings.
pub fn masked_fraction(seq: &DnaSeq) -> f64 {
    if seq.is_empty() {
        return 0.0;
    }
    let masked: usize = dust_intervals(seq.as_bytes(), DEFAULT_WINDOW, DEFAULT_THRESHOLD)
        .iter()
        .map(|(s, e)| e - s)
        .sum();
    masked as f64 / seq.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dna(seed: u64, len: usize) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(seed);
        DnaSeq::from_ascii_unchecked(
            (0..len)
                .map(|_| crate::alphabet::DNA_BASES[rng.gen_range(0..4)])
                .collect(),
        )
    }

    #[test]
    fn homopolymer_scores_high_random_scores_low() {
        let poly_a = vec![b'A'; 64];
        assert!(window_score(&poly_a) > 20.0);
        let random = random_dna(1, 64);
        assert!(window_score(random.as_bytes()) < 1.5);
        // Dinucleotide repeat is also low complexity.
        let at: Vec<u8> = b"AT".repeat(32);
        assert!(window_score(&at) > 10.0);
    }

    #[test]
    fn short_and_ambiguous_windows_score_zero() {
        assert_eq!(window_score(b"ACG"), 0.0);
        assert_eq!(window_score(&[b'N'; 64]), 0.0);
    }

    #[test]
    fn poly_a_tail_is_masked_random_body_is_not() {
        let mut bytes = random_dna(2, 200).into_bytes();
        bytes.extend_from_slice(&[b'A'; 80]);
        let seq = DnaSeq::from_ascii_unchecked(bytes);
        let masked = dust_mask(&seq, DEFAULT_WINDOW, DEFAULT_THRESHOLD);
        // The tail is now N.
        let tail = &masked.as_bytes()[220..];
        assert!(tail.iter().all(|&b| b == b'N'), "tail must be masked");
        // The head is untouched.
        assert_eq!(&masked.as_bytes()[..160], &seq.as_bytes()[..160]);
    }

    #[test]
    fn fully_random_sequence_is_untouched() {
        let seq = random_dna(3, 500);
        let masked = dust_mask(&seq, DEFAULT_WINDOW, DEFAULT_THRESHOLD);
        assert_eq!(masked, seq);
        assert_eq!(masked_fraction(&seq), 0.0);
    }

    #[test]
    fn fully_repetitive_sequence_is_fully_masked() {
        let seq = DnaSeq::from_ascii_unchecked(b"CA".repeat(100));
        assert!(masked_fraction(&seq) > 0.99);
    }

    #[test]
    fn intervals_merge_overlaps() {
        let seq: Vec<u8> = [b"ACGT".repeat(10), b"A".repeat(200).to_vec()].concat();
        let iv = dust_intervals(&seq, 64, 2.0);
        assert_eq!(iv.len(), 1, "contiguous masked windows must merge: {iv:?}");
    }

    #[test]
    fn empty_sequence() {
        assert_eq!(masked_fraction(&DnaSeq::default()), 0.0);
        assert!(dust_intervals(b"", 64, 2.0).is_empty());
    }
}

//! Property-based tests for the assembler: fragments tiled from a
//! random template must reassemble to the template, regardless of
//! fragment layout, orientation flips, or input order.

use bioseq::fasta::Record;
use bioseq::seq::DnaSeq;
use cap3::{Assembler, Cap3Params};
use proptest::prelude::*;

fn template(len: usize, seed: u64) -> Vec<u8> {
    // Deterministic pseudo-random template from the seed, avoiding
    // low-complexity repeats that defeat overlap detection.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            bioseq::alphabet::DNA_BASES[(state % 4) as usize]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tiled_fragments_reassemble(
        seed in 0u64..1_000_000,
        n_frags in 2usize..6,
        overlap in 45usize..90,
        flip_mask in 0u8..64,
    ) {
        let tlen = 600usize;
        let t = template(tlen, seed);
        let frag_len = (tlen + (n_frags - 1) * overlap) / n_frags + 1;
        let step = frag_len - overlap;
        let mut frags = Vec::new();
        for i in 0..n_frags {
            let start = (i * step).min(tlen - frag_len);
            let bytes = &t[start..start + frag_len];
            let seq = DnaSeq::from_ascii(bytes).unwrap();
            let seq = if flip_mask & (1 << i) != 0 {
                seq.reverse_complement()
            } else {
                seq
            };
            frags.push(Record::new(format!("f{i}"), "", seq));
        }
        let asm = Assembler::new(Cap3Params::default()).assemble(&frags);
        prop_assert_eq!(asm.contigs.len(), 1, "fragments must merge");
        prop_assert!(asm.singlets.is_empty());
        let c = &asm.contigs[0].seq;
        let fwd = c.as_bytes() == &t[..];
        let rev = c.reverse_complement().as_bytes() == &t[..];
        prop_assert!(fwd || rev, "consensus must equal the template");
    }

    #[test]
    fn input_order_does_not_change_output_count(
        seed in 0u64..1_000_000,
        rotate in 0usize..4,
    ) {
        let t = template(500, seed);
        let mut frags = vec![
            Record::new("a", "", DnaSeq::from_ascii(&t[..220]).unwrap()),
            Record::new("b", "", DnaSeq::from_ascii(&t[150..370]).unwrap()),
            Record::new("c", "", DnaSeq::from_ascii(&t[300..]).unwrap()),
            Record::new("d", "", DnaSeq::from_ascii(&template(200, seed ^ 0xDEAD)).unwrap()),
        ];
        let len = frags.len();
        frags.rotate_left(rotate % len);
        let asm = Assembler::new(Cap3Params::default()).assemble(&frags);
        prop_assert_eq!(asm.contigs.len(), 1);
        prop_assert_eq!(asm.singlets.len(), 1, "the unrelated read stays a singlet");
    }

    #[test]
    fn unrelated_reads_never_merge(seed_a in 0u64..100_000, seed_b in 100_001u64..200_000) {
        let a = Record::new("a", "", DnaSeq::from_ascii(&template(300, seed_a)).unwrap());
        let b = Record::new("b", "", DnaSeq::from_ascii(&template(300, seed_b)).unwrap());
        let asm = Assembler::new(Cap3Params::default()).assemble(&[a, b]);
        prop_assert!(asm.contigs.is_empty());
        prop_assert_eq!(asm.singlets.len(), 2);
    }

    #[test]
    fn output_never_grows(seed in 0u64..1_000_000, n in 1usize..8) {
        let t = template(800, seed);
        let frags: Vec<Record> = (0..n)
            .map(|i| {
                let start = (i * 90).min(600);
                Record::new(
                    format!("f{i}"),
                    "",
                    DnaSeq::from_ascii(&t[start..start + 200]).unwrap(),
                )
            })
            .collect();
        let asm = Assembler::new(Cap3Params::default()).assemble(&frags);
        prop_assert!(asm.output_count() <= frags.len());
        prop_assert!(asm.output_count() >= 1);
    }
}

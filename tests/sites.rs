//! Custom-site integration: the whole point of the declarative site
//! registry is that `pegasus run --sites my_sites.def --site my-cluster`
//! works with ZERO code changes. These tests exercise that promise as
//! real processes against the committed `tests/fixtures/sites/` files:
//!
//! * plan → run against a third site the paper never measured, by
//!   primary name and by alias;
//! * a breakdown sweep over the custom site matching a committed
//!   golden CSV byte-for-byte (seed-determinism extends to custom
//!   sites, not just the built-ins);
//! * an unknown `--site` is a clean CLI error listing the registered
//!   names, not a panic or a silent fall-through.

use std::path::PathBuf;
use std::process::Command;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("b2c3_sites_tests")
        .join(format!("{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn pegasus() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pegasus"))
}

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/sites/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn custom_third_site_runs_end_to_end_by_name_and_alias() {
    let dir = tmpdir("third_run");
    let dax = dir.join("wf.dax");
    let out = pegasus()
        .args(["generate-dax", "--n", "8", "--out", dax.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    for site in ["tundra", "third", "arctic-cluster"] {
        let out = pegasus()
            .args(["run", "--dax", dax.to_str().unwrap()])
            .args(["--sites", &fixture("third_site.def")])
            .args(["--site", site, "--quiet"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "--site {site}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("@ tundra"),
            "the report names the primary site, whatever alias was given: {stdout}"
        );
    }
}

#[test]
fn custom_site_breakdown_matches_the_committed_golden() {
    let dir = tmpdir("third_breakdown");
    let csv = dir.join("breakdown.csv");
    let out = pegasus()
        .args(["breakdown", "--sites", &fixture("third_site.def")])
        .args(["--site", "tundra", "--sizes", "8,40", "--quiet"])
        .args(["--out", csv.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got = std::fs::read_to_string(&csv).unwrap();
    let golden = std::fs::read_to_string(fixture("third_site_breakdown.csv")).unwrap();
    assert_eq!(
        got, golden,
        "regenerate with: pegasus breakdown --sites tests/fixtures/sites/third_site.def \
         --site tundra --sizes 8,40 --quiet --out tests/fixtures/sites/third_site_breakdown.csv"
    );
}

#[test]
fn unknown_site_is_a_clean_cli_error_listing_the_registered_names() {
    let dir = tmpdir("unknown_site");
    let dax = dir.join("wf.dax");
    let out = pegasus()
        .args(["generate-dax", "--n", "8", "--out", dax.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Against the built-in registry.
    let out = pegasus()
        .args(["run", "--dax", dax.to_str().unwrap(), "--site", "mars"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "usage error, not a panic");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("known sites: osg, osg_churning, osg_prestaged, sandhills"),
        "{stderr}"
    );

    // Against a custom registry the suggestion lists ITS sites.
    let out = pegasus()
        .args(["breakdown", "--sites", &fixture("third_site.def")])
        .args(["--site", "sandhills", "--sizes", "8", "--quiet"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "--sites REPLACES the built-ins; sandhills is gone"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("known sites: tundra"), "{stderr}");
}

#[test]
fn sites_file_that_fails_to_parse_points_at_the_lint() {
    let out = pegasus()
        .args(["breakdown", "--sizes", "8", "--quiet"])
        .args([
            "--sites",
            &format!(
                "{}/tests/fixtures/lint/e0507_syntax.def",
                env!("CARGO_MANIFEST_DIR")
            ),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot load site definitions"), "{stderr}");
    assert!(stderr.contains("pegasus lint"), "{stderr}");
}

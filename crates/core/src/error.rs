//! Error type for workflow construction, planning, and parsing.

use std::fmt;

/// Errors raised across the WMS stack.
#[derive(Debug, Clone, PartialEq)]
pub enum WmsError {
    /// A job id was declared twice.
    DuplicateJob(String),
    /// An explicit dependency references an unknown job.
    UnknownJob(String),
    /// The dependency graph contains a cycle through this job.
    CycleDetected(String),
    /// Two different jobs declare the same output file.
    ConflictingProducer {
        /// The logical file with two producers.
        file: String,
        /// The first producer.
        first: String,
        /// The conflicting second producer.
        second: String,
    },
    /// The planner could not find a site in the site catalog.
    UnknownSite(String),
    /// The planner could not resolve a transformation at the target
    /// site or as a stageable/installable executable.
    UnresolvableTransformation {
        /// The transformation name.
        transformation: String,
        /// The target site.
        site: String,
    },
    /// DAX parsing failed.
    DaxParse {
        /// One-based line number (0 when unknown).
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A rescue file was malformed.
    RescueParse(String),
    /// A fault-plan file was malformed.
    FaultPlanParse {
        /// One-based line number (0 when unknown).
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// An event-log file was malformed.
    EventLogParse {
        /// One-based line number (0 when unknown).
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for WmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WmsError::DuplicateJob(id) => write!(f, "duplicate job id {id:?}"),
            WmsError::UnknownJob(id) => write!(f, "dependency references unknown job {id:?}"),
            WmsError::CycleDetected(id) => {
                write!(f, "workflow is not a DAG: cycle through job {id:?}")
            }
            WmsError::ConflictingProducer {
                file,
                first,
                second,
            } => write!(
                f,
                "logical file {file:?} produced by both {first:?} and {second:?}"
            ),
            WmsError::UnknownSite(s) => write!(f, "site {s:?} not in site catalog"),
            WmsError::UnresolvableTransformation {
                transformation,
                site,
            } => write!(
                f,
                "transformation {transformation:?} unavailable at site {site:?} and not installable"
            ),
            WmsError::DaxParse { line, reason } => {
                write!(f, "DAX parse error at line {line}: {reason}")
            }
            WmsError::RescueParse(reason) => write!(f, "rescue DAG parse error: {reason}"),
            WmsError::FaultPlanParse { line, reason } => {
                write!(f, "fault plan parse error at line {line}: {reason}")
            }
            WmsError::EventLogParse { line, reason } => {
                write!(f, "event log parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for WmsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        assert!(WmsError::DuplicateJob("split".into())
            .to_string()
            .contains("split"));
        assert!(WmsError::UnknownSite("osg".into())
            .to_string()
            .contains("osg"));
        let e = WmsError::ConflictingProducer {
            file: "out.txt".into(),
            first: "a".into(),
            second: "b".into(),
        };
        let s = e.to_string();
        assert!(s.contains("out.txt") && s.contains('a') && s.contains('b'));
        assert!(WmsError::DaxParse {
            line: 12,
            reason: "bad tag".into()
        }
        .to_string()
        .contains("12"));
    }
}

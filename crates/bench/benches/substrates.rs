//! Micro-benchmarks of the substrate crates: the translated aligner,
//! the overlap assembler, FASTA parsing, k-mer iteration, DAX
//! round-trips, and raw engine throughput. These are the "is the
//! infrastructure itself fast enough to be credible" benches that a
//! real release of this stack would ship.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use bioseq::fasta;
use bioseq::kmer::KmerIter;
use bioseq::simulate::{generate, TranscriptomeConfig};
use blast2cap3::workflow::{build_workflow, WorkflowParams};
use blastx::search::{SearchParams, Searcher};
use cap3::{Assembler, Cap3Params};
use gridsim::{PlatformModel, SimBackend};
use pegasus_wms::dax;
use pegasus_wms::engine::{Engine, EngineConfig, NoopMonitor};
use pegasus_wms::planner::{ExecutableJob, ExecutableWorkflow, JobKind};

fn bench_substrates(c: &mut Criterion) {
    let data = generate(&TranscriptomeConfig {
        n_families: 40,
        ..TranscriptomeConfig::tiny(3)
    });

    // FASTA round-trip throughput.
    let fasta_text = fasta::to_string(&data.transcripts);
    let mut group = c.benchmark_group("substrates");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Bytes(fasta_text.len() as u64));
    group.bench_function("fasta_parse", |b| {
        b.iter(|| fasta::parse_str(&fasta_text).unwrap().len())
    });

    // K-mer iteration over the whole transcript set.
    let total_bases: usize = data.transcripts.iter().map(|r| r.seq.len()).sum();
    group.throughput(Throughput::Bytes(total_bases as u64));
    group.bench_function("kmer_iteration_k16", |b| {
        b.iter(|| {
            data.transcripts
                .iter()
                .map(|r| KmerIter::new(r.seq.as_bytes(), 16).unwrap().count())
                .sum::<usize>()
        })
    });

    // Translated search of one transcript against the protein DB.
    let searcher = Searcher::new(data.proteins.clone(), SearchParams::default()).unwrap();
    let query = &data.transcripts[0];
    group.throughput(Throughput::Elements(1));
    group.bench_function("blastx_search_one", |b| {
        b.iter(|| searcher.search_one(&query.id, &query.seq).len())
    });

    // CAP3 assembly of one family-sized cluster.
    let family0: Vec<_> = data
        .transcripts
        .iter()
        .zip(&data.truth)
        .filter(|(_, &f)| f == 0)
        .map(|(r, _)| r.clone())
        .collect();
    group.bench_function("cap3_assemble_cluster", |b| {
        let asm = Assembler::new(Cap3Params::default());
        b.iter(|| asm.assemble(&family0).output_count())
    });

    // DAX write + parse of the n=300 Fig. 2 workflow.
    let wf = build_workflow(&WorkflowParams::with_n(300));
    group.bench_function("dax_roundtrip_n300", |b| {
        b.iter(|| {
            let text = dax::to_dax(&wf);
            dax::from_dax(&text).unwrap().jobs.len()
        })
    });

    group.finish();

    // Engine throughput: how many zero-cost jobs per second the
    // DAGMan engine + simulator push through.
    let mut group = c.benchmark_group("engine_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for n_jobs in [100usize, 1000] {
        let exec = ExecutableWorkflow {
            name: "flat".into(),
            site: "sim".into(),
            jobs: (0..n_jobs)
                .map(|i| ExecutableJob {
                    id: pegasus_wms::workflow::JobId::new(i),
                    name: format!("j{i}"),
                    transformation: "noop".into(),
                    kind: JobKind::Compute,
                    args: vec![],
                    runtime_hint: 1.0,
                    install_hint: 0.0,
                    source_jobs: vec![],
                })
                .collect(),
            edges: vec![],
        };
        group.throughput(Throughput::Elements(n_jobs as u64));
        group.bench_with_input(BenchmarkId::new("flat_jobs", n_jobs), &exec, |b, exec| {
            b.iter(|| {
                let platform = PlatformModel::uniform("u", 32, 1.0);
                let mut backend = SimBackend::new(platform, 1);
                let run = Engine::run(
                    &mut backend,
                    exec,
                    &EngineConfig::default(),
                    &mut NoopMonitor,
                );
                assert!(run.succeeded());
                run.wall_time
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);

//! Property-based tests for blast2cap3's invariants:
//!
//! * clustering is a partition of the aligned transcripts;
//! * splitting never divides a cluster and conserves transcripts;
//! * serial and parallel drivers agree for every chunking;
//! * no transcript is ever lost: every input id is accounted for in
//!   the final output (merged into a contig or passed through).

use bioseq::fasta::Record;
use bioseq::seq::DnaSeq;
use blast2cap3::cluster::cluster_by_best_hit;
use blast2cap3::parallel::run_parallel;
use blast2cap3::serial::run_serial;
use blast2cap3::split::split_clusters;
use blastx::tabular::TabularRecord;
use cap3::Cap3Params;
use proptest::prelude::*;
use std::collections::{BTreeSet, HashSet};

fn aln(q: &str, s: &str, bits: f64) -> TabularRecord {
    TabularRecord {
        query_id: q.into(),
        subject_id: s.into(),
        percent_identity: 95.0,
        length: 100,
        mismatches: 5,
        gap_opens: 0,
        q_start: 1,
        q_end: 300,
        s_start: 1,
        s_end: 100,
        evalue: 1e-30,
        bit_score: bits,
    }
}

fn template(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(7);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            bioseq::alphabet::DNA_BASES[(state % 4) as usize]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn clustering_is_a_partition(
        assignments in proptest::collection::vec((0usize..12, 0usize..5, 1u32..200), 1..60)
    ) {
        let alignments: Vec<TabularRecord> = assignments
            .iter()
            .map(|&(t, p, bits)| aln(&format!("t{t}"), &format!("p{p}"), bits as f64))
            .collect();
        let clusters = cluster_by_best_hit(&alignments);
        let mut seen: HashSet<&str> = HashSet::new();
        for (_, members) in &clusters.groups {
            for m in members {
                prop_assert!(seen.insert(m), "transcript {m} in two clusters");
            }
        }
        let distinct: HashSet<&str> =
            alignments.iter().map(|a| a.query_id.as_str()).collect();
        prop_assert_eq!(seen.len(), distinct.len());
    }

    #[test]
    fn split_conserves_clusters(
        sizes in proptest::collection::vec(1usize..20, 1..40),
        n in 1usize..20,
    ) {
        let clusters = blast2cap3::cluster::Clusters {
            groups: sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    (format!("p{i:03}"), (0..s).map(|j| format!("t{i}_{j}")).collect())
                })
                .collect(),
        };
        let chunks = split_clusters(&clusters, n);
        prop_assert!(chunks.len() <= n);
        prop_assert!(chunks.iter().all(|c| !c.clusters.is_empty()));
        let total: usize = chunks.iter().map(|c| c.total_transcripts()).sum();
        prop_assert_eq!(total, clusters.total_transcripts());
        // Each protein appears in exactly one chunk.
        let mut proteins = Vec::new();
        for c in &chunks {
            for (p, _) in &c.clusters {
                proteins.push(p.clone());
            }
        }
        proteins.sort();
        let mut expected: Vec<String> =
            clusters.groups.iter().map(|(p, _)| p.clone()).collect();
        expected.sort();
        prop_assert_eq!(proteins, expected);
    }

    #[test]
    fn no_transcript_is_ever_lost(
        n_families in 1usize..5,
        n_orphans in 0usize..4,
        n_chunks in 1usize..8,
        seed in 0u64..100_000,
    ) {
        let mut transcripts: Vec<Record> = Vec::new();
        let mut alignments: Vec<TabularRecord> = Vec::new();
        for f in 0..n_families {
            let t = template(400, seed.wrapping_add(f as u64));
            for (k, range) in [(0usize, 0..250), (1, 150..400)] {
                let id = format!("f{f}_t{k}");
                transcripts.push(Record::new(
                    &id, "", DnaSeq::from_ascii(&t[range]).unwrap(),
                ));
                alignments.push(aln(&id, &format!("p{f}"), 150.0));
            }
        }
        for o in 0..n_orphans {
            transcripts.push(Record::new(
                format!("orphan{o}"),
                "",
                DnaSeq::from_ascii(&template(150, seed ^ (o as u64 + 999))).unwrap(),
            ));
        }
        let report = run_parallel(&transcripts, &alignments, &Cap3Params::default(), n_chunks, 2);
        // Every input id is either in the output or recorded as joined.
        let output_ids: HashSet<&str> =
            report.output.iter().map(|r| r.id.as_str()).collect();
        let mut joined = 0usize;
        for rec in &transcripts {
            let in_output = output_ids.contains(rec.id.as_str());
            if !in_output {
                joined += 1;
            }
        }
        prop_assert_eq!(joined, report.joined);
        // Orphans always pass through.
        for o in 0..n_orphans {
            let id = format!("orphan{o}");
            prop_assert!(output_ids.contains(id.as_str()), "missing {}", id);
        }
    }

    #[test]
    fn serial_and_parallel_agree_for_any_chunking(
        n_chunks in 1usize..10,
        threads in 1usize..4,
        seed in 0u64..50_000,
    ) {
        let mut transcripts = Vec::new();
        let mut alignments = Vec::new();
        for f in 0..4usize {
            let t = template(400, seed.wrapping_add(f as u64 * 31));
            for (k, range) in [(0usize, 0..250), (1, 150..400)] {
                let id = format!("f{f}_t{k}");
                transcripts.push(Record::new(&id, "", DnaSeq::from_ascii(&t[range]).unwrap()));
                alignments.push(aln(&id, &format!("p{f}"), 100.0));
            }
        }
        let serial = run_serial(&transcripts, &alignments, &Cap3Params::default());
        let par = run_parallel(&transcripts, &alignments, &Cap3Params::default(), n_chunks, threads);
        prop_assert_eq!(serial.output.len(), par.output.len());
        prop_assert_eq!(serial.joined, par.joined);
        let seqs = |rs: &[Record]| -> BTreeSet<Vec<u8>> {
            rs.iter().map(|r| r.seq.as_bytes().to_vec()).collect()
        };
        prop_assert_eq!(seqs(&serial.output), seqs(&par.output));
    }
}

//! Bridges gridsim's seeded [`FaultScript`] to the real
//! [`condor::pool::LocalPool`].
//!
//! The same chaos script drives both backends: the simulator consumes
//! it natively (see `gridsim::SimBackend::with_faults`), while the
//! local pool consults the [`condor::pool::FaultInjector`] built here.
//! Fault-plan times are written in *virtual* (simulated) seconds; the
//! pool runs at laptop scale, so the adapter converts through the same
//! `time_scale` used for the pool's synthetic sleeps. Because every
//! per-attempt decision is a pure function of `(seed, job, attempt)`,
//! the kill/slowdown verdicts — and therefore the retry counts and
//! failure reasons — replay identically on either backend. On the
//! simulator, where timestamps are deterministic too, this extends to
//! the engine's typed provenance stream: the same seed and plan write
//! a byte-identical `pegasus_wms::events` log (see
//! `tests/events_replay.rs`).

use condor::pool::{FaultInjector, FaultProbe, InjectedFault};
use gridsim::{AttemptTiming, FaultScript};
use std::sync::Arc;

/// Builds a pool fault injector from a compiled chaos script.
///
/// `time_scale` is real seconds per virtual second, normally the
/// pool's `synthetic_time_scale` (and `install_time_scale`). The probe
/// timings the pool reports in real seconds are mapped back to virtual
/// seconds before consulting the script, and the eviction offset is
/// mapped forward again.
pub fn fault_injector_for(script: FaultScript, time_scale: f64) -> FaultInjector {
    let scale = if time_scale > 0.0 { time_scale } else { 1.0 };
    Arc::new(move |probe: &FaultProbe| {
        let timing = AttemptTiming {
            start: probe.started / scale,
            install_duration: probe.install_duration / scale,
            exec_duration: probe.exec_duration / scale,
        };
        let decision = script.decide(&probe.job, probe.attempt, &timing);
        let mut faults = Vec::new();
        if decision.slowdown != 1.0 {
            faults.push(InjectedFault::Slowdown(decision.slowdown));
        }
        if let Some((at, reason)) = decision.kill {
            faults.push(InjectedFault::Evict {
                after: (at - timing.start).max(0.0) * scale,
                reason,
            });
        }
        faults
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim::FaultPlan;

    #[test]
    fn injector_maps_virtual_times_through_the_scale() {
        // Storm over virtual [0, 1000) with certain kills; at scale
        // 0.01 a probe 1 real second in is 100 virtual seconds in —
        // inside the window — and the eviction offset comes back in
        // real seconds.
        let plan =
            FaultPlan::parse("preemption-storm start=0 duration=1000 kill-probability=1.0\n")
                .unwrap();
        let script = FaultScript::new(plan, 4);
        let injector = fault_injector_for(script.clone(), 0.01);
        let probe = FaultProbe {
            job: "victim".into(),
            attempt: 0,
            started: 1.0,
            install_duration: 0.0,
            exec_duration: 2.0, // 200 virtual seconds
        };
        let faults = injector(&probe);
        assert_eq!(faults.len(), 1);
        match &faults[0] {
            InjectedFault::Evict { after, reason } => {
                assert_eq!(reason, "preempted:storm");
                assert!(
                    (0.0..=2.0).contains(after),
                    "real-second offset expected, got {after}"
                );
                // The same query in virtual units matches the script's
                // own verdict.
                let timing = AttemptTiming {
                    start: 100.0,
                    install_duration: 0.0,
                    exec_duration: 200.0,
                };
                let direct = script.decide("victim", 0, &timing).kill.unwrap();
                assert!((direct.0 - (100.0 + after / 0.01)).abs() < 1e-6);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn clean_attempts_inject_nothing() {
        let plan =
            FaultPlan::parse("preemption-storm start=5000 duration=10 kill-probability=1.0\n")
                .unwrap();
        let injector = fault_injector_for(FaultScript::new(plan, 4), 0.01);
        let probe = FaultProbe {
            job: "safe".into(),
            attempt: 0,
            started: 0.0,
            install_duration: 0.0,
            exec_duration: 1.0,
        };
        assert!(injector(&probe).is_empty());
    }

    #[test]
    fn straggler_decisions_become_slowdowns() {
        let plan = FaultPlan::parse("straggler start=0 duration=1e9 slowdown=5 probability=1.0\n")
            .unwrap();
        let injector = fault_injector_for(FaultScript::new(plan, 4), 0.01);
        let probe = FaultProbe {
            job: "slowpoke".into(),
            attempt: 0,
            started: 0.0,
            install_duration: 0.0,
            exec_duration: 1.0,
        };
        let faults = injector(&probe);
        assert!(matches!(faults.as_slice(), [InjectedFault::Slowdown(s)] if *s == 5.0));
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! pegasus-wms: a workflow management system in the style of Pegasus.
//!
//! Pegasus ("Planning for Execution in Grids") maps *abstract*
//! scientific workflows — DAGs of logical tasks and files — onto
//! concrete execution platforms, submits them through Condor DAGMan,
//! retries failures, writes rescue DAGs, and reports statistics. This
//! crate rebuilds that stack for the blast2cap3 reproduction:
//!
//! * [`workflow`] — the abstract workflow model: jobs, logical files,
//!   dataflow- and explicitly-declared dependencies, DAG validation
//!   and topological analysis;
//! * [`symbols`] — interned [`JobId`]/[`FileId`] identifiers and the
//!   [`SymbolTable`] that resolves them back to names at render/log
//!   boundaries;
//! * [`graph`] — compressed sparse row (CSR) adjacency shared by the
//!   workflow, planner, and engine traversals;
//! * [`dax`] — the DAX (directed acyclic graph in XML) writer and
//!   parser, the interchange format of the paper's Fig. 2/3 DAGs;
//! * [`catalog`] — site, transformation, and replica catalogs, the
//!   information the planner consults;
//! * [`planner`] — abstract → executable planning: per-site software
//!   checks that inject download/install phases (the red rectangles of
//!   Fig. 3), stage-in/stage-out jobs, optional horizontal task
//!   clustering;
//! * [`engine`] — a DAGMan-style scheduler generic over an
//!   [`engine::ExecutionBackend`]: ready-set submission, per-job retry
//!   policy, rescue-DAG generation on unrecoverable failure;
//! * [`events`] — the provenance core: the typed, append-only
//!   [`events::WorkflowEvent`] stream the engine emits at every state
//!   transition, its line-oriented log format, and [`events::replay`]
//!   which folds a log back into a [`WorkflowRun`] for offline
//!   statistics, analysis, and rescue;
//! * [`metrics`] — a dependency-free registry of labelled counters,
//!   gauges, and fixed-bucket histograms rendered in the Prometheus
//!   text exposition format, populated live by a
//!   [`metrics::MetricsMonitor`] or offline from an event stream;
//! * [`breakdown`] — the per-task phase profiler: folds any event
//!   stream into `queue-wait → install → kickstart → post-overhead →
//!   retry-badput` spans and per-site/per-n breakdown tables (the
//!   paper's Fig. 7–8 decomposition);
//! * [`trace`] — end-to-end span tracing: folds any event stream
//!   into a workflow → job → attempt → phase span tree keyed by a
//!   [`TraceId`], exported as a Chrome Trace Event JSON
//!   (Perfetto-loadable) or a plain-text tree;
//! * [`prof`] — engine self-profiling: flag-gated wall-clock scopes
//!   over the engine's own hot path (parse, plan, simulate, serve
//!   rounds), exported as `pegasus_engine_phase_seconds` histograms;
//! * [`lint`] — a compiler-style static analyzer: typed diagnostics
//!   with codes, severities, and file/line/col spans over workflows,
//!   fault plans, run configurations, and provenance event streams
//!   (the `pegasus lint` front-end);
//! * [`verify`] — the two-layer semantic verifier behind `pegasus
//!   verify`: an LTL-lite temporal invariant catalog (`E08xx`) over
//!   complete event streams, and whole-plan dataflow / ensemble
//!   feasibility checks (`E06xx`) over planned DAGs, plus the
//!   flag-gated [`verify::ShadowVerifier`] that asserts the catalog
//!   on live engine runs;
//! * [`statistics`] — pegasus-statistics equivalents: Workflow Wall
//!   Time, per-task Kickstart / Waiting / Download-Install breakdowns;
//! * [`rescue`] — rescue DAGs: the re-submittable remainder of a
//!   partially failed run;
//! * [`serve`] — the `pegasus serve` wire protocol, journal, and
//!   status rendering: the transport-agnostic half of the
//!   multi-tenant ensemble daemon (the daemon itself lives in the
//!   umbrella crate).
//!
//! Execution backends live in separate crates: `condor` runs jobs for
//! real on a local worker pool; `gridsim` simulates campus-cluster and
//! opportunistic-grid platforms.

pub mod analyzer;
pub mod breakdown;
pub mod catalog;
pub mod catalog_io;
pub mod csv;
pub mod dax;
pub mod engine;
pub mod ensemble;
pub mod error;
pub mod events;
pub mod graph;
pub mod lint;
pub mod metrics;
pub mod monitor;
pub mod planner;
pub mod prelude;
pub mod prof;
pub mod rescue;
pub mod serve;
pub mod statistics;
pub mod symbols;
pub mod synthetic;
pub mod trace;
pub mod verify;
pub mod workflow;

pub use catalog::{ReplicaCatalog, SiteCatalog, TransformationCatalog};
pub use engine::{
    CompletionEvent, Engine, EngineConfig, ExecutionBackend, FaultCounters, FaultReason,
    RetryPolicy, WorkflowRun,
};
pub use ensemble::{Ensemble, EnsembleConfig, EnsembleRun, Submission, SubmissionId};
pub use error::{Span, WmsError};
pub use events::{EventSink, MonitorSink, WorkflowEvent};
pub use graph::Csr;
pub use lint::{Diagnostic, Severity};
pub use planner::{plan, ExecutableJob, ExecutableWorkflow, JobKind, PlannerConfig};
pub use symbols::{FileId, JobId, SiteId, SymbolTable};
pub use trace::TraceId;
pub use workflow::{AbstractWorkflow, Job, LogicalFile};

//! Interned identifiers: typed `u32` newtypes plus the side table
//! that maps them back to names.
//!
//! The hot path of a workflow run — planning, scheduling, retrying,
//! event emission — touches every job and file many times. Carrying
//! owned `String` keys through those layers means a clone and a hash
//! of the full name per touch; at the million-task scale the ROADMAP
//! targets, that is the dominant cost. Instead, names are interned
//! once at a boundary (DAX parse, plan start) into a [`SymbolTable`],
//! and everything downstream moves 4-byte [`JobId`]/[`FileId`] values
//! that index dense `Vec`s. Names are resolved back out only at the
//! opposite boundary: rendering a report, writing a log line, or
//! matching a user-supplied pattern.
//!
//! The ids are deliberately *dense* (0..n in declaration order), so
//! they double as vector indices — `records[job.idx()]` — and the
//! symbol table is append-only, so a resolved `&str` stays valid for
//! the table's lifetime.

use std::collections::HashMap;
use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;

/// Identifier of one job: a dense index into the owning workflow's
/// job vector.
///
/// `JobId` is `Display`ed as its bare decimal index, so text formats
/// (the event log, rescue DAGs) are byte-identical to the era when
/// job ids were plain `usize`s.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct JobId(u32);

/// Identifier of one logical file, interned per plan or parse.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct FileId(u32);

/// Identifier of one execution site, interned into a site registry.
///
/// Sites are few (the paper's two, plus user-defined platforms), so a
/// `u16` is ample; the narrower width keeps structures that embed a
/// site id alongside other small fields compact. Like [`JobId`],
/// `SiteId` is `Display`ed as its bare decimal index — names appear
/// only at render boundaries.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SiteId(u16);

impl SiteId {
    /// Wraps a dense index.
    ///
    /// # Panics
    /// Panics (debug) if `index` does not fit in `u16` — 65 thousand
    /// sites is beyond any registry this system loads.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index <= u16::MAX as usize, "site index overflows u16");
        SiteId(index as u16)
    }

    /// The dense index, for direct `Vec` indexing.
    #[inline]
    pub const fn idx(self) -> usize {
        self.0 as usize
    }

    /// The raw `u16` value.
    #[inline]
    pub const fn as_u16(self) -> u16 {
        self.0
    }
}

impl From<usize> for SiteId {
    #[inline]
    fn from(index: usize) -> Self {
        SiteId::new(index)
    }
}

impl From<SiteId> for usize {
    #[inline]
    fn from(id: SiteId) -> usize {
        id.idx()
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl std::str::FromStr for SiteId {
    type Err = std::num::ParseIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.parse::<u16>().map(SiteId)
    }
}

impl Symbol for SiteId {
    #[inline]
    fn from_raw(raw: u32) -> Self {
        debug_assert!(raw <= u16::MAX as u32, "site index overflows u16");
        SiteId(raw as u16)
    }
    #[inline]
    fn into_raw(self) -> u32 {
        self.0 as u32
    }
}

macro_rules! impl_symbol_id {
    ($name:ident) => {
        impl $name {
            /// Wraps a dense index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32` — 4 billion
            /// jobs is beyond any workflow this system plans.
            #[inline]
            pub fn new(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize, "symbol index overflows u32");
                $name(index as u32)
            }

            /// The dense index, for direct `Vec` indexing.
            #[inline]
            pub const fn idx(self) -> usize {
                self.0 as usize
            }

            /// The raw `u32` value.
            #[inline]
            pub const fn as_u32(self) -> u32 {
                self.0
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(index: usize) -> Self {
                $name::new(index)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.idx()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.0, f)
            }
        }

        impl std::str::FromStr for $name {
            type Err = std::num::ParseIntError;
            fn from_str(s: &str) -> Result<Self, Self::Err> {
                s.parse::<u32>().map($name)
            }
        }

        impl Symbol for $name {
            #[inline]
            fn from_raw(raw: u32) -> Self {
                $name(raw)
            }
            #[inline]
            fn into_raw(self) -> u32 {
                self.0
            }
        }
    };
}

impl_symbol_id!(JobId);
impl_symbol_id!(FileId);

/// A typed interned id: conversion to and from the raw `u32` the
/// [`SymbolTable`] hands out.
pub trait Symbol: Copy {
    /// Wraps a raw table slot.
    fn from_raw(raw: u32) -> Self;
    /// Unwraps to the raw table slot.
    fn into_raw(self) -> u32;
}

/// An append-only name ↔ id table.
///
/// `intern` is idempotent — the same name always returns the same id,
/// and ids are handed out densely in first-appearance order, so a
/// table built by scanning a workflow in declaration order assigns
/// id `k` to the `k`-th distinct name. Each distinct name is stored
/// once (an `Arc<str>` shared between the forward vector and the
/// reverse map), so memory is one allocation per *unique* name, not
/// per occurrence.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable<S: Symbol = JobId> {
    names: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
    _typed: PhantomData<S>,
}

impl<S: Symbol> SymbolTable<S> {
    /// Creates an empty table.
    pub fn new() -> Self {
        SymbolTable {
            names: Vec::new(),
            index: HashMap::new(),
            _typed: PhantomData,
        }
    }

    /// Creates an empty table with room for `n` names.
    pub fn with_capacity(n: usize) -> Self {
        SymbolTable {
            names: Vec::with_capacity(n),
            index: HashMap::with_capacity(n),
            _typed: PhantomData,
        }
    }

    /// Interns `name`, returning its stable id. Repeated calls with
    /// the same name return the same id without allocating.
    pub fn intern(&mut self, name: &str) -> S {
        if let Some(&raw) = self.index.get(name) {
            return S::from_raw(raw);
        }
        let raw = u32::try_from(self.names.len()).expect("symbol table overflows u32");
        let shared: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&shared));
        self.index.insert(shared, raw);
        S::from_raw(raw)
    }

    /// Looks up a name without interning it.
    pub fn get(&self, name: &str) -> Option<S> {
        self.index.get(name).map(|&raw| S::from_raw(raw))
    }

    /// Resolves an id back to its name.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this table.
    pub fn resolve(&self, id: S) -> &str {
        &self.names[id.into_raw() as usize]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (S, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (S::from_raw(i as u32), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t: SymbolTable<JobId> = SymbolTable::new();
        let a = t.intern("split");
        let b = t.intern("run_cap3_0");
        let a2 = t.intern("split");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.idx(), 0);
        assert_eq!(b.idx(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t: SymbolTable<FileId> = SymbolTable::new();
        for name in ["transcripts.fasta", "chunk_0.fasta", "транскрипты.fa"] {
            let id = t.intern(name);
            assert_eq!(t.resolve(id), name);
        }
    }

    #[test]
    fn duplicate_prefixes_stay_distinct() {
        let mut t: SymbolTable<JobId> = SymbolTable::new();
        let a = t.intern("run_cap3_1");
        let b = t.intern("run_cap3_10");
        let c = t.intern("run_cap3_100");
        assert!(a != b && b != c && a != c);
        assert_eq!(t.resolve(b), "run_cap3_10");
    }

    #[test]
    fn get_does_not_intern() {
        let mut t: SymbolTable<JobId> = SymbolTable::new();
        assert_eq!(t.get("merge"), None);
        let id = t.intern("merge");
        assert_eq!(t.get("merge"), Some(id));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_display_as_bare_indices() {
        assert_eq!(JobId::new(17).to_string(), "17");
        assert_eq!(FileId::new(0).to_string(), "0");
        assert_eq!("17".parse::<JobId>().unwrap(), JobId::new(17));
    }

    #[test]
    fn iter_yields_interning_order() {
        let mut t: SymbolTable<JobId> = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        let pairs: Vec<(usize, String)> =
            t.iter().map(|(id, n)| (id.idx(), n.to_string())).collect();
        assert_eq!(pairs, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }
}

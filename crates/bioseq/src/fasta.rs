//! FASTA reading and writing.
//!
//! The workflow tasks exchange transcript sets as FASTA files
//! (`transcripts.fasta`, per-cluster inputs, CAP3 contig outputs), so
//! the reader is stream-oriented and tolerant of the formatting found
//! in real pipelines: multi-line bodies, blank lines between records,
//! Windows line endings, and descriptions after the identifier.

use crate::error::{BioError, Result};
use crate::seq::DnaSeq;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// A single FASTA record: identifier, optional description, sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Identifier: the header token up to the first whitespace.
    pub id: String,
    /// Remainder of the header line (may be empty).
    pub desc: String,
    /// The sequence body.
    pub seq: DnaSeq,
}

impl Record {
    /// Creates a record from parts.
    pub fn new(id: impl Into<String>, desc: impl Into<String>, seq: DnaSeq) -> Self {
        Record {
            id: id.into(),
            desc: desc.into(),
            seq,
        }
    }

    /// Renders the record as FASTA, wrapping the body at `width`
    /// columns (`0` means no wrapping).
    pub fn to_fasta_string(&self, width: usize) -> String {
        let mut out = String::with_capacity(self.seq.len() + self.id.len() + 16);
        out.push('>');
        out.push_str(&self.id);
        if !self.desc.is_empty() {
            out.push(' ');
            out.push_str(&self.desc);
        }
        out.push('\n');
        let body = self.seq.as_bytes();
        if width == 0 {
            out.push_str(std::str::from_utf8(body).expect("sequences are ASCII"));
            out.push('\n');
        } else {
            for chunk in body.chunks(width) {
                out.push_str(std::str::from_utf8(chunk).expect("sequences are ASCII"));
                out.push('\n');
            }
        }
        out
    }
}

/// Streaming FASTA reader over any [`Read`].
pub struct Reader<R: Read> {
    inner: BufReader<R>,
    /// Header line of the next record, if we have already consumed it.
    pending_header: Option<String>,
    line_no: usize,
    finished: bool,
}

impl<R: Read> Reader<R> {
    /// Wraps a reader.
    pub fn new(inner: R) -> Self {
        Reader {
            inner: BufReader::new(inner),
            pending_header: None,
            line_no: 0,
            finished: false,
        }
    }

    fn read_trimmed_line(&mut self, buf: &mut String) -> Result<usize> {
        buf.clear();
        let n = self.inner.read_line(buf)?;
        if n > 0 {
            self.line_no += 1;
            while buf.ends_with('\n') || buf.ends_with('\r') {
                buf.pop();
            }
        }
        Ok(n)
    }

    /// Reads the next record, or `Ok(None)` at end of input.
    pub fn next_record(&mut self) -> Result<Option<Record>> {
        if self.finished {
            return Ok(None);
        }
        let mut line = String::new();
        // Find the header: either one we already consumed, or scan
        // forward over blank lines.
        let header = loop {
            if let Some(h) = self.pending_header.take() {
                break h;
            }
            let n = self.read_trimmed_line(&mut line)?;
            if n == 0 {
                self.finished = true;
                return Ok(None);
            }
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('>') {
                break rest.to_string();
            }
            return Err(BioError::MalformedFasta {
                line: self.line_no,
                reason: format!("expected '>' header, found {:?}", line),
            });
        };
        if header.trim().is_empty() {
            return Err(BioError::MalformedFasta {
                line: self.line_no,
                reason: "empty header".into(),
            });
        }
        let (id, desc) = match header.split_once(char::is_whitespace) {
            Some((id, desc)) => (id.to_string(), desc.trim().to_string()),
            None => (header.clone(), String::new()),
        };

        let mut body: Vec<u8> = Vec::new();
        loop {
            let n = self.read_trimmed_line(&mut line)?;
            if n == 0 {
                self.finished = true;
                break;
            }
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('>') {
                self.pending_header = Some(rest.to_string());
                break;
            }
            body.extend_from_slice(line.as_bytes());
        }
        let seq = DnaSeq::from_ascii(&body).map_err(|e| match e {
            BioError::InvalidBase { byte, pos } => BioError::MalformedFasta {
                line: self.line_no,
                reason: format!(
                    "record {id:?}: invalid base 0x{byte:02x} at sequence offset {pos}"
                ),
            },
            other => other,
        })?;
        Ok(Some(Record { id, desc, seq }))
    }

    /// Collects every remaining record.
    pub fn read_all(&mut self) -> Result<Vec<Record>> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

impl<R: Read> Iterator for Reader<R> {
    type Item = Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// A protein FASTA record (amino-acid alphabet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProteinRecord {
    /// Identifier: the header token up to the first whitespace.
    pub id: String,
    /// Remainder of the header line (may be empty).
    pub desc: String,
    /// The residues.
    pub seq: crate::seq::ProteinSeq,
}

impl ProteinRecord {
    /// Creates a protein record from parts.
    pub fn new(
        id: impl Into<String>,
        desc: impl Into<String>,
        seq: crate::seq::ProteinSeq,
    ) -> Self {
        ProteinRecord {
            id: id.into(),
            desc: desc.into(),
            seq,
        }
    }

    /// Renders the record as FASTA wrapped at `width` (`0` = one line).
    pub fn to_fasta_string(&self, width: usize) -> String {
        let mut out = String::with_capacity(self.seq.len() + self.id.len() + 16);
        out.push('>');
        out.push_str(&self.id);
        if !self.desc.is_empty() {
            out.push(' ');
            out.push_str(&self.desc);
        }
        out.push('\n');
        let body = self.seq.as_bytes();
        if width == 0 {
            out.push_str(std::str::from_utf8(body).expect("residues are ASCII"));
            out.push('\n');
        } else {
            for chunk in body.chunks(width) {
                out.push_str(std::str::from_utf8(chunk).expect("residues are ASCII"));
                out.push('\n');
            }
        }
        out
    }
}

/// Parses protein FASTA from a string. Protein records share the DNA
/// reader's structural rules; only the alphabet differs.
pub fn parse_protein_str(s: &str) -> Result<Vec<ProteinRecord>> {
    // Reuse the structural scanner by treating bodies as raw bytes:
    // scan headers/bodies with a permissive pass, then validate
    // residues.
    let mut out = Vec::new();
    let lines = s.lines().enumerate().peekable();
    let mut current: Option<(usize, String, String, Vec<u8>)> = None;
    let flush = |cur: &mut Option<(usize, String, String, Vec<u8>)>,
                 out: &mut Vec<ProteinRecord>|
     -> Result<()> {
        if let Some((line, id, desc, body)) = cur.take() {
            let seq = crate::seq::ProteinSeq::from_ascii(&body).map_err(|e| {
                BioError::MalformedFasta {
                    line,
                    reason: format!("record {id:?}: {e}"),
                }
            })?;
            out.push(ProteinRecord { id, desc, seq });
        }
        Ok(())
    };
    for (idx, raw) in lines {
        let line = raw.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('>') {
            flush(&mut current, &mut out)?;
            if rest.trim().is_empty() {
                return Err(BioError::MalformedFasta {
                    line: idx + 1,
                    reason: "empty header".into(),
                });
            }
            let (id, desc) = match rest.split_once(char::is_whitespace) {
                Some((i, d)) => (i.to_string(), d.trim().to_string()),
                None => (rest.to_string(), String::new()),
            };
            current = Some((idx + 1, id, desc, Vec::new()));
        } else {
            match &mut current {
                Some((_, _, _, body)) => body.extend_from_slice(line.as_bytes()),
                None => {
                    return Err(BioError::MalformedFasta {
                        line: idx + 1,
                        reason: format!("expected '>' header, found {line:?}"),
                    })
                }
            }
        }
    }
    flush(&mut current, &mut out)?;
    Ok(out)
}

/// Reads a protein FASTA file from disk.
pub fn read_protein_file(path: impl AsRef<Path>) -> Result<Vec<ProteinRecord>> {
    let text = std::fs::read_to_string(path)?;
    parse_protein_str(&text)
}

/// Writes protein records to a FASTA file (60-column bodies).
pub fn write_protein_file(path: impl AsRef<Path>, records: &[ProteinRecord]) -> Result<()> {
    let mut out = String::new();
    for rec in records {
        out.push_str(&rec.to_fasta_string(60));
    }
    std::fs::write(path, out)?;
    Ok(())
}

/// Parses every record from an in-memory FASTA string.
pub fn parse_str(s: &str) -> Result<Vec<Record>> {
    Reader::new(s.as_bytes()).read_all()
}

/// Reads every record from a FASTA file on disk.
pub fn read_file(path: impl AsRef<Path>) -> Result<Vec<Record>> {
    let f = std::fs::File::open(path)?;
    Reader::new(f).read_all()
}

/// Writes records to any [`Write`], wrapping bodies at `width` columns.
pub fn write_records<W: Write>(mut w: W, records: &[Record], width: usize) -> Result<()> {
    for rec in records {
        w.write_all(rec.to_fasta_string(width).as_bytes())?;
    }
    Ok(())
}

/// Writes records to a FASTA file, wrapping bodies at 60 columns.
pub fn write_file(path: impl AsRef<Path>, records: &[Record]) -> Result<()> {
    let f = std::fs::File::create(path)?;
    let mut buf = std::io::BufWriter::new(f);
    write_records(&mut buf, records, 60)?;
    buf.flush()?;
    Ok(())
}

/// Renders records to a single FASTA string (60-column bodies).
pub fn to_string(records: &[Record]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&rec.to_fasta_string(60));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, seq: &str) -> Record {
        Record::new(id, "", DnaSeq::from_ascii(seq.as_bytes()).unwrap())
    }

    #[test]
    fn parses_single_record() {
        let recs = parse_str(">tx1 some desc\nACGT\nACGT\n").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id, "tx1");
        assert_eq!(recs[0].desc, "some desc");
        assert_eq!(recs[0].seq.as_bytes(), b"ACGTACGT");
    }

    #[test]
    fn parses_multiple_records_with_blank_lines() {
        let recs = parse_str(">a\nAC\n\n>b\nGT\nTT\n\n>c\nNN\n").unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[1].seq.as_bytes(), b"GTTT");
        assert_eq!(recs[2].id, "c");
    }

    #[test]
    fn handles_crlf_and_missing_trailing_newline() {
        let recs = parse_str(">a\r\nACGT\r\n>b\r\nTTTT").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq.as_bytes(), b"ACGT");
        assert_eq!(recs[1].seq.as_bytes(), b"TTTT");
    }

    #[test]
    fn rejects_body_before_header() {
        let err = parse_str("ACGT\n>a\nACGT\n").unwrap_err();
        assert!(matches!(err, BioError::MalformedFasta { line: 1, .. }));
    }

    #[test]
    fn rejects_empty_header() {
        assert!(parse_str(">\nACGT\n").is_err());
        assert!(parse_str(">   \nACGT\n").is_err());
    }

    #[test]
    fn rejects_invalid_bases_naming_the_record() {
        let err = parse_str(">weird\nACGZ\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("weird"), "message was {msg}");
    }

    #[test]
    fn empty_input_yields_no_records() {
        assert!(parse_str("").unwrap().is_empty());
        assert!(parse_str("\n\n").unwrap().is_empty());
    }

    #[test]
    fn empty_sequence_records_are_allowed() {
        // CAP3 singlet files may contain zero-length placeholders.
        let recs = parse_str(">a\n>b\nACGT\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].seq.is_empty());
    }

    #[test]
    fn wrapping_round_trip() {
        let original = vec![rec("x", &"ACGT".repeat(50)), rec("y", "A")];
        let text = to_string(&original);
        // 200 bases at 60 columns -> 4 body lines for record x.
        assert_eq!(text.lines().filter(|l| !l.starts_with('>')).count(), 5);
        let parsed = parse_str(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn zero_width_means_single_line_body() {
        let r = rec("x", &"AC".repeat(100));
        let text = r.to_fasta_string(0);
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn iterator_interface_matches_read_all() {
        let text = ">a\nAC\n>b\nGT\n";
        let via_iter: Vec<Record> = Reader::new(text.as_bytes())
            .collect::<Result<Vec<_>>>()
            .unwrap();
        let via_read_all = parse_str(text).unwrap();
        assert_eq!(via_iter, via_read_all);
    }

    #[test]
    fn protein_fasta_round_trip() {
        use crate::seq::ProteinSeq;
        let recs = vec![
            ProteinRecord::new(
                "prot_1",
                "ancestral",
                ProteinSeq::from_ascii(b"MKWVLLLFAARNDCEQ").unwrap(),
            ),
            ProteinRecord::new("prot_2", "", ProteinSeq::from_ascii(b"GGHHX*").unwrap()),
        ];
        let text: String = recs.iter().map(|r| r.to_fasta_string(8)).collect();
        let back = parse_protein_str(&text).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn protein_fasta_rejects_dna_only_symbols_politely() {
        // '1' is not a residue.
        let err = parse_protein_str(">p\nMK1\n").unwrap_err();
        assert!(err.to_string().contains("p"), "{err}");
        // Structural errors.
        assert!(parse_protein_str("MKW\n").is_err());
        assert!(parse_protein_str(">\nMKW\n").is_err());
        // Empty input is fine.
        assert!(parse_protein_str("").unwrap().is_empty());
    }

    #[test]
    fn protein_file_round_trip() {
        use crate::seq::ProteinSeq;
        let dir = std::env::temp_dir().join("bioseq_pfasta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prot.fasta");
        let recs = vec![ProteinRecord::new(
            "p1",
            "",
            ProteinSeq::from_ascii(b"MKWVLLLF").unwrap(),
        )];
        write_protein_file(&path, &recs).unwrap();
        assert_eq!(read_protein_file(&path).unwrap(), recs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("bioseq_fasta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.fasta");
        let original = vec![rec("t1", "ACGTACGTNN"), rec("t2", "GGGG")];
        write_file(&path, &original).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back, original);
        std::fs::remove_file(&path).ok();
    }
}

//! Calibrated models of the paper's two execution platforms.
//!
//! Calibration targets (DESIGN.md §4): the serial blast2cap3 run costs
//! 360,000 reference seconds (the paper's 100 hours); the workload
//! generator sizes per-chunk `runtime_hint`s so they sum to that. The
//! platform parameters below then *reproduce the paper's relative
//! findings from mechanism*:
//!
//! * Sandhills: a fixed slot allocation, negligible per-job waiting
//!   once allocated, no failures, software preinstalled, per-task
//!   dispatch/staging overhead that penalises very fine decomposition
//!   (→ the n = 300 optimum);
//! * OSG: more slots and faster nodes (→ lower pure kickstart, §VII),
//!   but heavy-tailed per-job waiting, a download/install phase on
//!   every task, and a preemption hazard that triggers Pegasus
//!   retries (→ worse end-to-end despite more resources).

use crate::dist::Dist;
use crate::platform::{PlatformModel, SlotSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Serial reference cost of the full blast2cap3 run, in seconds
/// (the paper's "100 hours").
pub const SERIAL_REFERENCE_SECONDS: f64 = 360_000.0;

/// Slots the campus-cluster model grants the research group (out of
/// Sandhills' 1,440 cores; HCC allocates per group).
pub const SANDHILLS_SLOTS: usize = 64;

/// Concurrently usable opportunistic OSG slots in the model.
pub const OSG_SLOTS: usize = 150;

/// The Sandhills campus-cluster model.
///
/// * 64 dedicated slots at reference speed;
/// * one-time allocation delay (the "long waiting time to access
///   nodes" of §IV-A) of 10 minutes;
/// * small lognormal per-job dispatch delay — Fig. 5's "small and
///   negligible" waiting;
/// * no preemption: "we encountered no failures ... on Sandhills";
/// * 90 s per-task overhead: job wrapper plus per-task staging of the
///   404 MB transcript dictionary from the shared filesystem.
pub fn sandhills() -> PlatformModel {
    PlatformModel {
        name: "sandhills".into(),
        slots: vec![SlotSpec { speed: 1.0 }; SANDHILLS_SLOTS],
        queue_delay: Dist::lognormal_median(20.0, 0.8),
        startup_delay: 600.0,
        install_time_factor: 0.0, // software preinstalled
        preemption_rate: 0.0,
        runtime_jitter_sigma: 0.05,
        task_overhead: 90.0,
        churn: None,
    }
}

/// The Open Science Grid model.
///
/// * 150 opportunistic slots whose speeds scatter around 1.35× the
///   Sandhills reference (§VII: pure kickstart time is *better* on
///   OSG);
/// * heavy-tailed per-job waiting (median 10 min, σ = 1.0) — the
///   erratic "Waiting Time" of Fig. 5;
/// * every job pays its download/install phase in full
///   (`install_time_factor = 1.0`; the planner attaches 45 s per
///   missing package, 135 s for `run_cap3`);
/// * an exponential preemption hazard with mean ~5.5 h of busy time —
///   jobs of other VO members evict opportunistic workloads, and the
///   engine retries, exactly the failures-and-retries the paper
///   observed.
pub fn osg(seed: u64) -> PlatformModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let slots = (0..OSG_SLOTS)
        .map(|_| SlotSpec {
            speed: (1.35f64.ln() + 0.15 * crate::dist::sample_standard_normal(&mut rng)).exp(),
        })
        .collect();
    PlatformModel {
        name: "osg".into(),
        slots,
        queue_delay: Dist::lognormal_median(600.0, 1.0),
        startup_delay: 0.0,
        install_time_factor: 1.0,
        preemption_rate: 1.0 / 20_000.0,
        runtime_jitter_sigma: 0.15,
        task_overhead: 5.0,
        churn: None,
    }
}

/// An OSG variant in which eviction comes from explicit slot
/// availability churn instead of the per-job hazard: slots stay up ~6h
/// and disappear for ~1h when their owners reclaim them, evicting the
/// running job. Mechanistically the most faithful opportunistic model;
/// used by churn experiments and tests.
pub fn osg_churning(seed: u64) -> PlatformModel {
    PlatformModel {
        preemption_rate: 0.0,
        churn: Some(crate::platform::ChurnModel {
            mean_up: 21_600.0,
            mean_down: 3_600.0,
        }),
        ..osg(seed)
    }
}

/// An OSG variant with software pre-staged on the opportunistic nodes
/// — the paper's §VII future-work item ("setting the proper software
/// configuration on the OSG resources for less time"). Used by the
/// pre-staging ablation bench.
pub fn osg_prestaged(seed: u64) -> PlatformModel {
    PlatformModel {
        install_time_factor: 0.0,
        ..osg(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandhills_is_dedicated_and_software_complete() {
        let p = sandhills();
        assert_eq!(p.slot_count(), SANDHILLS_SLOTS);
        assert_eq!(p.preemption_rate, 0.0);
        assert_eq!(p.install_time_factor, 0.0);
        assert!(p.startup_delay > 0.0);
        assert!((p.mean_speed() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn osg_is_bigger_faster_and_riskier() {
        let sh = sandhills();
        let grid = osg(1);
        assert!(grid.slot_count() > sh.slot_count());
        assert!(grid.mean_speed() > 1.15, "mean={}", grid.mean_speed());
        assert!(grid.preemption_rate > 0.0);
        assert_eq!(grid.install_time_factor, 1.0);
        // OSG waits are an order of magnitude larger on average.
        assert!(grid.queue_delay.mean() > 10.0 * sh.queue_delay.mean());
    }

    #[test]
    fn osg_speeds_are_heterogeneous_but_deterministic() {
        let a = osg(5);
        let b = osg(5);
        let c = osg(6);
        assert_eq!(a.slots, b.slots);
        assert_ne!(a.slots, c.slots);
        let speeds: Vec<f64> = a.slots.iter().map(|s| s.speed).collect();
        let min = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = speeds.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min, "speeds must scatter");
    }

    #[test]
    fn prestaged_variant_only_changes_install() {
        let normal = osg(2);
        let staged = osg_prestaged(2);
        assert_eq!(staged.install_time_factor, 0.0);
        assert_eq!(staged.slots, normal.slots);
        assert_eq!(staged.preemption_rate, normal.preemption_rate);
    }

    #[test]
    fn churning_variant_swaps_hazard_for_churn() {
        let c = osg_churning(4);
        assert_eq!(c.preemption_rate, 0.0);
        let churn = c.churn.expect("churn model set");
        assert!(churn.mean_up > churn.mean_down);
        assert_eq!(c.slots, osg(4).slots, "same pool otherwise");
    }

    #[test]
    fn serial_reference_is_100_hours() {
        assert_eq!(SERIAL_REFERENCE_SECONDS, 100.0 * 3600.0);
    }
}

//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Implements the surface the workspace's `harness = false` benches
//! use — `Criterion::benchmark_group`, group configuration
//! (`sample_size`, `warm_up_time`, `measurement_time`, `throughput`),
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! and the `criterion_group!` / `criterion_main!` macros — with a
//! simple mean-of-samples walltime report instead of upstream's
//! statistical engine. Good enough to compare configurations
//! relatively, which is all the reproduction benches do.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: u32,
    last_mean: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up pass, then `samples` timed passes.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.last_mean = start.elapsed() / self.samples.max(1);
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        // Keep stub benches quick: a few timed passes per benchmark.
        let mut b = Bencher {
            samples: self.sample_size.min(10),
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.last_mean;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
                )
            }
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  ({:.1} elem/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{id}: mean {mean:?}{rate}", self.name);
        self.criterion.benchmarks_run += 1;
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        self.run_one(id.to_string(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(id.to_string(), |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("unit");
            group
                .sample_size(3)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(1));
            group.throughput(Throughput::Elements(4));
            group.bench_function("noop", |b| b.iter(|| black_box(2 + 2)));
            group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            group.finish();
        }
        assert_eq!(c.benchmarks_run, 2);
    }
}

//! Open reading frame (ORF) discovery.
//!
//! Assembly validation — the last stage of the paper's Fig. 1
//! pipeline — routinely checks that merged transcripts still carry
//! long ORFs (a fused or chimeric transcript often breaks the reading
//! frame). This module finds ORFs across all six frames.

use crate::codon::{six_frame_translations, Frame};
use crate::seq::DnaSeq;

/// One open reading frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Orf {
    /// The frame the ORF lies in.
    pub frame: Frame,
    /// Start offset in the frame's translation, in residues
    /// (position of the `M`).
    pub aa_start: usize,
    /// Length in residues, including the initial `M`, excluding the
    /// stop.
    pub aa_len: usize,
}

impl Orf {
    /// ORF length in nucleotides (excluding the stop codon).
    pub fn nt_len(&self) -> usize {
        self.aa_len * 3
    }
}

/// Finds every ORF of at least `min_aa` residues: a run starting at
/// `M` and ending at a stop (`*`) or the end of the translation.
///
/// ```
/// use bioseq::codon::reverse_translate;
/// use bioseq::orf::longest_orf;
/// use bioseq::seq::ProteinSeq;
///
/// let prot = ProteinSeq::from_ascii(b"MKWVLLLFAA").unwrap();
/// let dna = reverse_translate(&prot, |i| i);
/// assert_eq!(longest_orf(&dna, 5).unwrap().aa_len, 10);
/// ```
pub fn find_orfs(dna: &DnaSeq, min_aa: usize) -> Vec<Orf> {
    let mut out = Vec::new();
    for (frame, prot) in six_frame_translations(dna) {
        let bytes = prot.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            if bytes[i] != b'M' {
                i += 1;
                continue;
            }
            // Extend to the next stop or end.
            let mut j = i;
            while j < bytes.len() && bytes[j] != b'*' {
                j += 1;
            }
            let len = j - i;
            if len >= min_aa {
                out.push(Orf {
                    frame,
                    aa_start: i,
                    aa_len: len,
                });
            }
            // Restart after this ORF's stop; nested Ms inside it are
            // sub-ORFs of the same stop and shorter, so skip them.
            i = j + 1;
        }
    }
    out.sort_by(|a, b| b.aa_len.cmp(&a.aa_len).then(a.frame.0.cmp(&b.frame.0)));
    out
}

/// The longest ORF, if any reaches `min_aa` residues.
pub fn longest_orf(dna: &DnaSeq, min_aa: usize) -> Option<Orf> {
    find_orfs(dna, min_aa).into_iter().next()
}

/// Fraction of `records` carrying an ORF of at least `min_aa`
/// residues — the coding-completeness metric used to compare an
/// assembly before and after merging.
pub fn coding_fraction(records: &[crate::fasta::Record], min_aa: usize) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    let coding = records
        .iter()
        .filter(|r| longest_orf(&r.seq, min_aa).is_some())
        .count();
    coding as f64 / records.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codon::reverse_translate;
    use crate::seq::ProteinSeq;

    #[test]
    fn finds_a_simple_forward_orf() {
        // M + 9 residues + stop, in frame +1.
        let prot = ProteinSeq::from_ascii(b"MKWVLLLFAA").unwrap();
        let mut dna_bytes = reverse_translate(&prot, |i| i).into_bytes();
        dna_bytes.extend_from_slice(b"TAA");
        let dna = DnaSeq::from_ascii_unchecked(dna_bytes);
        let orf = longest_orf(&dna, 5).expect("orf found");
        assert_eq!(orf.frame, Frame(1));
        assert_eq!(orf.aa_start, 0);
        assert_eq!(orf.aa_len, 10);
        assert_eq!(orf.nt_len(), 30);
    }

    #[test]
    fn finds_reverse_strand_orfs() {
        let prot = ProteinSeq::from_ascii(b"MKWVLLLFAARNDC").unwrap();
        let mut dna_bytes = reverse_translate(&prot, |i| i * 2).into_bytes();
        dna_bytes.extend_from_slice(b"TGA");
        let fwd = DnaSeq::from_ascii_unchecked(dna_bytes);
        let rc = fwd.reverse_complement();
        let orf = longest_orf(&rc, 10).expect("orf on reverse strand");
        assert!(!orf.frame.is_forward());
        assert_eq!(orf.aa_len, 14);
    }

    #[test]
    fn min_length_filters() {
        let prot = ProteinSeq::from_ascii(b"MKW").unwrap();
        let dna = reverse_translate(&prot, |i| i);
        assert!(longest_orf(&dna, 4).is_none());
        assert!(longest_orf(&dna, 3).is_some());
    }

    #[test]
    fn orf_without_stop_extends_to_translation_end() {
        let prot = ProteinSeq::from_ascii(b"MAAAAAAAAA").unwrap();
        let dna = reverse_translate(&prot, |i| i);
        let orf = longest_orf(&dna, 5).unwrap();
        assert_eq!(orf.aa_len, 10);
    }

    #[test]
    fn multiple_orfs_sorted_longest_first() {
        // Two ORFs in frame +1 separated by a stop: M AAAA * M AA.
        let p1 = ProteinSeq::from_ascii(b"MAAAA").unwrap();
        let p2 = ProteinSeq::from_ascii(b"MAA").unwrap();
        let mut bytes = reverse_translate(&p1, |i| i).into_bytes();
        bytes.extend_from_slice(b"TAA");
        bytes.extend(reverse_translate(&p2, |i| i).into_bytes());
        bytes.extend_from_slice(b"TAG");
        let dna = DnaSeq::from_ascii_unchecked(bytes);
        let orfs: Vec<Orf> = find_orfs(&dna, 2)
            .into_iter()
            .filter(|o| o.frame == Frame(1))
            .collect();
        assert_eq!(orfs.len(), 2);
        assert!(orfs[0].aa_len >= orfs[1].aa_len);
        assert_eq!(orfs[0].aa_len, 5);
        assert_eq!(orfs[1].aa_len, 3);
    }

    #[test]
    fn no_start_codon_means_no_orf() {
        // Poly-G translates to poly-G: no M anywhere, either strand
        // (rc is poly-C -> P).
        let dna = DnaSeq::from_ascii_unchecked(b"G".repeat(60));
        assert!(find_orfs(&dna, 1).is_empty());
    }

    #[test]
    fn coding_fraction_over_records() {
        use crate::fasta::Record;
        let prot = ProteinSeq::from_ascii(b"MKWVLLLFAA").unwrap();
        let coding = Record::new("c", "", reverse_translate(&prot, |i| i));
        let junk = Record::new("j", "", DnaSeq::from_ascii_unchecked(b"G".repeat(60)));
        let f = coding_fraction(&[coding, junk], 5);
        assert!((f - 0.5).abs() < 1e-12);
        assert_eq!(coding_fraction(&[], 5), 0.0);
    }

    #[test]
    fn merged_transcript_preserves_orf() {
        // blast2cap3's promise: merging fragments of one gene keeps
        // the reading frame. Simulate: full CDS vs its consensus from
        // the assembler path is covered elsewhere; here just check an
        // mRNA with UTRs still reports its ORF.
        let prot = ProteinSeq::from_ascii(b"MKWVLLLFAARNDCEQGHIK").unwrap();
        let mut bytes = b"GGCC".to_vec(); // 5' UTR shifts the frame
        bytes.extend(reverse_translate(&prot, |i| i).into_bytes());
        bytes.extend_from_slice(b"TAACCGG");
        let dna = DnaSeq::from_ascii_unchecked(bytes);
        let orf = longest_orf(&dna, 15).expect("orf across UTRs");
        assert_eq!(orf.aa_len, 20);
        assert_eq!(orf.frame, Frame(2), "4-base UTR puts the CDS in +2... ");
    }
}

//! §V-B — "Considering larger input files and datasets, the time
//! requirements and complexity of running the protein-guided assembly
//! grow."
//!
//! Two sweeps:
//!
//! 1. **Real execution**: the actual Rust blast2cap3 (alignment +
//!    clustering + CAP3) at increasing synthetic dataset scales,
//!    serial vs the workflow decomposition — measures genuine growth
//!    of the laptop-scale pipeline.
//! 2. **Simulated paper scale**: the Sandhills model at multiples of
//!    the calibrated 100-hour workload — shows that the workflow's
//!    advantage persists (and grows in absolute terms) as datasets
//!    grow.
//!
//! Output: `target/experiments/scaling.csv`.

use bioseq::simulate::{generate, TranscriptomeConfig};
use blast2cap3::parallel::run_parallel;
use blast2cap3::serial::run_serial;
use blast2cap3::workflow::{build_workflow, WorkflowParams};
use blast2cap3_pegasus::experiment::{calibrate_workload, calibrated_chunk_costs};
use blastx::search::{SearchParams, Searcher};
use blastx::tabular::TabularRecord;
use cap3::Cap3Params;
use gridsim::platforms::sandhills;
use gridsim::SimBackend;
use pegasus_wms::catalog::{paper_catalogs, ReplicaCatalog};
use pegasus_wms::engine::{Engine, EngineConfig, NoopMonitor};
use pegasus_wms::planner::{plan, PlannerConfig};
use wms_bench::{write_experiment_file, DEFAULT_SEED};

fn main() {
    let mut csv = String::from("kind,scale,transcripts,serial_s,workflow_s\n");

    println!("real execution sweep (serial vs workflow, wall seconds):");
    for families in [20usize, 40, 80, 160] {
        let cfg = TranscriptomeConfig {
            n_families: families,
            family_size_mean: 4.0,
            family_size_cap: 16,
            ..TranscriptomeConfig::tiny(DEFAULT_SEED)
        };
        let data = generate(&cfg);
        let searcher = Searcher::new(data.proteins.clone(), SearchParams::default()).unwrap();
        let queries: Vec<(String, bioseq::seq::DnaSeq)> = data
            .transcripts
            .iter()
            .map(|r| (r.id.clone(), r.seq.clone()))
            .collect();
        let alignments: Vec<TabularRecord> = searcher
            .search_many(&queries, 0)
            .iter()
            .map(TabularRecord::from)
            .collect();
        let serial = run_serial(&data.transcripts, &alignments, &Cap3Params::default());
        let par = run_parallel(
            &data.transcripts,
            &alignments,
            &Cap3Params::default(),
            families,
            0,
        );
        assert_eq!(serial.output.len(), par.output.len());
        println!(
            "  {:>4} families / {:>5} transcripts: serial {:>8.4}s, workflow {:>8.4}s",
            families,
            data.transcripts.len(),
            serial.elapsed.as_secs_f64(),
            par.elapsed.as_secs_f64()
        );
        csv.push_str(&format!(
            "real,{families},{},{:.4},{:.4}\n",
            data.transcripts.len(),
            serial.elapsed.as_secs_f64(),
            par.elapsed.as_secs_f64()
        ));
    }

    println!("\nsimulated paper-scale sweep (Sandhills, n = 300):");
    let (sites, tc) = paper_catalogs();
    let mut rc = ReplicaCatalog::new();
    rc.register("transcripts.fasta", "submit");
    rc.register("alignments.out", "submit");
    for scale in [1usize, 2, 4] {
        let cal = calibrate_workload(DEFAULT_SEED);
        // Scale the workload: `scale` copies of the cluster costs.
        let scaled = blast2cap3_pegasus::experiment::WorkloadCalibration {
            cluster_costs: cal
                .cluster_costs
                .iter()
                .cycle()
                .take(cal.cluster_costs.len() * scale)
                .copied()
                .collect(),
            serial_total: cal.serial_total * scale as f64,
        };
        let chunk_costs = calibrated_chunk_costs(&scaled, 300);
        let wf = build_workflow(
            &WorkflowParams::with_n(chunk_costs.len()).with_chunk_costs(chunk_costs),
        );
        let exec = plan(&wf, &sites, &tc, &rc, &PlannerConfig::for_site("sandhills")).unwrap();
        let mut backend = SimBackend::new(sandhills(), DEFAULT_SEED);
        let run = Engine::run(
            &mut backend,
            &exec,
            &EngineConfig::builder().retries(3).build(),
            &mut NoopMonitor,
        );
        assert!(run.succeeded());
        let serial_s = scaled.serial_total;
        println!(
            "  {scale}x dataset: serial {:>9.0}s, workflow {:>8.0}s ({:.1}% reduction)",
            serial_s,
            run.wall_time,
            100.0 * (1.0 - run.wall_time / serial_s)
        );
        csv.push_str(&format!(
            "simulated,{scale},{},{serial_s:.0},{:.0}\n",
            scaled.cluster_costs.len(),
            run.wall_time
        ));
    }

    let path = write_experiment_file("scaling.csv", &csv);
    println!("\nseries written to {}", path.display());
}

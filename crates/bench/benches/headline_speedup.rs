//! Criterion bench behind the headline claim: serial blast2cap3 vs.
//! the parallel workflow decomposition, on identical in-memory
//! synthetic inputs with the *real* Rust CAP3 doing the merging.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bioseq::simulate::{generate, TranscriptomeConfig};
use blast2cap3::parallel::run_parallel;
use blast2cap3::serial::run_serial;
use blastx::search::{SearchParams, Searcher};
use blastx::tabular::TabularRecord;
use cap3::Cap3Params;

fn workload(families: usize, seed: u64) -> (Vec<bioseq::fasta::Record>, Vec<TabularRecord>) {
    let cfg = TranscriptomeConfig {
        n_families: families,
        family_size_mean: 4.0,
        family_size_cap: 16,
        ..TranscriptomeConfig::tiny(seed)
    };
    let data = generate(&cfg);
    let searcher = Searcher::new(data.proteins.clone(), SearchParams::default()).unwrap();
    let queries: Vec<(String, bioseq::seq::DnaSeq)> = data
        .transcripts
        .iter()
        .map(|r| (r.id.clone(), r.seq.clone()))
        .collect();
    let alignments = searcher
        .search_many(&queries, 0)
        .iter()
        .map(TabularRecord::from)
        .collect();
    (data.transcripts, alignments)
}

fn bench_headline(c: &mut Criterion) {
    let (transcripts, alignments) = workload(40, 9);
    let params = Cap3Params::default();

    let mut group = c.benchmark_group("headline_speedup");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("serial", |b| {
        b.iter(|| run_serial(&transcripts, &alignments, &params).output.len())
    });
    for n_chunks in [10usize, 40] {
        group.bench_with_input(
            BenchmarkId::new("workflow", n_chunks),
            &n_chunks,
            |b, &n| {
                b.iter(|| {
                    run_parallel(&transcripts, &alignments, &params, n, 0)
                        .output
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_headline);
criterion_main!(benches);

//! The event-sourced provenance core.
//!
//! Pegasus derives every number it reports from one provenance chain:
//! kickstart records are parsed by `pegasus-monitord` into a
//! statistics database that `pegasus-statistics` and
//! `pegasus-analyzer` later query offline. This module is that chain's
//! equivalent: the engine emits one typed, append-only
//! [`WorkflowEvent`] stream at every job state transition, and the
//! downstream layers — [`crate::monitor`], [`crate::statistics`],
//! [`crate::rescue`], [`crate::analyzer`], and the Condor job log —
//! are pure consumers of it:
//!
//! * the stream rides along on every [`WorkflowRun`] (its `events`
//!   field);
//! * [`replay`] folds a stream back into a full [`WorkflowRun`], so
//!   statistics, analysis, and rescue DAGs can be recomputed offline
//!   from a log alone;
//! * [`MonitorSink`] bridges events onto the historical
//!   [`WorkflowMonitor`] callbacks, so existing monitors keep working
//!   unchanged — live or replayed;
//! * [`log`] is a line-oriented, hand-rolled text format (the same
//!   idiom as the fault-plan format: one `keyword key=value...` line
//!   per event, no serde) written by `pegasus run --events` and read
//!   back by `pegasus statistics --from-events` / `pegasus analyze
//!   --from-events`.
//!
//! Timestamps are backend seconds (simulated or real), exactly as the
//! engine observed them; free-text fields (workflow and job names,
//! failure details) must not contain newlines, and all other field
//! values must be whitespace-free for the text format to round-trip.

use crate::engine::{
    CompletionEvent, FaultCounters, FaultReason, JobOutcome, JobRecord, JobState, JobTimes,
    WorkflowMonitor, WorkflowOutcome, WorkflowRun,
};
use crate::error::WmsError;
use crate::planner::{ExecutableJob, JobKind};
use crate::rescue::RescueDag;
use crate::workflow::JobId;

/// One entry of the append-only provenance stream.
///
/// The engine emits these in strict causal order: a
/// [`WorkflowStarted`] header, one [`JobDeclared`] per job (the
/// manifest replay needs to reconstruct jobs that never ran), then the
/// per-attempt lifecycle events, and finally one [`WorkflowFinished`]
/// trailer.
///
/// [`WorkflowStarted`]: WorkflowEvent::WorkflowStarted
/// [`JobDeclared`]: WorkflowEvent::JobDeclared
/// [`WorkflowFinished`]: WorkflowEvent::WorkflowFinished
#[derive(Debug, Clone, PartialEq)]
pub enum WorkflowEvent {
    /// The run began: the stream header carrying the workflow identity
    /// and its execution site (events after this one omit the site).
    WorkflowStarted {
        /// Workflow name.
        name: String,
        /// Execution site handle.
        site: String,
        /// Number of jobs in the executable workflow.
        jobs: usize,
        /// Backend time at workflow start.
        time: f64,
    },
    /// The static description of one job — emitted for *every* job up
    /// front, so a replayed run has records even for jobs that never
    /// became ready.
    JobDeclared {
        /// Job index in the executable workflow.
        job: JobId,
        /// Display name.
        name: String,
        /// Transformation name.
        transformation: String,
        /// Job role.
        kind: JobKind,
    },
    /// The job was skipped because a rescue DAG marked it done.
    Skipped {
        /// Which job.
        job: JobId,
        /// Backend time of the skip (the workflow start).
        time: f64,
    },
    /// An attempt was handed to the backend.
    Submitted {
        /// Which job.
        job: JobId,
        /// Which attempt (0-based).
        attempt: u32,
        /// Backend time of the submission.
        time: f64,
    },
    /// The attempt acquired a slot and began its download/install
    /// phase. Only emitted when the attempt had a non-empty install
    /// phase.
    InstallStarted {
        /// Which job.
        job: JobId,
        /// Which attempt (0-based).
        attempt: u32,
        /// Backend time the slot was acquired.
        time: f64,
    },
    /// The attempt began actual execution (its kickstart phase).
    Started {
        /// Which job.
        job: JobId,
        /// Which attempt (0-based).
        attempt: u32,
        /// Backend time execution began (== slot acquisition when
        /// there was no install phase).
        time: f64,
    },
    /// The attempt succeeded; the job is done.
    Completed {
        /// Which job.
        job: JobId,
        /// Which attempt (0-based).
        attempt: u32,
        /// Full timestamps of the successful attempt.
        times: JobTimes,
    },
    /// The attempt failed for a non-timeout reason.
    Failed {
        /// Which job.
        job: JobId,
        /// Which attempt (0-based).
        attempt: u32,
        /// Typed failure category.
        reason: FaultReason,
        /// The backend's full wire-format reason string (e.g.
        /// `"preempted:storm"`).
        detail: String,
        /// Timestamps of the failed attempt.
        times: JobTimes,
    },
    /// The attempt exceeded the retry policy's per-attempt wall-clock
    /// timeout (the typed category is always [`FaultReason::Timeout`]).
    TimedOut {
        /// Which job.
        job: JobId,
        /// Which attempt (0-based).
        attempt: u32,
        /// The backend's full wire-format reason string (e.g.
        /// `"timeout: exceeded 600s"`).
        detail: String,
        /// Timestamps of the killed attempt.
        times: JobTimes,
    },
    /// A failed attempt will be resubmitted after a backoff delay.
    RetryScheduled {
        /// Which job.
        job: JobId,
        /// The attempt number of the resubmission (0-based).
        next_attempt: u32,
        /// Backoff delay before the resubmission, in backend seconds.
        backoff: f64,
        /// Typed category of the failure being retried.
        reason: FaultReason,
        /// The failure's full wire-format reason string.
        detail: String,
        /// Backend time the retry was scheduled.
        time: f64,
    },
    /// The run ended: the stream trailer.
    WorkflowFinished {
        /// `true` if every job completed.
        succeeded: bool,
        /// Workflow Wall Time, in backend seconds.
        wall_time: f64,
        /// Backend time at workflow end.
        time: f64,
    },
}

impl WorkflowEvent {
    /// The backend timestamp this event carries: the terminal events'
    /// `times.finished`, the explicit `time` elsewhere, and `None` for
    /// the timeless [`WorkflowEvent::JobDeclared`] manifest entries.
    pub fn time(&self) -> Option<f64> {
        match self {
            WorkflowEvent::WorkflowStarted { time, .. }
            | WorkflowEvent::Skipped { time, .. }
            | WorkflowEvent::Submitted { time, .. }
            | WorkflowEvent::InstallStarted { time, .. }
            | WorkflowEvent::Started { time, .. }
            | WorkflowEvent::RetryScheduled { time, .. }
            | WorkflowEvent::WorkflowFinished { time, .. } => Some(*time),
            WorkflowEvent::Completed { times, .. }
            | WorkflowEvent::Failed { times, .. }
            | WorkflowEvent::TimedOut { times, .. } => Some(times.finished),
            WorkflowEvent::JobDeclared { .. } => None,
        }
    }

    /// The stream-ordering model shared by the `W0709` lint and the
    /// `E08xx` verifier: the backend time at which the engine *wrote*
    /// this event, for the kinds written in nondecreasing time order.
    ///
    /// Healthy engine streams are not globally monotone over every
    /// `time=` field: `InstallStarted` and `Started` are synthesized
    /// retrospectively when an attempt completes, carrying the
    /// attempt's earlier timestamps, so under parallel execution a
    /// later-finishing job's start legitimately appears after an
    /// earlier completion.  Those two kinds — and the timeless
    /// [`WorkflowEvent::JobDeclared`] manifest entries — return `None`
    /// and do not constrain stream order.  Terminal events order by
    /// their `times.finished`.
    pub fn emission_time(&self) -> Option<f64> {
        match self {
            WorkflowEvent::WorkflowStarted { time, .. }
            | WorkflowEvent::WorkflowFinished { time, .. }
            | WorkflowEvent::Skipped { time, .. }
            | WorkflowEvent::Submitted { time, .. }
            | WorkflowEvent::RetryScheduled { time, .. } => Some(*time),
            WorkflowEvent::Completed { times, .. }
            | WorkflowEvent::Failed { times, .. }
            | WorkflowEvent::TimedOut { times, .. } => Some(times.finished),
            WorkflowEvent::JobDeclared { .. }
            | WorkflowEvent::InstallStarted { .. }
            | WorkflowEvent::Started { .. } => None,
        }
    }
}

/// A consumer of the live event stream.
///
/// The engine's downstream layers implement this (directly or via
/// [`MonitorSink`]); feeding a recorded stream back through a sink
/// reproduces exactly what the live consumer saw.
pub trait EventSink {
    /// Consumes one event.
    fn event(&mut self, ev: &WorkflowEvent);
}

/// An [`EventSink`] that discards every event — the default extra
/// sink of [`Engine::run`], and a convenient placeholder wherever a
/// sink is required but nothing listens.
///
/// [`Engine::run`]: crate::engine::Engine::run
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn event(&mut self, _ev: &WorkflowEvent) {}
}

/// The bridge from events to the historical [`WorkflowMonitor`]
/// callbacks: `Submitted` → `job_submitted`, terminal events →
/// `job_terminated`, `RetryScheduled` → `job_retry`, and
/// `WorkflowFinished` → `workflow_finished`. Manifest and phase events
/// (`WorkflowStarted`, `JobDeclared`, `Skipped`, `InstallStarted`,
/// `Started`) have no callback equivalent and are ignored.
///
/// [`Engine::run`] drives its monitor through one of these, so a
/// monitor fed a replayed stream observes the identical callback
/// sequence — timestamps included — as it did live.
///
/// [`Engine::run`]: crate::engine::Engine::run
pub struct MonitorSink<'a> {
    jobs: &'a [ExecutableJob],
    monitor: &'a mut dyn WorkflowMonitor,
}

impl<'a> MonitorSink<'a> {
    /// Wraps `monitor`, resolving job ids against `jobs` (the
    /// executable workflow's job list).
    pub fn new(jobs: &'a [ExecutableJob], monitor: &'a mut dyn WorkflowMonitor) -> Self {
        MonitorSink { jobs, monitor }
    }
}

impl EventSink for MonitorSink<'_> {
    fn event(&mut self, ev: &WorkflowEvent) {
        match ev {
            WorkflowEvent::Submitted { job, attempt, time } => {
                self.monitor
                    .job_submitted(&self.jobs[job.idx()], *attempt, *time);
            }
            WorkflowEvent::Completed {
                job,
                attempt,
                times,
            } => {
                let event = CompletionEvent {
                    job: *job,
                    attempt: *attempt,
                    outcome: JobOutcome::Success,
                    times: *times,
                };
                self.monitor.job_terminated(&self.jobs[job.idx()], &event);
            }
            WorkflowEvent::Failed {
                job,
                attempt,
                detail,
                times,
                ..
            }
            | WorkflowEvent::TimedOut {
                job,
                attempt,
                detail,
                times,
            } => {
                let event = CompletionEvent {
                    job: *job,
                    attempt: *attempt,
                    outcome: JobOutcome::Failure(detail.clone()),
                    times: *times,
                };
                self.monitor.job_terminated(&self.jobs[job.idx()], &event);
            }
            WorkflowEvent::RetryScheduled {
                job,
                next_attempt,
                backoff,
                detail,
                ..
            } => {
                self.monitor
                    .job_retry(&self.jobs[job.idx()], *next_attempt, *backoff, detail);
            }
            WorkflowEvent::WorkflowFinished {
                succeeded,
                wall_time,
                ..
            } => {
                self.monitor.workflow_finished(*succeeded, *wall_time);
            }
            WorkflowEvent::WorkflowStarted { .. }
            | WorkflowEvent::JobDeclared { .. }
            | WorkflowEvent::Skipped { .. }
            | WorkflowEvent::InstallStarted { .. }
            | WorkflowEvent::Started { .. } => {}
        }
    }
}

fn replay_err(reason: String) -> WmsError {
    WmsError::EventLogParse { line: 0, reason }
}

fn record_for(records: &mut [JobRecord], job: JobId) -> Result<&mut JobRecord, WmsError> {
    let declared = records.len();
    records.get_mut(job.idx()).ok_or_else(|| {
        replay_err(format!(
            "event references undeclared job {job} ({declared} declared)"
        ))
    })
}

/// Folds an event stream back into the [`WorkflowRun`] the engine
/// produced live — job records, fault counters, wall time, and (on
/// failure) the rescue DAG are all reconstructed, so
/// [`crate::statistics::compute`], [`crate::analyzer::analyze`], and
/// rescue resubmission work from a log alone.
///
/// A stream truncated before its `WorkflowFinished` trailer (a genuine
/// submit-host crash, as opposed to the engine's *scripted* crash
/// which still writes the trailer) replays as a failed run whose wall
/// time ends at the last recorded event.
///
/// # Errors
/// Returns [`WmsError::EventLogParse`] when the stream is not a valid
/// engine emission: no `WorkflowStarted` header, out-of-order job
/// declarations, or lifecycle events referencing undeclared jobs.
pub fn replay(events: &[WorkflowEvent]) -> Result<WorkflowRun, WmsError> {
    let mut header: Option<(String, String)> = None;
    let mut start = 0.0f64;
    let mut last_time = 0.0f64;
    let mut finished: Option<(bool, f64)> = None;
    let mut records: Vec<JobRecord> = Vec::new();
    let mut faults = FaultCounters::default();

    for ev in events {
        if let Some(t) = ev.time() {
            last_time = last_time.max(t);
        }
        match ev {
            WorkflowEvent::WorkflowStarted {
                name, site, time, ..
            } => {
                header = Some((name.clone(), site.clone()));
                start = *time;
            }
            WorkflowEvent::JobDeclared {
                job,
                name,
                transformation,
                kind,
            } => {
                if job.idx() != records.len() {
                    return Err(replay_err(format!(
                        "job {job} declared out of order (expected {})",
                        records.len()
                    )));
                }
                records.push(JobRecord {
                    job: *job,
                    name: name.clone(),
                    transformation: transformation.clone(),
                    kind: *kind,
                    state: JobState::Unready,
                    attempts: 0,
                    times: None,
                    failed_attempts: Vec::new(),
                    failure_reasons: Vec::new(),
                    failure_kinds: Vec::new(),
                });
            }
            WorkflowEvent::Skipped { job, .. } => {
                record_for(&mut records, *job)?.state = JobState::SkippedDone;
            }
            WorkflowEvent::Submitted { job, attempt, .. } => {
                record_for(&mut records, *job)?.attempts = attempt + 1;
            }
            WorkflowEvent::InstallStarted { job, .. } | WorkflowEvent::Started { job, .. } => {
                record_for(&mut records, *job)?;
            }
            WorkflowEvent::Completed { job, times, .. } => {
                let rec = record_for(&mut records, *job)?;
                rec.state = JobState::Done;
                rec.times = Some(*times);
            }
            WorkflowEvent::Failed {
                job,
                reason,
                detail,
                times,
                ..
            } => {
                faults.record_reason(*reason);
                let rec = record_for(&mut records, *job)?;
                rec.failed_attempts.push(*times);
                rec.failure_reasons.push(detail.clone());
                rec.failure_kinds.push(*reason);
                rec.state = JobState::Failed;
            }
            WorkflowEvent::TimedOut {
                job, detail, times, ..
            } => {
                faults.record_reason(FaultReason::Timeout);
                let rec = record_for(&mut records, *job)?;
                rec.failed_attempts.push(*times);
                rec.failure_reasons.push(detail.clone());
                rec.failure_kinds.push(FaultReason::Timeout);
                rec.state = JobState::Failed;
            }
            WorkflowEvent::RetryScheduled { job, backoff, .. } => {
                faults.retries += 1;
                faults.backoff_wait += backoff;
                // The failure above was not terminal after all: until
                // the resubmission terminates, the job counts as not
                // yet resolved — exactly the state a crashed live run
                // records for in-flight retries.
                record_for(&mut records, *job)?.state = JobState::Unready;
            }
            WorkflowEvent::WorkflowFinished {
                succeeded,
                wall_time,
                ..
            } => {
                finished = Some((*succeeded, *wall_time));
            }
        }
    }

    let (name, site) =
        header.ok_or_else(|| replay_err("stream has no workflow-started header".into()))?;
    let (succeeded, wall_time) = finished.unwrap_or((false, last_time - start));
    let outcome = if succeeded {
        WorkflowOutcome::Success
    } else {
        let done: Vec<String> = records
            .iter()
            .filter(|r| matches!(r.state, JobState::Done | JobState::SkippedDone))
            .map(|r| r.name.clone())
            .collect();
        WorkflowOutcome::Failed(RescueDag {
            workflow_name: name.clone(),
            site: site.clone(),
            done,
        })
    };
    Ok(WorkflowRun {
        name,
        site,
        outcome,
        wall_time,
        records,
        faults,
        events: events.to_vec(),
    })
}

/// Rebuilds the rescue DAG of a failed (or crashed/truncated) run from
/// its event stream alone; `None` when the stream records a success.
///
/// # Errors
/// Returns [`WmsError::EventLogParse`] when [`replay`] rejects the
/// stream.
pub fn rescue_from_events(events: &[WorkflowEvent]) -> Result<Option<RescueDag>, WmsError> {
    Ok(match replay(events)?.outcome {
        WorkflowOutcome::Failed(rescue) => Some(rescue),
        WorkflowOutcome::Success => None,
    })
}

pub mod log {
    //! The line-oriented event-log text format.
    //!
    //! One event per line, `keyword key=value ...` in the same
    //! hand-rolled idiom as the fault-plan format: whitespace-separated
    //! `key=value` fields, `#` comments and blank lines skipped, parse
    //! errors carry one-based line numbers. Free-text fields (`name=`,
    //! `detail=`) are always the last field of their line and consume
    //! the rest of it verbatim, so job names with spaces survive.
    //! Timestamps are written with Rust's shortest round-tripping
    //! float representation, so `parse(&write(events))` reproduces the
    //! stream exactly.

    use super::WorkflowEvent;
    use crate::engine::{FaultReason, JobTimes};
    use crate::error::WmsError;
    use crate::planner::JobKind;
    use crate::workflow::JobId;
    use std::fmt::Write as _;

    /// The version-stamped comment heading every written log.
    pub const HEADER: &str = "# pegasus event log v1";

    /// Serializes an event stream to the text format, one line per
    /// event under a version-comment header.
    pub fn write(events: &[WorkflowEvent]) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&append(events));
        out
    }

    /// Renders events as log lines *without* the header — the
    /// incremental form the `pegasus serve` daemon appends to a
    /// member's log file as chunks arrive. A header written once
    /// followed by `append` chunks concatenates to exactly
    /// [`write()`] of the full stream.
    pub fn append(events: &[WorkflowEvent]) -> String {
        let mut out = String::new();
        for ev in events {
            write_event(&mut out, ev);
        }
        out
    }

    fn clean(text: &str) -> String {
        // Newlines are the one thing the line format cannot carry.
        text.replace(['\n', '\r'], " ")
    }

    fn write_event(out: &mut String, ev: &WorkflowEvent) {
        match ev {
            WorkflowEvent::WorkflowStarted {
                name,
                site,
                jobs,
                time,
            } => {
                writeln!(
                    out,
                    "workflow-started time={time} jobs={jobs} site={site} name={}",
                    clean(name)
                )
            }
            WorkflowEvent::JobDeclared {
                job,
                name,
                transformation,
                kind,
            } => writeln!(
                out,
                "job id={job} kind={kind} transformation={transformation} name={}",
                clean(name)
            ),
            WorkflowEvent::Skipped { job, time } => {
                writeln!(out, "skipped time={time} job={job}")
            }
            WorkflowEvent::Submitted { job, attempt, time } => {
                writeln!(out, "submitted time={time} job={job} attempt={attempt}")
            }
            WorkflowEvent::InstallStarted { job, attempt, time } => {
                writeln!(
                    out,
                    "install-started time={time} job={job} attempt={attempt}"
                )
            }
            WorkflowEvent::Started { job, attempt, time } => {
                writeln!(out, "started time={time} job={job} attempt={attempt}")
            }
            WorkflowEvent::Completed {
                job,
                attempt,
                times,
            } => writeln!(
                out,
                "completed job={job} attempt={attempt} {}",
                times_fields(times)
            ),
            WorkflowEvent::Failed {
                job,
                attempt,
                reason,
                detail,
                times,
            } => writeln!(
                out,
                "failed job={job} attempt={attempt} reason={} {} detail={}",
                reason.prefix(),
                times_fields(times),
                clean(detail)
            ),
            WorkflowEvent::TimedOut {
                job,
                attempt,
                detail,
                times,
            } => writeln!(
                out,
                "timed-out job={job} attempt={attempt} {} detail={}",
                times_fields(times),
                clean(detail)
            ),
            WorkflowEvent::RetryScheduled {
                job,
                next_attempt,
                backoff,
                reason,
                detail,
                time,
            } => writeln!(
                out,
                "retry-scheduled time={time} job={job} next-attempt={next_attempt} \
                 backoff={backoff} reason={} detail={}",
                reason.prefix(),
                clean(detail)
            ),
            WorkflowEvent::WorkflowFinished {
                succeeded,
                wall_time,
                time,
            } => writeln!(
                out,
                "workflow-finished time={time} wall-time={wall_time} succeeded={succeeded}"
            ),
        }
        .expect("writing to a String cannot fail");
    }

    fn times_fields(t: &JobTimes) -> String {
        format!(
            "submitted={} started={} install-done={} finished={}",
            t.submitted, t.started, t.install_done, t.finished
        )
    }

    fn parse_err(line: usize, reason: impl Into<String>) -> WmsError {
        WmsError::EventLogParse {
            line,
            reason: reason.into(),
        }
    }

    fn fields(rest: &str, line: usize) -> Result<Vec<(&str, &str)>, WmsError> {
        rest.split_whitespace()
            .map(|tok| {
                tok.split_once('=')
                    .ok_or_else(|| parse_err(line, format!("expected key=value, got {tok:?}")))
            })
            .collect()
    }

    fn take<'a>(
        fields: &[(&'a str, &'a str)],
        key: &str,
        line: usize,
    ) -> Result<&'a str, WmsError> {
        fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| parse_err(line, format!("missing field {key}")))
    }

    fn take_f64(fields: &[(&str, &str)], key: &str, line: usize) -> Result<f64, WmsError> {
        let v = take(fields, key, line)?;
        v.parse()
            .map_err(|_| parse_err(line, format!("bad number {v:?} for {key}")))
    }

    fn take_u32(fields: &[(&str, &str)], key: &str, line: usize) -> Result<u32, WmsError> {
        let v = take(fields, key, line)?;
        v.parse()
            .map_err(|_| parse_err(line, format!("bad integer {v:?} for {key}")))
    }

    fn take_usize(fields: &[(&str, &str)], key: &str, line: usize) -> Result<usize, WmsError> {
        let v = take(fields, key, line)?;
        v.parse()
            .map_err(|_| parse_err(line, format!("bad integer {v:?} for {key}")))
    }

    fn take_bool(fields: &[(&str, &str)], key: &str, line: usize) -> Result<bool, WmsError> {
        match take(fields, key, line)? {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(parse_err(line, format!("bad boolean {other:?} for {key}"))),
        }
    }

    fn take_reason(fields: &[(&str, &str)], line: usize) -> Result<FaultReason, WmsError> {
        match take(fields, "reason", line)? {
            "preempted" => Ok(FaultReason::Preemption),
            "evicted" => Ok(FaultReason::Eviction),
            "install" => Ok(FaultReason::InstallFailure),
            "timeout" => Ok(FaultReason::Timeout),
            "error" => Ok(FaultReason::Other),
            other => Err(parse_err(line, format!("unknown fault reason {other:?}"))),
        }
    }

    fn take_kind(fields: &[(&str, &str)], line: usize) -> Result<JobKind, WmsError> {
        match take(fields, "kind", line)? {
            "create_dir" => Ok(JobKind::CreateDir),
            "stage_in" => Ok(JobKind::StageIn),
            "compute" => Ok(JobKind::Compute),
            "stage_out" => Ok(JobKind::StageOut),
            "cleanup" => Ok(JobKind::Cleanup),
            other => Err(parse_err(line, format!("unknown job kind {other:?}"))),
        }
    }

    fn take_times(fields: &[(&str, &str)], line: usize) -> Result<JobTimes, WmsError> {
        Ok(JobTimes {
            submitted: take_f64(fields, "submitted", line)?,
            started: take_f64(fields, "started", line)?,
            install_done: take_f64(fields, "install-done", line)?,
            finished: take_f64(fields, "finished", line)?,
        })
    }

    /// Splits off a free-text tail field (`marker` is e.g. `"name="`):
    /// the head keeps the structured `key=value` fields, the tail is
    /// the verbatim text after the first ` marker` occurrence.
    fn split_tail<'a>(
        rest: &'a str,
        marker: &str,
        line: usize,
    ) -> Result<(&'a str, &'a str), WmsError> {
        let pattern = format!(" {marker}");
        if let Some(i) = rest.find(&pattern) {
            Ok((&rest[..i], &rest[i + pattern.len()..]))
        } else if let Some(tail) = rest.strip_prefix(marker) {
            Ok(("", tail))
        } else {
            Err(parse_err(
                line,
                format!("missing field {}", marker.trim_end_matches('=')),
            ))
        }
    }

    /// Parses the text format back into an event stream.
    ///
    /// # Errors
    /// Returns [`WmsError::EventLogParse`] with a one-based line
    /// number on unknown keywords, missing or malformed fields.
    pub fn parse(text: &str) -> Result<Vec<WorkflowEvent>, WmsError> {
        Ok(parse_lines(text)?.into_iter().map(|(_, ev)| ev).collect())
    }

    /// Like [`parse`], but pairs every event with the one-based line
    /// number it was read from, so the lint sanitizer can point its
    /// diagnostics at the offending line of the log file.
    ///
    /// # Errors
    /// Returns [`WmsError::EventLogParse`] exactly as [`parse`] does.
    pub fn parse_lines(text: &str) -> Result<Vec<(usize, WorkflowEvent)>, WmsError> {
        let mut events = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (keyword, rest) = trimmed
                .split_once(char::is_whitespace)
                .unwrap_or((trimmed, ""));
            events.push((line, parse_event(keyword, rest.trim_start(), line)?));
        }
        Ok(events)
    }

    fn parse_event(keyword: &str, rest: &str, line: usize) -> Result<WorkflowEvent, WmsError> {
        match keyword {
            "workflow-started" => {
                let (head, name) = split_tail(rest, "name=", line)?;
                let f = fields(head, line)?;
                Ok(WorkflowEvent::WorkflowStarted {
                    name: name.to_string(),
                    site: take(&f, "site", line)?.to_string(),
                    jobs: take_usize(&f, "jobs", line)?,
                    time: take_f64(&f, "time", line)?,
                })
            }
            "job" => {
                let (head, name) = split_tail(rest, "name=", line)?;
                let f = fields(head, line)?;
                Ok(WorkflowEvent::JobDeclared {
                    job: JobId::new(take_usize(&f, "id", line)?),
                    name: name.to_string(),
                    transformation: take(&f, "transformation", line)?.to_string(),
                    kind: take_kind(&f, line)?,
                })
            }
            "skipped" => {
                let f = fields(rest, line)?;
                Ok(WorkflowEvent::Skipped {
                    job: JobId::new(take_usize(&f, "job", line)?),
                    time: take_f64(&f, "time", line)?,
                })
            }
            "submitted" => {
                let f = fields(rest, line)?;
                Ok(WorkflowEvent::Submitted {
                    job: JobId::new(take_usize(&f, "job", line)?),
                    attempt: take_u32(&f, "attempt", line)?,
                    time: take_f64(&f, "time", line)?,
                })
            }
            "install-started" => {
                let f = fields(rest, line)?;
                Ok(WorkflowEvent::InstallStarted {
                    job: JobId::new(take_usize(&f, "job", line)?),
                    attempt: take_u32(&f, "attempt", line)?,
                    time: take_f64(&f, "time", line)?,
                })
            }
            "started" => {
                let f = fields(rest, line)?;
                Ok(WorkflowEvent::Started {
                    job: JobId::new(take_usize(&f, "job", line)?),
                    attempt: take_u32(&f, "attempt", line)?,
                    time: take_f64(&f, "time", line)?,
                })
            }
            "completed" => {
                let f = fields(rest, line)?;
                Ok(WorkflowEvent::Completed {
                    job: JobId::new(take_usize(&f, "job", line)?),
                    attempt: take_u32(&f, "attempt", line)?,
                    times: take_times(&f, line)?,
                })
            }
            "failed" => {
                let (head, detail) = split_tail(rest, "detail=", line)?;
                let f = fields(head, line)?;
                Ok(WorkflowEvent::Failed {
                    job: JobId::new(take_usize(&f, "job", line)?),
                    attempt: take_u32(&f, "attempt", line)?,
                    reason: take_reason(&f, line)?,
                    detail: detail.to_string(),
                    times: take_times(&f, line)?,
                })
            }
            "timed-out" => {
                let (head, detail) = split_tail(rest, "detail=", line)?;
                let f = fields(head, line)?;
                Ok(WorkflowEvent::TimedOut {
                    job: JobId::new(take_usize(&f, "job", line)?),
                    attempt: take_u32(&f, "attempt", line)?,
                    detail: detail.to_string(),
                    times: take_times(&f, line)?,
                })
            }
            "retry-scheduled" => {
                let (head, detail) = split_tail(rest, "detail=", line)?;
                let f = fields(head, line)?;
                Ok(WorkflowEvent::RetryScheduled {
                    job: JobId::new(take_usize(&f, "job", line)?),
                    next_attempt: take_u32(&f, "next-attempt", line)?,
                    backoff: take_f64(&f, "backoff", line)?,
                    reason: take_reason(&f, line)?,
                    detail: detail.to_string(),
                    time: take_f64(&f, "time", line)?,
                })
            }
            "workflow-finished" => {
                let f = fields(rest, line)?;
                Ok(WorkflowEvent::WorkflowFinished {
                    succeeded: take_bool(&f, "succeeded", line)?,
                    wall_time: take_f64(&f, "wall-time", line)?,
                    time: take_f64(&f, "time", line)?,
                })
            }
            other => Err(parse_err(line, format!("unknown event keyword {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::scripted::ScriptedBackend;
    use crate::engine::{Engine, EngineConfig, RetryPolicy};
    use crate::planner::{ExecutableJob, ExecutableWorkflow};

    fn j(i: usize) -> JobId {
        JobId::new(i)
    }

    fn job(id: usize, name: &str, runtime: f64, install: f64) -> ExecutableJob {
        ExecutableJob {
            id: JobId::new(id),
            name: name.into(),
            transformation: name.split('_').next().unwrap_or(name).to_string(),
            kind: JobKind::Compute,
            args: vec![],
            runtime_hint: runtime,
            install_hint: install,
            source_jobs: vec![],
        }
    }

    fn chain() -> ExecutableWorkflow {
        ExecutableWorkflow {
            name: "chain".into(),
            site: "test".into(),
            jobs: vec![
                job(0, "a", 10.0, 0.0),
                job(1, "b", 20.0, 3.0),
                job(2, "c", 5.0, 0.0),
            ],
            edges: vec![(j(0), j(1)), (j(1), j(2))],
        }
    }

    fn every_variant() -> Vec<WorkflowEvent> {
        let times = JobTimes {
            submitted: 1.25,
            started: 2.5,
            install_done: 4.75,
            finished: 10.125,
        };
        vec![
            WorkflowEvent::WorkflowStarted {
                name: "blast2cap3 n300".into(),
                site: "osg".into(),
                jobs: 3,
                time: 0.0,
            },
            WorkflowEvent::JobDeclared {
                job: j(0),
                name: "stage_in_my file.txt".into(),
                transformation: "transfer".into(),
                kind: JobKind::StageIn,
            },
            WorkflowEvent::JobDeclared {
                job: j(1),
                name: "run_cap3_0".into(),
                transformation: "cap3".into(),
                kind: JobKind::Compute,
            },
            WorkflowEvent::JobDeclared {
                job: j(2),
                name: "cleanup".into(),
                transformation: "rm".into(),
                kind: JobKind::Cleanup,
            },
            WorkflowEvent::Skipped {
                job: j(0),
                time: 0.0,
            },
            WorkflowEvent::Submitted {
                job: j(1),
                attempt: 0,
                time: 1.25,
            },
            WorkflowEvent::InstallStarted {
                job: j(1),
                attempt: 0,
                time: 2.5,
            },
            WorkflowEvent::Started {
                job: j(1),
                attempt: 0,
                time: 4.75,
            },
            WorkflowEvent::Failed {
                job: j(1),
                attempt: 0,
                reason: FaultReason::Preemption,
                detail: "preempted:storm".into(),
                times,
            },
            WorkflowEvent::RetryScheduled {
                job: j(1),
                next_attempt: 1,
                backoff: 30.5,
                reason: FaultReason::Preemption,
                detail: "preempted:storm".into(),
                time: 10.125,
            },
            WorkflowEvent::Submitted {
                job: j(1),
                attempt: 1,
                time: 10.125,
            },
            WorkflowEvent::TimedOut {
                job: j(1),
                attempt: 1,
                detail: "timeout: exceeded 600s".into(),
                times,
            },
            WorkflowEvent::Completed {
                job: j(1),
                attempt: 2,
                times,
            },
            WorkflowEvent::WorkflowFinished {
                succeeded: false,
                wall_time: 100.5,
                time: 100.5,
            },
        ]
    }

    #[test]
    fn log_round_trips_every_variant() {
        let events = every_variant();
        let text = log::write(&events);
        assert!(text.starts_with(log::HEADER));
        let back = log::parse(&text).expect("written logs parse");
        assert_eq!(back, events);
    }

    #[test]
    fn log_round_trips_awkward_floats() {
        let events = vec![WorkflowEvent::WorkflowFinished {
            succeeded: true,
            wall_time: 0.1 + 0.2, // not representable exactly
            time: 1e308,
        }];
        let back = log::parse(&log::write(&events)).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases = [
            ("frobnicate x=1\n", "unknown event keyword"),
            ("submitted time=1 job=0\n", "missing field attempt"),
            ("submitted time=x job=0 attempt=0\n", "bad number"),
            ("submitted time=1 job=0 attempt\n", "key=value"),
            (
                "failed job=0 attempt=0 reason=gremlins submitted=0 started=0 \
                 install-done=0 finished=0 detail=x\n",
                "unknown fault reason",
            ),
            (
                "job id=0 kind=wizard transformation=t name=n\n",
                "unknown job kind",
            ),
            (
                "workflow-finished time=1 wall-time=1 succeeded=maybe\n",
                "bad boolean",
            ),
        ];
        for (text, want) in cases {
            let err = log::parse(&format!("# comment\n\n{text}")).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("line 3") && msg.contains(want),
                "{text:?} -> {msg}"
            );
        }
    }

    #[test]
    fn replay_reconstructs_a_live_run_exactly() {
        let wf = chain();
        let mut be = ScriptedBackend::new();
        be.fail_plan.insert(("b".into(), 0));
        be.fail_plan.insert(("b".into(), 1));
        let cfg = EngineConfig::builder()
            .policy(RetryPolicy::exponential(3, 7.0))
            .build();
        let run = Engine::run(&mut be, &wf, &cfg, &mut crate::engine::NoopMonitor);
        assert!(run.succeeded());
        let replayed = replay(&run.events).expect("engine streams replay");
        assert_eq!(replayed, run);
    }

    #[test]
    fn replay_reconstructs_failure_and_rescue() {
        let wf = chain();
        let mut be = ScriptedBackend::new();
        be.fail_plan.insert(("b".into(), 0));
        let run = Engine::run(
            &mut be,
            &wf,
            &EngineConfig::default(),
            &mut crate::engine::NoopMonitor,
        );
        assert!(!run.succeeded());
        let replayed = replay(&run.events).unwrap();
        assert_eq!(replayed, run);
        let rescue = rescue_from_events(&run.events)
            .unwrap()
            .expect("failed run");
        match &run.outcome {
            WorkflowOutcome::Failed(live) => assert_eq!(&rescue, live),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn replay_handles_rescue_skips() {
        let wf = chain();
        let cfg = EngineConfig::builder().skip_done(["a"]).build();
        let run = Engine::run(
            &mut ScriptedBackend::new(),
            &wf,
            &cfg,
            &mut crate::engine::NoopMonitor,
        );
        let replayed = replay(&run.events).unwrap();
        assert_eq!(replayed, run);
        assert_eq!(replayed.records[0].state, JobState::SkippedDone);
    }

    #[test]
    fn truncated_stream_replays_as_a_crashed_run() {
        let wf = chain();
        let run = Engine::run(
            &mut ScriptedBackend::new(),
            &wf,
            &EngineConfig::default(),
            &mut crate::engine::NoopMonitor,
        );
        assert!(run.succeeded());
        // Chop the trailer off, as a real submit-host crash would.
        let truncated = &run.events[..run.events.len() - 1];
        let replayed = replay(truncated).unwrap();
        assert!(!replayed.succeeded());
        assert_eq!(replayed.wall_time, run.wall_time);
        match replayed.outcome {
            WorkflowOutcome::Failed(rescue) => {
                assert_eq!(rescue.done, vec!["a", "b", "c"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn replay_rejects_malformed_streams() {
        assert!(replay(&[]).is_err());
        let undeclared = [
            WorkflowEvent::WorkflowStarted {
                name: "w".into(),
                site: "s".into(),
                jobs: 0,
                time: 0.0,
            },
            WorkflowEvent::Submitted {
                job: j(5),
                attempt: 0,
                time: 0.0,
            },
        ];
        let err = replay(&undeclared).unwrap_err();
        assert!(err.to_string().contains("undeclared job 5"), "{err}");
    }

    #[test]
    fn monitor_bridge_reproduces_live_callbacks() {
        #[derive(Default, PartialEq, Debug)]
        struct Tape(Vec<String>);
        impl WorkflowMonitor for Tape {
            fn job_submitted(&mut self, job: &ExecutableJob, attempt: u32, now: f64) {
                self.0.push(format!("submit:{}:{attempt}@{now}", job.name));
            }
            fn job_terminated(&mut self, job: &ExecutableJob, ev: &CompletionEvent) {
                self.0.push(format!("done:{}:{:?}", job.name, ev.outcome));
            }
            fn job_retry(&mut self, job: &ExecutableJob, next: u32, delay: f64, reason: &str) {
                self.0
                    .push(format!("retry:{}:{next}:{delay}:{reason}", job.name));
            }
            fn workflow_finished(&mut self, succeeded: bool, wall: f64) {
                self.0.push(format!("finished:{succeeded}@{wall}"));
            }
        }

        let wf = chain();
        let mut be = ScriptedBackend::new();
        be.fail_plan.insert(("b".into(), 0));
        let cfg = EngineConfig::builder()
            .policy(RetryPolicy::exponential(2, 5.0))
            .build();
        let mut live = Tape::default();
        let run = Engine::run(&mut be, &wf, &cfg, &mut live);
        assert!(run.succeeded());

        let mut offline = Tape::default();
        {
            let mut sink = MonitorSink::new(&wf.jobs, &mut offline);
            for ev in &run.events {
                sink.event(ev);
            }
        }
        assert_eq!(offline, live);
    }
}

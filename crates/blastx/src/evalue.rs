//! Karlin–Altschul statistics: bit scores and E-values.
//!
//! We use the standard ungapped BLOSUM62 parameters
//! (`lambda = 0.3176`, `K = 0.134`) because the extension stage is
//! X-drop-ungapped by default. The numbers feed the `evalue` and
//! `bitscore` columns of the tabular output and the significance
//! filter in the search driver; blast2cap3 itself only consumes the
//! (query, subject) pairing, so approximate statistics are sufficient
//! as long as they are monotone in the raw score — which these are by
//! construction.

/// Karlin–Altschul parameters for a scoring system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KarlinParams {
    /// Scale parameter lambda (per raw-score unit).
    pub lambda: f64,
    /// Search-space constant K.
    pub k: f64,
}

/// Standard parameters for ungapped BLOSUM62.
pub const BLOSUM62_UNGAPPED: KarlinParams = KarlinParams {
    lambda: 0.3176,
    k: 0.134,
};

impl KarlinParams {
    /// Normalised bit score for a raw alignment score.
    pub fn bit_score(&self, raw: i32) -> f64 {
        (self.lambda * raw as f64 - self.k.ln()) / std::f64::consts::LN_2
    }

    /// Expected number of chance alignments with score >= `raw` in a
    /// search space of `m` query residues by `n` total database
    /// residues.
    pub fn evalue(&self, raw: i32, m: usize, n: usize) -> f64 {
        self.k * (m as f64) * (n as f64) * (-self.lambda * raw as f64).exp()
    }

    /// The raw score needed for an E-value of `e` in an `m x n` space;
    /// useful for choosing report thresholds.
    pub fn score_for_evalue(&self, e: f64, m: usize, n: usize) -> i32 {
        let mn = (m.max(1) as f64) * (n.max(1) as f64);
        ((self.k * mn / e).ln() / self.lambda).ceil() as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_score_is_monotone_in_raw_score() {
        let p = BLOSUM62_UNGAPPED;
        assert!(p.bit_score(100) > p.bit_score(50));
        assert!(p.bit_score(50) > p.bit_score(0));
    }

    #[test]
    fn evalue_decreases_with_score_and_grows_with_space() {
        let p = BLOSUM62_UNGAPPED;
        assert!(p.evalue(100, 300, 100_000) < p.evalue(50, 300, 100_000));
        assert!(p.evalue(50, 300, 100_000) < p.evalue(50, 300, 1_000_000));
    }

    #[test]
    fn typical_magnitudes_are_sane() {
        let p = BLOSUM62_UNGAPPED;
        // A raw score of 100 in a modest search space is overwhelmingly
        // significant; a raw score of 20 is marginal.
        assert!(p.evalue(100, 500, 1_000_000) < 1e-5);
        assert!(p.evalue(20, 500, 1_000_000) > 1e-3);
    }

    #[test]
    fn score_for_evalue_inverts_evalue() {
        let p = BLOSUM62_UNGAPPED;
        let s = p.score_for_evalue(1e-5, 500, 1_000_000);
        assert!(p.evalue(s, 500, 1_000_000) <= 1e-5);
        assert!(p.evalue(s - 2, 500, 1_000_000) > 1e-5);
    }

    #[test]
    fn bit_score_round_numbers() {
        let p = BLOSUM62_UNGAPPED;
        // lambda*S - ln K at S=0 gives a small positive bit score
        // offset; check the formula directly.
        let expected = (0.3176 * 40.0 - 0.134f64.ln()) / std::f64::consts::LN_2;
        assert!((p.bit_score(40) - expected).abs() < 1e-12);
    }
}

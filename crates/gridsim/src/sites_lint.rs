//! Site-definition lint pass: the E05xx rules of `pegasus lint`.
//!
//! [`lint_sites`] checks a parsed slice of [`SiteDef`]s (as produced
//! by [`crate::sites::parse_defs`], which deliberately performs no
//! cross-definition checks so the defects survive to be reported
//! here) and returns [`Diagnostic`]s in the shared
//! [`pegasus_wms::lint`] vocabulary:
//!
//! * `E0501 duplicate-site` — a site name declared twice;
//! * `E0502 duplicate-alias` — an alias declared for more than one
//!   site (or twice for the same one);
//! * `E0503 alias-shadows-site` — an alias colliding with a declared
//!   site name, which would make resolution ambiguous;
//! * `E0504 zero-slots` — a site with no execution slots can never
//!   run a job;
//! * `E0505 negative-site-parameter` — a negative rate, delay, or
//!   factor (the simulator clamps samples, but a negative knob is
//!   always a typo);
//! * `E0506 undefined-site-reference` — a `catalog-site=` target that
//!   names no defined site or alias;
//! * `E0507 site-def-syntax` — reserved for the parse-failure path
//!   (the CLI wraps [`WmsError::SiteDefParse`] under this code; a
//!   parsed slice by definition has no syntax errors).
//!
//! The pass lives in `gridsim` rather than the core crate because the
//! [`SiteDef`] vocabulary does; the core `lint` module only defines
//! the rule registry entries.

use crate::sites::SiteDef;
use pegasus_wms::error::{Span, WmsError};
use pegasus_wms::lint::Diagnostic;

/// Line positions recovered for one definition by re-walking the
/// source the same way the parser does.
#[derive(Debug, Default, Clone)]
struct DefSpans {
    /// The `site <name>` header line.
    header: Span,
    /// First line each field key appeared on.
    keys: Vec<(String, Span)>,
}

impl DefSpans {
    fn key(&self, key: &str) -> Span {
        self.keys
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, s)| *s)
            .unwrap_or(self.header)
    }
}

/// Maps definition index → its spans. Returns an empty vector (every
/// span unknown) when no source is available.
fn def_spans(source: Option<&str>) -> Vec<DefSpans> {
    let Some(text) = source else {
        return Vec::new();
    };
    let mut spans: Vec<DefSpans> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let word = trimmed.split_whitespace().next().unwrap_or("");
        if word == "site" {
            spans.push(DefSpans {
                header: Span::line(line),
                keys: Vec::new(),
            });
            continue;
        }
        let Some(current) = spans.last_mut() else {
            continue;
        };
        for tok in trimmed.split_whitespace() {
            if let Some((key, _)) = tok.split_once('=') {
                if !current.keys.iter().any(|(k, _)| k == key) {
                    current.keys.push((key.to_string(), Span::line(line)));
                }
            }
        }
    }
    spans
}

fn spans_of(spans: &[DefSpans], idx: usize) -> DefSpans {
    spans.get(idx).cloned().unwrap_or_default()
}

/// Wraps a [`WmsError::SiteDefParse`] as the `E0507` diagnostic the
/// CLI reports when a definitions file fails to parse at all. Other
/// error variants are rendered with an unknown span.
pub fn syntax_diagnostic(err: &WmsError, file: &str) -> Diagnostic {
    let (span, reason) = match err {
        WmsError::SiteDefParse { line, reason } => (Span::line(*line), reason.clone()),
        other => (Span::none(), other.to_string()),
    };
    Diagnostic::new("E0507", file, span, reason)
        .with_help("see DESIGN.md \u{a7}11 for the sites.def format")
}

/// Lints parsed site definitions; `file` labels diagnostics and
/// `source` (when available) recovers line numbers.
///
/// Deterministic: diagnostics come out in definition order, one pass
/// per rule family, no I/O.
pub fn lint_sites(defs: &[SiteDef], file: &str, source: Option<&str>) -> Vec<Diagnostic> {
    let spans = def_spans(source);
    let mut diags = Vec::new();

    check_duplicate_sites(defs, &spans, file, &mut diags);
    check_aliases(defs, &spans, file, &mut diags);
    for (idx, def) in defs.iter().enumerate() {
        let at = spans_of(&spans, idx);
        check_slots(def, &at, file, &mut diags);
        check_negative_parameters(def, &at, file, &mut diags);
        check_catalog_reference(defs, def, &at, file, &mut diags);
    }
    diags
}

/// `E0501`: the same primary name declared twice.
fn check_duplicate_sites(
    defs: &[SiteDef],
    spans: &[DefSpans],
    file: &str,
    diags: &mut Vec<Diagnostic>,
) {
    for (idx, def) in defs.iter().enumerate() {
        if defs[..idx].iter().any(|d| d.name == def.name) {
            diags.push(
                Diagnostic::new(
                    "E0501",
                    file,
                    spans_of(spans, idx).header,
                    format!("site {:?} declared twice", def.name),
                )
                .with_help("later fields silently override the earlier definition's"),
            );
        }
    }
}

/// `E0502` and `E0503`: aliases colliding with other aliases or with
/// declared site names.
fn check_aliases(defs: &[SiteDef], spans: &[DefSpans], file: &str, diags: &mut Vec<Diagnostic>) {
    let mut seen: Vec<(&str, &str)> = Vec::new(); // (alias, owning site)
    for (idx, def) in defs.iter().enumerate() {
        let span = spans_of(spans, idx).key("aliases");
        for alias in &def.aliases {
            if let Some(site) = defs.iter().find(|d| d.name == *alias) {
                diags.push(
                    Diagnostic::new(
                        "E0503",
                        file,
                        span,
                        format!(
                            "alias {alias:?} of site {:?} shadows declared site {:?}",
                            def.name, site.name
                        ),
                    )
                    .with_help("drop the alias or rename one of the sites"),
                );
            }
            if let Some((_, owner)) = seen.iter().find(|(a, _)| a == alias) {
                let msg = if *owner == def.name {
                    format!("alias {alias:?} declared twice for site {owner:?}")
                } else {
                    format!(
                        "alias {alias:?} declared for both {owner:?} and {:?}",
                        def.name
                    )
                };
                diags.push(Diagnostic::new("E0502", file, span, msg));
            } else {
                seen.push((alias, &def.name));
            }
        }
    }
}

/// `E0504`: a site with no slots.
fn check_slots(def: &SiteDef, at: &DefSpans, file: &str, diags: &mut Vec<Diagnostic>) {
    if def.slots == 0 {
        diags.push(
            Diagnostic::new(
                "E0504",
                file,
                at.key("slots"),
                format!("site {:?} declares zero execution slots", def.name),
            )
            .with_help("every job submitted here would wait forever"),
        );
    }
}

/// `E0505`: negative rates, delays, and factors.
fn check_negative_parameters(
    def: &SiteDef,
    at: &DefSpans,
    file: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let mut knobs: Vec<(&str, f64)> = vec![
        ("startup-delay", def.startup_delay),
        ("install-factor", def.install_time_factor),
        ("preemption-rate", def.preemption_rate),
        ("jitter", def.runtime_jitter_sigma),
        ("task-overhead", def.task_overhead),
        ("cpu-speed", def.cpu_speed),
        ("bandwidth", def.bandwidth_bps),
    ];
    if let Some(churn) = def.churn {
        knobs.push(("churn", churn.mean_up.min(churn.mean_down)));
    }
    for (key, value) in knobs {
        if value < 0.0 {
            diags.push(Diagnostic::new(
                "E0505",
                file,
                at.key(key),
                format!("site {:?} sets {key}={value}, which is negative", def.name),
            ));
        }
    }
}

/// `E0506`: a `catalog-site` target that resolves to nothing.
fn check_catalog_reference(
    defs: &[SiteDef],
    def: &SiteDef,
    at: &DefSpans,
    file: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(target) = &def.catalog_site else {
        return;
    };
    let defined = defs
        .iter()
        .any(|d| d.name == *target || d.aliases.iter().any(|a| a == target));
    if !defined {
        diags.push(
            Diagnostic::new(
                "E0506",
                file,
                at.key("catalog-site"),
                format!(
                    "site {:?} references undefined catalog-site {target:?}",
                    def.name
                ),
            )
            .with_help("catalog-site must name another site (or alias) in the same file"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::parse_defs;

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code).collect()
    }

    fn lint(text: &str) -> Vec<Diagnostic> {
        let defs = parse_defs(text).expect("fixture parses");
        lint_sites(&defs, "test.def", Some(text))
    }

    #[test]
    fn builtin_defs_lint_clean() {
        let diags = lint(crate::sites::BUILTIN_SITES_DEF);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn duplicate_site_is_flagged_at_the_second_header() {
        let diags = lint("site a\nslots=2\n\nsite a\nslots=3\n");
        assert_eq!(codes(&diags), vec!["E0501"]);
        assert_eq!(diags[0].span.line, 4);
    }

    #[test]
    fn duplicate_alias_across_and_within_sites() {
        let diags = lint("site a\naliases=x,x\n\nsite b\naliases=x\n");
        assert_eq!(codes(&diags), vec!["E0502", "E0502"]);
        assert_eq!(diags[0].span.line, 2);
        assert_eq!(diags[1].span.line, 5);
    }

    #[test]
    fn alias_shadowing_a_site_name() {
        let diags = lint("site a\n\nsite b\naliases=a\n");
        assert_eq!(codes(&diags), vec!["E0503"]);
        assert_eq!(diags[0].span.line, 4);
    }

    #[test]
    fn zero_slots_points_at_the_slots_line() {
        let diags = lint("site a\nslots=0\n");
        assert_eq!(codes(&diags), vec!["E0504"]);
        assert_eq!(diags[0].span.line, 2);
    }

    #[test]
    fn negative_parameters_name_the_key() {
        let diags = lint("site a\nstartup-delay=-5\njitter=-0.1\n");
        assert_eq!(codes(&diags), vec!["E0505", "E0505"]);
        assert!(diags[0].message.contains("startup-delay"));
        assert!(diags[1].message.contains("jitter"));
        assert_eq!(diags[0].span.line, 2);
        assert_eq!(diags[1].span.line, 3);
    }

    #[test]
    fn negative_churn_is_flagged() {
        let diags = lint("site a\nchurn=100,-1\n");
        assert_eq!(codes(&diags), vec!["E0505"]);
        assert!(diags[0].message.contains("churn"));
    }

    #[test]
    fn undefined_catalog_site_reference() {
        let diags = lint("site a\ncatalog-site=ghost\n");
        assert_eq!(codes(&diags), vec!["E0506"]);
        assert_eq!(diags[0].span.line, 2);
    }

    #[test]
    fn catalog_site_via_alias_is_accepted() {
        let diags = lint("site a\naliases=base\n\nsite b\ncatalog-site=base\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn syntax_errors_wrap_as_e0507() {
        let err = parse_defs("slots=3\n").unwrap_err();
        let d = syntax_diagnostic(&err, "bad.def");
        assert_eq!(d.code, "E0507");
        assert_eq!(d.span.line, 1);
    }

    #[test]
    fn missing_source_degrades_to_unknown_spans() {
        let defs = parse_defs("site a\nslots=0\n").unwrap();
        let diags = lint_sites(&defs, "test.def", None);
        assert_eq!(codes(&diags), vec!["E0504"]);
        assert!(diags[0].span.is_none());
    }
}

//! Post-mortem analysis — the `pegasus-analyzer` equivalent.
//!
//! After a (possibly failed) run, the analyzer summarises what went
//! wrong: which jobs exhausted their retries and why, which never ran
//! because an ancestor failed, how much time was burnt in failed
//! attempts, and what to do next (resubmit with the rescue DAG, raise
//! the retry budget, avoid the site). The paper's §VI-A discussion of
//! OSG failures and retries is exactly the situation this tool exists
//! for.

use crate::engine::{FaultReason, JobState, WorkflowOutcome, WorkflowRun};
use std::collections::BTreeMap;

/// Analysis of one failed job.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedJobReport {
    /// Job display name.
    pub name: String,
    /// Transformation name.
    pub transformation: String,
    /// Attempts consumed.
    pub attempts: u32,
    /// Distinct failure reasons with occurrence counts, sorted by
    /// reason.
    pub reasons: Vec<(String, usize)>,
    /// Distinct typed failure categories, sorted.
    pub kinds: Vec<FaultReason>,
    /// Seconds burnt across the failed attempts.
    pub badput: f64,
}

/// The full analysis of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Workflow name.
    pub workflow: String,
    /// Site the run targeted.
    pub site: String,
    /// Whether the run succeeded.
    pub succeeded: bool,
    /// Jobs that completed (including rescue-skipped).
    pub done: usize,
    /// Jobs that exhausted retries, with details.
    pub failed: Vec<FailedJobReport>,
    /// Jobs that never became ready.
    pub unready: Vec<String>,
    /// Transient failures that retries absorbed: (job name, attempts).
    pub recovered: Vec<(String, u32)>,
    /// Fraction of jobs already complete (useful before a rescue
    /// resubmission).
    pub completion_fraction: f64,
}

impl Analysis {
    /// Actionable suggestions derived from the failure pattern.
    pub fn suggestions(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.succeeded {
            if !self.recovered.is_empty() {
                out.push(format!(
                    "{} job(s) needed retries; the site is flaky but the retry budget held",
                    self.recovered.len()
                ));
            }
            return out;
        }
        out.push(format!(
            "resubmit with the rescue DAG: {:.0}% of the workflow is already complete",
            100.0 * self.completion_fraction
        ));
        let preempted = self.failed.iter().any(|f| {
            f.kinds
                .iter()
                .any(|k| matches!(k, FaultReason::Preemption | FaultReason::Eviction))
        });
        if preempted {
            out.push(
                "failures are preemptions: raise the retry budget or move to a dedicated site"
                    .to_string(),
            );
        }
        if self
            .failed
            .iter()
            .any(|f| f.kinds.contains(&FaultReason::InstallFailure))
        {
            out.push(
                "install phases failed: pre-stage the software so compute jobs skip the download-and-install step"
                    .to_string(),
            );
        }
        if self
            .failed
            .iter()
            .any(|f| f.kinds.contains(&FaultReason::Timeout))
        {
            out.push("jobs hit the walltime cap: raise the timeout or split the task".to_string());
        }
        if self.failed.iter().any(|f| f.attempts == 1) {
            out.push("some jobs were never retried: set max_retries > 0".to_string());
        }
        out
    }

    /// Renders a pegasus-analyzer-style text report.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# pegasus-analyzer: {} @ {}", self.workflow, self.site);
        let _ = writeln!(
            out,
            "status: {}",
            if self.succeeded { "SUCCESS" } else { "FAILED" }
        );
        let _ = writeln!(
            out,
            "jobs: {} done, {} failed, {} never ran ({:.0}% complete)",
            self.done,
            self.failed.len(),
            self.unready.len(),
            100.0 * self.completion_fraction
        );
        for f in &self.failed {
            let _ = writeln!(
                out,
                "\nFAILED {} ({}) after {} attempt(s), {:.1}s badput",
                f.name, f.transformation, f.attempts, f.badput
            );
            for (reason, count) in &f.reasons {
                let _ = writeln!(out, "    {count}x {reason}");
            }
        }
        if !self.unready.is_empty() {
            let _ = writeln!(out, "\nnever ran: {}", self.unready.join(", "));
        }
        for s in self.suggestions() {
            let _ = writeln!(out, "hint: {s}");
        }
        out
    }
}

/// Analyses a run.
pub fn analyze(run: &WorkflowRun) -> Analysis {
    let mut failed = Vec::new();
    let mut unready = Vec::new();
    let mut recovered = Vec::new();
    let mut done = 0usize;
    for rec in &run.records {
        match rec.state {
            JobState::Done | JobState::SkippedDone => {
                done += 1;
                if rec.attempts > 1 {
                    recovered.push((rec.name.clone(), rec.attempts));
                }
            }
            JobState::Failed => {
                let mut reasons: BTreeMap<String, usize> = BTreeMap::new();
                for r in &rec.failure_reasons {
                    *reasons.entry(r.clone()).or_insert(0) += 1;
                }
                let mut kinds = rec.failure_kinds.clone();
                kinds.sort();
                kinds.dedup();
                failed.push(FailedJobReport {
                    name: rec.name.clone(),
                    transformation: rec.transformation.clone(),
                    attempts: rec.attempts,
                    reasons: reasons.into_iter().collect(),
                    kinds,
                    badput: rec.failed_attempts.iter().map(|t| t.total()).sum(),
                });
            }
            JobState::Unready => unready.push(rec.name.clone()),
        }
    }
    let total = run.records.len().max(1);
    Analysis {
        workflow: run.name.clone(),
        site: run.site.clone(),
        succeeded: matches!(run.outcome, WorkflowOutcome::Success),
        done,
        failed,
        unready,
        recovered,
        completion_fraction: done as f64 / total as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{JobRecord, JobTimes};
    use crate::planner::JobKind;
    use crate::rescue::RescueDag;

    fn times(total: f64) -> JobTimes {
        JobTimes {
            submitted: 0.0,
            started: 0.0,
            install_done: 0.0,
            finished: total,
        }
    }

    fn record(name: &str, state: JobState, attempts: u32) -> JobRecord {
        JobRecord {
            job: crate::workflow::JobId::new(0),
            name: name.into(),
            transformation: "t".into(),
            kind: JobKind::Compute,
            state,
            attempts,
            times: (state == JobState::Done).then(|| times(5.0)),
            failed_attempts: vec![],
            failure_reasons: vec![],
            failure_kinds: vec![],
        }
    }

    fn failed_run() -> WorkflowRun {
        let mut bad = record("bad", JobState::Failed, 3);
        bad.failed_attempts = vec![times(10.0), times(20.0), times(5.0)];
        bad.failure_reasons = vec![
            "preempted".into(),
            "preempted".into(),
            "node vanished".into(),
        ];
        bad.failure_kinds = vec![
            FaultReason::Preemption,
            FaultReason::Preemption,
            FaultReason::Other,
        ];
        WorkflowRun {
            name: "wf".into(),
            site: "osg".into(),
            outcome: WorkflowOutcome::Failed(RescueDag::default()),
            wall_time: 100.0,
            records: vec![
                record("ok", JobState::Done, 1),
                bad,
                record("never", JobState::Unready, 0),
                record("flaky_but_fine", JobState::Done, 2),
            ],
            faults: Default::default(),
            events: vec![],
        }
    }

    #[test]
    fn analysis_classifies_jobs() {
        let a = analyze(&failed_run());
        assert!(!a.succeeded);
        assert_eq!(a.done, 2);
        assert_eq!(a.failed.len(), 1);
        assert_eq!(a.unready, vec!["never"]);
        assert_eq!(a.recovered, vec![("flaky_but_fine".to_string(), 2)]);
        assert!((a.completion_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn failure_reasons_are_aggregated() {
        let a = analyze(&failed_run());
        let f = &a.failed[0];
        assert_eq!(f.attempts, 3);
        assert_eq!(
            f.reasons,
            vec![
                ("node vanished".to_string(), 1),
                ("preempted".to_string(), 2)
            ]
        );
        assert_eq!(f.badput, 35.0);
        assert_eq!(f.kinds, vec![FaultReason::Preemption, FaultReason::Other]);
    }

    #[test]
    fn typed_kinds_drive_suggestions_even_with_opaque_wire_text() {
        // The wire string need not mention "preempt" — the enum does.
        let mut bad = record("bad", JobState::Failed, 2);
        bad.failed_attempts = vec![times(10.0), times(5.0)];
        bad.failure_reasons = vec!["slot reclaimed by owner".into(); 2];
        bad.failure_kinds = vec![FaultReason::Preemption; 2];
        let run = WorkflowRun {
            name: "wf".into(),
            site: "osg".into(),
            outcome: WorkflowOutcome::Failed(RescueDag::default()),
            wall_time: 50.0,
            records: vec![record("ok", JobState::Done, 1), bad],
            faults: Default::default(),
            events: vec![],
        };
        let text = analyze(&run).suggestions().join("\n");
        assert!(text.contains("preemptions"), "{text}");
    }

    #[test]
    fn suggestions_mention_rescue_and_preemption() {
        let a = analyze(&failed_run());
        let text = a.suggestions().join("\n");
        assert!(text.contains("rescue"), "{text}");
        assert!(text.contains("preempt"), "{text}");
    }

    #[test]
    fn successful_run_with_retries_notes_flakiness() {
        let run = WorkflowRun {
            name: "wf".into(),
            site: "osg".into(),
            outcome: WorkflowOutcome::Success,
            wall_time: 10.0,
            records: vec![record("flaky", JobState::Done, 4)],
            faults: Default::default(),
            events: vec![],
        };
        let a = analyze(&run);
        assert!(a.succeeded);
        let s = a.suggestions();
        assert_eq!(s.len(), 1);
        assert!(s[0].contains("retries"));
    }

    #[test]
    fn report_text_mentions_everything() {
        let text = analyze(&failed_run()).render_text();
        assert!(text.contains("FAILED bad"));
        assert!(text.contains("2x preempted"));
        assert!(text.contains("never ran: never"));
        assert!(text.contains("hint:"));
        assert!(text.contains("50% complete"));
    }

    #[test]
    fn clean_success_has_no_suggestions() {
        let run = WorkflowRun {
            name: "wf".into(),
            site: "sandhills".into(),
            outcome: WorkflowOutcome::Success,
            wall_time: 10.0,
            records: vec![record("a", JobState::Done, 1)],
            faults: Default::default(),
            events: vec![],
        };
        let a = analyze(&run);
        assert!(a.suggestions().is_empty());
        assert!(a.render_text().contains("SUCCESS"));
    }
}

//! Ensemble manager: many workflows over one shared backend.
//!
//! The paper's experiment is an *ensemble* — the same blast2cap3 DAG
//! planned at n ∈ {10, 100, 300, 500} and raced across platforms. This
//! module schedules M workflows (mixed DAXes, per-workflow
//! [`EngineConfig`]s, priorities) against a single
//! [`ExecutionBackend`], so queue-wait variance emerges from genuine
//! contention for shared capacity instead of being replayed one
//! workflow at a time.
//!
//! Scheduling model:
//!
//! * every workflow's ready jobs enter one **pending queue**;
//! * admission is gated by a global **slot budget**
//!   ([`EnsembleConfig::slot_budget`], defaulting to the backend's
//!   [`ExecutionBackend::slot_capacity`]);
//! * among pending jobs, higher [`WorkflowSpec::priority`] wins, ties
//!   broken **fair-share** (fewest jobs currently in flight), then by
//!   submission order — so within one workflow the engine's ready
//!   order is preserved exactly;
//! * retries bypass the queue: the failed attempt freed its slot, and
//!   the backend applies the backoff delay, so the budget stays
//!   bounded;
//! * a scripted submit-host crash kills only its own workflow — its
//!   queued jobs are withdrawn, its in-flight events drained, and the
//!   rescue DAG reports exactly what completed, while the rest of the
//!   ensemble keeps running.
//!
//! An ensemble of one workflow with an unbounded budget issues the
//! byte-identical backend call sequence as [`Engine::run`], which is
//! what makes per-workflow results comparable across the two paths
//! (and is pinned by tests).
//!
//! [`Engine::run`]: crate::engine::Engine::run

use crate::engine::{
    CompletionEvent, EngineConfig, ExecutionBackend, WorkflowExecution, WorkflowRun,
};
use crate::error::WmsError;
use crate::planner::{ExecutableJob, ExecutableWorkflow};
use crate::workflow::JobId;
use std::cmp::Reverse;

/// One member of an ensemble: a planned workflow plus how to run it.
#[derive(Debug, Clone)]
pub struct WorkflowSpec {
    /// The planned, executable workflow.
    pub workflow: ExecutableWorkflow,
    /// Engine configuration (retry policy, seed, rescue skips, crash
    /// script) applied to this workflow only.
    pub config: EngineConfig,
    /// Admission priority; higher runs first when slots are scarce.
    /// Workflows of equal priority share slots fairly.
    pub priority: i32,
}

impl WorkflowSpec {
    /// A spec at the default priority (0).
    pub fn new(workflow: ExecutableWorkflow, config: EngineConfig) -> Self {
        WorkflowSpec {
            workflow,
            config,
            priority: 0,
        }
    }

    /// Sets the admission priority (higher wins).
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }
}

/// Ensemble-level knobs.
#[derive(Debug, Clone, Default)]
pub struct EnsembleConfig {
    /// Global cap on simultaneously submitted jobs across all member
    /// workflows. `None` falls back to the backend's
    /// [`ExecutionBackend::slot_capacity`]; if that is also unknown,
    /// admission is unbounded and the backend's own queueing governs.
    pub slot_budget: Option<usize>,
}

impl EnsembleConfig {
    /// An unbounded-admission config (ignores backend capacity). This
    /// is what makes a size-1 ensemble bit-identical to
    /// [`Engine::run`](crate::engine::Engine::run).
    pub fn unbounded() -> Self {
        EnsembleConfig {
            slot_budget: Some(usize::MAX),
        }
    }

    /// A config with an explicit slot budget.
    pub fn with_slot_budget(slots: usize) -> Self {
        EnsembleConfig {
            slot_budget: Some(slots),
        }
    }
}

/// The result of an ensemble run.
///
/// Each member [`WorkflowRun`] carries its own provenance stream
/// (`runs[i].events`), scoped to that workflow's jobs — so every
/// member can be independently replayed, logged, and analysed offline,
/// and [`crate::statistics::compute_ensemble`] is a fold over streams.
#[derive(Debug, Clone)]
pub struct EnsembleRun {
    /// Per-workflow results, in [`WorkflowSpec`] submission order.
    pub runs: Vec<WorkflowRun>,
    /// Time from ensemble start to the last workflow's completion, in
    /// backend seconds.
    pub makespan: f64,
}

impl EnsembleRun {
    /// `true` when every member workflow succeeded.
    pub fn succeeded(&self) -> bool {
        self.runs.iter().all(WorkflowRun::succeeded)
    }
}

/// Progress callbacks for an ensemble run. All methods default to
/// no-ops; implement only what you need.
pub trait EnsembleMonitor {
    /// A workflow submitted its first job.
    fn workflow_started(&mut self, _index: usize, _name: &str, _now: f64) {}
    /// A workflow finished (successfully, exhausted, or crashed).
    fn workflow_finished(&mut self, _index: usize, _run: &WorkflowRun, _now: f64) {}
    /// The whole ensemble drained.
    fn ensemble_finished(&mut self, _makespan: f64) {}
}

/// The do-nothing ensemble monitor.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopEnsembleMonitor;

impl EnsembleMonitor for NoopEnsembleMonitor {}

/// A first-attempt job waiting for a slot.
#[derive(Debug)]
struct Pending {
    wf: usize,
    job: JobId,
    /// Global enqueue counter: preserves each workflow's ready order
    /// and makes admission deterministic.
    seq: u64,
}

/// Per-workflow bookkeeping inside the manager.
struct Member {
    exec: Option<WorkflowExecution>,
    /// Jobs pre-cloned with ensemble-global ids, indexed by local id.
    submit_jobs: Vec<ExecutableJob>,
    priority: i32,
    in_flight: usize,
    /// First-attempt submissions so far — the historical-usage
    /// tiebreaker that keeps equal-priority workflows interleaving
    /// even when the budget is one slot (in-flight counts all tie at
    /// zero there).
    admitted: usize,
    started: bool,
}

/// Runs `specs` against the shared `backend` without progress
/// reporting. See [`run_ensemble_monitored`].
///
/// # Errors
/// Returns [`WmsError::InvariantViolation`] when a spec's job ids are
/// not dense (see [`run_ensemble_monitored`]).
pub fn run_ensemble(
    backend: &mut dyn ExecutionBackend,
    specs: &[WorkflowSpec],
    config: &EnsembleConfig,
) -> Result<EnsembleRun, WmsError> {
    run_ensemble_monitored(backend, specs, config, &mut NoopEnsembleMonitor)
}

/// Runs every workflow in `specs` against the shared `backend`,
/// interleaving their ready queues under the slot budget, and reports
/// progress to `monitor`.
///
/// Results come back in spec order; each [`WorkflowRun`]'s wall time
/// spans ensemble start to that workflow's own completion, so the
/// rollup can distinguish per-member latency from ensemble makespan.
///
/// # Errors
/// Returns [`WmsError::InvariantViolation`] when a spec's executable
/// job ids are not dense (`jobs[i].id != i`): the global id mapping
/// would silently mis-route completions.  Planner output always
/// satisfies this; hand-built workflows may not.  (Previously a
/// `debug_assert!` that release builds skipped.)
pub fn run_ensemble_monitored(
    backend: &mut dyn ExecutionBackend,
    specs: &[WorkflowSpec],
    config: &EnsembleConfig,
    monitor: &mut dyn EnsembleMonitor,
) -> Result<EnsembleRun, WmsError> {
    // One timeout for the shared backend: unanimous value if the specs
    // agree, otherwise the tightest configured limit (conservative —
    // a shared submit host enforces one policy).
    let timeouts: Vec<Option<f64>> = specs.iter().map(|s| s.config.retry.timeout).collect();
    let timeout = if timeouts.windows(2).all(|w| w[0] == w[1]) {
        timeouts.first().copied().flatten()
    } else {
        timeouts
            .iter()
            .flatten()
            .copied()
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.min(t)))
            })
    };
    backend.set_timeout(timeout);

    let budget = config
        .slot_budget
        .or_else(|| backend.slot_capacity())
        .unwrap_or(usize::MAX)
        .max(1);

    // Global job-id space: workflow k's local job j becomes
    // offsets[k] + j on the wire, and `owner` maps it back.
    let mut members: Vec<Member> = Vec::with_capacity(specs.len());
    let mut owner: Vec<(usize, JobId)> = Vec::new();
    let mut pending: Vec<Pending> = Vec::new();
    let mut next_seq = 0u64;
    let start = backend.now();

    for (wf_idx, spec) in specs.iter().enumerate() {
        let offset = owner.len();
        for (local, j) in spec.workflow.jobs.iter().enumerate() {
            if j.id.idx() != local {
                return Err(WmsError::InvariantViolation {
                    invariant: "executable job ids are dense".into(),
                    detail: format!(
                        "workflow {wf_idx} ({:?}) job at index {local} has id {}",
                        spec.workflow.name, j.id
                    ),
                });
            }
        }
        let submit_jobs: Vec<ExecutableJob> = spec
            .workflow
            .jobs
            .iter()
            .enumerate()
            .map(|(local, j)| {
                owner.push((wf_idx, JobId::new(local)));
                let mut g = j.clone();
                g.id = JobId::new(offset + local);
                g
            })
            .collect();
        let mut exec = WorkflowExecution::new(&spec.workflow, &spec.config, start);
        for job in exec.take_initial_ready() {
            pending.push(Pending {
                wf: wf_idx,
                job,
                seq: next_seq,
            });
            next_seq += 1;
        }
        members.push(Member {
            exec: Some(exec),
            submit_jobs,
            priority: spec.priority,
            in_flight: 0,
            admitted: 0,
            started: false,
        });
    }

    let mut runs: Vec<Option<WorkflowRun>> = (0..specs.len()).map(|_| None).collect();
    let mut in_flight_total = 0usize;

    let finalize = |wf_idx: usize,
                    members: &mut Vec<Member>,
                    runs: &mut Vec<Option<WorkflowRun>>,
                    monitor: &mut dyn EnsembleMonitor,
                    now: f64| {
        if let Some(exec) = members[wf_idx].exec.take() {
            let run = exec.finish(now);
            monitor.workflow_finished(wf_idx, &run, now);
            runs[wf_idx] = Some(run);
        }
    };

    // Workflows with nothing to run (empty, or fully rescue-skipped)
    // finish at t0 without touching the backend.
    for wf_idx in 0..members.len() {
        if members[wf_idx]
            .exec
            .as_ref()
            .is_some_and(WorkflowExecution::is_complete)
        {
            finalize(wf_idx, &mut members, &mut runs, monitor, start);
        }
    }

    loop {
        // Admission: fill the budget from the pending queue. Higher
        // priority first; ties go to the workflow with the fewest jobs
        // in flight (fair share), then to the earlier-enqueued job, so
        // a lone workflow drains in exact ready order.
        while in_flight_total < budget && !pending.is_empty() {
            let best = pending
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| {
                    (
                        Reverse(members[p.wf].priority),
                        members[p.wf].in_flight,
                        members[p.wf].admitted,
                        p.wf,
                        p.seq,
                    )
                })
                .map(|(i, _)| i)
                .expect("pending is non-empty");
            let Pending { wf, job, .. } = pending.remove(best);
            let member = &mut members[wf];
            if !member.started {
                member.started = true;
                monitor.workflow_started(wf, &member.submit_jobs[job.idx()].name, backend.now());
            }
            backend.submit(&member.submit_jobs[job.idx()], 0);
            member
                .exec
                .as_mut()
                .expect("pending jobs only exist for live workflows")
                .note_submitted(job, backend.now());
            member.in_flight += 1;
            member.admitted += 1;
            in_flight_total += 1;
        }

        if in_flight_total == 0 {
            break;
        }

        let ev = backend.wait_any();
        in_flight_total -= 1;
        let (wf_idx, local) = owner[ev.job.idx()];
        members[wf_idx].in_flight -= 1;
        let Some(exec) = members[wf_idx].exec.as_mut() else {
            // Stale completion from a workflow that already crashed:
            // the slot is reclaimed, the result discarded.
            continue;
        };
        let local_ev = CompletionEvent {
            job: local,
            attempt: ev.attempt,
            outcome: ev.outcome,
            times: ev.times,
        };
        let resp = exec
            .on_event(&local_ev)
            .expect("crashed members are retired from the live set");
        if let Some(r) = resp.retry {
            // The failed attempt just released its slot; the retry
            // reclaims it, so the budget stays respected without
            // re-queueing (backoff is enforced by the backend).
            backend.submit_after(
                &members[wf_idx].submit_jobs[r.job.idx()],
                r.next_attempt,
                r.delay,
            );
            members[wf_idx].in_flight += 1;
            in_flight_total += 1;
        }
        for job in resp.newly_ready {
            pending.push(Pending {
                wf: wf_idx,
                job,
                seq: next_seq,
            });
            next_seq += 1;
        }
        if resp.crashed {
            // The submit host for this workflow died: withdraw its
            // queued work; in-flight attempts drain as stale events.
            pending.retain(|p| p.wf != wf_idx);
            finalize(wf_idx, &mut members, &mut runs, monitor, backend.now());
        } else if members[wf_idx]
            .exec
            .as_ref()
            .is_some_and(WorkflowExecution::is_complete)
        {
            finalize(wf_idx, &mut members, &mut runs, monitor, backend.now());
        }
    }

    // Anything still live at drain (defensive; normal paths finalize
    // at the terminating event) finishes now.
    for wf_idx in 0..members.len() {
        finalize(wf_idx, &mut members, &mut runs, monitor, backend.now());
    }

    let runs: Vec<WorkflowRun> = runs
        .into_iter()
        .map(|r| r.expect("every workflow finalized"))
        .collect();
    let makespan = runs.iter().map(|r| r.wall_time).fold(0.0, f64::max);
    monitor.ensemble_finished(makespan);
    Ok(EnsembleRun { runs, makespan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::scripted::ScriptedBackend;
    use crate::engine::{Engine, JobState, NoopMonitor, RetryPolicy};
    use crate::planner::{ExecutableJob, JobKind};

    fn job(id: usize, name: &str, runtime: f64) -> ExecutableJob {
        ExecutableJob {
            id: JobId::new(id),
            name: name.into(),
            transformation: "t".into(),
            kind: JobKind::Compute,
            args: vec![],
            runtime_hint: runtime,
            install_hint: 0.0,
            source_jobs: vec![],
        }
    }

    /// A diamond: a → {b, c} → d.
    fn diamond(name: &str) -> ExecutableWorkflow {
        ExecutableWorkflow {
            name: name.into(),
            site: "test".into(),
            jobs: vec![
                job(0, &format!("{name}_a"), 1.0),
                job(1, &format!("{name}_b"), 2.0),
                job(2, &format!("{name}_c"), 3.0),
                job(3, &format!("{name}_d"), 1.0),
            ],
            edges: [(0, 1), (0, 2), (1, 3), (2, 3)]
                .iter()
                .map(|&(p, c)| (JobId::new(p), JobId::new(c)))
                .collect(),
        }
    }

    fn cfg(seed: u64) -> EngineConfig {
        let mut c = EngineConfig::builder().retries(2).build();
        c.seed = seed;
        c
    }

    #[test]
    fn ensemble_of_one_matches_engine_run() {
        let wf = diamond("solo");
        let config = cfg(7);

        let mut single_backend = ScriptedBackend::new();
        let single = Engine::run(&mut single_backend, &wf, &config, &mut NoopMonitor);

        let mut ens_backend = ScriptedBackend::new();
        let ens = run_ensemble(
            &mut ens_backend,
            &[WorkflowSpec::new(wf, config)],
            &EnsembleConfig::default(),
        )
        .unwrap();

        assert_eq!(ens.runs.len(), 1);
        let e = &ens.runs[0];
        assert_eq!(e.wall_time, single.wall_time);
        assert_eq!(e.records.len(), single.records.len());
        for (a, b) in e.records.iter().zip(&single.records) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.state, b.state);
            assert_eq!(a.attempts, b.attempts);
            assert_eq!(a.times, b.times);
        }
        assert_eq!(single_backend.log, ens_backend.log, "same submission tape");
        assert_eq!(ens.makespan, single.wall_time);
    }

    #[test]
    fn non_dense_job_ids_are_a_typed_error() {
        // Formerly a debug_assert!: sparse ids would silently mis-route
        // completions through the global id mapping in release builds.
        let sparse = ExecutableWorkflow {
            name: "sparse".into(),
            site: "test".into(),
            jobs: vec![job(3, "a", 1.0)],
            edges: vec![],
        };
        let specs = vec![WorkflowSpec::new(sparse, cfg(1))];
        let mut backend = ScriptedBackend::new();
        let err = run_ensemble(&mut backend, &specs, &EnsembleConfig::default()).unwrap_err();
        assert!(
            matches!(err, crate::error::WmsError::InvariantViolation { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("sparse"), "{err}");
    }

    #[test]
    fn two_workflows_share_the_backend_and_both_finish() {
        let specs = vec![
            WorkflowSpec::new(diamond("w0"), cfg(1)),
            WorkflowSpec::new(diamond("w1"), cfg(2)),
        ];
        let mut backend = ScriptedBackend::new();
        let ens = run_ensemble(&mut backend, &specs, &EnsembleConfig::default()).unwrap();
        assert!(ens.succeeded());
        assert_eq!(ens.runs[0].name, "w0");
        assert_eq!(ens.runs[1].name, "w1");
        for run in &ens.runs {
            assert!(run.records.iter().all(|r| r.state == JobState::Done));
        }
    }

    #[test]
    fn slot_budget_of_one_serialises_submissions_fairly() {
        let specs = vec![
            WorkflowSpec::new(diamond("w0"), cfg(1)),
            WorkflowSpec::new(diamond("w1"), cfg(2)),
        ];
        let mut backend = ScriptedBackend::new();
        let ens = run_ensemble(&mut backend, &specs, &EnsembleConfig::with_slot_budget(1)).unwrap();
        assert!(ens.succeeded());
        // With one slot, roots alternate across workflows (fair share
        // by historical usage): w0_a first (lower index), then w1_a.
        assert_eq!(backend.log[0].0, "w0_a");
        assert_eq!(backend.log[1].0, "w1_a");
    }

    #[test]
    fn priority_preempts_fair_share_in_admission_order() {
        let specs = vec![
            WorkflowSpec::new(diamond("lo"), cfg(1)),
            WorkflowSpec::new(diamond("hi"), cfg(2)).with_priority(10),
        ];
        let mut backend = ScriptedBackend::new();
        let ens = run_ensemble(&mut backend, &specs, &EnsembleConfig::with_slot_budget(1)).unwrap();
        assert!(ens.succeeded());
        assert_eq!(
            backend.log[0].0, "hi_a",
            "higher priority admits first even though it was enqueued later"
        );
    }

    #[test]
    fn per_workflow_retries_are_isolated() {
        let mut flaky_cfg = EngineConfig::builder().retries(3).build();
        flaky_cfg.seed = 5;
        let specs = vec![
            WorkflowSpec::new(diamond("ok"), cfg(1)),
            WorkflowSpec::new(diamond("flaky"), flaky_cfg),
        ];
        let mut backend = ScriptedBackend::new();
        backend.fail_plan.insert(("flaky_b".into(), 0));
        let ens = run_ensemble(&mut backend, &specs, &EnsembleConfig::default()).unwrap();
        assert!(ens.succeeded());
        assert_eq!(ens.runs[0].faults.total_failures(), 0);
        assert_eq!(ens.runs[1].faults.retries, 1);
        assert_eq!(ens.runs[1].records[1].attempts, 2);
    }

    #[test]
    fn exhausted_workflow_fails_alone_with_rescue_dag() {
        let mut doomed_cfg = EngineConfig::builder().policy(RetryPolicy::flat(1)).build();
        doomed_cfg.seed = 5;
        let specs = vec![
            WorkflowSpec::new(diamond("ok"), cfg(1)),
            WorkflowSpec::new(diamond("doomed"), doomed_cfg),
        ];
        let mut backend = ScriptedBackend::new();
        backend.fail_plan.insert(("doomed_b".into(), 0));
        backend.fail_plan.insert(("doomed_b".into(), 1));
        let ens = run_ensemble(&mut backend, &specs, &EnsembleConfig::default()).unwrap();
        assert!(ens.runs[0].succeeded(), "healthy member unaffected");
        assert!(!ens.runs[1].succeeded());
        match &ens.runs[1].outcome {
            crate::engine::WorkflowOutcome::Failed(rescue) => {
                assert!(rescue.done.contains(&"doomed_a".to_string()));
                assert!(rescue.done.contains(&"doomed_c".to_string()));
            }
            other => panic!("expected rescue DAG, got {other:?}"),
        }
        assert!(!ens.succeeded());
    }

    #[test]
    fn crash_kills_one_member_and_spares_the_rest() {
        let mut crash_cfg = cfg(3);
        crash_cfg.crash_after_events = Some(1);
        let specs = vec![
            WorkflowSpec::new(diamond("live"), cfg(1)),
            WorkflowSpec::new(diamond("dying"), crash_cfg),
        ];
        let mut backend = ScriptedBackend::new();
        let ens = run_ensemble(&mut backend, &specs, &EnsembleConfig::default()).unwrap();
        assert!(ens.runs[0].succeeded(), "uncrashed member completes");
        assert!(!ens.runs[1].succeeded(), "crashed member reports failure");
    }

    #[test]
    fn ensemble_rescue_resume_completes_the_crashed_member() {
        let mut crash_cfg = cfg(3);
        crash_cfg.crash_after_events = Some(1);
        let specs = vec![
            WorkflowSpec::new(diamond("live"), cfg(1)),
            WorkflowSpec::new(diamond("dying"), crash_cfg),
        ];
        let mut backend = ScriptedBackend::new();
        let ens = run_ensemble(&mut backend, &specs, &EnsembleConfig::default()).unwrap();
        let rescue = match &ens.runs[1].outcome {
            crate::engine::WorkflowOutcome::Failed(r) => r.clone(),
            other => panic!("expected rescue DAG, got {other:?}"),
        };
        // Resume just the crashed member, skipping its completed jobs.
        let mut resume_cfg = EngineConfig::builder().retries(2).rescue(&rescue).build();
        resume_cfg.seed = 3;
        let mut backend2 = ScriptedBackend::new();
        let resumed = run_ensemble(
            &mut backend2,
            &[WorkflowSpec::new(diamond("dying"), resume_cfg)],
            &EnsembleConfig::default(),
        )
        .unwrap();
        assert!(resumed.succeeded(), "resume completes the remainder");
        let skipped = resumed.runs[0]
            .records
            .iter()
            .filter(|r| r.state == JobState::SkippedDone)
            .count();
        assert_eq!(skipped, rescue.done.len());
    }

    #[test]
    fn empty_workflow_finishes_immediately() {
        let empty = ExecutableWorkflow {
            name: "empty".into(),
            site: "test".into(),
            jobs: vec![],
            edges: vec![],
        };
        let specs = vec![
            WorkflowSpec::new(empty, cfg(1)),
            WorkflowSpec::new(diamond("w"), cfg(2)),
        ];
        let mut backend = ScriptedBackend::new();
        let ens = run_ensemble(&mut backend, &specs, &EnsembleConfig::default()).unwrap();
        assert!(ens.succeeded());
        assert_eq!(ens.runs[0].wall_time, 0.0);
        assert!(ens.runs[1].wall_time > 0.0);
    }

    #[test]
    fn members_carry_independent_replayable_event_streams() {
        let specs = vec![
            WorkflowSpec::new(diamond("w0"), cfg(1)),
            WorkflowSpec::new(diamond("w1"), cfg(2)),
        ];
        let mut backend = ScriptedBackend::new();
        backend.fail_plan.insert(("w1_b".into(), 0));
        let ens = run_ensemble(&mut backend, &specs, &EnsembleConfig::with_slot_budget(2)).unwrap();
        assert!(ens.succeeded());
        for run in &ens.runs {
            let replayed = crate::events::replay(&run.events).expect("member streams replay");
            assert_eq!(&replayed, run, "{}", run.name);
        }
    }

    #[test]
    fn same_seed_ensembles_replay_identically() {
        let build = || {
            vec![
                WorkflowSpec::new(diamond("w0"), cfg(1)),
                WorkflowSpec::new(diamond("w1"), cfg(2)).with_priority(1),
            ]
        };
        let mut b1 = ScriptedBackend::new();
        let mut b2 = ScriptedBackend::new();
        let e1 = run_ensemble(&mut b1, &build(), &EnsembleConfig::with_slot_budget(2)).unwrap();
        let e2 = run_ensemble(&mut b2, &build(), &EnsembleConfig::with_slot_budget(2)).unwrap();
        assert_eq!(b1.log, b2.log, "submission tapes identical");
        assert_eq!(e1.makespan, e2.makespan);
        for (a, b) in e1.runs.iter().zip(&e2.runs) {
            assert_eq!(a.wall_time, b.wall_time);
        }
    }
}

# Storm aimed at a job family this workflow does not have.
plan bad-target
preemption-storm start=0 duration=100 kill-probability=0.5 target=blastn

//! The `Strategy` trait and its core implementations: numeric
//! ranges, string-regex literals, tuples, and the `prop_map` /
//! `prop_filter` combinators.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// How many times `prop_filter` retries before giving up; upstream
/// proptest rejects-with-retry similarly (with a global cap).
const MAX_FILTER_ATTEMPTS: usize = 4096;

/// A generator of values of type `Self::Value`.
///
/// Unlike upstream there is no value-tree/shrinking layer: `sample`
/// produces a final value directly from the deterministic case RNG.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected {} consecutive samples",
            self.whence, MAX_FILTER_ATTEMPTS
        );
    }
}

/// A `&Strategy` is itself a strategy (used when a helper returns
/// `impl Strategy` and the macro samples it behind a reference).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String literals act as regex strategies, e.g. `"[a-z]{1,8}"`.
/// The pattern is parsed on each sample; patterns in tests are tiny,
/// and correctness beats caching here.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let compiled = crate::string::compile(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"));
        compiled.generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `Just(value)`: always that value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

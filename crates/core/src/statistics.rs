//! pegasus-statistics equivalents.
//!
//! After a run, `pegasus-statistics` reports workflow-level and
//! per-transformation numbers. The paper's evaluation is built on four
//! of them, all reproduced here:
//!
//! * **Workflow Wall Time** — first submission to last termination;
//! * **Kickstart Time** — actual remote execution duration per task;
//! * **Waiting Time** — submit-host + remote-queue wait per task;
//! * **Download/Install Time** — software provisioning per task
//!   (OSG only; zero wherever software is preinstalled).

use crate::csv::csv_row;
use crate::engine::{FaultCounters, JobState, WorkflowRun};
use crate::ensemble::EnsembleRun;
use std::collections::BTreeMap;

/// Column header shared by [`render_summary_csv`] and
/// [`render_ensemble_csv`]: one row describes one workflow (or the
/// whole ensemble, in the rollup row named `ensemble`).
pub const SUMMARY_CSV_HEADER: &str = "name,site,wall_time,cumulative_walltime,badput,succeeded,\
                                      failed,unready,retries,preemptions,evictions,\
                                      install_failures,timeouts,backoff_wait";

/// Aggregated timing for one transformation (task type).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskTypeStats {
    /// Transformation name.
    pub transformation: String,
    /// Number of successful jobs of this type.
    pub count: usize,
    /// Total kickstart seconds across jobs.
    pub kickstart_total: f64,
    /// Mean kickstart seconds.
    pub kickstart_mean: f64,
    /// Maximum kickstart seconds.
    pub kickstart_max: f64,
    /// Mean waiting seconds.
    pub waiting_mean: f64,
    /// Maximum waiting seconds.
    pub waiting_max: f64,
    /// Total download/install seconds.
    pub install_total: f64,
    /// Mean download/install seconds.
    pub install_mean: f64,
}

/// Workflow-level statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowStatistics {
    /// Workflow name.
    pub name: String,
    /// Execution site.
    pub site: String,
    /// Workflow Wall Time in seconds.
    pub workflow_wall_time: f64,
    /// Sum of kickstart times over successful jobs — the work a
    /// serial execution would pay end to end.
    pub cumulative_job_walltime: f64,
    /// Time burnt in failed attempts ("badput").
    pub cumulative_badput: f64,
    /// Jobs that completed.
    pub jobs_succeeded: usize,
    /// Jobs that exhausted retries.
    pub jobs_failed: usize,
    /// Jobs never released.
    pub jobs_unready: usize,
    /// Total retries consumed.
    pub retries: u32,
    /// Failure/retry breakdown by cause, as counted by the engine.
    pub faults: FaultCounters,
    /// Per-transformation breakdown, keyed and ordered by name.
    pub per_type: Vec<TaskTypeStats>,
}

impl WorkflowStatistics {
    /// Parallel efficiency proxy: cumulative job wall time divided by
    /// workflow wall time (the average concurrency achieved).
    pub fn speedup_over_serial(&self) -> f64 {
        if self.workflow_wall_time <= 0.0 {
            return 1.0;
        }
        self.cumulative_job_walltime / self.workflow_wall_time
    }

    /// Looks up one transformation's stats.
    pub fn for_type(&self, transformation: &str) -> Option<&TaskTypeStats> {
        self.per_type
            .iter()
            .find(|t| t.transformation == transformation)
    }
}

/// Computes statistics from a run.
pub fn compute(run: &WorkflowRun) -> WorkflowStatistics {
    let mut per_type: BTreeMap<&str, Vec<&crate::engine::JobRecord>> = BTreeMap::new();
    let mut cumulative = 0.0;
    let mut badput = 0.0;
    let mut succeeded = 0;
    let mut failed = 0;
    let mut unready = 0;
    for rec in &run.records {
        match rec.state {
            JobState::Done => {
                succeeded += 1;
                if let Some(t) = rec.times {
                    cumulative += t.kickstart();
                }
                per_type
                    .entry(rec.transformation.as_str())
                    .or_default()
                    .push(rec);
            }
            JobState::SkippedDone => succeeded += 1,
            JobState::Failed => failed += 1,
            JobState::Unready => unready += 1,
        }
        for t in &rec.failed_attempts {
            badput += t.total();
        }
    }
    let per_type = per_type
        .into_iter()
        .map(|(name, recs)| {
            let times: Vec<_> = recs.iter().filter_map(|r| r.times).collect();
            let count = times.len();
            let kick: Vec<f64> = times.iter().map(|t| t.kickstart()).collect();
            let waits: Vec<f64> = times.iter().map(|t| t.waiting()).collect();
            let installs: Vec<f64> = times.iter().map(|t| t.install()).collect();
            let sum = |v: &[f64]| v.iter().sum::<f64>();
            let mean = |v: &[f64]| {
                if v.is_empty() {
                    0.0
                } else {
                    sum(v) / v.len() as f64
                }
            };
            let max = |v: &[f64]| v.iter().copied().fold(0.0f64, f64::max);
            TaskTypeStats {
                transformation: name.to_string(),
                count,
                kickstart_total: sum(&kick),
                kickstart_mean: mean(&kick),
                kickstart_max: max(&kick),
                waiting_mean: mean(&waits),
                waiting_max: max(&waits),
                install_total: sum(&installs),
                install_mean: mean(&installs),
            }
        })
        .collect();
    WorkflowStatistics {
        name: run.name.clone(),
        site: run.site.clone(),
        workflow_wall_time: run.wall_time,
        cumulative_job_walltime: cumulative,
        cumulative_badput: badput,
        jobs_succeeded: succeeded,
        jobs_failed: failed,
        jobs_unready: unready,
        retries: run.total_retries(),
        faults: run.faults,
        per_type,
    }
}

/// Renders a pegasus-statistics-style text report.
pub fn render_text(stats: &WorkflowStatistics) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# pegasus-statistics: {} @ {}", stats.name, stats.site);
    let _ = writeln!(
        out,
        "Workflow Wall Time        : {:>12.1} s",
        stats.workflow_wall_time
    );
    let _ = writeln!(
        out,
        "Cumulative Job Wall Time  : {:>12.1} s",
        stats.cumulative_job_walltime
    );
    let _ = writeln!(
        out,
        "Cumulative Badput         : {:>12.1} s",
        stats.cumulative_badput
    );
    let _ = writeln!(
        out,
        "Jobs (succeeded/failed/unready): {}/{}/{}",
        stats.jobs_succeeded, stats.jobs_failed, stats.jobs_unready
    );
    let _ = writeln!(out, "Retries                   : {:>12}", stats.retries);
    let _ = writeln!(
        out,
        "Average concurrency       : {:>12.2}",
        stats.speedup_over_serial()
    );
    let f = &stats.faults;
    if f.total_failures() > 0 || f.backoff_wait > 0.0 {
        let _ = writeln!(
            out,
            "Failures by cause         : preempted {} / evicted {} / install {} / timeout {} / other {}",
            f.preemptions, f.evictions, f.install_failures, f.timeouts, f.other_failures
        );
        let _ = writeln!(
            out,
            "Backoff Wait              : {:>12.1} s",
            f.backoff_wait
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<24} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "TASK TYPE", "COUNT", "KICK MEAN", "KICK MAX", "WAIT MEAN", "INSTALL MEAN"
    );
    for t in &stats.per_type {
        let _ = writeln!(
            out,
            "{:<24} {:>6} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            t.transformation,
            t.count,
            t.kickstart_mean,
            t.kickstart_max,
            t.waiting_mean,
            t.install_mean
        );
    }
    out
}

/// Renders statistics as CSV rows (`task_type,count,kick_mean,...`),
/// the machine-readable side of the report used by the figure
/// harness.
pub fn render_csv(stats: &WorkflowStatistics) -> String {
    let mut out = String::from(
        "task_type,count,kickstart_total,kickstart_mean,kickstart_max,waiting_mean,waiting_max,install_total,install_mean\n",
    );
    for t in &stats.per_type {
        out.push_str(&csv_row(&[
            t.transformation.clone(),
            t.count.to_string(),
            format!("{:.3}", t.kickstart_total),
            format!("{:.3}", t.kickstart_mean),
            format!("{:.3}", t.kickstart_max),
            format!("{:.3}", t.waiting_mean),
            format!("{:.3}", t.waiting_max),
            format!("{:.3}", t.install_total),
            format!("{:.3}", t.install_mean),
        ]));
    }
    out
}

/// Renders a one-row workflow-level summary CSV (header + one data
/// row) covering wall time, throughput, and the fault/retry counters.
///
/// This is the artifact the chaos determinism tests compare
/// byte-for-byte: two runs with the same seed and fault plan must
/// produce identical summaries.
pub fn render_summary_csv(stats: &WorkflowStatistics) -> String {
    format!("{SUMMARY_CSV_HEADER}\n{}", summary_row(stats))
}

/// One data row in the summary-CSV schema (with trailing newline).
fn summary_row(stats: &WorkflowStatistics) -> String {
    let f = &stats.faults;
    csv_row(&[
        stats.name.clone(),
        stats.site.clone(),
        format!("{:.3}", stats.workflow_wall_time),
        format!("{:.3}", stats.cumulative_job_walltime),
        format!("{:.3}", stats.cumulative_badput),
        stats.jobs_succeeded.to_string(),
        stats.jobs_failed.to_string(),
        stats.jobs_unready.to_string(),
        stats.retries.to_string(),
        f.preemptions.to_string(),
        f.evictions.to_string(),
        f.install_failures.to_string(),
        f.timeouts.to_string(),
        format!("{:.3}", f.backoff_wait),
    ])
}

/// Ensemble-level statistics: the per-workflow breakdowns plus the
/// cross-workflow rollup the paper's throughput comparison needs.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleStatistics {
    /// Ensemble start to last workflow completion, in backend seconds.
    pub makespan: f64,
    /// Per-member statistics, in submission order.
    pub per_workflow: Vec<WorkflowStatistics>,
    /// Members that completed successfully.
    pub workflows_succeeded: usize,
    /// Members that failed or crashed.
    pub workflows_failed: usize,
    /// Sum of kickstart time over every member's successful jobs.
    pub cumulative_job_walltime: f64,
    /// Sum of badput over every member.
    pub cumulative_badput: f64,
    /// Job totals across members (succeeded, failed, unready).
    pub jobs_succeeded: usize,
    /// Jobs that exhausted retries, across members.
    pub jobs_failed: usize,
    /// Jobs never released, across members.
    pub jobs_unready: usize,
    /// Retries consumed across members.
    pub retries: u32,
    /// Merged fault counters across members.
    pub faults: FaultCounters,
}

impl EnsembleStatistics {
    /// Aggregate throughput proxy: total useful work over makespan —
    /// the average concurrency the shared platform sustained.
    pub fn aggregate_concurrency(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 1.0;
        }
        self.cumulative_job_walltime / self.makespan
    }

    /// The rollup as a pseudo-workflow row (named `ensemble`, wall
    /// time = makespan), for tools that consume the summary schema.
    fn rollup_row_stats(&self) -> WorkflowStatistics {
        let site = match self.per_workflow.as_slice() {
            [] => "none".to_string(),
            [first, rest @ ..] if rest.iter().all(|w| w.site == first.site) => first.site.clone(),
            _ => "mixed".to_string(),
        };
        WorkflowStatistics {
            name: "ensemble".into(),
            site,
            workflow_wall_time: self.makespan,
            cumulative_job_walltime: self.cumulative_job_walltime,
            cumulative_badput: self.cumulative_badput,
            jobs_succeeded: self.jobs_succeeded,
            jobs_failed: self.jobs_failed,
            jobs_unready: self.jobs_unready,
            retries: self.retries,
            faults: self.faults,
            per_type: vec![],
        }
    }
}

/// Computes per-workflow and rollup statistics for an ensemble run.
pub fn compute_ensemble(ens: &EnsembleRun) -> EnsembleStatistics {
    let per_workflow: Vec<WorkflowStatistics> = ens.runs.iter().map(compute).collect();
    let mut faults = FaultCounters::default();
    for run in &ens.runs {
        faults.merge(&run.faults);
    }
    EnsembleStatistics {
        makespan: ens.makespan,
        workflows_succeeded: ens.runs.iter().filter(|r| r.succeeded()).count(),
        workflows_failed: ens.runs.iter().filter(|r| !r.succeeded()).count(),
        cumulative_job_walltime: per_workflow.iter().map(|w| w.cumulative_job_walltime).sum(),
        cumulative_badput: per_workflow.iter().map(|w| w.cumulative_badput).sum(),
        jobs_succeeded: per_workflow.iter().map(|w| w.jobs_succeeded).sum(),
        jobs_failed: per_workflow.iter().map(|w| w.jobs_failed).sum(),
        jobs_unready: per_workflow.iter().map(|w| w.jobs_unready).sum(),
        retries: per_workflow.iter().map(|w| w.retries).sum(),
        faults,
        per_workflow,
    }
}

/// Renders the ensemble as summary-schema CSV: the shared header, one
/// row per member workflow, then the rollup row named `ensemble`
/// whose wall time is the makespan.
///
/// This is the artifact the ensemble determinism test compares
/// byte-for-byte across same-seed runs.
pub fn render_ensemble_csv(stats: &EnsembleStatistics) -> String {
    let mut out = format!("{SUMMARY_CSV_HEADER}\n");
    for w in &stats.per_workflow {
        out.push_str(&summary_row(w));
    }
    out.push_str(&summary_row(&stats.rollup_row_stats()));
    out
}

/// Renders a human-readable ensemble report: the rollup block followed
/// by a one-line-per-member table.
pub fn render_ensemble_text(stats: &EnsembleStatistics) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# pegasus-statistics: ensemble of {} workflows",
        stats.per_workflow.len()
    );
    let _ = writeln!(
        out,
        "Ensemble Makespan         : {:>12.1} s",
        stats.makespan
    );
    let _ = writeln!(
        out,
        "Cumulative Job Wall Time  : {:>12.1} s",
        stats.cumulative_job_walltime
    );
    let _ = writeln!(
        out,
        "Cumulative Badput         : {:>12.1} s",
        stats.cumulative_badput
    );
    let _ = writeln!(
        out,
        "Workflows (succeeded/failed): {}/{}",
        stats.workflows_succeeded, stats.workflows_failed
    );
    let _ = writeln!(out, "Retries                   : {:>12}", stats.retries);
    let _ = writeln!(
        out,
        "Aggregate concurrency     : {:>12.2}",
        stats.aggregate_concurrency()
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<28} {:<12} {:>12} {:>10} {:>8} {:>8}",
        "WORKFLOW", "SITE", "WALL TIME", "SUCCEEDED", "FAILED", "RETRIES"
    );
    for w in &stats.per_workflow {
        let _ = writeln!(
            out,
            "{:<28} {:<12} {:>12.1} {:>10} {:>8} {:>8}",
            w.name, w.site, w.workflow_wall_time, w.jobs_succeeded, w.jobs_failed, w.retries
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{JobRecord, JobTimes, WorkflowOutcome};
    use crate::planner::JobKind;

    fn times(submitted: f64, wait: f64, install: f64, kick: f64) -> JobTimes {
        JobTimes {
            submitted,
            started: submitted + wait,
            install_done: submitted + wait + install,
            finished: submitted + wait + install + kick,
        }
    }

    fn record(job: usize, transformation: &str, state: JobState, t: Option<JobTimes>) -> JobRecord {
        JobRecord {
            job: crate::workflow::JobId::new(job),
            name: format!("{transformation}_{job}"),
            transformation: transformation.into(),
            kind: JobKind::Compute,
            state,
            attempts: 1,
            times: t,
            failed_attempts: vec![],
            failure_reasons: vec![],
            failure_kinds: vec![],
        }
    }

    fn sample_run() -> WorkflowRun {
        WorkflowRun {
            name: "w".into(),
            site: "sandhills".into(),
            outcome: WorkflowOutcome::Success,
            wall_time: 100.0,
            records: vec![
                record(0, "split", JobState::Done, Some(times(0.0, 2.0, 0.0, 10.0))),
                record(
                    1,
                    "run_cap3",
                    JobState::Done,
                    Some(times(12.0, 3.0, 45.0, 50.0)),
                ),
                record(
                    2,
                    "run_cap3",
                    JobState::Done,
                    Some(times(12.0, 5.0, 45.0, 70.0)),
                ),
            ],
            faults: FaultCounters::default(),
            events: vec![],
        }
    }

    #[test]
    fn computes_workflow_level_numbers() {
        let stats = compute(&sample_run());
        assert_eq!(stats.workflow_wall_time, 100.0);
        assert_eq!(stats.cumulative_job_walltime, 130.0);
        assert_eq!(stats.jobs_succeeded, 3);
        assert_eq!(stats.jobs_failed, 0);
        assert!((stats.speedup_over_serial() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn per_type_breakdown_is_grouped_and_sorted() {
        let stats = compute(&sample_run());
        let names: Vec<&str> = stats
            .per_type
            .iter()
            .map(|t| t.transformation.as_str())
            .collect();
        assert_eq!(names, vec!["run_cap3", "split"]);
        let cap3 = stats.for_type("run_cap3").unwrap();
        assert_eq!(cap3.count, 2);
        assert_eq!(cap3.kickstart_total, 120.0);
        assert_eq!(cap3.kickstart_mean, 60.0);
        assert_eq!(cap3.kickstart_max, 70.0);
        assert_eq!(cap3.waiting_mean, 4.0);
        assert_eq!(cap3.waiting_max, 5.0);
        assert_eq!(cap3.install_total, 90.0);
        assert_eq!(cap3.install_mean, 45.0);
    }

    #[test]
    fn badput_counts_failed_attempts() {
        let mut run = sample_run();
        run.records[1].failed_attempts = vec![times(0.0, 1.0, 45.0, 20.0)];
        let stats = compute(&run);
        assert_eq!(stats.cumulative_badput, 66.0);
    }

    #[test]
    fn failed_and_unready_jobs_are_counted() {
        let mut run = sample_run();
        run.records.push(record(3, "merge", JobState::Failed, None));
        run.records
            .push(record(4, "extract_unjoined", JobState::Unready, None));
        let stats = compute(&run);
        assert_eq!(stats.jobs_failed, 1);
        assert_eq!(stats.jobs_unready, 1);
        assert_eq!(stats.jobs_succeeded, 3);
    }

    #[test]
    fn text_report_mentions_key_lines() {
        let text = render_text(&compute(&sample_run()));
        assert!(text.contains("Workflow Wall Time"));
        assert!(text.contains("run_cap3"));
        assert!(text.contains("INSTALL MEAN"));
    }

    #[test]
    fn csv_has_header_plus_one_row_per_type() {
        let csv = render_csv(&compute(&sample_run()));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("task_type,"));
        assert!(csv.contains("run_cap3,2,"));
    }

    #[test]
    fn summary_csv_is_header_plus_one_row_with_fault_counters() {
        let mut run = sample_run();
        run.faults.preemptions = 2;
        run.faults.retries = 3;
        run.faults.backoff_wait = 12.5;
        let csv = render_summary_csv(&compute(&run));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("name,site,wall_time"));
        assert!(csv.contains("w,sandhills,100.000"));
        assert!(csv.ends_with(",2,0,0,0,12.500\n"));
    }

    #[test]
    fn summary_csv_quotes_awkward_names_via_shared_helper() {
        let mut run = sample_run();
        run.name = "w,v2".into();
        let csv = render_summary_csv(&compute(&run));
        let row = csv.lines().nth(1).unwrap();
        assert!(row.starts_with("\"w,v2\",sandhills,"), "{row}");
    }

    #[test]
    fn text_report_breaks_out_fault_causes() {
        let mut run = sample_run();
        run.faults.install_failures = 4;
        run.faults.timeouts = 1;
        let text = render_text(&compute(&run));
        assert!(text.contains("Failures by cause"));
        assert!(text.contains("install 4"));
        assert!(text.contains("timeout 1"));
        // Clean runs stay clean: no fault lines when nothing failed.
        let clean = render_text(&compute(&sample_run()));
        assert!(!clean.contains("Failures by cause"));
    }

    fn sample_ensemble() -> EnsembleRun {
        let mut second = sample_run();
        second.name = "w2".into();
        second.site = "osg".into();
        second.wall_time = 150.0;
        // Retries show up both in the engine counters and as extra
        // attempts on the record.
        second.records[1].attempts = 3;
        second.faults.retries = 2;
        second.faults.install_failures = 2;
        EnsembleRun {
            runs: vec![sample_run(), second],
            makespan: 150.0,
        }
    }

    #[test]
    fn ensemble_rollup_sums_members() {
        let stats = compute_ensemble(&sample_ensemble());
        assert_eq!(stats.per_workflow.len(), 2);
        assert_eq!(stats.makespan, 150.0);
        assert_eq!(stats.workflows_succeeded, 2);
        assert_eq!(stats.workflows_failed, 0);
        assert_eq!(stats.jobs_succeeded, 6);
        assert_eq!(stats.cumulative_job_walltime, 260.0);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.faults.install_failures, 2);
        assert!((stats.aggregate_concurrency() - 260.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn ensemble_csv_has_member_rows_plus_rollup() {
        let csv = render_ensemble_csv(&compute_ensemble(&sample_ensemble()));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4, "header + 2 members + rollup");
        assert_eq!(lines[0], SUMMARY_CSV_HEADER);
        assert!(lines[1].starts_with("w,sandhills,100.000"));
        assert!(lines[2].starts_with("w2,osg,150.000"));
        assert!(
            lines[3].starts_with("ensemble,mixed,150.000"),
            "rollup row carries the makespan: {}",
            lines[3]
        );
    }

    #[test]
    fn ensemble_rollup_site_collapses_when_unanimous() {
        let ens = EnsembleRun {
            runs: vec![sample_run(), sample_run()],
            makespan: 100.0,
        };
        let csv = render_ensemble_csv(&compute_ensemble(&ens));
        assert!(csv
            .lines()
            .last()
            .unwrap()
            .starts_with("ensemble,sandhills,"));
    }

    #[test]
    fn ensemble_text_report_lists_members_and_rollup() {
        let text = render_ensemble_text(&compute_ensemble(&sample_ensemble()));
        assert!(text.contains("Ensemble Makespan"));
        assert!(text.contains("ensemble of 2 workflows"));
        assert!(text.contains("w2"));
        assert!(text.contains("WORKFLOW"));
    }

    #[test]
    fn empty_run_is_all_zero() {
        let run = WorkflowRun {
            name: "w".into(),
            site: "s".into(),
            outcome: WorkflowOutcome::Success,
            wall_time: 0.0,
            records: vec![],
            faults: FaultCounters::default(),
            events: vec![],
        };
        let stats = compute(&run);
        assert_eq!(stats.cumulative_job_walltime, 0.0);
        assert_eq!(stats.speedup_over_serial(), 1.0);
        assert!(stats.per_type.is_empty());
    }
}

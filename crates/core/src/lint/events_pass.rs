//! Pass 4: the event-stream sanitizer.
//!
//! A happens-before checker over [`crate::events::log`] streams, run
//! before provenance is replayed: `pegasus statistics --from-events`
//! and friends fold whatever the log says into CSVs, so a corrupted
//! log must be *rejected*, not trusted.  The checks are exactly the
//! runtime invariants the engine upholds while emitting (including the
//! promoted `debug_assert!`s): one `workflow-started` first, nothing
//! after `workflow-finished`, per-job lifecycle order, per-job
//! monotone timestamps, retry accounting via `retry-scheduled`, and
//! only declared job ids.
//!
//! Truncated streams (no `workflow-finished`) are a warning, not an
//! error: a crashed submit host legitimately leaves one behind, and
//! rescue-from-log must keep working on it.
//!
//! One subtlety governs the stream-order check (`W0709`): healthy
//! engine streams are *not* globally monotone over every `time=`
//! field. `install-started` and `started` events are synthesized
//! retrospectively when an attempt completes, carrying the attempt's
//! earlier timestamps, so under parallel execution a later-finishing
//! job's start legitimately appears after an earlier completion. Only
//! the *emission-ordered* kinds — `workflow-started`, `skipped`,
//! `submitted`, `retry-scheduled`, the terminal events (by their
//! `finished` time), and `workflow-finished` — are written in
//! nondecreasing backend-time order, and only those participate in
//! the monotonicity check. The single source of truth for which kinds
//! count is [`WorkflowEvent::emission_time`], shared with the
//! `E08xx` temporal verifier in [`crate::verify`].

use super::Diagnostic;
use crate::engine::JobTimes;
use crate::error::Span;
use crate::events::WorkflowEvent;
use crate::workflow::JobId;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Default)]
struct JobState {
    submitted: BTreeSet<u32>,
    started: BTreeSet<u32>,
    terminal: BTreeSet<u32>,
    retries_scheduled: BTreeSet<u32>,
    last_time: f64,
}

fn times_ordered(t: &JobTimes) -> bool {
    t.submitted <= t.started && t.started <= t.install_done && t.install_done <= t.finished
}

/// Pass 4: sanitizes one event stream.
///
/// `events` pairs each event with its one-based line number in `file`
/// (from [`crate::events::log::parse_lines`]); streams built in memory
/// can pass line 0.  Emits `E0701`/`E0702` (stream framing),
/// `E0703`/`E0704`/`E0705`/`E0706` (per-job invariants), `W0707`
/// (truncated stream), and `W0709` (emission-ordered events going
/// backwards in time — see the module docs for which kinds count).
pub fn check_events(events: &[(usize, WorkflowEvent)], file: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let at = |line: usize| {
        if line == 0 {
            Span::none()
        } else {
            Span::line(line)
        }
    };

    if events.is_empty() {
        return vec![Diagnostic::new(
            "E0701",
            file,
            Span::none(),
            "stream contains no events (expected exactly one workflow-started)",
        )];
    }

    let mut started_lines = Vec::new();
    let mut declared: BTreeMap<JobId, ()> = BTreeMap::new();
    let mut declared_count: Option<usize> = None;
    let mut finished_at: Option<usize> = None;
    let mut after_finish_reported = false;
    let mut undeclared_reported: BTreeSet<JobId> = BTreeSet::new();
    let mut jobs: BTreeMap<JobId, JobState> = BTreeMap::new();
    let mut last_emitted = f64::NEG_INFINITY;

    for (idx, (line, ev)) in events.iter().enumerate() {
        let line = *line;

        // W0709 runs over the emission-ordered kinds only, as defined
        // by the one shared stream-ordering model
        // (`WorkflowEvent::emission_time`) that the E08xx verifier
        // uses too, so the two passes cannot drift.
        if let Some(t) = ev.emission_time() {
            if t < last_emitted {
                diags.push(
                    Diagnostic::new(
                        "W0709",
                        file,
                        at(line),
                        format!("stream goes backwards in time: {t} after {last_emitted}"),
                    )
                    .with_help(
                        "the engine emits these kinds in nondecreasing backend time; \
                         a reordered or merged log breaks replay assumptions",
                    ),
                );
            }
            last_emitted = last_emitted.max(t);
        }
        if let Some(fin) = finished_at {
            if !after_finish_reported {
                after_finish_reported = true;
                diags.push(
                    Diagnostic::new(
                        "E0702",
                        file,
                        at(line),
                        format!("event after workflow-finished (line {fin}): the run was closed"),
                    )
                    .with_help("the engine refuses events on a crashed or finished workflow"),
                );
            }
        }

        // Framing events first.
        match ev {
            WorkflowEvent::WorkflowStarted { .. } => {
                started_lines.push(line);
                if idx != 0 {
                    diags.push(Diagnostic::new(
                        "E0701",
                        file,
                        at(line),
                        if started_lines.len() > 1 {
                            "second workflow-started in one stream".to_string()
                        } else {
                            format!(
                                "workflow-started is event {} of the stream, not the first",
                                idx + 1
                            )
                        },
                    ));
                }
                if let WorkflowEvent::WorkflowStarted { jobs: n, .. } = ev {
                    declared_count = Some(*n);
                }
                continue;
            }
            WorkflowEvent::WorkflowFinished { .. } => {
                if finished_at.is_none() {
                    finished_at = Some(line);
                } else {
                    diags.push(Diagnostic::new(
                        "E0702",
                        file,
                        at(line),
                        "second workflow-finished in one stream",
                    ));
                }
                continue;
            }
            WorkflowEvent::JobDeclared { job, .. } => {
                declared.insert(*job, ());
                if let Some(n) = declared_count {
                    if job.idx() >= n {
                        diags.push(Diagnostic::new(
                            "E0706",
                            file,
                            at(line),
                            format!(
                                "job id {job} is out of range: workflow-started declared {n} jobs"
                            ),
                        ));
                    }
                }
                continue;
            }
            _ => {}
        }

        // Everything below is a per-job event.
        let (job, time) = match ev {
            WorkflowEvent::Skipped { job, time } => (*job, *time),
            WorkflowEvent::Submitted { job, time, .. } => (*job, *time),
            WorkflowEvent::InstallStarted { job, time, .. } => (*job, *time),
            WorkflowEvent::Started { job, time, .. } => (*job, *time),
            WorkflowEvent::RetryScheduled { job, time, .. } => (*job, *time),
            WorkflowEvent::Completed { job, times, .. }
            | WorkflowEvent::Failed { job, times, .. }
            | WorkflowEvent::TimedOut { job, times, .. } => (*job, times.finished),
            _ => unreachable!("framing events handled above"),
        };

        let in_range = declared_count.is_none_or(|n| job.idx() < n);
        if (!declared.contains_key(&job) || !in_range) && undeclared_reported.insert(job) {
            diags.push(
                Diagnostic::new(
                    "E0706",
                    file,
                    at(line),
                    format!("event references job id {job}, which the stream never declared"),
                )
                .with_help("every job must appear as a `job id=...` declaration first"),
            );
        }

        let state = jobs.entry(job).or_default();
        if time < state.last_time {
            diags.push(Diagnostic::new(
                "E0704",
                file,
                at(line),
                format!(
                    "job {job} goes backwards in time: {time} after {}",
                    state.last_time
                ),
            ));
        }
        state.last_time = state.last_time.max(time);

        match ev {
            WorkflowEvent::Submitted { attempt, .. } => {
                if *attempt > 0 && !state.retries_scheduled.contains(attempt) {
                    diags.push(
                        Diagnostic::new(
                            "E0705",
                            file,
                            at(line),
                            format!(
                                "job {job} submitted at attempt {attempt} with no \
                                 retry-scheduled next-attempt={attempt}"
                            ),
                        )
                        .with_help("every resubmission must be accounted for by a retry-scheduled"),
                    );
                }
                if !state.submitted.insert(*attempt) {
                    diags.push(Diagnostic::new(
                        "E0703",
                        file,
                        at(line),
                        format!("job {job} submitted twice at attempt {attempt}"),
                    ));
                }
            }
            WorkflowEvent::InstallStarted { attempt, .. } if !state.submitted.contains(attempt) => {
                diags.push(Diagnostic::new(
                    "E0703",
                    file,
                    at(line),
                    format!(
                        "job {job} starts installing at attempt {attempt} before being submitted"
                    ),
                ));
            }
            WorkflowEvent::Started { attempt, .. } => {
                if !state.submitted.contains(attempt) {
                    diags.push(Diagnostic::new(
                        "E0703",
                        file,
                        at(line),
                        format!("job {job} started at attempt {attempt} before being submitted"),
                    ));
                }
                state.started.insert(*attempt);
            }
            WorkflowEvent::Completed { attempt, times, .. } => {
                if !state.started.contains(attempt) {
                    diags.push(Diagnostic::new(
                        "E0703",
                        file,
                        at(line),
                        format!("job {job} completed at attempt {attempt} before being started"),
                    ));
                }
                if !state.terminal.insert(*attempt) {
                    diags.push(Diagnostic::new(
                        "E0703",
                        file,
                        at(line),
                        format!("job {job} has two terminal events for attempt {attempt}"),
                    ));
                }
                if !times_ordered(times) {
                    diags.push(Diagnostic::new(
                        "E0704",
                        file,
                        at(line),
                        format!("job {job} has unordered times (want submitted <= started <= install-done <= finished)"),
                    ));
                }
            }
            WorkflowEvent::Failed { attempt, times, .. }
            | WorkflowEvent::TimedOut { attempt, times, .. } => {
                if !state.submitted.contains(attempt) {
                    diags.push(Diagnostic::new(
                        "E0703",
                        file,
                        at(line),
                        format!("job {job} failed at attempt {attempt} before being submitted"),
                    ));
                }
                if !state.terminal.insert(*attempt) {
                    diags.push(Diagnostic::new(
                        "E0703",
                        file,
                        at(line),
                        format!("job {job} has two terminal events for attempt {attempt}"),
                    ));
                }
                if !times_ordered(times) {
                    diags.push(Diagnostic::new(
                        "E0704",
                        file,
                        at(line),
                        format!("job {job} has unordered times (want submitted <= started <= install-done <= finished)"),
                    ));
                }
            }
            WorkflowEvent::RetryScheduled { next_attempt, .. } => {
                state.retries_scheduled.insert(*next_attempt);
            }
            _ => {}
        }
    }

    if started_lines.is_empty() {
        diags.push(Diagnostic::new(
            "E0701",
            file,
            at(events[0].0),
            "stream has no workflow-started event",
        ));
    }
    if finished_at.is_none() {
        let last = events.last().expect("nonempty").0;
        diags.push(
            Diagnostic::new(
                "W0707",
                file,
                at(last),
                "stream has no workflow-finished: truncated (crashed or still-running) run",
            )
            .with_help("rescue-from-log accepts this; statistics over it describe a partial run"),
        );
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::log;

    fn lint_text(text: &str) -> Vec<Diagnostic> {
        check_events(&log::parse_lines(text).unwrap(), "run.events")
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    const CLEAN: &str = "\
workflow-started time=0 jobs=1 site=osg name=w
job id=0 kind=compute transformation=split name=split
submitted time=0 job=0 attempt=0
started time=5 job=0 attempt=0
completed job=0 attempt=0 submitted=0 started=5 install-done=5 finished=9
workflow-finished time=9 wall-time=9 succeeded=true
";

    #[test]
    fn clean_stream_is_clean() {
        assert!(lint_text(CLEAN).is_empty());
    }

    #[test]
    fn golden_fixture_is_clean() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/fixtures/osg_n8.events"
        ))
        .unwrap();
        let diags = lint_text(&text);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn completed_before_started_is_flagged() {
        let text = "\
workflow-started time=0 jobs=1 site=osg name=w
job id=0 kind=compute transformation=split name=split
submitted time=0 job=0 attempt=0
completed job=0 attempt=0 submitted=0 started=5 install-done=5 finished=9
workflow-finished time=9 wall-time=9 succeeded=true
";
        let diags = lint_text(text);
        assert_eq!(codes(&diags), ["E0703"]);
        assert_eq!(diags[0].span.line, 4);
    }

    #[test]
    fn backwards_time_and_unordered_times_are_flagged() {
        let text = "\
workflow-started time=0 jobs=1 site=osg name=w
job id=0 kind=compute transformation=split name=split
submitted time=10 job=0 attempt=0
started time=5 job=0 attempt=0
completed job=0 attempt=0 submitted=10 started=5 install-done=5 finished=3
workflow-finished time=9 wall-time=9 succeeded=true
";
        let diags = lint_text(text);
        // The per-job E0704s plus stream-level W0709s: the terminal's
        // finished=3 and workflow-finished time=9 both precede the
        // submitted time=10 high-water mark.
        assert_eq!(codes(&diags), ["E0704", "W0709", "E0704", "E0704", "W0709"]);
    }

    #[test]
    fn reordered_stream_is_flagged_as_nonmonotone() {
        // Two jobs whose emission-ordered events were merged out of
        // order: job 1's submission (time=2) appears after job 0's
        // completion (finished=9).  Each job is individually clean, so
        // only the stream-level rule can catch this.
        let text = "\
workflow-started time=0 jobs=2 site=osg name=w
job id=0 kind=compute transformation=split name=a
job id=1 kind=compute transformation=split name=b
submitted time=0 job=0 attempt=0
started time=1 job=0 attempt=0
completed job=0 attempt=0 submitted=0 started=1 install-done=1 finished=9
submitted time=2 job=1 attempt=0
started time=3 job=1 attempt=0
completed job=1 attempt=0 submitted=2 started=3 install-done=3 finished=12
workflow-finished time=12 wall-time=12 succeeded=true
";
        let diags = lint_text(text);
        assert_eq!(codes(&diags), ["W0709"]);
        assert_eq!(diags[0].span.line, 7);
    }

    #[test]
    fn retrospective_started_events_do_not_trip_the_stream_check() {
        // A healthy parallel run: job 1 finishes first, then job 0's
        // started event (synthesized retrospectively at its completion)
        // carries time=1, *before* job 1's finished=4.  The stream is
        // exactly what the engine emits and must stay clean.
        let text = "\
workflow-started time=0 jobs=2 site=osg name=w
job id=0 kind=compute transformation=split name=a
job id=1 kind=compute transformation=split name=b
submitted time=0 job=0 attempt=0
submitted time=0 job=1 attempt=0
started time=2 job=1 attempt=0
completed job=1 attempt=0 submitted=0 started=2 install-done=2 finished=4
started time=1 job=0 attempt=0
completed job=0 attempt=0 submitted=0 started=1 install-done=1 finished=7
workflow-finished time=7 wall-time=7 succeeded=true
";
        assert!(lint_text(text).is_empty());
    }

    #[test]
    fn unaccounted_retry_is_flagged() {
        let text = "\
workflow-started time=0 jobs=1 site=osg name=w
job id=0 kind=compute transformation=split name=split
submitted time=0 job=0 attempt=0
started time=1 job=0 attempt=0
failed job=0 attempt=0 reason=preempted submitted=0 started=1 install-done=1 finished=2 detail=storm
submitted time=2 job=0 attempt=1
workflow-finished time=9 wall-time=9 succeeded=false
";
        let diags = lint_text(text);
        assert_eq!(codes(&diags), ["E0705"]);
    }

    #[test]
    fn accounted_retry_is_clean() {
        let text = "\
workflow-started time=0 jobs=1 site=osg name=w
job id=0 kind=compute transformation=split name=split
submitted time=0 job=0 attempt=0
started time=1 job=0 attempt=0
failed job=0 attempt=0 reason=preempted submitted=0 started=1 install-done=1 finished=2 detail=storm
retry-scheduled time=2 job=0 next-attempt=1 backoff=0 reason=preempted detail=storm
submitted time=2 job=0 attempt=1
started time=3 job=0 attempt=1
completed job=0 attempt=1 submitted=2 started=3 install-done=3 finished=4
workflow-finished time=4 wall-time=4 succeeded=true
";
        assert!(lint_text(text).is_empty());
    }

    #[test]
    fn undeclared_and_out_of_range_jobs_are_flagged() {
        let text = "\
workflow-started time=0 jobs=1 site=osg name=w
job id=0 kind=compute transformation=split name=split
submitted time=0 job=7 attempt=0
workflow-finished time=9 wall-time=9 succeeded=false
";
        let diags = lint_text(text);
        assert_eq!(codes(&diags), ["E0706"]);
    }

    #[test]
    fn framing_violations_are_flagged() {
        let text = "\
job id=0 kind=compute transformation=split name=split
workflow-started time=0 jobs=1 site=osg name=w
workflow-finished time=9 wall-time=9 succeeded=true
submitted time=9 job=0 attempt=0
";
        let diags = lint_text(text);
        assert_eq!(codes(&diags), ["E0701", "E0702"]);
    }

    #[test]
    fn truncated_stream_is_a_warning_only() {
        let text = "\
workflow-started time=0 jobs=1 site=osg name=w
job id=0 kind=compute transformation=split name=split
submitted time=0 job=0 attempt=0
";
        let diags = lint_text(text);
        assert_eq!(codes(&diags), ["W0707"]);
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert_eq!(codes(&check_events(&[], "run.events")), ["E0701"]);
    }
}

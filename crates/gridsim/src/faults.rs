//! Seeded, scriptable fault plans — the chaos layer.
//!
//! A [`FaultPlan`] is a declarative schedule of fault scenarios
//! (preemption storms, slot blackout windows, straggler slowdowns,
//! install-failure bursts, a submit-host crash) parsed from a small
//! line-oriented text format. Compiling a plan with a seed yields a
//! [`FaultScript`], whose per-attempt decisions are drawn from a hash
//! of `(seed, job name, attempt)` rather than from a shared stream —
//! so the *same* `(job, attempt)` pair receives the *same* coin flips
//! on every backend and under any event ordering. That is what lets
//! one chaos script replay identically on the discrete-event
//! [`crate::SimBackend`] and on the real `condor` thread pool.
//!
//! Scenario scope:
//!
//! * per-attempt scenarios ([`Scenario::PreemptionStorm`],
//!   [`Scenario::Straggler`], [`Scenario::InstallFailureBurst`]) are
//!   consumed through [`FaultScript::decide`] by every backend;
//! * [`Scenario::SlotBlackout`] is capacity-level: the simulation
//!   backend turns it into slot-down/slot-up events
//!   (via [`FaultScript::blackouts`]);
//! * [`Scenario::SubmitHostCrash`] is engine-level: the DAGMan loop
//!   stops after N completion events
//!   (via [`FaultScript::submit_host_crash_after`]) and leaves a
//!   rescue DAG behind, exactly like a submit host dying mid-run.

use pegasus_wms::engine::FaultReason;
use pegasus_wms::error::WmsError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fault scenario inside a plan. Times are in backend seconds
/// (simulated seconds on `SimBackend`; for real pools the adapter maps
/// wall-clock seconds through its time scale).
#[derive(Debug, Clone, PartialEq)]
pub enum Scenario {
    /// During `[start, start+duration)` every running attempt is
    /// killed with probability `kill_probability`, at a uniformly
    /// drawn moment inside the overlap of its execution window with
    /// the storm window. Failure reason: `"preempted:storm"`.
    PreemptionStorm {
        /// Window start.
        start: f64,
        /// Window length.
        duration: f64,
        /// Per-attempt kill probability.
        kill_probability: f64,
        /// Restrict the storm to jobs whose name starts with this
        /// prefix (`None` = every job).
        target: Option<String>,
    },
    /// Slots `[first_slot, first_slot+slot_count)` leave the pool at
    /// `start` and return at `start+duration`; their occupants are
    /// evicted with reason `"evicted:blackout"`.
    SlotBlackout {
        /// Window start.
        start: f64,
        /// Window length.
        duration: f64,
        /// First slot index taken down.
        first_slot: usize,
        /// Number of consecutive slots taken down.
        slot_count: usize,
    },
    /// Attempts *starting* inside `[start, start+duration)` land on a
    /// slow node with probability `probability` and run `slowdown`
    /// times longer.
    Straggler {
        /// Window start.
        start: f64,
        /// Window length.
        duration: f64,
        /// Execution-time multiplier (> 1 slows the attempt down).
        slowdown: f64,
        /// Probability an attempt is placed on a straggler node.
        probability: f64,
        /// Restrict the slowdown to jobs whose name starts with this
        /// prefix (`None` = every job).
        target: Option<String>,
    },
    /// Attempts whose install phase overlaps `[start, start+duration)`
    /// fail during provisioning with probability `fail_probability`.
    /// Failure reason: `"install:burst"`.
    InstallFailureBurst {
        /// Window start.
        start: f64,
        /// Window length.
        duration: f64,
        /// Per-attempt install-failure probability.
        fail_probability: f64,
        /// Restrict the burst to jobs whose name starts with this
        /// prefix (`None` = every job).
        target: Option<String>,
    },
    /// The submit host crashes after `after_events` completion events
    /// have been processed by the engine; the run stops with a rescue
    /// DAG of everything already done.
    SubmitHostCrash {
        /// Completion events processed before the crash.
        after_events: u64,
    },
}

/// A named schedule of fault scenarios.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Plan name (from the `plan <name>` line; empty if absent).
    pub name: String,
    /// Scenarios, in file order.
    pub scenarios: Vec<Scenario>,
}

fn parse_err(line: usize, reason: impl Into<String>) -> WmsError {
    WmsError::FaultPlanParse {
        line,
        reason: reason.into(),
    }
}

/// Splits `key=value` fields of one scenario line into a lookup.
fn fields(rest: &str, line: usize) -> Result<Vec<(&str, &str)>, WmsError> {
    rest.split_whitespace()
        .map(|tok| {
            tok.split_once('=')
                .ok_or_else(|| parse_err(line, format!("expected key=value, got {tok:?}")))
        })
        .collect()
}

fn take_opt<'a>(fields: &[(&str, &'a str)], key: &str) -> Option<&'a str> {
    fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn take<'a>(fields: &[(&str, &'a str)], key: &str, line: usize) -> Result<&'a str, WmsError> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| parse_err(line, format!("missing field {key}=")))
}

fn take_f64(fields: &[(&str, &str)], key: &str, line: usize) -> Result<f64, WmsError> {
    let raw = take(fields, key, line)?;
    raw.parse()
        .map_err(|_| parse_err(line, format!("bad number for {key}: {raw:?}")))
}

fn take_usize(fields: &[(&str, &str)], key: &str, line: usize) -> Result<usize, WmsError> {
    let raw = take(fields, key, line)?;
    raw.parse()
        .map_err(|_| parse_err(line, format!("bad integer for {key}: {raw:?}")))
}

fn probability(v: f64, key: &str, line: usize) -> Result<f64, WmsError> {
    if (0.0..=1.0).contains(&v) {
        Ok(v)
    } else {
        Err(parse_err(line, format!("{key} must be in [0, 1], got {v}")))
    }
}

impl FaultPlan {
    /// Parses the line-oriented fault-plan format:
    ///
    /// ```text
    /// # comments and blank lines are ignored
    /// plan osg-preemption-storm
    /// preemption-storm start=2000 duration=4000 kill-probability=0.6
    /// slot-blackout start=1000 duration=600 first-slot=0 count=8
    /// straggler start=0 duration=1e12 slowdown=4 probability=0.05
    /// install-failure-burst start=0 duration=1500 fail-probability=0.5
    /// submit-host-crash after-events=150
    /// ```
    pub fn parse(text: &str) -> Result<FaultPlan, WmsError> {
        let mut plan = FaultPlan::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (word, rest) = trimmed
                .split_once(char::is_whitespace)
                .unwrap_or((trimmed, ""));
            match word {
                "plan" => {
                    let name = rest.trim();
                    if name.is_empty() {
                        return Err(parse_err(line, "plan line needs a name"));
                    }
                    plan.name = name.to_string();
                }
                "preemption-storm" => {
                    let f = fields(rest, line)?;
                    plan.scenarios.push(Scenario::PreemptionStorm {
                        start: take_f64(&f, "start", line)?,
                        duration: take_f64(&f, "duration", line)?,
                        kill_probability: probability(
                            take_f64(&f, "kill-probability", line)?,
                            "kill-probability",
                            line,
                        )?,
                        target: take_opt(&f, "target").map(str::to_string),
                    });
                }
                "slot-blackout" => {
                    let f = fields(rest, line)?;
                    plan.scenarios.push(Scenario::SlotBlackout {
                        start: take_f64(&f, "start", line)?,
                        duration: take_f64(&f, "duration", line)?,
                        first_slot: take_usize(&f, "first-slot", line)?,
                        slot_count: take_usize(&f, "count", line)?,
                    });
                }
                "straggler" => {
                    let f = fields(rest, line)?;
                    let slowdown = take_f64(&f, "slowdown", line)?;
                    if slowdown < 1.0 {
                        return Err(parse_err(
                            line,
                            format!("slowdown must be >= 1, got {slowdown}"),
                        ));
                    }
                    plan.scenarios.push(Scenario::Straggler {
                        start: take_f64(&f, "start", line)?,
                        duration: take_f64(&f, "duration", line)?,
                        slowdown,
                        probability: probability(
                            take_f64(&f, "probability", line)?,
                            "probability",
                            line,
                        )?,
                        target: take_opt(&f, "target").map(str::to_string),
                    });
                }
                "install-failure-burst" => {
                    let f = fields(rest, line)?;
                    plan.scenarios.push(Scenario::InstallFailureBurst {
                        start: take_f64(&f, "start", line)?,
                        duration: take_f64(&f, "duration", line)?,
                        fail_probability: probability(
                            take_f64(&f, "fail-probability", line)?,
                            "fail-probability",
                            line,
                        )?,
                        target: take_opt(&f, "target").map(str::to_string),
                    });
                }
                "submit-host-crash" => {
                    let f = fields(rest, line)?;
                    let n = take(&f, "after-events", line)?;
                    let after_events: u64 = n.parse().map_err(|_| {
                        parse_err(line, format!("bad integer for after-events: {n:?}"))
                    })?;
                    plan.scenarios
                        .push(Scenario::SubmitHostCrash { after_events });
                }
                other => {
                    return Err(parse_err(line, format!("unknown scenario {other:?}")));
                }
            }
        }
        Ok(plan)
    }

    /// Renders the plan back into the text format (inverse of
    /// [`FaultPlan::parse`] up to whitespace and comments).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        fn suffix(target: &Option<String>) -> String {
            target
                .as_ref()
                .map(|t| format!(" target={t}"))
                .unwrap_or_default()
        }
        let mut out = String::new();
        if !self.name.is_empty() {
            let _ = writeln!(out, "plan {}", self.name);
        }
        for s in &self.scenarios {
            match s {
                Scenario::PreemptionStorm {
                    start,
                    duration,
                    kill_probability,
                    target,
                } => {
                    let _ = writeln!(
                        out,
                        "preemption-storm start={start} duration={duration} kill-probability={kill_probability}{}",
                        suffix(target)
                    );
                }
                Scenario::SlotBlackout {
                    start,
                    duration,
                    first_slot,
                    slot_count,
                } => {
                    let _ = writeln!(
                        out,
                        "slot-blackout start={start} duration={duration} first-slot={first_slot} count={slot_count}"
                    );
                }
                Scenario::Straggler {
                    start,
                    duration,
                    slowdown,
                    probability,
                    target,
                } => {
                    let _ = writeln!(
                        out,
                        "straggler start={start} duration={duration} slowdown={slowdown} probability={probability}{}",
                        suffix(target)
                    );
                }
                Scenario::InstallFailureBurst {
                    start,
                    duration,
                    fail_probability,
                    target,
                } => {
                    let _ = writeln!(
                        out,
                        "install-failure-burst start={start} duration={duration} fail-probability={fail_probability}{}",
                        suffix(target)
                    );
                }
                Scenario::SubmitHostCrash { after_events } => {
                    let _ = writeln!(out, "submit-host-crash after-events={after_events}");
                }
            }
        }
        out
    }
}

/// Timing of one attempt, as known at assignment: when it starts
/// executing and how long its install and execution phases would take
/// fault-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttemptTiming {
    /// Execution start (slot acquired), backend seconds.
    pub start: f64,
    /// Install/download phase length.
    pub install_duration: f64,
    /// Execution phase length (before any straggler slowdown).
    pub exec_duration: f64,
}

/// The script's verdict for one attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultDecision {
    /// Execution-time multiplier (1.0 = no straggler).
    pub slowdown: f64,
    /// Kill the attempt at this absolute time with this reason, if
    /// any. The time always falls inside the attempt's (slowed) busy
    /// window.
    pub kill: Option<(f64, String)>,
}

impl FaultDecision {
    /// The no-fault decision.
    pub fn clean() -> Self {
        FaultDecision {
            slowdown: 1.0,
            kill: None,
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fault plan compiled with a seed: the object backends consult.
///
/// Every query derives a private RNG from
/// `(seed, job name, attempt, scenario index)`, so decisions are a
/// pure function of those four values — independent of event ordering,
/// of other jobs, and of which backend asks.
#[derive(Debug, Clone)]
pub struct FaultScript {
    plan: FaultPlan,
    seed: u64,
}

impl FaultScript {
    /// Compiles `plan` under `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultScript { plan, seed }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The compile seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Private per-(job, attempt, scenario) generator.
    fn rng_for(&self, job: &str, attempt: u32, scenario_idx: usize) -> StdRng {
        let h = mix(self.seed)
            ^ fnv1a(job)
            ^ mix(attempt as u64 + 1)
            ^ mix(scenario_idx as u64).rotate_left(17);
        StdRng::seed_from_u64(h)
    }

    /// Decides the fate of one attempt given its fault-free timing.
    ///
    /// Order of application: straggler slowdowns first (they stretch
    /// the execution window), then install-failure bursts and
    /// preemption storms against the stretched window; the earliest
    /// kill wins.
    pub fn decide(&self, job: &str, attempt: u32, timing: &AttemptTiming) -> FaultDecision {
        fn targeted(target: &Option<String>, job: &str) -> bool {
            target.as_ref().is_none_or(|t| job.starts_with(t.as_str()))
        }
        let mut slowdown = 1.0_f64;
        for (k, s) in self.plan.scenarios.iter().enumerate() {
            if let Scenario::Straggler {
                start,
                duration,
                slowdown: factor,
                probability,
                target,
            } = s
            {
                if targeted(target, job)
                    && timing.start >= *start
                    && timing.start < start + duration
                {
                    let mut rng = self.rng_for(job, attempt, k);
                    if rng.gen_bool(*probability) {
                        slowdown *= factor;
                    }
                }
            }
        }

        let install_end = timing.start + timing.install_duration;
        let busy_end = install_end + timing.exec_duration * slowdown;
        let mut kill: Option<(f64, String)> = None;
        let mut propose = |at: f64, reason: String| {
            if kill.as_ref().is_none_or(|(t, _)| at < *t) {
                kill = Some((at, reason));
            }
        };
        for (k, s) in self.plan.scenarios.iter().enumerate() {
            match s {
                Scenario::InstallFailureBurst {
                    start,
                    duration,
                    fail_probability,
                    target,
                } => {
                    let lo = timing.start.max(*start);
                    let hi = install_end.min(start + duration);
                    if targeted(target, job) && lo < hi {
                        let mut rng = self.rng_for(job, attempt, k);
                        if rng.gen_bool(*fail_probability) {
                            propose(
                                lo + rng.gen_range(0.0..1.0) * (hi - lo),
                                FaultReason::InstallFailure.tagged("burst"),
                            );
                        }
                    }
                }
                Scenario::PreemptionStorm {
                    start,
                    duration,
                    kill_probability,
                    target,
                } => {
                    let lo = timing.start.max(*start);
                    let hi = busy_end.min(start + duration);
                    if targeted(target, job) && lo < hi {
                        let mut rng = self.rng_for(job, attempt, k);
                        if rng.gen_bool(*kill_probability) {
                            propose(
                                lo + rng.gen_range(0.0..1.0) * (hi - lo),
                                FaultReason::Preemption.tagged("storm"),
                            );
                        }
                    }
                }
                Scenario::Straggler { .. }
                | Scenario::SlotBlackout { .. }
                | Scenario::SubmitHostCrash { .. } => {}
            }
        }
        FaultDecision { slowdown, kill }
    }

    /// Blackout windows as `(start, duration, first_slot, slot_count)`
    /// tuples, for backends that model slot capacity.
    pub fn blackouts(&self) -> Vec<(f64, f64, usize, usize)> {
        self.plan
            .scenarios
            .iter()
            .filter_map(|s| match *s {
                Scenario::SlotBlackout {
                    start,
                    duration,
                    first_slot,
                    slot_count,
                } => Some((start, duration, first_slot, slot_count)),
                _ => None,
            })
            .collect()
    }

    /// The earliest scripted submit-host crash, if any: the engine
    /// stops after this many completion events.
    pub fn submit_host_crash_after(&self) -> Option<u64> {
        self.plan
            .scenarios
            .iter()
            .filter_map(|s| match *s {
                Scenario::SubmitHostCrash { after_events } => Some(after_events),
                _ => None,
            })
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# chaos for the OSG run
plan osg-storm

preemption-storm start=2000 duration=4000 kill-probability=0.6
slot-blackout start=1000 duration=600 first-slot=0 count=8
straggler start=0 duration=100000 slowdown=4 probability=0.5
install-failure-burst start=0 duration=1500 fail-probability=0.5
submit-host-crash after-events=150
";

    #[test]
    fn parse_reads_every_scenario() {
        let plan = FaultPlan::parse(SAMPLE).unwrap();
        assert_eq!(plan.name, "osg-storm");
        assert_eq!(plan.scenarios.len(), 5);
        assert!(matches!(
            plan.scenarios[0],
            Scenario::PreemptionStorm {
                kill_probability, ..
            } if kill_probability == 0.6
        ));
        assert!(matches!(
            plan.scenarios[4],
            Scenario::SubmitHostCrash { after_events: 150 }
        ));
    }

    #[test]
    fn text_round_trip() {
        let plan = FaultPlan::parse(SAMPLE).unwrap();
        let back = FaultPlan::parse(&plan.to_text()).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = FaultPlan::parse("plan p\nwat start=1\n").unwrap_err();
        match err {
            WmsError::FaultPlanParse { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("wat"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(FaultPlan::parse("preemption-storm start=1 duration=2").is_err());
        assert!(
            FaultPlan::parse("preemption-storm start=1 duration=2 kill-probability=3").is_err()
        );
        assert!(
            FaultPlan::parse("straggler start=0 duration=1 slowdown=0.5 probability=1").is_err()
        );
        assert!(FaultPlan::parse("plan\n").is_err());
    }

    #[test]
    fn decisions_are_a_pure_function_of_job_attempt_seed() {
        let plan = FaultPlan::parse(SAMPLE).unwrap();
        let a = FaultScript::new(plan.clone(), 42);
        let b = FaultScript::new(plan.clone(), 42);
        let c = FaultScript::new(plan, 43);
        let t = AttemptTiming {
            start: 2500.0,
            install_duration: 100.0,
            exec_duration: 1000.0,
        };
        let mut diverged = false;
        for job in ["run_cap3_1", "run_cap3_2", "split", "merge"] {
            for attempt in 0..4 {
                assert_eq!(a.decide(job, attempt, &t), b.decide(job, attempt, &t));
                if a.decide(job, attempt, &t) != c.decide(job, attempt, &t) {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "different seeds must change some decision");
    }

    #[test]
    fn decisions_ignore_query_order() {
        let plan = FaultPlan::parse(SAMPLE).unwrap();
        let s = FaultScript::new(plan, 7);
        let t = AttemptTiming {
            start: 2500.0,
            install_duration: 50.0,
            exec_duration: 800.0,
        };
        let forward: Vec<_> = (0..8).map(|i| s.decide(&format!("j{i}"), 0, &t)).collect();
        let mut backward: Vec<_> = (0..8)
            .rev()
            .map(|i| s.decide(&format!("j{i}"), 0, &t))
            .collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn storm_kills_fall_inside_the_overlap_window() {
        let plan =
            FaultPlan::parse("preemption-storm start=100 duration=50 kill-probability=1.0\n")
                .unwrap();
        let s = FaultScript::new(plan, 1);
        let t = AttemptTiming {
            start: 90.0,
            install_duration: 0.0,
            exec_duration: 200.0,
        };
        for i in 0..32 {
            let d = s.decide(&format!("job{i}"), 0, &t);
            let (at, reason) = d.kill.expect("probability 1 storm always kills");
            assert!((100.0..150.0).contains(&at), "kill at {at}");
            assert_eq!(reason, "preempted:storm");
        }
        // An attempt entirely outside the window is untouched.
        let outside = AttemptTiming {
            start: 200.0,
            install_duration: 0.0,
            exec_duration: 50.0,
        };
        assert_eq!(s.decide("job0", 0, &outside), FaultDecision::clean());
    }

    #[test]
    fn install_burst_only_bites_install_phases() {
        let plan =
            FaultPlan::parse("install-failure-burst start=0 duration=1000 fail-probability=1.0\n")
                .unwrap();
        let s = FaultScript::new(plan, 3);
        let with_install = AttemptTiming {
            start: 10.0,
            install_duration: 40.0,
            exec_duration: 100.0,
        };
        let (at, reason) = s.decide("a", 0, &with_install).kill.unwrap();
        assert!((10.0..50.0).contains(&at));
        assert_eq!(reason, "install:burst");
        let no_install = AttemptTiming {
            start: 10.0,
            install_duration: 0.0,
            exec_duration: 100.0,
        };
        assert_eq!(s.decide("a", 0, &no_install), FaultDecision::clean());
    }

    #[test]
    fn straggler_slowdown_stretches_the_storm_target_window() {
        // Slowdown 10 on a 10s job starting at t=0; a storm covering
        // only [50, 80) can then reach it.
        let plan = FaultPlan::parse(
            "straggler start=0 duration=100 slowdown=10 probability=1.0\n\
             preemption-storm start=50 duration=30 kill-probability=1.0\n",
        )
        .unwrap();
        let s = FaultScript::new(plan, 9);
        let t = AttemptTiming {
            start: 0.0,
            install_duration: 0.0,
            exec_duration: 10.0,
        };
        let d = s.decide("x", 0, &t);
        assert_eq!(d.slowdown, 10.0);
        let (at, _) = d.kill.expect("slowed attempt runs into the storm");
        assert!((50.0..80.0).contains(&at));
    }

    #[test]
    fn targeted_scenarios_only_bite_matching_jobs() {
        let text = "preemption-storm start=0 duration=100 kill-probability=1.0 target=run_cap3\n";
        let plan = FaultPlan::parse(text).unwrap();
        assert!(matches!(
            &plan.scenarios[0],
            Scenario::PreemptionStorm { target: Some(t), .. } if t == "run_cap3"
        ));
        // target= round-trips through the text format.
        assert_eq!(FaultPlan::parse(&plan.to_text()).unwrap(), plan);

        let s = FaultScript::new(plan, 5);
        let t = AttemptTiming {
            start: 10.0,
            install_duration: 0.0,
            exec_duration: 50.0,
        };
        assert!(s.decide("run_cap3_7", 0, &t).kill.is_some());
        assert_eq!(s.decide("merge", 0, &t), FaultDecision::clean());
    }

    #[test]
    fn capacity_and_engine_scenarios_are_exposed_separately() {
        let plan = FaultPlan::parse(SAMPLE).unwrap();
        let s = FaultScript::new(plan, 1);
        assert_eq!(s.blackouts(), vec![(1000.0, 600.0, 0, 8)]);
        assert_eq!(s.submit_host_crash_after(), Some(150));
        let empty = FaultScript::new(FaultPlan::default(), 1);
        assert!(empty.blackouts().is_empty());
        assert_eq!(empty.submit_host_crash_after(), None);
    }
}

//! Text serialization for the three catalogs.
//!
//! Real Pegasus deployments keep site, transformation, and replica
//! catalogs in files the tools read at plan time. This module defines
//! a simple INI-style format covering everything our planner consults,
//! so the `pegasus` CLI can plan against user-provided catalogs
//! instead of the built-in paper pair:
//!
//! ```text
//! [site sandhills]
//! preinstalled = python, biopython, cap3
//! shared_fs = true
//! bandwidth_mbps = 100
//! cpu_speed = 1.0
//!
//! [transformation run_cap3]
//! requires = python, biopython, cap3
//! install_cost = 45
//!
//! [replica transcripts.fasta]
//! sites = submit, sandhills
//! ```

use crate::catalog::{ReplicaCatalog, Site, SiteCatalog, Transformation, TransformationCatalog};
use crate::error::WmsError;

/// The three catalogs as read from one file.
#[derive(Debug, Clone, Default)]
pub struct CatalogBundle {
    /// Execution sites.
    pub sites: SiteCatalog,
    /// Transformations.
    pub transformations: TransformationCatalog,
    /// Replicas.
    pub replicas: ReplicaCatalog,
}

fn parse_err(line: usize, reason: impl Into<String>) -> WmsError {
    WmsError::DaxParse {
        span: crate::error::Span::line(line),
        reason: format!("catalog: {}", reason.into()),
    }
}

fn parse_list(v: &str) -> Vec<String> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect()
}

fn parse_bool(v: &str, line: usize) -> Result<bool, WmsError> {
    match v.trim() {
        "true" | "yes" | "1" => Ok(true),
        "false" | "no" | "0" => Ok(false),
        other => Err(parse_err(line, format!("bad boolean {other:?}"))),
    }
}

enum Section {
    None,
    Site(Site),
    Transformation(Transformation),
    Replica(String),
}

/// Parses a catalog file.
pub fn parse(text: &str) -> Result<CatalogBundle, WmsError> {
    let mut bundle = CatalogBundle::default();
    let mut section = Section::None;

    let flush = |section: &mut Section, bundle: &mut CatalogBundle| match std::mem::replace(
        section,
        Section::None,
    ) {
        Section::None | Section::Replica(_) => {}
        Section::Site(site) => bundle.sites.add(site),
        Section::Transformation(t) => bundle.transformations.add(t),
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| parse_err(lineno, "unterminated section header"))?;
            let (kind, name) = header
                .split_once(char::is_whitespace)
                .ok_or_else(|| parse_err(lineno, "section needs a kind and a name"))?;
            let name = name.trim();
            if name.is_empty() {
                return Err(parse_err(lineno, "empty section name"));
            }
            flush(&mut section, &mut bundle);
            section = match kind {
                "site" => Section::Site(Site::new(name)),
                "transformation" => Section::Transformation(Transformation::new(name)),
                "replica" => Section::Replica(name.to_string()),
                other => return Err(parse_err(lineno, format!("unknown section kind {other:?}"))),
            };
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| parse_err(lineno, format!("expected key = value, got {line:?}")))?;
        let (key, value) = (key.trim(), value.trim());
        match &mut section {
            Section::None => return Err(parse_err(lineno, "key outside any section")),
            Section::Site(site) => match key {
                "preinstalled" => {
                    site.preinstalled.extend(parse_list(value));
                }
                "shared_fs" => site.shared_fs = parse_bool(value, lineno)?,
                "bandwidth_mbps" => {
                    let mbps: f64 = value
                        .parse()
                        .map_err(|_| parse_err(lineno, "bad bandwidth_mbps"))?;
                    site.bandwidth_bps = mbps * 1.0e6;
                }
                "cpu_speed" => {
                    site.cpu_speed = value
                        .parse()
                        .map_err(|_| parse_err(lineno, "bad cpu_speed"))?;
                }
                other => return Err(parse_err(lineno, format!("unknown site key {other:?}"))),
            },
            Section::Transformation(t) => match key {
                "requires" => t.requires.extend(parse_list(value)),
                "install_cost" => {
                    t.install_cost_per_pkg = value
                        .parse()
                        .map_err(|_| parse_err(lineno, "bad install_cost"))?;
                }
                "installable" => t.installable = parse_bool(value, lineno)?,
                other => {
                    return Err(parse_err(
                        lineno,
                        format!("unknown transformation key {other:?}"),
                    ))
                }
            },
            Section::Replica(file) => match key {
                "sites" => {
                    for site in parse_list(value) {
                        bundle.replicas.register(file.clone(), site);
                    }
                }
                other => return Err(parse_err(lineno, format!("unknown replica key {other:?}"))),
            },
        }
    }
    flush(&mut section, &mut bundle);
    Ok(bundle)
}

/// Serializes a bundle back to the text format. Site/transformation
/// entries print in name order; replica lines in file order.
pub fn to_text(
    sites: &SiteCatalog,
    transformations: &TransformationCatalog,
    replicas: &ReplicaCatalog,
    known_files: &[&str],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("# pegasus-wms catalogs\n");
    let mut site_names = sites.names();
    site_names.sort();
    for name in site_names {
        let s = sites.get(&name).expect("listed site exists");
        let _ = writeln!(out, "\n[site {name}]");
        let mut pkgs: Vec<&str> = s.preinstalled.iter().map(String::as_str).collect();
        pkgs.sort_unstable();
        if !pkgs.is_empty() {
            let _ = writeln!(out, "preinstalled = {}", pkgs.join(", "));
        }
        let _ = writeln!(out, "shared_fs = {}", s.shared_fs);
        let _ = writeln!(out, "bandwidth_mbps = {}", s.bandwidth_bps / 1.0e6);
        let _ = writeln!(out, "cpu_speed = {}", s.cpu_speed);
    }
    let mut t_names = transformations.names();
    t_names.sort();
    for name in t_names {
        let t = transformations.get(&name).expect("listed entry exists");
        let _ = writeln!(out, "\n[transformation {name}]");
        if !t.requires.is_empty() {
            let _ = writeln!(out, "requires = {}", t.requires.join(", "));
        }
        let _ = writeln!(out, "install_cost = {}", t.install_cost_per_pkg);
        let _ = writeln!(out, "installable = {}", t.installable);
    }
    for file in known_files {
        let sites_for = replicas.sites_for(file);
        if !sites_for.is_empty() {
            let _ = writeln!(out, "\n[replica {file}]");
            let _ = writeln!(out, "sites = {}", sites_for.join(", "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::paper_catalogs;

    const SAMPLE: &str = r#"
# the paper's two platforms
[site sandhills]
preinstalled = python, biopython, cap3
shared_fs = true
bandwidth_mbps = 100
cpu_speed = 1.0

[site osg]
shared_fs = false
cpu_speed = 1.35

[transformation run_cap3]
requires = python, biopython, cap3
install_cost = 45
installable = true

[replica transcripts.fasta]
sites = submit, sandhills
"#;

    #[test]
    fn parses_the_sample() {
        let b = parse(SAMPLE).unwrap();
        let sh = b.sites.get("sandhills").unwrap();
        assert!(sh.shared_fs);
        assert!(sh.preinstalled.contains("biopython"));
        assert_eq!(sh.bandwidth_bps, 100.0e6);
        let osg = b.sites.get("osg").unwrap();
        assert_eq!(osg.cpu_speed, 1.35);
        assert!(osg.preinstalled.is_empty());
        let t = b.transformations.get("run_cap3").unwrap();
        assert_eq!(t.requires.len(), 3);
        assert_eq!(t.install_cost_per_pkg, 45.0);
        assert!(b.replicas.has_replica("transcripts.fasta", "submit"));
        assert!(b.replicas.has_replica("transcripts.fasta", "sandhills"));
        assert!(!b.replicas.has_replica("transcripts.fasta", "osg"));
    }

    #[test]
    fn round_trip_preserves_planning_semantics() {
        let (sites, tc) = paper_catalogs();
        let mut rc = ReplicaCatalog::new();
        rc.register("transcripts.fasta", "submit");
        let text = to_text(&sites, &tc, &rc, &["transcripts.fasta"]);
        let back = parse(&text).unwrap();
        for site_name in ["sandhills", "osg"] {
            let a = sites.get(site_name).unwrap();
            let b = back.sites.get(site_name).unwrap();
            assert_eq!(a.preinstalled, b.preinstalled, "{site_name}");
            assert_eq!(a.shared_fs, b.shared_fs);
            assert_eq!(a.cpu_speed, b.cpu_speed);
        }
        let a = tc.get("run_cap3").unwrap();
        let b = back.transformations.get("run_cap3").unwrap();
        assert_eq!(a.requires, b.requires);
        assert!(back.replicas.has_replica("transcripts.fasta", "submit"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "[site x]\nnot_a_key = 1\n";
        match parse(bad).unwrap_err() {
            WmsError::DaxParse { span, reason } => {
                assert_eq!(span.line, 2);
                assert!(reason.contains("not_a_key"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("[site x\n").is_err());
        assert!(parse("key = value\n").is_err());
        assert!(parse("[site x]\nshared_fs = maybe\n").is_err());
        assert!(parse("[frobnicator y]\n").is_err());
        assert!(parse("[site ]\n").is_err());
        assert!(parse("[site x]\njust a line\n").is_err());
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let b = parse("# c\n; also c\n\n[site a]\ncpu_speed = 2\n").unwrap();
        assert_eq!(b.sites.get("a").unwrap().cpu_speed, 2.0);
    }
}

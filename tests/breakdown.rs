//! Acceptance test for the phase-breakdown profiler: the paper's
//! finding 4 (the Fig. 7–8 per-task decomposition) must be
//! reproducible *from the event stream alone*, and the offline
//! (`--from-events`) rendering must be byte-identical to the live one
//! under the same seed.

use blast2cap3_pegasus::experiment::simulate_blast2cap3_with;
use pegasus_wms::breakdown::{self, BreakdownRow};
use pegasus_wms::engine::EngineConfig;
use pegasus_wms::events;

const SEED: u64 = 11;
const SIZES: [usize; 4] = [10, 100, 300, 500];

/// The `pegasus breakdown` default: OSG's preemption hazard needs a
/// deep retry budget at small n for every compute job to finish.
fn config() -> EngineConfig {
    EngineConfig::builder().retries(20).seed(SEED).build()
}

/// Runs one sweep point and computes its row from the emitted events
/// only — no peeking at the in-memory run.
fn row(site: &str, n: usize) -> BreakdownRow {
    let out = simulate_blast2cap3_with(site, n, SEED, &config(), None);
    assert!(out.run.succeeded(), "{site} n={n} did not complete");
    breakdown::from_events(&out.run.events).expect("engine streams replay")
}

#[test]
fn finding4_reproduced_from_events_alone() {
    let sandhills: Vec<BreakdownRow> = SIZES.iter().map(|&n| row("sandhills", n)).collect();
    let osg: Vec<BreakdownRow> = SIZES.iter().map(|&n| row("osg", n)).collect();

    for r in sandhills.iter().chain(&osg) {
        assert_eq!(r.completed, r.compute_jobs, "{}/n={}", r.site, r.n);
    }

    // Kickstart Time decreases with n on both sites...
    for rows in [&sandhills, &osg] {
        for pair in rows.windows(2) {
            assert!(
                pair[1].kickstart_mean < pair[0].kickstart_mean,
                "{} kickstart must fall with n: {:?}",
                pair[0].site,
                rows.iter().map(|r| r.kickstart_mean).collect::<Vec<_>>()
            );
        }
    }
    // ...and faster on OSG: its fleet has no task-overhead floor, so
    // the n=10 → n=500 contraction is sharper.
    let contraction = |rows: &[BreakdownRow]| rows[0].kickstart_mean / rows[3].kickstart_mean;
    assert!(
        contraction(&osg) > contraction(&sandhills),
        "OSG contracts {:.1}x, Sandhills {:.1}x",
        contraction(&osg),
        contraction(&sandhills)
    );

    for (sh, og) in sandhills.iter().zip(&osg) {
        // Pure kickstart is better on OSG (faster opportunistic
        // nodes)...
        assert!(
            og.kickstart_mean < sh.kickstart_mean,
            "n={}: OSG kickstart {:.0}s !< Sandhills {:.0}s",
            sh.n,
            og.kickstart_mean,
            sh.kickstart_mean
        );
        // ...but its per-task total is worse: install overhead,
        // queue-wait variance, and retry badput eat the difference.
        assert!(
            og.total_mean > sh.total_mean,
            "n={}: OSG total {:.0}s !> Sandhills {:.0}s",
            sh.n,
            og.total_mean,
            sh.total_mean
        );
        // The structural contrasts behind that: install exists only on
        // OSG, and waiting is far larger there.
        assert_eq!(sh.install_mean, 0.0);
        assert!(og.install_mean > 0.0);
        assert!(og.queue_wait_mean > 10.0 * sh.queue_wait_mean);
    }
}

/// The committed fixture log must keep rendering the committed `.prom`
/// snapshot byte-for-byte — the same golden-file check CI runs through
/// the CLI (`pegasus metrics --from-events tests/fixtures/osg_n8.events`).
#[test]
fn committed_fixture_matches_golden_exposition() {
    let fixtures = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let log = std::fs::read_to_string(fixtures.join("osg_n8.events")).unwrap();
    let golden = std::fs::read_to_string(fixtures.join("osg_n8.prom")).unwrap();

    let stream = events::log::parse(&log).unwrap();
    let mut registry = pegasus_wms::metrics::MetricsRegistry::new();
    pegasus_wms::metrics::record_events(&mut registry, &stream).unwrap();
    assert_eq!(registry.render(), golden);
}

#[test]
fn offline_rendering_is_byte_identical_to_live() {
    let out = simulate_blast2cap3_with("osg", 100, SEED, &config(), None);
    assert!(out.run.succeeded());
    let live = breakdown::from_events(&out.run.events).unwrap();

    // Round-trip the stream through the text log — the exact
    // `--events-dir` → `--from-events` path.
    let parsed = events::log::parse(&events::log::write(&out.run.events)).unwrap();
    let offline = breakdown::from_events(&parsed).unwrap();

    assert_eq!(
        breakdown::render_csv(&[live]),
        breakdown::render_csv(&[offline])
    );
}

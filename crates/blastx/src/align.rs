//! Full Smith–Waterman local alignment with affine gaps.
//!
//! The seed-and-extend pipeline in [`crate::extend`] is a heuristic;
//! this module is the exact O(nm) reference: affine-gap local
//! alignment (Gotoh's algorithm) with full traceback to a CIGAR
//! string. It serves three purposes: an oracle for testing the
//! heuristics, a rescoring option for final reported alignments, and
//! the standard API any sequence-analysis library is expected to ship.

use crate::matrix::blosum62;

/// Affine gap parameters (costs are positive; BLASTP defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapParams {
    /// Cost of opening a gap (charged on the first gapped column).
    pub open: i32,
    /// Cost of each additional gapped column.
    pub extend: i32,
}

impl Default for GapParams {
    fn default() -> Self {
        GapParams {
            open: 11,
            extend: 1,
        }
    }
}

/// One CIGAR operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CigarOp {
    /// Aligned pair (match or mismatch), `M`.
    AlignedPair,
    /// Insertion in the query relative to the subject, `I`.
    Insertion,
    /// Deletion in the query relative to the subject, `D`.
    Deletion,
}

impl CigarOp {
    /// The single-letter CIGAR code.
    pub fn letter(&self) -> char {
        match self {
            CigarOp::AlignedPair => 'M',
            CigarOp::Insertion => 'I',
            CigarOp::Deletion => 'D',
        }
    }
}

/// The result of a local alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalAlignment {
    /// Optimal local score (0 when the sequences share nothing).
    pub score: i32,
    /// Query range `[start, end)` of the aligned segment.
    pub query_range: (usize, usize),
    /// Subject range `[start, end)` of the aligned segment.
    pub subject_range: (usize, usize),
    /// Run-length CIGAR: `(count, op)` pairs.
    pub cigar: Vec<(usize, CigarOp)>,
    /// Identical aligned pairs.
    pub identities: usize,
}

impl LocalAlignment {
    /// The CIGAR as text, e.g. `"17M2I40M"`.
    pub fn cigar_string(&self) -> String {
        self.cigar
            .iter()
            .map(|(n, op)| format!("{n}{}", op.letter()))
            .collect()
    }

    /// Total aligned columns.
    pub fn length(&self) -> usize {
        self.cigar.iter().map(|(n, _)| n).sum()
    }

    /// Percent identity over aligned columns (0 for empty).
    pub fn percent_identity(&self) -> f64 {
        let len = self.length();
        if len == 0 {
            0.0
        } else {
            100.0 * self.identities as f64 / len as f64
        }
    }
}

/// Traceback direction per cell/state.
#[derive(Clone, Copy, PartialEq)]
enum Tb {
    Stop,
    Diag,
    Up,   // gap in subject (query consumes): Insertion
    Left, // gap in query (subject consumes): Deletion
}

/// Smith–Waterman–Gotoh local alignment of `query` vs `subject`
/// (protein residues scored by BLOSUM62).
///
/// ```
/// use blastx::align::{local_align, GapParams};
///
/// let a = local_align(b"MKWVAAALLLF", b"MKWVLLLF", GapParams { open: 5, extend: 1 });
/// assert_eq!(a.cigar_string(), "4M3I4M");
/// assert_eq!(a.identities, 8);
/// ```
pub fn local_align(query: &[u8], subject: &[u8], gaps: GapParams) -> LocalAlignment {
    let n = query.len();
    let m = subject.len();
    const NEG: i32 = i32::MIN / 4;
    if n == 0 || m == 0 {
        return LocalAlignment {
            score: 0,
            query_range: (0, 0),
            subject_range: (0, 0),
            cigar: Vec::new(),
            identities: 0,
        };
    }
    // Three-state DP: h = best ending in pair, e = gap in query
    // (Left), f = gap in subject (Up). Full matrices for traceback.
    let w = m + 1;
    let mut h = vec![0i32; (n + 1) * w];
    let mut e = vec![NEG; (n + 1) * w];
    let mut fmat = vec![NEG; (n + 1) * w];
    let mut tb_h = vec![Tb::Stop; (n + 1) * w];
    let mut best = (0i32, 0usize, 0usize);
    for i in 1..=n {
        for j in 1..=m {
            let idx = i * w + j;
            let up = idx - w;
            let left = idx - 1;
            // f: gap in subject, consuming query (vertical).
            fmat[idx] = (h[up] - gaps.open).max(fmat[up] - gaps.extend);
            // e: gap in query, consuming subject (horizontal).
            e[idx] = (h[left] - gaps.open).max(e[left] - gaps.extend);
            let diag = h[up - 1] + blosum62(query[i - 1], subject[j - 1]);
            let mut val = 0;
            let mut tb = Tb::Stop;
            if diag > val {
                val = diag;
                tb = Tb::Diag;
            }
            if fmat[idx] > val {
                val = fmat[idx];
                tb = Tb::Up;
            }
            if e[idx] > val {
                val = e[idx];
                tb = Tb::Left;
            }
            h[idx] = val;
            tb_h[idx] = tb;
            if val > best.0 {
                best = (val, i, j);
            }
        }
    }
    let (score, mut i, mut j) = best;
    if score == 0 {
        return LocalAlignment {
            score: 0,
            query_range: (0, 0),
            subject_range: (0, 0),
            cigar: Vec::new(),
            identities: 0,
        };
    }
    let (qe, se) = (i, j);
    let mut ops: Vec<CigarOp> = Vec::new();
    let mut identities = 0usize;
    // Traceback through the H matrix; gap runs follow E/F recurrences.
    loop {
        let idx = i * w + j;
        match tb_h[idx] {
            Tb::Stop => break,
            Tb::Diag => {
                if query[i - 1].eq_ignore_ascii_case(&subject[j - 1]) {
                    identities += 1;
                }
                ops.push(CigarOp::AlignedPair);
                i -= 1;
                j -= 1;
            }
            Tb::Up => {
                // Walk the F gap run: keep moving up while extension
                // was the better choice.
                loop {
                    ops.push(CigarOp::Insertion);
                    let cur = i * w + j;
                    let from_open = h[cur - w] - gaps.open;
                    let from_ext = fmat[cur - w] - gaps.extend;
                    i -= 1;
                    if from_open >= from_ext {
                        break;
                    }
                }
            }
            Tb::Left => loop {
                ops.push(CigarOp::Deletion);
                let cur = i * w + j;
                let from_open = h[cur - 1] - gaps.open;
                let from_ext = e[cur - 1] - gaps.extend;
                j -= 1;
                if from_open >= from_ext {
                    break;
                }
            },
        }
    }
    ops.reverse();
    // Run-length encode.
    let mut cigar: Vec<(usize, CigarOp)> = Vec::new();
    for op in ops {
        match cigar.last_mut() {
            Some((n, last)) if *last == op => *n += 1,
            _ => cigar.push((1, op)),
        }
    }
    LocalAlignment {
        score,
        query_range: (i, qe),
        subject_range: (j, se),
        cigar,
        identities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::score_slices;

    #[test]
    fn identical_sequences_align_end_to_end() {
        let s = b"MKWVLLLFAARNDCEQ";
        let a = local_align(s, s, GapParams::default());
        assert_eq!(a.score, score_slices(s, s));
        assert_eq!(a.query_range, (0, s.len()));
        assert_eq!(a.subject_range, (0, s.len()));
        assert_eq!(a.cigar_string(), format!("{}M", s.len()));
        assert_eq!(a.identities, s.len());
        assert!((a.percent_identity() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn local_alignment_trims_junk_flanks() {
        let q = b"PPPPPMKWVLLLFPPPPP";
        let s = b"GGGGGMKWVLLLFGGGGG";
        let a = local_align(q, s, GapParams::default());
        // Core MKWVLLLF aligns (P/P and G/G flanks match themselves
        // but P-G cross pairs are negative, so the local optimum is
        // the core... P vs G = -2; flanks align P-to-G? No: both
        // flanks differ, so only the core survives.
        assert_eq!(a.query_range, (5, 13));
        assert_eq!(a.subject_range, (5, 13));
        assert_eq!(a.score, score_slices(b"MKWVLLLF", b"MKWVLLLF"));
    }

    #[test]
    fn insertion_produces_i_op() {
        let q = b"MKWVAAALLLF"; // AAA inserted
        let s = b"MKWVLLLF";
        let a = local_align(q, s, GapParams { open: 5, extend: 1 });
        assert_eq!(a.cigar_string(), "4M3I4M");
        assert_eq!(a.identities, 8);
        // Score: 8 matched residues minus open+2*extend.
        assert_eq!(a.score, score_slices(s, s) - 5 - 2);
    }

    #[test]
    fn deletion_produces_d_op() {
        let q = b"MKWVLLLF";
        let s = b"MKWVAAALLLF";
        let a = local_align(q, s, GapParams { open: 5, extend: 1 });
        assert_eq!(a.cigar_string(), "4M3D4M");
    }

    #[test]
    fn affine_gaps_prefer_one_long_gap() {
        // With affine costs, one 2-gap beats two 1-gaps.
        let q = b"MKWVLLLFCC";
        let s = b"MKWVXXLLLFCC"; // two consecutive extra residues
        let a = local_align(
            q,
            s,
            GapParams {
                open: 10,
                extend: 1,
            },
        );
        let d_runs: Vec<usize> = a
            .cigar
            .iter()
            .filter(|(_, op)| *op == CigarOp::Deletion)
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(d_runs, vec![2], "cigar was {}", a.cigar_string());
    }

    #[test]
    fn unrelated_sequences_score_zero_or_tiny() {
        let a = local_align(b"WWWWWW", b"PPPPPP", GapParams::default());
        assert_eq!(a.score, 0);
        assert!(a.cigar.is_empty());
    }

    #[test]
    fn empty_inputs() {
        let a = local_align(b"", b"MK", GapParams::default());
        assert_eq!(a.score, 0);
        assert_eq!(a.length(), 0);
        assert_eq!(a.percent_identity(), 0.0);
    }

    #[test]
    fn alignment_score_at_least_ungapped_heuristic() {
        // SW is exact: it must never score below the ungapped
        // extension over the same pair.
        use crate::extend::xdrop_extend;
        let q = b"MKWVLLLFAARNDCEQGHIKWWY";
        let mut s_owned = q.to_vec();
        s_owned[10] = b'P'; // one mismatch
        let s = &s_owned;
        let ext = xdrop_extend(q, s, 0, 0, 4, 100);
        let sw = local_align(q, s, GapParams::default());
        assert!(
            sw.score >= ext.score,
            "sw {} < xdrop {}",
            sw.score,
            ext.score
        );
    }

    #[test]
    fn cigar_lengths_match_ranges() {
        let q = b"MKWVAAALLLFCCHH";
        let s = b"MKWVLLLFCCHHEE";
        let a = local_align(q, s, GapParams::default());
        let q_cols: usize = a
            .cigar
            .iter()
            .filter(|(_, op)| matches!(op, CigarOp::AlignedPair | CigarOp::Insertion))
            .map(|(n, _)| n)
            .sum();
        let s_cols: usize = a
            .cigar
            .iter()
            .filter(|(_, op)| matches!(op, CigarOp::AlignedPair | CigarOp::Deletion))
            .map(|(n, _)| n)
            .sum();
        assert_eq!(q_cols, a.query_range.1 - a.query_range.0);
        assert_eq!(s_cols, a.subject_range.1 - a.subject_range.0);
    }
}

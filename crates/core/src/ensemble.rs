//! Ensemble manager: many workflows over one shared backend.
//!
//! The paper's experiment is an *ensemble* — the same blast2cap3 DAG
//! planned at n ∈ {10, 100, 300, 500} and raced across platforms. This
//! module schedules M workflows (mixed DAXes, per-workflow
//! [`EngineConfig`]s, priorities, tenants) against a single
//! [`ExecutionBackend`], so queue-wait variance emerges from genuine
//! contention for shared capacity instead of being replayed one
//! workflow at a time.
//!
//! The entry point is the [`Ensemble`] handle: build one from an
//! [`EnsembleConfig`], [`submit`] each [`Submission`], then [`join`]
//! to drain everything queued. [`poll`] and [`cancel`] cover the
//! daemon lifecycle (`pegasus serve`), and the one-shot
//! [`Ensemble::run_to_completion`] covers the historical
//! `run_ensemble` call shape.
//!
//! Scheduling model:
//!
//! * every workflow's ready jobs enter one **pending queue**;
//! * admission is gated by a global **slot budget**
//!   ([`EnsembleConfig::slot_budget`], defaulting to the backend's
//!   [`ExecutionBackend::slot_capacity`]);
//! * among pending jobs, higher [`Submission::priority`] wins, ties
//!   broken **fair-share** first across tenants, then across
//!   workflows (fewest jobs currently in flight, then least
//!   historical usage), then by submission order — so within one
//!   workflow the engine's ready order is preserved exactly;
//! * a per-tenant slot quota ([`EnsembleConfig::tenant_slots`]) caps
//!   how much of the budget any one tenant can hold; jobs of a tenant
//!   at quota stay queued while other tenants' jobs overtake them;
//! * retries bypass the queue: the failed attempt freed its slot, and
//!   the backend applies the backoff delay, so the budget stays
//!   bounded;
//! * a scripted submit-host crash kills only its own workflow — its
//!   queued jobs are withdrawn, its in-flight events drained, and the
//!   rescue DAG reports exactly what completed, while the rest of the
//!   ensemble keeps running.
//!
//! Single-tenant ensembles order admissions exactly as before the
//! tenant layer existed: with one tenant every candidate carries the
//! same tenant-level key, so the comparison falls through to the
//! per-workflow fair-share unchanged. An ensemble of one workflow
//! with an unbounded budget issues the byte-identical backend call
//! sequence as [`Engine::run`], which is what makes per-workflow
//! results comparable across the two paths (and is pinned by tests).
//!
//! [`Engine::run`]: crate::engine::Engine::run
//! [`submit`]: Ensemble::submit
//! [`join`]: Ensemble::join
//! [`poll`]: Ensemble::poll
//! [`cancel`]: Ensemble::cancel

use crate::engine::{
    CompletionEvent, EngineConfig, ExecutionBackend, WorkflowExecution, WorkflowRun,
};
use crate::error::WmsError;
use crate::events::WorkflowEvent;
use crate::planner::{ExecutableJob, ExecutableWorkflow};
use crate::trace::TraceId;
use crate::workflow::JobId;
use std::cmp::Reverse;
use std::fmt;

/// The tenant a [`Submission`] belongs to when none is named.
pub const DEFAULT_TENANT: &str = "default";

/// One member of an ensemble: a planned workflow plus how — and for
/// whom — to run it.
#[derive(Debug, Clone)]
pub struct Submission {
    /// The planned, executable workflow.
    pub workflow: ExecutableWorkflow,
    /// Engine configuration (retry policy, seed, rescue skips, crash
    /// script) applied to this workflow only.
    pub config: EngineConfig,
    /// Admission priority; higher runs first when slots are scarce.
    /// Workflows of equal priority share slots fairly.
    pub priority: i32,
    /// The tenant charged for this workflow's slot usage. Fair-share
    /// and quota apply per tenant before per workflow.
    pub tenant: String,
    /// The trace id this workflow's spans are keyed by. `None` lets
    /// the admitting surface (daemon, CLI) derive one; the ensemble
    /// itself only carries it.
    pub trace: Option<TraceId>,
}

impl Submission {
    /// A submission for the [`DEFAULT_TENANT`] at priority 0.
    pub fn new(workflow: ExecutableWorkflow, config: EngineConfig) -> Self {
        Submission {
            workflow,
            config,
            priority: 0,
            tenant: DEFAULT_TENANT.to_string(),
            trace: None,
        }
    }

    /// Sets the admission priority (higher wins).
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Names the owning tenant.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Keys this workflow's spans by `trace` end to end.
    pub fn with_trace(mut self, trace: TraceId) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// Ensemble-level knobs.
#[derive(Debug, Clone, Default)]
pub struct EnsembleConfig {
    /// Global cap on simultaneously submitted jobs across all member
    /// workflows. `None` falls back to the backend's
    /// [`ExecutionBackend::slot_capacity`]; if that is also unknown,
    /// admission is unbounded and the backend's own queueing governs.
    pub slot_budget: Option<usize>,
    /// Per-tenant cap on jobs in flight (the quota). `None` leaves
    /// tenants bounded only by the global budget; values are clamped
    /// to at least 1 so a tenant can always make progress.
    pub tenant_slots: Option<usize>,
    /// Per-tenant cap on *queued* submissions, enforced by
    /// [`Ensemble::submit`]. `None` accepts without limit.
    pub tenant_active: Option<usize>,
}

impl EnsembleConfig {
    /// An unbounded-admission config (ignores backend capacity). This
    /// is what makes a size-1 ensemble bit-identical to
    /// [`Engine::run`](crate::engine::Engine::run).
    pub fn unbounded() -> Self {
        EnsembleConfig {
            slot_budget: Some(usize::MAX),
            ..EnsembleConfig::default()
        }
    }

    /// A config with an explicit slot budget.
    pub fn with_slot_budget(slots: usize) -> Self {
        EnsembleConfig {
            slot_budget: Some(slots),
            ..EnsembleConfig::default()
        }
    }

    /// Sets the per-tenant in-flight job quota.
    pub fn with_tenant_slots(mut self, slots: usize) -> Self {
        self.tenant_slots = Some(slots);
        self
    }

    /// Sets the per-tenant queued-submission quota.
    pub fn with_tenant_active(mut self, active: usize) -> Self {
        self.tenant_active = Some(active);
        self
    }
}

/// The result of an ensemble round.
///
/// Each member [`WorkflowRun`] carries its own provenance stream
/// (`runs[i].events`), scoped to that workflow's jobs — so every
/// member can be independently replayed, logged, and analysed offline,
/// and [`crate::statistics::compute_ensemble`] is a fold over streams.
#[derive(Debug, Clone)]
pub struct EnsembleRun {
    /// Per-workflow results, in [`Submission`] order.
    pub runs: Vec<WorkflowRun>,
    /// Time from ensemble start to the last workflow's completion, in
    /// backend seconds.
    pub makespan: f64,
}

impl EnsembleRun {
    /// `true` when every member workflow succeeded.
    pub fn succeeded(&self) -> bool {
        self.runs.iter().all(WorkflowRun::succeeded)
    }
}

/// Progress callbacks for an ensemble round. All methods default to
/// no-ops; implement only what you need. Indices are positions in the
/// round being joined (the order of the returned
/// [`EnsembleRun::runs`]).
pub trait EnsembleMonitor {
    /// A workflow submitted its first job.
    fn workflow_started(&mut self, _index: usize, _name: &str, _now: f64) {}
    /// Freshly emitted provenance events for one member, in causal
    /// order. Delivered incrementally as the round progresses — the
    /// daemon's crash-safe event logs hang off this. The
    /// `WorkflowFinished` trailer is *not* delivered here; it arrives
    /// on the completed run passed to
    /// [`workflow_finished`](Self::workflow_finished).
    fn member_events(&mut self, _index: usize, _events: &[WorkflowEvent]) {}
    /// A workflow finished (successfully, exhausted, or crashed).
    fn workflow_finished(&mut self, _index: usize, _run: &WorkflowRun, _now: f64) {}
    /// The whole round drained.
    fn ensemble_finished(&mut self, _makespan: f64) {}
}

/// The do-nothing ensemble monitor.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopEnsembleMonitor;

impl EnsembleMonitor for NoopEnsembleMonitor {}

/// Identifies one submission within an [`Ensemble`] handle, in
/// submission order starting from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubmissionId(usize);

impl SubmissionId {
    /// The position of this submission in the handle's accept order.
    pub fn idx(self) -> usize {
        self.0
    }
}

impl fmt::Display for SubmissionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Lifecycle state of one submission, as reported by
/// [`Ensemble::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Accepted, waiting for the next [`Ensemble::join`].
    Queued,
    /// Withdrawn by [`Ensemble::cancel`] before it ran.
    Cancelled,
    /// Ran to completion with every job done.
    Succeeded,
    /// Ran but failed (retries exhausted or submit host crashed).
    Failed,
}

/// One accepted submission inside the handle.
struct Entry {
    /// Present while queued; taken when a round runs it.
    submission: Option<Submission>,
    tenant: String,
    cancelled: bool,
    /// Set once a round completed this member.
    succeeded: Option<bool>,
}

/// A first-attempt job waiting for a slot.
#[derive(Debug)]
struct Pending {
    wf: usize,
    job: JobId,
    /// Global enqueue counter: preserves each workflow's ready order
    /// and makes admission deterministic.
    seq: u64,
}

/// Per-workflow bookkeeping inside a running round.
struct Member {
    exec: Option<WorkflowExecution>,
    /// Jobs pre-cloned with ensemble-global ids, indexed by local id.
    submit_jobs: Vec<ExecutableJob>,
    priority: i32,
    tenant: usize,
    in_flight: usize,
    /// First-attempt submissions so far — the historical-usage
    /// tiebreaker that keeps equal-priority workflows interleaving
    /// even when the budget is one slot (in-flight counts all tie at
    /// zero there).
    admitted: usize,
    started: bool,
}

/// Per-tenant bookkeeping inside a running round, mirroring the
/// per-workflow counters one level up.
struct TenantShare {
    in_flight: usize,
    admitted: usize,
}

/// The submission handle: accepts workflows, runs rounds, reports
/// member lifecycle. Shared by the CLI `ensemble` path and the
/// `pegasus serve` daemon.
pub struct Ensemble {
    config: EnsembleConfig,
    entries: Vec<Entry>,
}

impl Ensemble {
    /// An empty handle under `config`.
    pub fn new(config: EnsembleConfig) -> Self {
        Ensemble {
            config,
            entries: Vec::new(),
        }
    }

    /// The config this handle schedules under.
    pub fn config(&self) -> &EnsembleConfig {
        &self.config
    }

    /// Accepts a submission into the queue, validating it up front so
    /// bad workflows are rejected at the API boundary instead of
    /// mid-round.
    ///
    /// # Errors
    /// [`WmsError::QuotaExceeded`] when the tenant already has
    /// [`EnsembleConfig::tenant_active`] submissions queued;
    /// [`WmsError::InvariantViolation`] when the executable job ids
    /// are not dense (`jobs[i].id != i`): the global id mapping would
    /// silently mis-route completions. Planner output always satisfies
    /// this; hand-built workflows may not.
    pub fn submit(&mut self, submission: Submission) -> Result<SubmissionId, WmsError> {
        for (local, j) in submission.workflow.jobs.iter().enumerate() {
            if j.id.idx() != local {
                return Err(WmsError::InvariantViolation {
                    invariant: "executable job ids are dense".into(),
                    detail: format!(
                        "workflow {:?} job at index {local} has id {}",
                        submission.workflow.name, j.id
                    ),
                });
            }
        }
        if let Some(limit) = self.config.tenant_active {
            let active = self
                .entries
                .iter()
                .filter(|e| e.submission.is_some() && !e.cancelled && e.tenant == submission.tenant)
                .count();
            if active >= limit {
                return Err(WmsError::QuotaExceeded {
                    tenant: submission.tenant,
                    limit,
                });
            }
        }
        let id = SubmissionId(self.entries.len());
        self.entries.push(Entry {
            tenant: submission.tenant.clone(),
            submission: Some(submission),
            cancelled: false,
            succeeded: None,
        });
        Ok(id)
    }

    /// The lifecycle state of a submission, or `None` for an id this
    /// handle never issued.
    pub fn poll(&self, id: SubmissionId) -> Option<MemberState> {
        self.entries.get(id.idx()).map(|e| {
            if e.cancelled {
                MemberState::Cancelled
            } else {
                match e.succeeded {
                    Some(true) => MemberState::Succeeded,
                    Some(false) => MemberState::Failed,
                    None => MemberState::Queued,
                }
            }
        })
    }

    /// Withdraws a queued submission. Returns `true` when the member
    /// was still queued and is now cancelled; `false` when it already
    /// ran, was already cancelled, or the id is unknown.
    pub fn cancel(&mut self, id: SubmissionId) -> bool {
        match self.entries.get_mut(id.idx()) {
            Some(e) if e.submission.is_some() && !e.cancelled => {
                e.submission = None;
                e.cancelled = true;
                true
            }
            _ => false,
        }
    }

    /// Number of submissions currently queued (accepted, not
    /// cancelled, not yet run).
    pub fn queued(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.submission.is_some() && !e.cancelled)
            .count()
    }

    /// Runs every queued submission against the shared `backend` as
    /// one round, interleaving their ready queues under the slot
    /// budget and the per-tenant quota, and reports progress to
    /// `monitor`.
    ///
    /// Results come back in submission order; each [`WorkflowRun`]'s
    /// wall time spans round start to that workflow's own completion,
    /// so the rollup can distinguish per-member latency from ensemble
    /// makespan. The backend timeout is the members' unanimous value
    /// if they agree, otherwise the tightest configured limit
    /// (conservative — a shared submit host enforces one policy).
    ///
    /// # Errors
    /// Currently infallible (validation happens in
    /// [`submit`](Self::submit)); the `Result` keeps room for
    /// backend-surfaced failures.
    pub fn join(
        &mut self,
        backend: &mut dyn ExecutionBackend,
        monitor: &mut dyn EnsembleMonitor,
    ) -> Result<EnsembleRun, WmsError> {
        let _prof = crate::prof::scope("ensemble.join");
        let round: Vec<(usize, Submission)> = self
            .entries
            .iter_mut()
            .enumerate()
            .filter_map(|(i, e)| e.submission.take().map(|s| (i, s)))
            .collect();
        if round.is_empty() {
            monitor.ensemble_finished(0.0);
            return Ok(EnsembleRun {
                runs: Vec::new(),
                makespan: 0.0,
            });
        }

        let timeouts: Vec<Option<f64>> =
            round.iter().map(|(_, s)| s.config.retry.timeout).collect();
        let timeout = if timeouts.windows(2).all(|w| w[0] == w[1]) {
            timeouts.first().copied().flatten()
        } else {
            timeouts
                .iter()
                .flatten()
                .copied()
                .fold(None, |acc: Option<f64>, t| {
                    Some(acc.map_or(t, |a| a.min(t)))
                })
        };
        backend.set_timeout(timeout);

        let budget = self
            .config
            .slot_budget
            .or_else(|| backend.slot_capacity())
            .unwrap_or(usize::MAX)
            .max(1);
        let quota = self.config.tenant_slots.map(|q| q.max(1));

        // Global job-id space: workflow k's local job j becomes
        // offsets[k] + j on the wire, and `owner` maps it back.
        let mut members: Vec<Member> = Vec::with_capacity(round.len());
        let mut tenants: Vec<String> = Vec::new();
        let mut shares: Vec<TenantShare> = Vec::new();
        let mut owner: Vec<(usize, JobId)> = Vec::new();
        let mut pending: Vec<Pending> = Vec::new();
        let mut next_seq = 0u64;
        let start = backend.now();

        for (wf_idx, (_, sub)) in round.iter().enumerate() {
            let offset = owner.len();
            let submit_jobs: Vec<ExecutableJob> = sub
                .workflow
                .jobs
                .iter()
                .enumerate()
                .map(|(local, j)| {
                    owner.push((wf_idx, JobId::new(local)));
                    let mut g = j.clone();
                    g.id = JobId::new(offset + local);
                    g
                })
                .collect();
            let tenant = match tenants.iter().position(|t| *t == sub.tenant) {
                Some(i) => i,
                None => {
                    tenants.push(sub.tenant.clone());
                    shares.push(TenantShare {
                        in_flight: 0,
                        admitted: 0,
                    });
                    tenants.len() - 1
                }
            };
            let mut exec = WorkflowExecution::new(&sub.workflow, &sub.config, start);
            for job in exec.take_initial_ready() {
                pending.push(Pending {
                    wf: wf_idx,
                    job,
                    seq: next_seq,
                });
                next_seq += 1;
            }
            // The header + manifest (and rescue skips) exist as soon
            // as the execution does; forward them before any
            // admission so incremental logs always start well-formed.
            monitor.member_events(wf_idx, exec.drain_new_events());
            members.push(Member {
                exec: Some(exec),
                submit_jobs,
                priority: sub.priority,
                tenant,
                in_flight: 0,
                admitted: 0,
                started: false,
            });
        }

        let mut runs: Vec<Option<WorkflowRun>> = (0..round.len()).map(|_| None).collect();
        let mut in_flight_total = 0usize;

        let finalize = |wf_idx: usize,
                        members: &mut Vec<Member>,
                        runs: &mut Vec<Option<WorkflowRun>>,
                        monitor: &mut dyn EnsembleMonitor,
                        now: f64| {
            if let Some(mut exec) = members[wf_idx].exec.take() {
                monitor.member_events(wf_idx, exec.drain_new_events());
                let run = exec.finish(now);
                monitor.workflow_finished(wf_idx, &run, now);
                runs[wf_idx] = Some(run);
            }
        };

        // Workflows with nothing to run (empty, or fully
        // rescue-skipped) finish at t0 without touching the backend.
        for wf_idx in 0..members.len() {
            if members[wf_idx]
                .exec
                .as_ref()
                .is_some_and(WorkflowExecution::is_complete)
            {
                finalize(wf_idx, &mut members, &mut runs, monitor, start);
            }
        }

        loop {
            // Admission: fill the budget from the pending queue.
            // Higher priority first; ties go first to the tenant with
            // the fewest jobs in flight, then to the workflow with the
            // fewest (fair share), then to the earlier-enqueued job,
            // so a lone workflow drains in exact ready order. Tenants
            // at their slot quota are passed over entirely.
            while in_flight_total < budget {
                let best = pending
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| {
                        quota.is_none_or(|q| shares[members[p.wf].tenant].in_flight < q)
                    })
                    .min_by_key(|(_, p)| {
                        let m = &members[p.wf];
                        let t = &shares[m.tenant];
                        (
                            Reverse(m.priority),
                            t.in_flight,
                            t.admitted,
                            m.in_flight,
                            m.admitted,
                            p.wf,
                            p.seq,
                        )
                    })
                    .map(|(i, _)| i);
                let Some(best) = best else { break };
                let Pending { wf, job, .. } = pending.remove(best);
                let member = &mut members[wf];
                if !member.started {
                    member.started = true;
                    monitor.workflow_started(
                        wf,
                        &member.submit_jobs[job.idx()].name,
                        backend.now(),
                    );
                }
                backend.submit(&member.submit_jobs[job.idx()], 0);
                member
                    .exec
                    .as_mut()
                    .expect("pending jobs only exist for live workflows")
                    .note_submitted(job, backend.now());
                member.in_flight += 1;
                member.admitted += 1;
                shares[member.tenant].in_flight += 1;
                shares[member.tenant].admitted += 1;
                in_flight_total += 1;
                let member = &mut members[wf];
                if let Some(exec) = member.exec.as_mut() {
                    monitor.member_events(wf, exec.drain_new_events());
                }
            }

            if in_flight_total == 0 {
                break;
            }

            let ev = backend.wait_any();
            in_flight_total -= 1;
            let (wf_idx, local) = owner[ev.job.idx()];
            members[wf_idx].in_flight -= 1;
            shares[members[wf_idx].tenant].in_flight -= 1;
            let Some(exec) = members[wf_idx].exec.as_mut() else {
                // Stale completion from a workflow that already
                // crashed: the slot is reclaimed, the result
                // discarded.
                continue;
            };
            let local_ev = CompletionEvent {
                job: local,
                attempt: ev.attempt,
                outcome: ev.outcome,
                times: ev.times,
            };
            let resp = exec
                .on_event(&local_ev)
                .expect("crashed members are retired from the live set");
            monitor.member_events(wf_idx, exec.drain_new_events());
            if let Some(r) = resp.retry {
                // The failed attempt just released its slot; the retry
                // reclaims it, so the budget stays respected without
                // re-queueing (backoff is enforced by the backend).
                backend.submit_after(
                    &members[wf_idx].submit_jobs[r.job.idx()],
                    r.next_attempt,
                    r.delay,
                );
                members[wf_idx].in_flight += 1;
                shares[members[wf_idx].tenant].in_flight += 1;
                in_flight_total += 1;
            }
            for job in resp.newly_ready {
                pending.push(Pending {
                    wf: wf_idx,
                    job,
                    seq: next_seq,
                });
                next_seq += 1;
            }
            if resp.crashed {
                // The submit host for this workflow died: withdraw its
                // queued work; in-flight attempts drain as stale
                // events.
                pending.retain(|p| p.wf != wf_idx);
                finalize(wf_idx, &mut members, &mut runs, monitor, backend.now());
            } else if members[wf_idx]
                .exec
                .as_ref()
                .is_some_and(WorkflowExecution::is_complete)
            {
                finalize(wf_idx, &mut members, &mut runs, monitor, backend.now());
            }
        }

        // Anything still live at drain (defensive; normal paths
        // finalize at the terminating event) finishes now.
        for wf_idx in 0..members.len() {
            finalize(wf_idx, &mut members, &mut runs, monitor, backend.now());
        }

        let runs: Vec<WorkflowRun> = runs
            .into_iter()
            .map(|r| r.expect("every workflow finalized"))
            .collect();
        for ((entry_idx, _), run) in round.iter().zip(&runs) {
            self.entries[*entry_idx].succeeded = Some(run.succeeded());
        }
        let makespan = runs.iter().map(|r| r.wall_time).fold(0.0, f64::max);
        monitor.ensemble_finished(makespan);
        Ok(EnsembleRun { runs, makespan })
    }

    /// One-shot convenience: submit every workflow, run a single
    /// round, return its result — the historical `run_ensemble` call
    /// shape.
    ///
    /// # Errors
    /// Whatever [`submit`](Self::submit) or [`join`](Self::join)
    /// surface.
    pub fn run_to_completion(
        backend: &mut dyn ExecutionBackend,
        submissions: Vec<Submission>,
        config: &EnsembleConfig,
    ) -> Result<EnsembleRun, WmsError> {
        Self::run_to_completion_monitored(backend, submissions, config, &mut NoopEnsembleMonitor)
    }

    /// [`run_to_completion`](Self::run_to_completion) with progress
    /// callbacks.
    ///
    /// # Errors
    /// Whatever [`submit`](Self::submit) or [`join`](Self::join)
    /// surface.
    pub fn run_to_completion_monitored(
        backend: &mut dyn ExecutionBackend,
        submissions: Vec<Submission>,
        config: &EnsembleConfig,
        monitor: &mut dyn EnsembleMonitor,
    ) -> Result<EnsembleRun, WmsError> {
        let mut ensemble = Ensemble::new(config.clone());
        for sub in submissions {
            ensemble.submit(sub)?;
        }
        ensemble.join(backend, monitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::scripted::ScriptedBackend;
    use crate::engine::{Engine, JobState, NoopMonitor, RetryPolicy};
    use crate::planner::{ExecutableJob, JobKind};

    fn job(id: usize, name: &str, runtime: f64) -> ExecutableJob {
        ExecutableJob {
            id: JobId::new(id),
            name: name.into(),
            transformation: "t".into(),
            kind: JobKind::Compute,
            args: vec![],
            runtime_hint: runtime,
            install_hint: 0.0,
            source_jobs: vec![],
        }
    }

    /// A diamond: a → {b, c} → d.
    fn diamond(name: &str) -> ExecutableWorkflow {
        ExecutableWorkflow {
            name: name.into(),
            site: "test".into(),
            jobs: vec![
                job(0, &format!("{name}_a"), 1.0),
                job(1, &format!("{name}_b"), 2.0),
                job(2, &format!("{name}_c"), 3.0),
                job(3, &format!("{name}_d"), 1.0),
            ],
            edges: [(0, 1), (0, 2), (1, 3), (2, 3)]
                .iter()
                .map(|&(p, c)| (JobId::new(p), JobId::new(c)))
                .collect(),
        }
    }

    fn cfg(seed: u64) -> EngineConfig {
        let mut c = EngineConfig::builder().retries(2).build();
        c.seed = seed;
        c
    }

    #[test]
    fn ensemble_of_one_matches_engine_run() {
        let wf = diamond("solo");
        let config = cfg(7);

        let mut single_backend = ScriptedBackend::new();
        let single = Engine::run(&mut single_backend, &wf, &config, &mut NoopMonitor);

        let mut ens_backend = ScriptedBackend::new();
        let ens = Ensemble::run_to_completion(
            &mut ens_backend,
            vec![Submission::new(wf, config)],
            &EnsembleConfig::default(),
        )
        .unwrap();

        assert_eq!(ens.runs.len(), 1);
        let e = &ens.runs[0];
        assert_eq!(e.wall_time, single.wall_time);
        assert_eq!(e.records.len(), single.records.len());
        for (a, b) in e.records.iter().zip(&single.records) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.state, b.state);
            assert_eq!(a.attempts, b.attempts);
            assert_eq!(a.times, b.times);
        }
        assert_eq!(single_backend.log, ens_backend.log, "same submission tape");
        assert_eq!(ens.makespan, single.wall_time);
    }

    #[test]
    fn non_dense_job_ids_are_a_typed_error_at_submit() {
        // Sparse ids would silently mis-route completions through the
        // global id mapping; the handle rejects them at the API
        // boundary, before any round runs.
        let sparse = ExecutableWorkflow {
            name: "sparse".into(),
            site: "test".into(),
            jobs: vec![job(3, "a", 1.0)],
            edges: vec![],
        };
        let mut ensemble = Ensemble::new(EnsembleConfig::default());
        let err = ensemble
            .submit(Submission::new(sparse, cfg(1)))
            .unwrap_err();
        assert!(
            matches!(err, crate::error::WmsError::InvariantViolation { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("sparse"), "{err}");
    }

    #[test]
    fn two_workflows_share_the_backend_and_both_finish() {
        let subs = vec![
            Submission::new(diamond("w0"), cfg(1)),
            Submission::new(diamond("w1"), cfg(2)),
        ];
        let mut backend = ScriptedBackend::new();
        let ens =
            Ensemble::run_to_completion(&mut backend, subs, &EnsembleConfig::default()).unwrap();
        assert!(ens.succeeded());
        assert_eq!(ens.runs[0].name, "w0");
        assert_eq!(ens.runs[1].name, "w1");
        for run in &ens.runs {
            assert!(run.records.iter().all(|r| r.state == JobState::Done));
        }
    }

    #[test]
    fn slot_budget_of_one_serialises_submissions_fairly() {
        let subs = vec![
            Submission::new(diamond("w0"), cfg(1)),
            Submission::new(diamond("w1"), cfg(2)),
        ];
        let mut backend = ScriptedBackend::new();
        let ens =
            Ensemble::run_to_completion(&mut backend, subs, &EnsembleConfig::with_slot_budget(1))
                .unwrap();
        assert!(ens.succeeded());
        // With one slot, roots alternate across workflows (fair share
        // by historical usage): w0_a first (lower index), then w1_a.
        assert_eq!(backend.log[0].0, "w0_a");
        assert_eq!(backend.log[1].0, "w1_a");
    }

    #[test]
    fn priority_preempts_fair_share_in_admission_order() {
        let subs = vec![
            Submission::new(diamond("lo"), cfg(1)),
            Submission::new(diamond("hi"), cfg(2)).with_priority(10),
        ];
        let mut backend = ScriptedBackend::new();
        let ens =
            Ensemble::run_to_completion(&mut backend, subs, &EnsembleConfig::with_slot_budget(1))
                .unwrap();
        assert!(ens.succeeded());
        assert_eq!(
            backend.log[0].0, "hi_a",
            "higher priority admits first even though it was enqueued later"
        );
    }

    #[test]
    fn tenants_share_slots_fairly_before_workflows() {
        // alice owns two workflows, bob one. Under workflow-level fair
        // share alone the roots would admit a0, a1, b0 (round-robin by
        // workflow); tenant-level fair share admits a0, then bob
        // (tenant with least usage), then a1.
        let subs = vec![
            Submission::new(diamond("a0"), cfg(1)).with_tenant("alice"),
            Submission::new(diamond("a1"), cfg(2)).with_tenant("alice"),
            Submission::new(diamond("b0"), cfg(3)).with_tenant("bob"),
        ];
        let mut backend = ScriptedBackend::new();
        let ens =
            Ensemble::run_to_completion(&mut backend, subs, &EnsembleConfig::with_slot_budget(1))
                .unwrap();
        assert!(ens.succeeded());
        assert_eq!(backend.log[0].0, "a0_a");
        assert_eq!(
            backend.log[1].0, "b0_a",
            "bob overtakes alice's second root"
        );
        assert_eq!(backend.log[2].0, "a1_a");
    }

    #[test]
    fn tenant_slot_quota_caps_in_flight_jobs() {
        // Budget 4 with a per-tenant quota of 1: each tenant's
        // diamond fans out into a parallel middle layer (b, c), but
        // the quota forces every tenant to run it serialized even
        // though global slots sit free. The identical ensemble
        // without the quota admits each pair at the same instant.
        let build = || {
            vec![
                Submission::new(diamond("al"), cfg(1)).with_tenant("alice"),
                Submission::new(diamond("bo"), cfg(2)).with_tenant("bob"),
            ]
        };
        let t = |run: &WorkflowRun, i: usize| run.records[i].times.unwrap().submitted;

        let mut quotaed = ScriptedBackend::new();
        let config = EnsembleConfig::with_slot_budget(4).with_tenant_slots(1);
        let q = Ensemble::run_to_completion(&mut quotaed, build(), &config).unwrap();
        assert!(q.succeeded());
        for run in &q.runs {
            assert_ne!(t(run, 1), t(run, 2), "quota serializes {}", run.name);
        }

        let mut free = ScriptedBackend::new();
        let f =
            Ensemble::run_to_completion(&mut free, build(), &EnsembleConfig::with_slot_budget(4))
                .unwrap();
        assert!(f.succeeded());
        for run in &f.runs {
            assert_eq!(t(run, 1), t(run, 2), "without quota {} fans out", run.name);
        }
    }

    #[test]
    fn tenant_active_quota_rejects_excess_submissions() {
        let mut ensemble = Ensemble::new(EnsembleConfig::default().with_tenant_active(2));
        ensemble
            .submit(Submission::new(diamond("w0"), cfg(1)).with_tenant("alice"))
            .unwrap();
        ensemble
            .submit(Submission::new(diamond("w1"), cfg(2)).with_tenant("alice"))
            .unwrap();
        let err = ensemble
            .submit(Submission::new(diamond("w2"), cfg(3)).with_tenant("alice"))
            .unwrap_err();
        match err {
            WmsError::QuotaExceeded { tenant, limit } => {
                assert_eq!(tenant, "alice");
                assert_eq!(limit, 2);
            }
            other => panic!("expected quota error, got {other:?}"),
        }
        // Another tenant is unaffected.
        ensemble
            .submit(Submission::new(diamond("w3"), cfg(4)).with_tenant("bob"))
            .unwrap();
    }

    #[test]
    fn poll_and_cancel_follow_the_lifecycle() {
        let mut ensemble = Ensemble::new(EnsembleConfig::default());
        let ok = ensemble
            .submit(Submission::new(diamond("ok"), cfg(1)))
            .unwrap();
        let dropped = ensemble
            .submit(Submission::new(diamond("dropped"), cfg(2)))
            .unwrap();
        assert_eq!(ensemble.poll(ok), Some(MemberState::Queued));
        assert!(ensemble.cancel(dropped));
        assert!(!ensemble.cancel(dropped), "second cancel is a no-op");
        assert_eq!(ensemble.poll(dropped), Some(MemberState::Cancelled));
        assert_eq!(ensemble.queued(), 1);

        let mut backend = ScriptedBackend::new();
        let ens = ensemble
            .join(&mut backend, &mut NoopEnsembleMonitor)
            .unwrap();
        assert_eq!(ens.runs.len(), 1, "cancelled member never ran");
        assert_eq!(ens.runs[0].name, "ok");
        assert_eq!(ensemble.poll(ok), Some(MemberState::Succeeded));
        assert!(
            !ensemble.cancel(ok),
            "completed members cannot be cancelled"
        );
        assert!(
            !backend.log.iter().any(|(n, _)| n.starts_with("dropped")),
            "no dropped_* submissions on the tape"
        );
    }

    #[test]
    fn join_twice_runs_rounds_incrementally() {
        let mut ensemble = Ensemble::new(EnsembleConfig::default());
        let first = ensemble
            .submit(Submission::new(diamond("r1"), cfg(1)))
            .unwrap();
        let mut backend = ScriptedBackend::new();
        let round1 = ensemble
            .join(&mut backend, &mut NoopEnsembleMonitor)
            .unwrap();
        assert_eq!(round1.runs.len(), 1);

        let second = ensemble
            .submit(Submission::new(diamond("r2"), cfg(2)))
            .unwrap();
        let round2 = ensemble
            .join(&mut backend, &mut NoopEnsembleMonitor)
            .unwrap();
        assert_eq!(round2.runs.len(), 1, "first-round member does not rerun");
        assert_eq!(round2.runs[0].name, "r2");
        assert_eq!(ensemble.poll(first), Some(MemberState::Succeeded));
        assert_eq!(ensemble.poll(second), Some(MemberState::Succeeded));
    }

    #[test]
    fn per_workflow_retries_are_isolated() {
        let mut flaky_cfg = EngineConfig::builder().retries(3).build();
        flaky_cfg.seed = 5;
        let subs = vec![
            Submission::new(diamond("ok"), cfg(1)),
            Submission::new(diamond("flaky"), flaky_cfg),
        ];
        let mut backend = ScriptedBackend::new();
        backend.fail_plan.insert(("flaky_b".into(), 0));
        let ens =
            Ensemble::run_to_completion(&mut backend, subs, &EnsembleConfig::default()).unwrap();
        assert!(ens.succeeded());
        assert_eq!(ens.runs[0].faults.total_failures(), 0);
        assert_eq!(ens.runs[1].faults.retries, 1);
        assert_eq!(ens.runs[1].records[1].attempts, 2);
    }

    #[test]
    fn exhausted_workflow_fails_alone_with_rescue_dag() {
        let mut doomed_cfg = EngineConfig::builder().policy(RetryPolicy::flat(1)).build();
        doomed_cfg.seed = 5;
        let subs = vec![
            Submission::new(diamond("ok"), cfg(1)),
            Submission::new(diamond("doomed"), doomed_cfg),
        ];
        let mut backend = ScriptedBackend::new();
        backend.fail_plan.insert(("doomed_b".into(), 0));
        backend.fail_plan.insert(("doomed_b".into(), 1));
        let ens =
            Ensemble::run_to_completion(&mut backend, subs, &EnsembleConfig::default()).unwrap();
        assert!(ens.runs[0].succeeded(), "healthy member unaffected");
        assert!(!ens.runs[1].succeeded());
        match &ens.runs[1].outcome {
            crate::engine::WorkflowOutcome::Failed(rescue) => {
                assert!(rescue.done.contains(&"doomed_a".to_string()));
                assert!(rescue.done.contains(&"doomed_c".to_string()));
            }
            other => panic!("expected rescue DAG, got {other:?}"),
        }
        assert!(!ens.succeeded());
    }

    #[test]
    fn crash_kills_one_member_and_spares_the_rest() {
        let mut crash_cfg = cfg(3);
        crash_cfg.crash_after_events = Some(1);
        let subs = vec![
            Submission::new(diamond("live"), cfg(1)),
            Submission::new(diamond("dying"), crash_cfg),
        ];
        let mut backend = ScriptedBackend::new();
        let ens =
            Ensemble::run_to_completion(&mut backend, subs, &EnsembleConfig::default()).unwrap();
        assert!(ens.runs[0].succeeded(), "uncrashed member completes");
        assert!(!ens.runs[1].succeeded(), "crashed member reports failure");
    }

    #[test]
    fn ensemble_rescue_resume_completes_the_crashed_member() {
        let mut crash_cfg = cfg(3);
        crash_cfg.crash_after_events = Some(1);
        let subs = vec![
            Submission::new(diamond("live"), cfg(1)),
            Submission::new(diamond("dying"), crash_cfg),
        ];
        let mut backend = ScriptedBackend::new();
        let ens =
            Ensemble::run_to_completion(&mut backend, subs, &EnsembleConfig::default()).unwrap();
        let rescue = match &ens.runs[1].outcome {
            crate::engine::WorkflowOutcome::Failed(r) => r.clone(),
            other => panic!("expected rescue DAG, got {other:?}"),
        };
        // Resume just the crashed member, skipping its completed jobs.
        let mut resume_cfg = EngineConfig::builder().retries(2).rescue(&rescue).build();
        resume_cfg.seed = 3;
        let mut backend2 = ScriptedBackend::new();
        let resumed = Ensemble::run_to_completion(
            &mut backend2,
            vec![Submission::new(diamond("dying"), resume_cfg)],
            &EnsembleConfig::default(),
        )
        .unwrap();
        assert!(resumed.succeeded(), "resume completes the remainder");
        let skipped = resumed.runs[0]
            .records
            .iter()
            .filter(|r| r.state == JobState::SkippedDone)
            .count();
        assert_eq!(skipped, rescue.done.len());
    }

    #[test]
    fn empty_workflow_finishes_immediately() {
        let empty = ExecutableWorkflow {
            name: "empty".into(),
            site: "test".into(),
            jobs: vec![],
            edges: vec![],
        };
        let subs = vec![
            Submission::new(empty, cfg(1)),
            Submission::new(diamond("w"), cfg(2)),
        ];
        let mut backend = ScriptedBackend::new();
        let ens =
            Ensemble::run_to_completion(&mut backend, subs, &EnsembleConfig::default()).unwrap();
        assert!(ens.succeeded());
        assert_eq!(ens.runs[0].wall_time, 0.0);
        assert!(ens.runs[1].wall_time > 0.0);
    }

    #[test]
    fn members_carry_independent_replayable_event_streams() {
        let subs = vec![
            Submission::new(diamond("w0"), cfg(1)),
            Submission::new(diamond("w1"), cfg(2)),
        ];
        let mut backend = ScriptedBackend::new();
        backend.fail_plan.insert(("w1_b".into(), 0));
        let ens =
            Ensemble::run_to_completion(&mut backend, subs, &EnsembleConfig::with_slot_budget(2))
                .unwrap();
        assert!(ens.succeeded());
        for run in &ens.runs {
            let replayed = crate::events::replay(&run.events).expect("member streams replay");
            assert_eq!(&replayed, run, "{}", run.name);
        }
    }

    #[test]
    fn monitor_member_events_stream_matches_the_final_run() {
        // The incremental member_events feed plus the finish trailer
        // must reproduce run.events exactly — this is what makes the
        // daemon's crash-safe logs byte-identical to a post-hoc dump.
        struct Collect {
            streams: Vec<Vec<WorkflowEvent>>,
        }
        impl EnsembleMonitor for Collect {
            fn member_events(&mut self, index: usize, events: &[WorkflowEvent]) {
                self.streams[index].extend_from_slice(events);
            }
            fn workflow_finished(&mut self, index: usize, run: &WorkflowRun, _now: f64) {
                let seen = self.streams[index].len();
                self.streams[index].extend_from_slice(&run.events[seen..]);
            }
        }
        let mut monitor = Collect {
            streams: vec![Vec::new(), Vec::new()],
        };
        let subs = vec![
            Submission::new(diamond("w0"), cfg(1)),
            Submission::new(diamond("w1"), cfg(2)),
        ];
        let mut backend = ScriptedBackend::new();
        backend.fail_plan.insert(("w0_c".into(), 0));
        let ens = Ensemble::run_to_completion_monitored(
            &mut backend,
            subs,
            &EnsembleConfig::with_slot_budget(2),
            &mut monitor,
        )
        .unwrap();
        for (stream, run) in monitor.streams.iter().zip(&ens.runs) {
            assert_eq!(stream, &run.events, "{}", run.name);
        }
    }

    #[test]
    fn same_seed_ensembles_replay_identically() {
        let build = || {
            vec![
                Submission::new(diamond("w0"), cfg(1)).with_tenant("alice"),
                Submission::new(diamond("w1"), cfg(2))
                    .with_tenant("bob")
                    .with_priority(1),
            ]
        };
        let mut b1 = ScriptedBackend::new();
        let mut b2 = ScriptedBackend::new();
        let e1 =
            Ensemble::run_to_completion(&mut b1, build(), &EnsembleConfig::with_slot_budget(2))
                .unwrap();
        let e2 =
            Ensemble::run_to_completion(&mut b2, build(), &EnsembleConfig::with_slot_budget(2))
                .unwrap();
        assert_eq!(b1.log, b2.log, "submission tapes identical");
        assert_eq!(e1.makespan, e2.makespan);
        for (a, b) in e1.runs.iter().zip(&e2.runs) {
            assert_eq!(a.wall_time, b.wall_time);
        }
    }
}

//! Error type for workflow construction, planning, and parsing.

use std::fmt;

/// A source position inside a parsed input file.
///
/// Lines and columns are one-based; `0` means "unknown".  The DAX
/// parser produces full line/col spans, line-oriented formats (fault
/// plans, event logs) produce line-only spans, and programmatically
/// built values carry [`Span::none`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// One-based line number (0 when unknown).
    pub line: usize,
    /// One-based column number (0 when unknown).
    pub col: usize,
}

impl Span {
    /// A span with both line and column.
    pub fn new(line: usize, col: usize) -> Self {
        Span { line, col }
    }

    /// A line-only span (column unknown).
    pub fn line(line: usize) -> Self {
        Span { line, col: 0 }
    }

    /// The unknown span, used for values not read from a file.
    pub fn none() -> Self {
        Span { line: 0, col: 0 }
    }

    /// True when the span carries no position at all.
    pub fn is_none(&self) -> bool {
        self.line == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(f, "line {}, col {}", self.line, self.col)
        } else {
            write!(f, "line {}", self.line)
        }
    }
}

/// Errors raised across the WMS stack.
#[derive(Debug, Clone, PartialEq)]
pub enum WmsError {
    /// A job id was declared twice.
    DuplicateJob(String),
    /// An explicit dependency references an unknown job.
    UnknownJob(String),
    /// The dependency graph contains a cycle through this job.
    CycleDetected(String),
    /// Two different jobs declare the same output file.
    ConflictingProducer {
        /// The logical file with two producers.
        file: String,
        /// The first producer.
        first: String,
        /// The conflicting second producer.
        second: String,
    },
    /// A site name (or alias) did not resolve against the site
    /// catalog or registry.
    UnknownSite {
        /// The name that failed to resolve.
        site: String,
        /// Primary names of the sites that *are* registered, sorted;
        /// empty when the resolver had no listing to offer.
        known: Vec<String>,
    },
    /// The planner could not resolve a transformation at the target
    /// site or as a stageable/installable executable.
    UnresolvableTransformation {
        /// The transformation name.
        transformation: String,
        /// The target site.
        site: String,
    },
    /// DAX parsing failed.
    DaxParse {
        /// Position of the offending construct.
        span: Span,
        /// Description of the problem.
        reason: String,
    },
    /// A rescue file was malformed.
    RescueParse(String),
    /// A site-definition file was malformed.
    SiteDefParse {
        /// One-based line number (0 when unknown).
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A fault-plan file was malformed.
    FaultPlanParse {
        /// One-based line number (0 when unknown).
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// An event-log file was malformed.
    EventLogParse {
        /// One-based line number (0 when unknown).
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A `pegasus serve` protocol or journal line was malformed.
    ProtocolParse {
        /// One-based line number (0 when unknown, e.g. single-line
        /// socket requests).
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A tenant hit its admission quota.
    QuotaExceeded {
        /// The tenant that was refused.
        tenant: String,
        /// The quota that was hit.
        limit: usize,
    },
    /// An internal runtime invariant was violated.  These were
    /// previously `debug_assert!`s that vanished in release builds;
    /// they now surface as typed errors so callers (and the event-log
    /// sanitizer) can detect corrupted state instead of continuing on
    /// garbage.
    InvariantViolation {
        /// The invariant that was expected to hold.
        invariant: String,
        /// What was observed instead.
        detail: String,
    },
}

impl fmt::Display for WmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WmsError::DuplicateJob(id) => write!(f, "duplicate job id {id:?}"),
            WmsError::UnknownJob(id) => write!(f, "dependency references unknown job {id:?}"),
            WmsError::CycleDetected(id) => {
                write!(f, "workflow is not a DAG: cycle through job {id:?}")
            }
            WmsError::ConflictingProducer {
                file,
                first,
                second,
            } => write!(
                f,
                "logical file {file:?} produced by both {first:?} and {second:?}"
            ),
            WmsError::UnknownSite { site, known } => {
                write!(f, "site {site:?} not in site catalog")?;
                if !known.is_empty() {
                    write!(f, " (known sites: {})", known.join(", "))?;
                }
                Ok(())
            }
            WmsError::UnresolvableTransformation {
                transformation,
                site,
            } => write!(
                f,
                "transformation {transformation:?} unavailable at site {site:?} and not installable"
            ),
            WmsError::DaxParse { span, reason } => {
                if span.is_none() {
                    write!(f, "DAX parse error: {reason}")
                } else {
                    write!(f, "DAX parse error at {span}: {reason}")
                }
            }
            WmsError::RescueParse(reason) => write!(f, "rescue DAG parse error: {reason}"),
            WmsError::SiteDefParse { line, reason } => {
                write!(f, "site definition parse error at line {line}: {reason}")
            }
            WmsError::FaultPlanParse { line, reason } => {
                write!(f, "fault plan parse error at line {line}: {reason}")
            }
            WmsError::EventLogParse { line, reason } => {
                write!(f, "event log parse error at line {line}: {reason}")
            }
            WmsError::ProtocolParse { line, reason } => {
                if *line == 0 {
                    write!(f, "protocol parse error: {reason}")
                } else {
                    write!(f, "protocol parse error at line {line}: {reason}")
                }
            }
            WmsError::QuotaExceeded { tenant, limit } => {
                write!(f, "tenant {tenant:?} exceeded its quota of {limit}")
            }
            WmsError::InvariantViolation { invariant, detail } => {
                write!(f, "internal invariant violated ({invariant}): {detail}")
            }
        }
    }
}

impl std::error::Error for WmsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        assert!(WmsError::DuplicateJob("split".into())
            .to_string()
            .contains("split"));
        let e = WmsError::UnknownSite {
            site: "mars".into(),
            known: vec![],
        };
        assert_eq!(e.to_string(), "site \"mars\" not in site catalog");
        let e = WmsError::UnknownSite {
            site: "mars".into(),
            known: vec!["osg".into(), "sandhills".into()],
        };
        assert_eq!(
            e.to_string(),
            "site \"mars\" not in site catalog (known sites: osg, sandhills)"
        );
        let e = WmsError::ConflictingProducer {
            file: "out.txt".into(),
            first: "a".into(),
            second: "b".into(),
        };
        let s = e.to_string();
        assert!(s.contains("out.txt") && s.contains('a') && s.contains('b'));
        assert!(WmsError::DaxParse {
            span: Span::new(12, 7),
            reason: "bad tag".into()
        }
        .to_string()
        .contains("line 12, col 7"));
    }

    #[test]
    fn spans_render_by_precision() {
        assert_eq!(Span::new(3, 9).to_string(), "line 3, col 9");
        assert_eq!(Span::line(3).to_string(), "line 3");
        assert!(Span::none().is_none());
        assert!(!Span::line(1).is_none());
    }

    #[test]
    fn quota_and_protocol_errors_render_their_context() {
        let q = WmsError::QuotaExceeded {
            tenant: "alice".into(),
            limit: 4,
        };
        let s = q.to_string();
        assert!(s.contains("alice") && s.contains('4'), "{s}");
        let p = WmsError::ProtocolParse {
            line: 0,
            reason: "unknown verb \"submti\"".into(),
        };
        assert_eq!(
            p.to_string(),
            "protocol parse error: unknown verb \"submti\""
        );
        let p = WmsError::ProtocolParse {
            line: 3,
            reason: "bad n".into(),
        };
        assert!(p.to_string().contains("line 3"), "{p}");
    }

    #[test]
    fn invariant_violations_name_both_sides() {
        let e = WmsError::InvariantViolation {
            invariant: "executable job ids are dense".into(),
            detail: "job 4 has id 9".into(),
        };
        let s = e.to_string();
        assert!(s.contains("dense") && s.contains("id 9"));
    }
}

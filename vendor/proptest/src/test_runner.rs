//! The case runner: deterministic per-case seeds derived from the
//! test's source location, a configurable case count, and failure
//! reporting with enough detail to reproduce (file, line, case
//! index, seed).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration; exported as `ProptestConfig` from the
/// prelude like upstream.
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the workspace's large
        // suites fast while still exploring a useful volume.
        Config { cases: 64 }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Derives the deterministic seed for one case of one test.
pub fn case_seed(file: &str, line: u32, case: u32) -> u64 {
    fnv1a(file.as_bytes())
        ^ ((line as u64) << 32)
        ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `cases` deterministic cases; panics (failing the enclosing
/// `#[test]`) on the first case whose body returns `Err`.
pub fn run_cases<F>(config: Config, file: &str, line: u32, mut case_fn: F)
where
    F: FnMut(&mut StdRng) -> Result<(), String>,
{
    for case in 0..config.cases {
        let seed = case_seed(file, line, case);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(message) = case_fn(&mut rng) {
            panic!(
                "proptest failure at {file}:{line}, case {case}/{total} (seed {seed:#x}):\n{message}",
                total = config.cases,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = case_seed("x.rs", 10, 0);
        let b = case_seed("x.rs", 10, 0);
        assert_eq!(a, b);
        assert_ne!(case_seed("x.rs", 10, 1), a);
        assert_ne!(case_seed("y.rs", 10, 0), a);
        assert_ne!(case_seed("x.rs", 11, 0), a);
    }

    #[test]
    #[should_panic(expected = "proptest failure")]
    fn failing_case_panics_with_location() {
        run_cases(Config::with_cases(4), "t.rs", 1, |_| Err("boom".into()));
    }
}

//! The local worker pool: a real execution backend.
//!
//! [`LocalPool`] runs planned jobs on OS threads with real wall-clock
//! timing. Compute transformations execute Rust closures registered in
//! a [`TaskRegistry`] (the blast2cap3 kernels, in this repository);
//! auxiliary jobs and unregistered transformations succeed after an
//! optional scaled sleep, so simulation-calibration experiments can
//! also run through the real machinery. A failure-injection hook
//! fabricates OSG-style preemptions to exercise the engine's retry and
//! rescue paths for real.

use pegasus_wms::engine::{CompletionEvent, ExecutionBackend, FaultReason, JobOutcome, JobTimes};
use pegasus_wms::planner::ExecutableJob;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything a task kernel sees about its job.
#[derive(Debug, Clone)]
pub struct TaskContext {
    /// Planned job name (e.g. `"run_cap3_17"`).
    pub job_name: String,
    /// Transformation name used for registry lookup.
    pub transformation: String,
    /// Arguments from the abstract job.
    pub args: Vec<String>,
    /// 0-based attempt number.
    pub attempt: u32,
    /// Working directory shared by the workflow's tasks.
    pub workdir: PathBuf,
}

/// A task kernel: returns `Err(reason)` to fail the attempt.
pub type TaskFn = Arc<dyn Fn(&TaskContext) -> Result<(), String> + Send + Sync>;

/// Maps transformation names to task kernels.
#[derive(Clone, Default)]
pub struct TaskRegistry {
    map: HashMap<String, TaskFn>,
}

impl TaskRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the kernel for a transformation.
    pub fn register<F>(&mut self, transformation: impl Into<String>, f: F)
    where
        F: Fn(&TaskContext) -> Result<(), String> + Send + Sync + 'static,
    {
        self.map.insert(transformation.into(), Arc::new(f));
    }

    /// Looks a kernel up.
    pub fn get(&self, transformation: &str) -> Option<&TaskFn> {
        self.map.get(transformation)
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl std::fmt::Debug for TaskRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskRegistry")
            .field("transformations", &self.map.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Pool options.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Working directory handed to task kernels.
    pub workdir: PathBuf,
    /// Real seconds slept per `runtime_hint` second for transformations
    /// with no registered kernel (0.0 = return immediately).
    pub synthetic_time_scale: f64,
    /// Real seconds slept per `install_hint` second, emulating the
    /// OSG download/install phase at laptop scale (0.0 = skip).
    pub install_time_scale: f64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            workdir: std::env::temp_dir().join("condor_pool"),
            synthetic_time_scale: 0.0,
            install_time_scale: 0.0,
        }
    }
}

/// A failure injector: given (job name, attempt), return `Some(reason)`
/// to make that attempt fail.
pub type FailureInjector = Arc<dyn Fn(&str, u32) -> Option<String> + Send + Sync>;

/// What the fault injector learns about an attempt before it runs.
#[derive(Debug, Clone)]
pub struct FaultProbe {
    /// Planned job name.
    pub job: String,
    /// 0-based attempt number.
    pub attempt: u32,
    /// Attempt start, in pool-relative seconds.
    pub started: f64,
    /// Planned (scaled) install-phase sleep, real seconds.
    pub install_duration: f64,
    /// Planned (scaled) synthetic execution sleep, real seconds;
    /// zero for registered kernels, whose duration is unknown.
    pub exec_duration: f64,
}

/// One fault imposed on an attempt by a [`FaultInjector`].
#[derive(Debug, Clone)]
pub enum InjectedFault {
    /// Multiply the synthetic execution sleep (straggler emulation).
    Slowdown(f64),
    /// Fail right after the install phase with this reason.
    Fail(String),
    /// Evict the attempt `after` real seconds from its start. Sleeps
    /// are cut short; registered kernels run to completion and are
    /// failed post-hoc when they exceed the deadline.
    Evict {
        /// Seconds from attempt start to the eviction.
        after: f64,
        /// Failure reason reported to the engine.
        reason: String,
    },
}

/// A structured fault injector consulted once per attempt.
pub type FaultInjector = Arc<dyn Fn(&FaultProbe) -> Vec<InjectedFault> + Send + Sync>;

struct WorkItem {
    job: ExecutableJob,
    attempt: u32,
    submitted: f64,
}

/// The local execution backend.
pub struct LocalPool {
    job_tx: Option<crossbeam::channel::Sender<WorkItem>>,
    done_rx: crossbeam::channel::Receiver<CompletionEvent>,
    handles: Vec<std::thread::JoinHandle<()>>,
    t0: Instant,
    /// Per-attempt wall-clock budget, shared with the workers.
    timeout: Arc<std::sync::Mutex<Option<f64>>>,
    /// Worker-thread count, reported as slot capacity so an ensemble
    /// manager sharing this pool can budget admissions.
    workers: usize,
}

impl LocalPool {
    /// Starts a pool with no failure injection.
    pub fn new(config: PoolConfig, registry: TaskRegistry) -> Self {
        Self::with_fault_injector(config, registry, None)
    }

    /// Starts a pool with the legacy flat injector: `Some(reason)`
    /// fails the attempt right after its install phase.
    pub fn with_failure_injector(
        config: PoolConfig,
        registry: TaskRegistry,
        injector: Option<FailureInjector>,
    ) -> Self {
        let adapted: Option<FaultInjector> = injector.map(|f| {
            Arc::new(move |probe: &FaultProbe| {
                f(&probe.job, probe.attempt)
                    .map(InjectedFault::Fail)
                    .into_iter()
                    .collect()
            }) as FaultInjector
        });
        Self::with_fault_injector(config, registry, adapted)
    }

    /// Starts a pool consulting a structured fault injector once per
    /// attempt. This is how scripted chaos (preemption storms,
    /// stragglers, install bursts) reaches real thread-pool runs.
    pub fn with_fault_injector(
        config: PoolConfig,
        registry: TaskRegistry,
        injector: Option<FaultInjector>,
    ) -> Self {
        std::fs::create_dir_all(&config.workdir).ok();
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<WorkItem>();
        let (done_tx, done_rx) = crossbeam::channel::unbounded::<CompletionEvent>();
        let t0 = Instant::now();
        let registry = Arc::new(registry);
        let config = Arc::new(config);
        let timeout = Arc::new(std::sync::Mutex::new(None::<f64>));
        let mut handles = Vec::with_capacity(config.workers.max(1));
        for _ in 0..config.workers.max(1) {
            let job_rx = job_rx.clone();
            let done_tx = done_tx.clone();
            let registry = Arc::clone(&registry);
            let config = Arc::clone(&config);
            let injector = injector.clone();
            let timeout = Arc::clone(&timeout);
            handles.push(std::thread::spawn(move || {
                while let Ok(item) = job_rx.recv() {
                    let now = |t0: Instant| t0.elapsed().as_secs_f64();
                    let started = now(t0);
                    let task = registry.get(&item.job.transformation).map(Arc::clone);
                    let planned_install = if config.install_time_scale > 0.0 {
                        item.job.install_hint.max(0.0) * config.install_time_scale
                    } else {
                        0.0
                    };
                    let planned_exec = if task.is_none() && config.synthetic_time_scale > 0.0 {
                        item.job.runtime_hint.max(0.0) * config.synthetic_time_scale
                    } else {
                        0.0
                    };

                    // Consult the injector, then fold the engine's
                    // per-attempt timeout in as one more eviction.
                    let mut slowdown = 1.0_f64;
                    let mut fail_after_install: Option<String> = None;
                    let mut evict: Option<(f64, String)> = None;
                    let propose_evict =
                        |evict: &mut Option<(f64, String)>, after: f64, reason: String| {
                            if evict.as_ref().is_none_or(|(t, _)| after < *t) {
                                *evict = Some((after, reason));
                            }
                        };
                    if let Some(f) = injector.as_ref() {
                        let probe = FaultProbe {
                            job: item.job.name.clone(),
                            attempt: item.attempt,
                            started,
                            install_duration: planned_install,
                            exec_duration: planned_exec,
                        };
                        for fault in f(&probe) {
                            match fault {
                                InjectedFault::Slowdown(s) => slowdown *= s.max(0.0),
                                InjectedFault::Fail(reason) => {
                                    fail_after_install.get_or_insert(reason);
                                }
                                InjectedFault::Evict { after, reason } => {
                                    propose_evict(&mut evict, after, reason);
                                }
                            }
                        }
                    }
                    if let Some(limit) = *timeout.lock().expect("timeout lock") {
                        propose_evict(&mut evict, limit, FaultReason::timeout_exceeded(limit));
                    }
                    let deadline = evict.as_ref().map(|(after, _)| started + after);
                    let evict_reason = evict.map(|(_, reason)| reason);

                    // Install phase (scaled emulation), cut short by an
                    // eviction that lands inside it.
                    let mut early_failure: Option<String> = None;
                    if planned_install > 0.0 {
                        let cut = deadline.is_some_and(|d| d < started + planned_install);
                        let sleep_for = if cut {
                            (deadline.expect("cut implies deadline") - now(t0)).max(0.0)
                        } else {
                            planned_install
                        };
                        std::thread::sleep(Duration::from_secs_f64(sleep_for));
                        if cut {
                            early_failure = evict_reason.clone();
                        }
                    }
                    let install_done = now(t0);

                    let ctx = TaskContext {
                        job_name: item.job.name.clone(),
                        transformation: item.job.transformation.clone(),
                        args: item.job.args.clone(),
                        attempt: item.attempt,
                        workdir: config.workdir.clone(),
                    };
                    let outcome = if let Some(reason) = early_failure {
                        JobOutcome::Failure(reason)
                    } else if let Some(reason) = fail_after_install {
                        JobOutcome::Failure(reason)
                    } else if let Some(task) = task {
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(&ctx)))
                        {
                            // A kernel cannot be interrupted mid-run;
                            // an overrun deadline evicts it post-hoc.
                            Ok(Ok(())) => match deadline {
                                Some(d) if now(t0) > d => JobOutcome::Failure(
                                    evict_reason.clone().expect("deadline implies reason"),
                                ),
                                _ => JobOutcome::Success,
                            },
                            Ok(Err(reason)) => JobOutcome::Failure(reason),
                            Err(_) => JobOutcome::Failure("task panicked".into()),
                        }
                    } else {
                        let exec = planned_exec * slowdown;
                        let cut = deadline.is_some_and(|d| d < install_done + exec);
                        if exec > 0.0 {
                            let sleep_for = if cut {
                                (deadline.expect("cut implies deadline") - now(t0)).max(0.0)
                            } else {
                                exec
                            };
                            std::thread::sleep(Duration::from_secs_f64(sleep_for));
                        }
                        if cut {
                            JobOutcome::Failure(
                                evict_reason.clone().expect("deadline implies reason"),
                            )
                        } else {
                            JobOutcome::Success
                        }
                    };
                    let finished = now(t0);
                    let _ = done_tx.send(CompletionEvent {
                        job: item.job.id,
                        attempt: item.attempt,
                        outcome,
                        times: JobTimes {
                            submitted: item.submitted,
                            started,
                            install_done,
                            finished,
                        },
                    });
                }
            }));
        }
        LocalPool {
            job_tx: Some(job_tx),
            done_rx,
            handles,
            t0,
            timeout,
            workers: config.workers.max(1),
        }
    }
}

impl ExecutionBackend for LocalPool {
    fn submit(&mut self, job: &ExecutableJob, attempt: u32) {
        let item = WorkItem {
            job: job.clone(),
            attempt,
            submitted: self.now(),
        };
        self.job_tx
            .as_ref()
            .expect("pool not shut down")
            .send(item)
            .expect("workers alive");
    }

    fn wait_any(&mut self) -> CompletionEvent {
        self.done_rx.recv().expect("workers alive")
    }

    fn now(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    fn set_timeout(&mut self, timeout: Option<f64>) {
        *self.timeout.lock().expect("timeout lock") = timeout;
    }

    fn slot_capacity(&self) -> Option<usize> {
        Some(self.workers)
    }
}

impl Drop for LocalPool {
    fn drop(&mut self) {
        self.job_tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_wms::engine::{Engine, EngineConfig, NoopMonitor, WorkflowOutcome, WorkflowRun};
    use pegasus_wms::planner::{ExecutableWorkflow, JobKind};

    fn run_workflow(
        wf: &ExecutableWorkflow,
        pool: &mut LocalPool,
        cfg: &EngineConfig,
    ) -> WorkflowRun {
        Engine::run(pool, wf, cfg, &mut NoopMonitor)
    }
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn job(id: usize, name: &str, transformation: &str) -> ExecutableJob {
        ExecutableJob {
            id: pegasus_wms::workflow::JobId::new(id),
            name: name.into(),
            transformation: transformation.into(),
            kind: JobKind::Compute,
            args: vec![],
            runtime_hint: 0.0,
            install_hint: 0.0,
            source_jobs: vec![],
        }
    }

    fn pool_config() -> PoolConfig {
        PoolConfig {
            workers: 4,
            workdir: std::env::temp_dir().join("condor_pool_tests"),
            ..Default::default()
        }
    }

    #[test]
    fn executes_registered_kernels() {
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        let mut reg = TaskRegistry::new();
        reg.register("touch", |_ctx| {
            COUNT.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        let wf = ExecutableWorkflow {
            name: "w".into(),
            site: "local".into(),
            jobs: (0..5).map(|i| job(i, &format!("t{i}"), "touch")).collect(),
            edges: vec![],
        };
        let mut pool = LocalPool::new(pool_config(), reg);
        let run = run_workflow(&wf, &mut pool, &EngineConfig::default());
        assert!(run.succeeded());
        assert_eq!(COUNT.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn kernel_receives_context() {
        let (tx, rx) = crossbeam::channel::unbounded::<(String, Vec<String>)>();
        let mut reg = TaskRegistry::new();
        reg.register("ctx", move |ctx| {
            tx.send((ctx.job_name.clone(), ctx.args.clone())).unwrap();
            Ok(())
        });
        let mut j = job(0, "the_job", "ctx");
        j.args = vec!["-n".into(), "300".into()];
        let wf = ExecutableWorkflow {
            name: "w".into(),
            site: "local".into(),
            jobs: vec![j],
            edges: vec![],
        };
        let mut pool = LocalPool::new(pool_config(), reg);
        let run = run_workflow(&wf, &mut pool, &EngineConfig::default());
        assert!(run.succeeded());
        let (name, args) = rx.recv().unwrap();
        assert_eq!(name, "the_job");
        assert_eq!(args, vec!["-n", "300"]);
    }

    #[test]
    fn unregistered_transformations_succeed() {
        let wf = ExecutableWorkflow {
            name: "w".into(),
            site: "local".into(),
            jobs: vec![job(0, "aux", "pegasus::dirmanager")],
            edges: vec![],
        };
        let mut pool = LocalPool::new(pool_config(), TaskRegistry::new());
        let run = run_workflow(&wf, &mut pool, &EngineConfig::default());
        assert!(run.succeeded());
    }

    #[test]
    fn task_errors_become_failures_and_retries_work() {
        static ATTEMPTS: AtomicUsize = AtomicUsize::new(0);
        let mut reg = TaskRegistry::new();
        reg.register("flaky", |ctx| {
            ATTEMPTS.fetch_add(1, Ordering::SeqCst);
            if ctx.attempt < 2 {
                Err("transient".into())
            } else {
                Ok(())
            }
        });
        let wf = ExecutableWorkflow {
            name: "w".into(),
            site: "local".into(),
            jobs: vec![job(0, "f", "flaky")],
            edges: vec![],
        };
        let mut pool = LocalPool::new(pool_config(), reg);
        let run = run_workflow(&wf, &mut pool, &EngineConfig::builder().retries(3).build());
        assert!(run.succeeded());
        assert_eq!(ATTEMPTS.load(Ordering::SeqCst), 3);
        assert_eq!(run.records[0].failed_attempts.len(), 2);
    }

    #[test]
    fn kernel_failures_land_as_labelled_fault_counters() {
        use pegasus_wms::metrics::{names, MetricsMonitor, MetricsRegistry};
        let mut reg = TaskRegistry::new();
        reg.register("flaky", |ctx| {
            if ctx.attempt < 2 {
                Err("transient".into())
            } else {
                Ok(())
            }
        });
        let wf = ExecutableWorkflow {
            name: "w".into(),
            site: "local".into(),
            jobs: vec![job(0, "f", "flaky")],
            edges: vec![],
        };
        let mut pool = LocalPool::new(pool_config(), reg);
        let mut registry = MetricsRegistry::new();
        let run = {
            let mut mon = MetricsMonitor::new(&mut registry, "local", "1");
            Engine::run(
                &mut pool,
                &wf,
                &EngineConfig::builder().retries(3).build(),
                &mut mon,
            )
        };
        assert!(run.succeeded());
        let labels = [("site", "local"), ("n", "1"), ("reason", "error")];
        assert_eq!(registry.value(names::FAILURES, &labels), Some(2.0));
        assert_eq!(registry.value(names::RETRIES, &labels), Some(2.0));
        assert!(registry
            .render()
            .contains("pegasus_job_failures_total{n=\"1\",reason=\"error\",site=\"local\"} 2"));
    }

    #[test]
    fn panics_are_contained_as_failures() {
        let mut reg = TaskRegistry::new();
        reg.register("boom", |_ctx| panic!("kaboom"));
        let wf = ExecutableWorkflow {
            name: "w".into(),
            site: "local".into(),
            jobs: vec![job(0, "b", "boom")],
            edges: vec![],
        };
        let mut pool = LocalPool::new(pool_config(), reg);
        let run = run_workflow(&wf, &mut pool, &EngineConfig::default());
        match &run.outcome {
            WorkflowOutcome::Failed(rescue) => assert!(rescue.done.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn failure_injector_simulates_preemption() {
        let injector: FailureInjector = Arc::new(|name: &str, attempt: u32| {
            if name == "victim" && attempt == 0 {
                Some("preempted".into())
            } else {
                None
            }
        });
        let wf = ExecutableWorkflow {
            name: "w".into(),
            site: "osg".into(),
            jobs: vec![job(0, "victim", "anything")],
            edges: vec![],
        };
        let mut pool =
            LocalPool::with_failure_injector(pool_config(), TaskRegistry::new(), Some(injector));
        let run = run_workflow(&wf, &mut pool, &EngineConfig::builder().retries(1).build());
        assert!(run.succeeded());
        assert_eq!(run.records[0].attempts, 2);
    }

    #[test]
    fn fault_injector_evicts_synthetic_sleeps_early() {
        // A 500ms synthetic job is evicted 50ms in: the attempt fails
        // with the injected reason and takes nowhere near its full
        // runtime; the retry is left alone and succeeds.
        let injector: FaultInjector = Arc::new(|probe: &FaultProbe| {
            if probe.attempt == 0 {
                vec![InjectedFault::Evict {
                    after: 0.05,
                    reason: "preempted:storm".into(),
                }]
            } else {
                vec![]
            }
        });
        let mut cfg = pool_config();
        cfg.workers = 1;
        cfg.synthetic_time_scale = 0.1;
        let mut j = job(0, "victim", "unregistered");
        j.runtime_hint = 5.0; // 500ms
        let wf = ExecutableWorkflow {
            name: "w".into(),
            site: "osg".into(),
            jobs: vec![j],
            edges: vec![],
        };
        let mut pool = LocalPool::with_fault_injector(cfg, TaskRegistry::new(), Some(injector));
        let run = run_workflow(&wf, &mut pool, &EngineConfig::builder().retries(2).build());
        assert!(run.succeeded());
        let rec = &run.records[0];
        assert_eq!(rec.failure_reasons, vec!["preempted:storm".to_string()]);
        let evicted = &rec.failed_attempts[0];
        assert!(
            evicted.finished - evicted.started < 0.3,
            "eviction must cut the 500ms sleep short, took {}",
            evicted.finished - evicted.started
        );
        assert_eq!(run.faults.preemptions, 1);
    }

    #[test]
    fn fault_injector_slows_stragglers_down() {
        let injector: FaultInjector = Arc::new(|probe: &FaultProbe| {
            if probe.job == "slow" {
                vec![InjectedFault::Slowdown(4.0)]
            } else {
                vec![]
            }
        });
        let mut cfg = pool_config();
        cfg.synthetic_time_scale = 0.01;
        let mut fast = job(0, "fast", "unregistered");
        fast.runtime_hint = 5.0; // 50ms
        let mut slow = job(1, "slow", "unregistered");
        slow.runtime_hint = 5.0; // 50ms * 4 = 200ms
        let wf = ExecutableWorkflow {
            name: "w".into(),
            site: "osg".into(),
            jobs: vec![fast, slow],
            edges: vec![],
        };
        let mut pool = LocalPool::with_fault_injector(cfg, TaskRegistry::new(), Some(injector));
        let run = run_workflow(&wf, &mut pool, &EngineConfig::default());
        assert!(run.succeeded());
        let t_fast = run.records[0].times.unwrap().kickstart();
        let t_slow = run.records[1].times.unwrap().kickstart();
        assert!(t_slow > t_fast * 2.0, "fast {t_fast}, slow {t_slow}");
    }

    #[test]
    fn engine_timeout_kills_and_resubmits_synthetic_stragglers() {
        use pegasus_wms::engine::RetryPolicy;
        // First attempt would sleep 400ms; an 80ms timeout kills it.
        // The injector only slows attempt 0, so the retry finishes.
        let injector: FaultInjector = Arc::new(|probe: &FaultProbe| {
            if probe.attempt == 0 {
                vec![InjectedFault::Slowdown(8.0)]
            } else {
                vec![]
            }
        });
        let mut cfg = pool_config();
        cfg.workers = 1;
        cfg.synthetic_time_scale = 0.01;
        let mut j = job(0, "straggler", "unregistered");
        j.runtime_hint = 5.0; // 50ms clean, 400ms slowed
        let wf = ExecutableWorkflow {
            name: "w".into(),
            site: "osg".into(),
            jobs: vec![j],
            edges: vec![],
        };
        let mut pool = LocalPool::with_fault_injector(cfg, TaskRegistry::new(), Some(injector));
        let policy = RetryPolicy::flat(2).with_timeout(0.08);
        let run = run_workflow(
            &wf,
            &mut pool,
            &EngineConfig::builder().policy(policy).build(),
        );
        assert!(run.succeeded());
        let rec = &run.records[0];
        assert_eq!(rec.failure_reasons.len(), 1);
        assert!(rec.failure_reasons[0].starts_with("timeout"));
        assert_eq!(run.faults.timeouts, 1);
    }

    #[test]
    fn install_phase_eviction_reports_before_execution() {
        // Eviction lands inside a 300ms install phase: the attempt
        // fails without ever reaching its kernel.
        static RAN: AtomicUsize = AtomicUsize::new(0);
        let mut reg = TaskRegistry::new();
        reg.register("guarded", |_ctx| {
            RAN.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        let injector: FaultInjector = Arc::new(|probe: &FaultProbe| {
            if probe.attempt == 0 {
                vec![InjectedFault::Evict {
                    after: 0.05,
                    reason: "install:burst".into(),
                }]
            } else {
                vec![]
            }
        });
        let mut cfg = pool_config();
        cfg.workers = 1;
        cfg.install_time_scale = 0.1;
        let mut j = job(0, "g", "guarded");
        j.install_hint = 3.0; // 300ms
        let wf = ExecutableWorkflow {
            name: "w".into(),
            site: "osg".into(),
            jobs: vec![j],
            edges: vec![],
        };
        let mut pool = LocalPool::with_fault_injector(cfg, reg, Some(injector));
        let run = run_workflow(&wf, &mut pool, &EngineConfig::builder().retries(1).build());
        assert!(run.succeeded());
        assert_eq!(
            RAN.load(Ordering::SeqCst),
            1,
            "kernel must run only on the clean retry"
        );
        assert_eq!(
            run.records[0].failure_reasons,
            vec!["install:burst".to_string()]
        );
        assert_eq!(run.faults.install_failures, 1);
    }

    #[test]
    fn dependency_order_is_respected_under_parallel_workers() {
        let (tx, rx) = crossbeam::channel::unbounded::<String>();
        let mut reg = TaskRegistry::new();
        reg.register("log", move |ctx| {
            tx.send(ctx.job_name.clone()).unwrap();
            Ok(())
        });
        // a -> b -> c must serialize even with 4 workers.
        let wf = ExecutableWorkflow {
            name: "w".into(),
            site: "local".into(),
            jobs: vec![job(0, "a", "log"), job(1, "b", "log"), job(2, "c", "log")],
            edges: vec![
                (
                    pegasus_wms::workflow::JobId::new(0),
                    pegasus_wms::workflow::JobId::new(1),
                ),
                (
                    pegasus_wms::workflow::JobId::new(1),
                    pegasus_wms::workflow::JobId::new(2),
                ),
            ],
        };
        let mut pool = LocalPool::new(pool_config(), reg);
        let run = run_workflow(&wf, &mut pool, &EngineConfig::default());
        assert!(run.succeeded());
        let order: Vec<String> = rx.try_iter().collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn wide_fanout_uses_parallel_workers() {
        // 4 tasks sleeping 100ms on 4 workers should take well under
        // 400ms total.
        let mut reg = TaskRegistry::new();
        reg.register("sleep", |_ctx| {
            std::thread::sleep(Duration::from_millis(100));
            Ok(())
        });
        let wf = ExecutableWorkflow {
            name: "w".into(),
            site: "local".into(),
            jobs: (0..4).map(|i| job(i, &format!("s{i}"), "sleep")).collect(),
            edges: vec![],
        };
        let mut pool = LocalPool::new(pool_config(), reg);
        let run = run_workflow(&wf, &mut pool, &EngineConfig::default());
        assert!(run.succeeded());
        assert!(
            run.wall_time < 0.35,
            "expected parallel execution, wall={}",
            run.wall_time
        );
        // Kickstart of each task is ~0.1s and accounted per job.
        for rec in &run.records {
            let t = rec.times.unwrap();
            assert!(t.kickstart() >= 0.09, "kickstart {}", t.kickstart());
        }
    }

    #[test]
    fn times_are_monotone() {
        let mut reg = TaskRegistry::new();
        reg.register("quick", |_ctx| Ok(()));
        let wf = ExecutableWorkflow {
            name: "w".into(),
            site: "local".into(),
            jobs: vec![job(0, "q", "quick")],
            edges: vec![],
        };
        let mut pool = LocalPool::new(pool_config(), reg);
        let run = run_workflow(&wf, &mut pool, &EngineConfig::default());
        let t = run.records[0].times.unwrap();
        assert!(t.submitted <= t.started);
        assert!(t.started <= t.install_done);
        assert!(t.install_done <= t.finished);
        assert!(t.waiting() >= 0.0 && t.install() >= 0.0 && t.kickstart() >= 0.0);
    }

    #[test]
    fn synthetic_sleep_scales_install_and_runtime() {
        let mut cfg = pool_config();
        cfg.workers = 1;
        cfg.synthetic_time_scale = 0.01; // 10ms per hint second
        cfg.install_time_scale = 0.01;
        let mut j = job(0, "synthetic", "unregistered");
        j.runtime_hint = 5.0; // 50ms
        j.install_hint = 5.0; // 50ms
        let wf = ExecutableWorkflow {
            name: "w".into(),
            site: "local".into(),
            jobs: vec![j],
            edges: vec![],
        };
        let mut pool = LocalPool::new(cfg, TaskRegistry::new());
        let run = run_workflow(&wf, &mut pool, &EngineConfig::default());
        let t = run.records[0].times.unwrap();
        assert!(t.install() >= 0.04, "install {}", t.install());
        assert!(t.kickstart() >= 0.04, "kickstart {}", t.kickstart());
    }
}

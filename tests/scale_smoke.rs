//! Scale smoke test: an n = 10^5-task blast2cap3 DAX must plan and
//! simulate quickly, and the event stream must replay back into the
//! identical run.
//!
//! `#[ignore]`-gated because the wall-clock bound only means anything
//! in release mode — CI runs it explicitly with
//! `cargo test --release --test scale_smoke -- --ignored`; a debug
//! build easily blows the bound without indicating a regression.

use blast2cap3::workflow::{build_workflow, fig2_job_count, WorkflowParams};
use gridsim::platforms::sandhills;
use gridsim::SimBackend;
use pegasus_wms::catalog::{paper_catalogs, ReplicaCatalog};
use pegasus_wms::engine::{Engine, EngineConfig, NoopMonitor};
use pegasus_wms::events;
use pegasus_wms::planner::{plan, PlannerConfig};
use std::time::Instant;

const N: usize = 100_000;

/// Generous even for loaded CI hardware: release-mode plan + simulate
/// at this size runs in ~1 s locally (see BENCH_throughput.json), so
/// tripping the bound means an order-of-magnitude regression —
/// typically a reintroduced per-job linear scan.
const WALL_CLOCK_BOUND_SECS: f64 = 60.0;

#[test]
#[ignore = "release-mode scale smoke; run with --release -- --ignored"]
fn hundred_thousand_task_dax_plans_simulates_and_replays() {
    let start = Instant::now();

    let wf = build_workflow(&WorkflowParams::with_n(N));
    assert_eq!(wf.jobs.len(), fig2_job_count(N));

    let (sites, tc) = paper_catalogs();
    let mut rc = ReplicaCatalog::new();
    rc.register("transcripts.fasta", "submit");
    rc.register("alignments.out", "submit");
    let exec = plan(&wf, &sites, &tc, &rc, &PlannerConfig::for_site("sandhills"))
        .expect("planning succeeds at n=10^5");
    assert!(exec.jobs.len() > N);

    let mut backend = SimBackend::new(sandhills(), 42);
    let cfg = EngineConfig::builder().retries(3).seed(42).build();
    let run = Engine::run(&mut backend, &exec, &cfg, &mut NoopMonitor);
    assert!(run.succeeded(), "simulated run must succeed");

    let elapsed = start.elapsed().as_secs_f64();
    assert!(
        elapsed < WALL_CLOCK_BOUND_SECS,
        "plan+simulate at n={N} took {elapsed:.1}s (bound {WALL_CLOCK_BOUND_SECS}s)"
    );

    // The event stream alone reconstructs the run: same records, same
    // outcome, same wall time — provenance holds at scale, not just in
    // the small property-test workflows.
    let replayed = events::replay(&run.events).expect("event stream replays");
    assert_eq!(replayed, run, "replay must reconstruct the run exactly");
}

//! Minimal shared CSV rendering.
//!
//! The statistics and monitor reports each hand-rolled their own row
//! formatting; this is the one shared implementation. Quoting follows
//! RFC 4180: a field is quoted only when it contains a comma, a double
//! quote, or a newline (embedded quotes are doubled), so the plain
//! identifiers and numbers the reports emit stay byte-identical to the
//! historical output.

/// Escapes one CSV field, quoting only when necessary.
pub fn csv_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Renders one CSV row (with trailing newline) from already-formatted
/// cells, escaping each as needed.
pub fn csv_row<S: AsRef<str>>(cells: &[S]) -> String {
    let mut out = String::new();
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&csv_field(cell.as_ref()));
    }
    out.push('\n');
    out
}

/// Renders one Graphviz node line:
/// `  j<id> [label="<label>", shape=<shape>[, color=<color>]];`
///
/// Shared by the DOT emitters so the node syntax is written (and
/// escaped) in exactly one place, like [`csv_row`] is for CSV rows.
pub fn dot_node(
    id: impl std::fmt::Display,
    label: &str,
    shape: &str,
    color: Option<&str>,
) -> String {
    match color {
        Some(c) => format!("  j{id} [label=\"{label}\", shape={shape}, color={c}];\n"),
        None => format!("  j{id} [label=\"{label}\", shape={shape}];\n"),
    }
}

/// Renders one Graphviz edge line: `  j<parent> -> j<child>;`
pub fn dot_edge(parent: impl std::fmt::Display, child: impl std::fmt::Display) -> String {
    format!("  j{parent} -> j{child};\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_pass_through_unquoted() {
        assert_eq!(csv_field("run_cap3_0"), "run_cap3_0");
        assert_eq!(csv_field("12.500"), "12.500");
        assert_eq!(csv_field(""), "");
        assert_eq!(csv_row(&["a", "b", "1.000"]), "a,b,1.000\n");
    }

    #[test]
    fn commas_quotes_and_newlines_get_quoted() {
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
        assert_eq!(csv_row(&["x,y", "plain"]), "\"x,y\",plain\n");
    }

    #[test]
    fn quoted_fields_keep_row_shape() {
        // A parser splitting on unquoted commas sees exactly 3 cells.
        let row = csv_row(&["a,b", "c", "d\"e"]);
        assert_eq!(row, "\"a,b\",c,\"d\"\"e\"\n");
    }
}

//! The shared command-line layer behind the `pegasus` binary.
//!
//! Every verb the binary accepts is declared once in the
//! [`args::VERBS`] table — its flags, their placeholders, and their
//! help strings — and [`args::Verb::parse`] turns raw argv into typed
//! values against that table. The binary contains no ad-hoc flag
//! handling: unknown flags are rejected, `--help` is generated from
//! the same table that drives parsing, and the global usage screen is
//! the fold of every verb's summary line.

pub mod args;

//! Clustering transcripts by shared protein hit.
//!
//! Following Buffalo's blast2cap3, each transcript is assigned to the
//! subject protein of its best alignment (highest bit score); all
//! transcripts assigned to the same protein form one cluster. A
//! transcript with no alignment belongs to no cluster and passes
//! through the pipeline unmerged.

use blastx::tabular::TabularRecord;
use std::collections::HashMap;

/// The protein-keyed clustering of a transcript set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Clusters {
    /// `(protein_id, transcript_ids)` sorted by protein id; each
    /// transcript appears in exactly one cluster.
    pub groups: Vec<(String, Vec<String>)>,
}

impl Clusters {
    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` if there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Total transcripts across all clusters.
    pub fn total_transcripts(&self) -> usize {
        self.groups.iter().map(|(_, t)| t.len()).sum()
    }

    /// Sizes of all clusters, in group order.
    pub fn sizes(&self) -> Vec<usize> {
        self.groups.iter().map(|(_, t)| t.len()).collect()
    }

    /// Looks up the cluster for a protein id.
    pub fn get(&self, protein_id: &str) -> Option<&[String]> {
        self.groups
            .binary_search_by(|(p, _)| p.as_str().cmp(protein_id))
            .ok()
            .map(|i| self.groups[i].1.as_slice())
    }
}

/// Streams a BLASTX tabular file into clusters with memory bounded by
/// the number of *distinct transcripts and proteins*, never by the
/// number of alignment rows — the paper's `alignments.out` holds
/// 1,717,454 rows at 155 MB, which the original Python script also
/// processes line by line.
///
/// Semantics are identical to [`cluster_by_best_hit`]; malformed rows
/// abort with the underlying tabular error.
pub fn cluster_streaming<R: std::io::BufRead>(
    reader: R,
) -> Result<Clusters, blastx::tabular::TabularError> {
    use blastx::tabular::{TabularError, TabularRecord};
    let mut best: HashMap<String, (String, f64)> = HashMap::new();
    for line in reader.lines() {
        let line = line.map_err(|e| TabularError::Io(e.to_string()))?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let rec = TabularRecord::parse_line(trimmed)?;
        match best.get_mut(&rec.query_id) {
            Some((cur_subj, cur_bs)) => {
                let better = rec.bit_score > *cur_bs
                    || (rec.bit_score == *cur_bs && rec.subject_id < *cur_subj);
                if better {
                    *cur_subj = rec.subject_id;
                    *cur_bs = rec.bit_score;
                }
            }
            None => {
                best.insert(rec.query_id, (rec.subject_id, rec.bit_score));
            }
        }
    }
    let mut by_protein: HashMap<String, Vec<String>> = HashMap::new();
    for (tx, (subj, _)) in best {
        by_protein.entry(subj).or_default().push(tx);
    }
    let mut groups: Vec<(String, Vec<String>)> = by_protein
        .into_iter()
        .map(|(p, mut txs)| {
            txs.sort_unstable();
            (p, txs)
        })
        .collect();
    groups.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(Clusters { groups })
}

/// Clusters transcripts by their best protein hit.
///
/// Best means highest bit score; ties are broken by subject id, then
/// by first occurrence, so the result is deterministic for any input
/// order of equal-scored records.
pub fn cluster_by_best_hit(alignments: &[TabularRecord]) -> Clusters {
    // transcript -> (subject, bit_score) of its best hit so far.
    let mut best: HashMap<&str, (&str, f64)> = HashMap::new();
    for rec in alignments {
        match best.get(rec.query_id.as_str()) {
            Some(&(cur_subj, cur_bs)) => {
                let better = rec.bit_score > cur_bs
                    || (rec.bit_score == cur_bs && rec.subject_id.as_str() < cur_subj);
                if better {
                    best.insert(&rec.query_id, (&rec.subject_id, rec.bit_score));
                }
            }
            None => {
                best.insert(&rec.query_id, (&rec.subject_id, rec.bit_score));
            }
        }
    }
    let mut by_protein: HashMap<&str, Vec<&str>> = HashMap::new();
    for (tx, (subj, _)) in &best {
        by_protein.entry(subj).or_default().push(tx);
    }
    let mut groups: Vec<(String, Vec<String>)> = by_protein
        .into_iter()
        .map(|(p, mut txs)| {
            txs.sort_unstable();
            (p.to_string(), txs.into_iter().map(String::from).collect())
        })
        .collect();
    groups.sort_by(|a, b| a.0.cmp(&b.0));
    Clusters { groups }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(q: &str, s: &str, bits: f64) -> TabularRecord {
        TabularRecord {
            query_id: q.into(),
            subject_id: s.into(),
            percent_identity: 95.0,
            length: 100,
            mismatches: 5,
            gap_opens: 0,
            q_start: 1,
            q_end: 300,
            s_start: 1,
            s_end: 100,
            evalue: 1e-30,
            bit_score: bits,
        }
    }

    #[test]
    fn empty_alignments_give_no_clusters() {
        let c = cluster_by_best_hit(&[]);
        assert!(c.is_empty());
        assert_eq!(c.total_transcripts(), 0);
    }

    #[test]
    fn transcripts_sharing_a_protein_cluster_together() {
        let c = cluster_by_best_hit(&[
            rec("t1", "p1", 100.0),
            rec("t2", "p1", 90.0),
            rec("t3", "p2", 80.0),
        ]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("p1").unwrap(), &["t1", "t2"]);
        assert_eq!(c.get("p2").unwrap(), &["t3"]);
        assert_eq!(c.total_transcripts(), 3);
    }

    #[test]
    fn best_hit_wins_for_multi_hit_transcripts() {
        let c = cluster_by_best_hit(&[
            rec("t1", "p1", 50.0),
            rec("t1", "p2", 150.0), // better
            rec("t1", "p3", 75.0),
        ]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("p2").unwrap(), &["t1"]);
        assert!(c.get("p1").is_none());
    }

    #[test]
    fn tie_breaks_by_subject_id_not_input_order() {
        let a = cluster_by_best_hit(&[rec("t1", "pB", 50.0), rec("t1", "pA", 50.0)]);
        let b = cluster_by_best_hit(&[rec("t1", "pA", 50.0), rec("t1", "pB", 50.0)]);
        assert_eq!(a, b);
        assert!(a.get("pA").is_some());
    }

    #[test]
    fn duplicate_rows_do_not_duplicate_membership() {
        let c = cluster_by_best_hit(&[rec("t1", "p1", 60.0), rec("t1", "p1", 60.0)]);
        assert_eq!(c.get("p1").unwrap(), &["t1"]);
    }

    #[test]
    fn groups_and_members_are_sorted() {
        let c = cluster_by_best_hit(&[
            rec("t9", "pZ", 10.0),
            rec("t1", "pA", 10.0),
            rec("t5", "pA", 10.0),
            rec("t2", "pA", 10.0),
        ]);
        let proteins: Vec<&str> = c.groups.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(proteins, vec!["pA", "pZ"]);
        assert_eq!(c.get("pA").unwrap(), &["t1", "t2", "t5"]);
    }

    #[test]
    fn streaming_matches_in_memory() {
        let alignments = vec![
            rec("t1", "p1", 100.0),
            rec("t2", "p1", 90.0),
            rec("t1", "p2", 150.0),
            rec("t3", "p2", 80.0),
            rec("t3", "p2", 80.0),
        ];
        let text: String = alignments
            .iter()
            .map(|r| format!("{}\n", r.to_line()))
            .collect();
        let streamed = cluster_streaming(text.as_bytes()).unwrap();
        let in_memory = cluster_by_best_hit(&alignments);
        assert_eq!(streamed, in_memory);
    }

    #[test]
    fn streaming_skips_comments_and_rejects_garbage() {
        let good = "# header\n\nt1\tp1\t99.0\t80\t1\t0\t1\t240\t1\t80\t1e-40\t180.0\n";
        let c = cluster_streaming(good.as_bytes()).unwrap();
        assert_eq!(c.len(), 1);
        assert!(cluster_streaming("bad line\n".as_bytes()).is_err());
    }

    #[test]
    fn sizes_reflect_membership() {
        let c = cluster_by_best_hit(&[
            rec("t1", "p1", 10.0),
            rec("t2", "p1", 10.0),
            rec("t3", "p1", 10.0),
            rec("t4", "p2", 10.0),
        ]);
        assert_eq!(c.sizes(), vec![3, 1]);
    }
}

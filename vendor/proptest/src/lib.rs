//! Offline vendored subset of the `proptest` crate API.
//!
//! The workspace's property tests use a well-defined slice of
//! proptest: the `proptest!` macro with optional
//! `#![proptest_config(..)]`, range strategies, string-regex
//! strategies (character classes + counted repetitions), tuple
//! strategies, `collection::vec`, `sample::select`, `any::<T>()`,
//! `prop_map` / `prop_filter`, and the `prop_assert!` /
//! `prop_assert_eq!` macros. This crate reimplements exactly that
//! slice on top of the vendored `rand`.
//!
//! Differences from upstream, deliberate and documented:
//!
//! * **No shrinking.** A failing case reports its case index and
//!   derived seed; cases are deterministic per (file, line, case), so
//!   a failure reproduces by just re-running the test.
//! * **Deterministic case seeds.** Upstream seeds from the OS and
//!   persists regressions; here seeds derive from the test location
//!   so CI runs are reproducible without a persistence file.
//! * **Regex subset.** String strategies support the syntax the
//!   workspace actually uses: literal runs, `[...]` classes with
//!   ranges, `\PC` (printable, non-control), and `{n}` / `{n,m}` /
//!   `?` / `*` / `+` repetition.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u32()
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u64() as u16
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u64() as i32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen_range(-1.0e9..1.0e9)
        }
    }

    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    pub struct AnyStrategy<T> {
        _marker: PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()`: the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `collection::vec(element, len_range)`: vectors whose length is
    /// drawn uniformly from `len_range` (half-open, like upstream's
    /// accepted `usize` ranges).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    pub struct Select<T> {
        items: Vec<T>,
    }

    /// `sample::select(items)`: one uniformly chosen element. Accepts
    /// anything viewable as a slice (`Vec<T>`, `&[T]`, arrays).
    pub fn select<T: Clone, A: AsRef<[T]>>(items: A) -> Select<T> {
        let items = items.as_ref().to_vec();
        assert!(!items.is_empty(), "select over empty collection");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }
}

pub mod string;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts within a `proptest!` body; on failure the current case
/// aborts with a formatted message instead of panicking, mirroring
/// upstream's control flow.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Binds `proptest!` parameters: `pat in strategy` samples the
/// strategy, `name: Type` samples `any::<Type>()`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident: $ty:ty) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary($rng);
    };
    ($rng:ident; $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $pat:pat in $strategy:expr) => {
        let $pat = $crate::strategy::Strategy::sample(&($strategy), $rng);
    };
    ($rng:ident; $pat:pat in $strategy:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::sample(&($strategy), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            $crate::test_runner::run_cases(
                config,
                ::core::file!(),
                ::core::line!(),
                |__proptest_rng| {
                    $crate::__proptest_bind!(__proptest_rng; $($params)*);
                    #[allow(unreachable_code)]
                    let body = || -> ::core::result::Result<(), ::std::string::String> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    body()
                },
            );
        }
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
}

/// The `proptest!` block macro. `#[test]` attributes pass through via
/// the meta repetition, so each generated zero-argument fn is a
/// normal libtest test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn regex_class_strategy_generates_in_alphabet() {
        let s = crate::string::string_regex("[acgt]{2,8}").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..=8).contains(&v.len()), "len {}", v.len());
            assert!(v.chars().all(|c| "acgt".contains(c)), "{v:?}");
        }
    }

    #[test]
    fn regex_ranges_and_literals() {
        let s = crate::string::string_regex("[A-C]x[0-2]{1}").unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            let b: Vec<char> = v.chars().collect();
            assert_eq!(b.len(), 3, "{v:?}");
            assert!(('A'..='C').contains(&b[0]));
            assert_eq!(b[1], 'x');
            assert!(('0'..='2').contains(&b[2]));
        }
    }

    #[test]
    fn printable_class_excludes_controls() {
        let s = crate::string::string_regex("\\PC{0,40}").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v.len() <= 160);
            assert!(v.chars().all(|c| !c.is_control()), "{v:?}");
        }
    }

    #[test]
    fn filter_and_map_compose() {
        let s = (0u32..100)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_map(|v| v + 1);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng) % 2, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_ranges_and_types(a in 1usize..10, b: u64, s in "[a-z]{1,4}") {
            prop_assert!((1..10).contains(&a));
            let _ = b;
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert_eq!(s.len(), s.chars().count());
        }

        #[test]
        fn macro_binds_tuple_patterns((x, y) in (0i64..5, 5i64..10)) {
            prop_assert!(x < y, "{} !< {}", x, y);
        }
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! gridsim: a discrete-event simulator of distributed execution
//! platforms.
//!
//! The paper compares one workflow on two physical platforms we cannot
//! access: **Sandhills**, the University of Nebraska campus cluster,
//! and the **Open Science Grid**. This crate replaces them with
//! mechanism-level models driven by a discrete-event simulation:
//!
//! * [`dist`] — the stochastic building blocks (lognormal queue
//!   delays, exponential preemption hazards, runtime jitter);
//! * [`event`] — a deterministic time-ordered event queue;
//! * [`platform`] — the platform model: slot pool with per-slot
//!   speeds, per-job queue-delay distribution, one-time allocation
//!   (startup) delay, install-time factor, and a preemption hazard;
//! * [`backend`] — [`backend::SimBackend`], which implements
//!   [`pegasus_wms::ExecutionBackend`] so the same DAGMan engine that
//!   drives real thread pools drives simulated platforms;
//! * [`platforms`] — calibrated Sandhills and OSG model constructors
//!   (see DESIGN.md §4 for the calibration story);
//! * [`faults`] — seeded, scriptable fault plans (preemption storms,
//!   blackouts, stragglers, install bursts, submit-host crashes) that
//!   replay identically on this simulator and on the real `condor`
//!   pool;
//! * [`faults_lint`] — the fault-plan rules of `pegasus lint`
//!   (`E0201`–`W0205`), cross-checking plans against the workflow and
//!   retry policy they will run under;
//! * [`sites`] — declarative [`sites::SiteDef`] records and the
//!   interning [`sites::SiteRegistry`] every consumer routes through:
//!   one text format (`sites.def`) replaces the catalog entries, the
//!   platform constructors, and the CLI site switches;
//! * [`sites_lint`] — the site-definition rules of `pegasus lint`
//!   (`E0501`–`E0507`).
//!
//! The key property: nothing about the paper's *findings* is
//! hard-coded. Sandhills beating OSG, the >95 % serial-vs-workflow
//! gap, and the n = 300 optimum all emerge from queueing, install
//! overhead, preemption, and cluster-size heavy tails.

pub mod backend;
pub mod dist;
pub mod event;
pub mod faults;
pub mod faults_lint;
pub mod platform;
pub mod platforms;
pub mod sites;
pub mod sites_lint;

pub use backend::SimBackend;
pub use event::QueueStats;
pub use faults::{AttemptTiming, FaultDecision, FaultPlan, FaultScript, Scenario};
pub use faults_lint::{lint_plan, PlanLintContext};
pub use platform::PlatformModel;
pub use platforms::{osg, sandhills};
pub use sites::{SiteDef, SiteRegistry, SpeedSpec};
pub use sites_lint::lint_sites;

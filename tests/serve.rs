//! End-to-end tests of the `pegasus serve` daemon: a real daemon
//! process per test (via `CARGO_BIN_EXE_pegasus`), driven over its
//! protocol socket with the library client.
//!
//! The invariants under test are the acceptance criteria of the
//! daemon design:
//!
//! * two tenants submit over concurrent connections, and the same
//!   submissions under the same seed produce a byte-identical rollup
//!   CSV from a second daemon;
//! * the live `status` view, the offline `--dir` replay, the protocol
//!   `metrics` payload, the HTTP `/metrics` scrape, and the offline
//!   `metrics --from-events` fold are all byte-identical;
//! * per-tenant queue quota rejects excess submissions at the socket;
//! * a daemon killed mid-round (`--crash-after-members`) recovers on
//!   restart by re-executing the interrupted round, leaving rollup,
//!   status, member event logs, and per-member span traces
//!   byte-identical to an uninterrupted daemon — across several seeds;
//! * trace ids (explicit or admission-derived) are journaled, so a
//!   crash/restart cannot re-key a member's spans;
//! * a cancelled member survives journal replay: a restarted daemon
//!   reports the same `cancelled` state and never runs it;
//! * malformed request lines get `error` responses without killing
//!   the connection, and DAX submissions are lint-checked at
//!   admission time.

use blast2cap3_pegasus::serve::client::{self, Connection};
use blast2cap3_pegasus::serve::status_lines_offline;
use pegasus_wms::events;
use pegasus_wms::metrics::{self, MetricsRegistry};
use pegasus_wms::serve::{Request, ResponseHead, SubmitRequest, SubmitSource};
use pegasus_wms::trace::TraceId;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// A daemon child process plus its resolved listen addresses.
struct Daemon {
    child: Child,
    addr: String,
    metrics_addr: String,
}

impl Daemon {
    /// Spawns `pegasus serve` on ephemeral ports and waits for its
    /// `listening` line (which arrives only after recovery finishes).
    fn start(dir: &Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_pegasus"))
            .arg("serve")
            .args([
                "--addr",
                "127.0.0.1:0",
                "--metrics-addr",
                "127.0.0.1:0",
                "--dir",
            ])
            .arg(dir)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn pegasus serve");
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut reader = BufReader::new(stdout);
        let (addr, metrics_addr) = loop {
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("read daemon stdout");
            assert!(n > 0, "daemon exited before printing its listening line");
            if let Some(rest) = line.trim_end().strip_prefix("listening addr=") {
                let (a, m) = rest.split_once(" metrics=").expect("listening line shape");
                break (a.to_string(), m.to_string());
            }
        };
        // Keep draining stdout so the pipe can never block the daemon.
        std::thread::spawn(move || {
            let mut sink = String::new();
            loop {
                sink.clear();
                if reader.read_line(&mut sink).unwrap_or(0) == 0 {
                    break;
                }
            }
        });
        Daemon {
            child,
            addr,
            metrics_addr,
        }
    }

    fn connect(&self) -> Connection {
        Connection::open(&self.addr).expect("connect to daemon")
    }

    /// Clean stop: `shutdown` must answer `ok` before the process exits.
    fn shutdown(mut self) {
        let (head, _) = self
            .connect()
            .request(&Request::Shutdown)
            .expect("shutdown round-trip");
        assert_eq!(head, ResponseHead::Ok(vec![]), "shutdown must answer ok");
        let status = self.child.wait().expect("wait for daemon");
        assert!(status.success(), "daemon must exit cleanly after shutdown");
    }

    /// Waits for the process to die on its own (crash tests).
    fn wait_for_death(mut self) {
        let status = self.child.wait().expect("wait for daemon");
        assert!(!status.success(), "the crash hook must abort the process");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A per-test scratch directory under the target tmpdir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pegasus-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn generated(tenant: &str, site: &str, n: usize) -> Request {
    Request::Submit(SubmitRequest {
        tenant: tenant.into(),
        site: site.into(),
        seed: None,
        retries: None,
        priority: 0,
        trace: None,
        source: SubmitSource::Generated { n },
    })
}

/// Sends a request that must succeed with `ok`, returning its
/// key=value pairs.
fn expect_ok(conn: &mut Connection, req: &Request) -> Vec<(String, String)> {
    match conn.request(req).expect("request round-trip") {
        (ResponseHead::Ok(pairs), _) => pairs,
        (other, _) => panic!("expected ok for {req:?}, got {other:?}"),
    }
}

/// Sends a request that must succeed with a counted payload.
fn expect_lines(conn: &mut Connection, req: &Request) -> Vec<String> {
    match conn.request(req).expect("request round-trip") {
        (ResponseHead::Lines(n), payload) => {
            assert_eq!(payload.len(), n);
            payload
        }
        (other, _) => panic!("expected lines for {req:?}, got {other:?}"),
    }
}

/// The offline `pegasus metrics --from-events` fold over a daemon
/// directory: parse each member log in id order into a fresh registry.
fn offline_exposition(dir: &Path, member_ids: &[usize]) -> String {
    let mut registry = MetricsRegistry::new();
    for id in member_ids {
        let path = dir.join("members").join(format!("m{id}.events"));
        let text = std::fs::read_to_string(&path).expect("read member log");
        let stream = events::log::parse(&text).expect("parse member log");
        metrics::record_events(&mut registry, &stream).expect("record member stream");
    }
    registry.render()
}

/// One full two-tenant session: interleaved submissions over two live
/// connections, one `run`, then every rendered view. Returns
/// `(status, rollup, metrics)` payloads.
fn two_tenant_session(dir: &Path) -> (Vec<String>, Vec<String>, Vec<String>) {
    let daemon = Daemon::start(
        dir,
        &["--seed", "20140519", "--slots", "8", "--tenant-slots", "6"],
    );
    // Two tenants hold live connections at the same time; their
    // submissions interleave on one socket each.
    let mut alice = daemon.connect();
    let mut bob = daemon.connect();
    assert_eq!(
        expect_ok(&mut alice, &generated("alice", "sandhills", 10)),
        vec![("id".to_string(), "0".to_string())]
    );
    assert_eq!(
        expect_ok(&mut bob, &generated("bob", "sandhills", 10)),
        vec![("id".to_string(), "1".to_string())]
    );
    assert_eq!(
        expect_ok(&mut alice, &generated("alice", "sandhills", 40)),
        vec![("id".to_string(), "2".to_string())]
    );
    expect_ok(&mut bob, &Request::Ping);

    let run = expect_ok(&mut alice, &Request::Run);
    assert!(
        run.contains(&("members".to_string(), "3".to_string())),
        "all three members must run: {run:?}"
    );

    let status = expect_lines(&mut bob, &Request::Status);
    assert_eq!(status.len(), 3);
    for line in &status {
        assert!(line.contains("state=succeeded"), "member failed: {line}");
    }
    let rollup = expect_lines(&mut alice, &Request::Rollup);
    let metrics_payload = expect_lines(&mut bob, &Request::Metrics);

    // Live status ≡ offline replay of the state directory.
    let offline = status_lines_offline(dir).expect("offline status");
    assert_eq!(
        status, offline,
        "live and offline status must be byte-identical"
    );

    // Protocol metrics ≡ HTTP scrape ≡ offline --from-events fold.
    let proto_text = metrics_payload.join("\n") + "\n";
    let scraped = client::scrape(&daemon.metrics_addr).expect("HTTP scrape");
    assert_eq!(proto_text, scraped, "protocol and HTTP metrics must match");
    assert_eq!(
        proto_text,
        offline_exposition(dir, &[0, 1, 2]),
        "live metrics must match the offline event-log fold"
    );

    daemon.shutdown();
    (status, rollup, metrics_payload)
}

#[test]
fn two_concurrent_tenants_replay_byte_identical_under_one_seed() {
    let a = two_tenant_session(&scratch("tenants-a"));
    let b = two_tenant_session(&scratch("tenants-b"));
    assert_eq!(a.0, b.0, "status must be byte-identical across daemons");
    assert_eq!(a.1, b.1, "rollup CSV must be byte-identical across daemons");
    assert_eq!(a.2, b.2, "metrics must be byte-identical across daemons");
}

#[test]
fn tenant_queue_quota_rejects_excess_submissions_at_the_socket() {
    let dir = scratch("quota");
    let daemon = Daemon::start(&dir, &["--tenant-active", "2"]);
    let mut conn = daemon.connect();
    expect_ok(&mut conn, &generated("alice", "sandhills", 10));
    expect_ok(&mut conn, &generated("alice", "sandhills", 10));
    let (head, _) = conn
        .request(&generated("alice", "sandhills", 10))
        .expect("request round-trip");
    match head {
        ResponseHead::Error(msg) => {
            assert!(msg.contains("alice") && msg.contains("quota"), "{msg}");
        }
        other => panic!("third alice submission must be rejected, got {other:?}"),
    }
    // The quota is per tenant: bob is unaffected.
    expect_ok(&mut conn, &generated("bob", "sandhills", 10));
    // Cancelling frees alice's queue depth.
    expect_ok(&mut conn, &Request::Cancel { id: 0 });
    expect_ok(&mut conn, &generated("alice", "sandhills", 10));
    daemon.shutdown();
}

#[test]
fn malformed_lines_and_bad_dax_submissions_are_rejected_inline() {
    let dir = scratch("reject");
    let daemon = Daemon::start(&dir, &[]);

    // Raw socket: a garbage line gets `error` and the connection lives.
    let mut stream = std::net::TcpStream::connect(&daemon.addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("greeting");
    assert!(line.starts_with("# pegasus serve"), "greeting: {line:?}");
    stream.write_all(b"frobnicate the queue\n").expect("send");
    line.clear();
    reader.read_line(&mut line).expect("error response");
    assert!(line.starts_with("error "), "got {line:?}");
    stream.write_all(b"ping\n").expect("send after error");
    line.clear();
    reader.read_line(&mut line).expect("ping response");
    assert_eq!(line.trim_end(), "ok", "connection must survive a bad line");

    // A DAX that fails the admission lint is rejected before journaling.
    let bad = dir.join("bad.dax");
    std::fs::write(&bad, "job id=a name=\n").expect("write bad dax");
    let mut conn = daemon.connect();
    let (head, _) = conn
        .request(&Request::Submit(SubmitRequest {
            tenant: "alice".into(),
            site: "sandhills".into(),
            seed: None,
            retries: None,
            priority: 0,
            trace: None,
            source: SubmitSource::Dax {
                path: bad.display().to_string(),
            },
        }))
        .expect("request round-trip");
    assert!(
        matches!(head, ResponseHead::Error(_)),
        "bad DAX must be rejected, got {head:?}"
    );

    // An unknown site is an `error` reply naming the registered
    // sites — refused before journaling, not a failure inside a
    // later `run` round.
    let (head, _) = conn
        .request(&generated("alice", "mars", 10))
        .expect("request round-trip");
    match head {
        ResponseHead::Error(msg) => assert!(
            msg.contains("known sites: osg, osg_churning, osg_prestaged, sandhills"),
            "error must list the registry: {msg}"
        ),
        other => panic!("unknown site must be rejected, got {other:?}"),
    }

    // Nothing was admitted: status is empty.
    assert_eq!(
        expect_lines(&mut conn, &Request::Status),
        Vec::<String>::new()
    );
    daemon.shutdown();
}

#[test]
fn dax_submissions_pass_admission_lint_and_run() {
    let dir = scratch("dax");
    let dax = dir.join("b2c3.dax");
    let out = Command::new(env!("CARGO_BIN_EXE_pegasus"))
        .args(["generate-dax", "--n", "5", "--out"])
        .arg(&dax)
        .output()
        .expect("generate-dax");
    assert!(out.status.success());

    let daemon = Daemon::start(&dir, &[]);
    let mut conn = daemon.connect();
    expect_ok(
        &mut conn,
        &Request::Submit(SubmitRequest {
            tenant: "carol".into(),
            site: "sandhills".into(),
            seed: None,
            retries: None,
            priority: 0,
            trace: None,
            source: SubmitSource::Dax {
                path: dax.display().to_string(),
            },
        }),
    );
    expect_ok(&mut conn, &Request::Run);
    let status = expect_lines(&mut conn, &Request::Status);
    assert_eq!(status.len(), 1);
    assert!(
        status[0].contains("tenant=carol") && status[0].contains("state=succeeded"),
        "{}",
        status[0]
    );
    daemon.shutdown();
}

#[test]
fn cancelled_member_survives_journal_replay() {
    let dir = scratch("cancel-replay");
    let daemon = Daemon::start(&dir, &["--seed", "20140519"]);
    let mut conn = daemon.connect();
    expect_ok(&mut conn, &generated("alice", "sandhills", 10));
    expect_ok(&mut conn, &generated("bob", "sandhills", 10));
    expect_ok(&mut conn, &Request::Cancel { id: 0 });
    let run = expect_ok(&mut conn, &Request::Run);
    assert!(
        run.contains(&("members".to_string(), "1".to_string())),
        "only bob may run: {run:?}"
    );
    let status = expect_lines(&mut conn, &Request::Status);
    assert_eq!(status.len(), 2);
    assert!(status[0].contains("state=cancelled"), "{}", status[0]);
    assert!(status[1].contains("state=succeeded"), "{}", status[1]);
    // A cancelled member has no run, hence no spans to serve.
    match conn.request(&Request::Trace { id: 0 }) {
        Ok((ResponseHead::Error(msg), _)) => assert!(msg.contains("not run"), "{msg}"),
        other => panic!("trace of a cancelled member must error, got {other:?}"),
    }
    drop(conn);
    daemon.shutdown();

    // The cancelled member never opened an event log.
    assert!(
        !dir.join("members").join("m0.events").exists(),
        "cancelled member must not write an event log"
    );

    // Restart: the journal replay must reconstruct the cancel — same
    // status lines, member 0 still cancelled and still not run.
    let restarted = Daemon::start(&dir, &["--seed", "20140519"]);
    let mut conn = restarted.connect();
    let replayed = expect_lines(&mut conn, &Request::Status);
    assert_eq!(
        replayed, status,
        "status must be byte-identical across journal replay"
    );
    drop(conn);
    restarted.shutdown();

    // The offline replay of the state directory agrees too.
    let offline = status_lines_offline(&dir).expect("offline status");
    assert_eq!(offline, status);
}

/// Runs the reference (uninterrupted) and the crash/restart session
/// for one seed, asserting every view and every member log matches
/// byte-for-byte.
fn crash_recovery_round_trip(seed: u64) {
    let seed_s = seed.to_string();
    // Bob pins an explicit trace id; alice lets the daemon derive one
    // at admission. Both must survive the crash via the journal — the
    // recovered daemon re-reads them rather than re-deriving.
    let bob_trace: TraceId = "deadbeef".parse().expect("hex trace id");
    let submit_all = |daemon: &Daemon| {
        let mut conn = daemon.connect();
        expect_ok(&mut conn, &generated("alice", "sandhills", 10));
        expect_ok(
            &mut conn,
            &Request::Submit(SubmitRequest {
                tenant: "bob".into(),
                site: "sandhills".into(),
                seed: None,
                retries: None,
                priority: 0,
                trace: Some(bob_trace),
                source: SubmitSource::Generated { n: 40 },
            }),
        );
    };
    let traces = |daemon: &Daemon| -> Vec<Vec<String>> {
        let mut conn = daemon.connect();
        (0..2)
            .map(|id| expect_lines(&mut conn, &Request::Trace { id }))
            .collect()
    };

    // Reference: the run the crash is never allowed to perturb.
    let ref_dir = scratch(&format!("ref-{seed}"));
    let reference = Daemon::start(&ref_dir, &["--seed", &seed_s]);
    submit_all(&reference);
    let mut conn = reference.connect();
    expect_ok(&mut conn, &Request::Run);
    let ref_status = expect_lines(&mut conn, &Request::Status);
    let ref_rollup = expect_lines(&mut conn, &Request::Rollup);
    drop(conn);
    let ref_traces = traces(&reference);
    reference.shutdown();

    // Crash: same submissions, but the daemon aborts after the first
    // member completion — mid-round, journal round left open.
    let crash_dir = scratch(&format!("crash-{seed}"));
    let crashing = Daemon::start(
        &crash_dir,
        &["--seed", &seed_s, "--crash-after-members", "1"],
    );
    submit_all(&crashing);
    let mut conn = crashing.connect();
    assert!(
        conn.request(&Request::Run).is_err(),
        "the run request must die with the daemon"
    );
    drop(conn);
    crashing.wait_for_death();
    let journal = std::fs::read_to_string(crash_dir.join("journal")).expect("journal");
    assert!(
        journal.contains("round id=0") && !journal.contains("round-done id=0"),
        "the crash must leave round 0 open:\n{journal}"
    );

    // Restart: recovery re-executes the interrupted round before
    // listening; every view must match the uninterrupted reference.
    let recovered = Daemon::start(&crash_dir, &["--seed", &seed_s]);
    let mut conn = recovered.connect();
    let status = expect_lines(&mut conn, &Request::Status);
    let rollup = expect_lines(&mut conn, &Request::Rollup);
    assert_eq!(status, ref_status, "seed {seed}: status must match");
    assert_eq!(rollup, ref_rollup, "seed {seed}: rollup CSV must match");
    drop(conn);
    let rec_traces = traces(&recovered);
    assert_eq!(
        rec_traces, ref_traces,
        "seed {seed}: span trees must survive crash/restart byte-identically"
    );
    assert!(
        rec_traces[1]
            .first()
            .is_some_and(|l| l.contains("00000000deadbeef")),
        "seed {seed}: bob's explicit trace id must key his recovered spans: {:?}",
        rec_traces[1].first()
    );
    recovered.shutdown();

    for id in 0..2 {
        let name = format!("m{id}.events");
        let a = std::fs::read(ref_dir.join("members").join(&name)).expect("reference log");
        let b = std::fs::read(crash_dir.join("members").join(&name)).expect("recovered log");
        assert_eq!(a, b, "seed {seed}: {name} must be byte-identical");
        let text = String::from_utf8(b).expect("utf8 member log");
        let expect = if id == 1 {
            bob_trace
        } else {
            TraceId::derive(seed, id as u64)
        };
        assert_eq!(
            pegasus_wms::trace::trace_from_log(&text),
            Some(expect),
            "seed {seed}: {name} must carry its journaled trace id in the header"
        );
    }
}

#[test]
fn crash_mid_round_then_restart_recovers_byte_identical_state() {
    for seed in [7, 11, 42] {
        crash_recovery_round_trip(seed);
    }
}

plan broken
wibble start=1

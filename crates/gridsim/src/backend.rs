//! The simulation backend: a [`PlatformModel`] behind the
//! [`ExecutionBackend`] contract.
//!
//! Job lifecycle: `submit` samples a queue delay and schedules an
//! *eligible* event (no earlier than the platform's allocation
//! delay); an eligible job grabs a free slot or joins the FIFO wait
//! queue; on assignment the install and execution durations — and a
//! possible preemption point — are sampled and a *complete* event is
//! scheduled; completion frees the slot and admits the next waiter.
//! `wait_any` advances the event clock until a completion surfaces.

use crate::dist::{sample_exponential, sample_standard_normal};
use crate::event::{EventQueue, QueueStats};
use crate::faults::{AttemptTiming, FaultScript};
use crate::platform::PlatformModel;
use pegasus_wms::engine::{CompletionEvent, ExecutionBackend, FaultReason, JobOutcome, JobTimes};
use pegasus_wms::metrics::{names, MetricsRegistry};
use pegasus_wms::planner::ExecutableJob;
use pegasus_wms::workflow::JobId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Internal per-submission key (one per attempt).
type Key = u64;

#[derive(Debug, Clone)]
enum SimEvent {
    Eligible(Key),
    /// Completion for a specific scheduling generation of a job; a
    /// stale generation (the job was evicted and rescheduled) is
    /// ignored.
    Complete(Key, u64),
    /// An opportunistic slot is reclaimed by its owner.
    SlotDown(usize),
    /// The slot returns to the pool.
    SlotUp(usize),
    /// A scripted blackout takes the slot down (one-shot; unlike
    /// churn it does not reschedule itself).
    BlackoutDown(usize),
    /// The scripted blackout window ends for the slot.
    BlackoutUp(usize),
}

#[derive(Debug, Clone)]
struct PendingJob {
    job_id: JobId,
    attempt: u32,
    runtime_hint: f64,
    install_hint: f64,
    submitted: f64,
    /// Filled at assignment.
    started: f64,
    install_done: f64,
    finished: f64,
    slot: usize,
    preempted: bool,
    /// Failure reason when `preempted`; `None` means the plain
    /// platform hazard (`"preempted"`).
    fail_reason: Option<String>,
    /// Scheduling generation, bumped on (re)scheduling so stale
    /// completion events can be recognised.
    event_gen: u64,
}

/// A job accepted by the engine but not yet released to the remote
/// queue by the DAGMan-style submission throttle.
#[derive(Debug, Clone)]
struct HeldJob {
    job_id: JobId,
    attempt: u32,
    runtime_hint: f64,
    install_hint: f64,
    /// Backoff delay before (re)submission, in simulated seconds.
    delay: f64,
}

/// Discrete-event execution backend over one platform model.
///
/// Like DAGMan's `maxjobs` throttle, at most `slot_count()` jobs are
/// *released* to the remote queue at a time; jobs beyond that are held
/// at the submit host and their [`JobTimes::submitted`] stamp is set
/// at release, matching how pegasus-statistics derives per-job waiting
/// from the Condor job log (held-back jobs accrue no queue wait).
#[derive(Debug)]
pub struct SimBackend {
    platform: PlatformModel,
    rng: StdRng,
    clock: f64,
    events: EventQueue<SimEvent>,
    pending: HashMap<Key, PendingJob>,
    waiting: VecDeque<Key>,
    free_slots: Vec<usize>,
    next_key: Key,
    /// Jobs held at the submit host by the throttle.
    held: VecDeque<HeldJob>,
    /// Released-but-unfinished job count (throttle occupancy).
    released: usize,
    /// Maximum simultaneously released jobs (DAGMan `maxjobs`).
    throttle: usize,
    /// Total busy seconds accumulated across slots (utilisation).
    busy_seconds: f64,
    /// Count of preemptions that occurred.
    preemptions: u64,
    /// Which job currently occupies each slot.
    occupant: Vec<Option<Key>>,
    /// How many independent causes (churn, blackout) currently hold
    /// each slot out of the pool; 0 means the slot is available.
    down_votes: Vec<u32>,
    /// Churn events observed: (downs, ups).
    churn_events: (u64, u64),
    /// Compiled chaos script, if any.
    script: Option<FaultScript>,
    /// Job names by dense id, recorded at submission only while a
    /// fault script is attached: the script matches attempts by name,
    /// and nothing else in the simulation resolves one — the hot path
    /// stays on integer ids.
    names: Vec<Option<Arc<str>>>,
    /// Per-attempt wall-clock budget from the engine's retry policy.
    timeout: Option<f64>,
}

impl SimBackend {
    /// Creates a backend over `platform` with a deterministic seed.
    /// The submission throttle defaults to the slot count.
    pub fn new(platform: PlatformModel, seed: u64) -> Self {
        let free_slots = (0..platform.slot_count()).rev().collect();
        let throttle = platform.slot_count().max(1);
        let n_slots = platform.slot_count();
        let mut backend = SimBackend {
            platform,
            rng: StdRng::seed_from_u64(seed),
            clock: 0.0,
            events: EventQueue::new(),
            pending: HashMap::new(),
            waiting: VecDeque::new(),
            free_slots,
            next_key: 0,
            held: VecDeque::new(),
            released: 0,
            throttle,
            busy_seconds: 0.0,
            preemptions: 0,
            occupant: vec![None; n_slots],
            down_votes: vec![0; n_slots],
            churn_events: (0, 0),
            script: None,
            names: Vec::new(),
            timeout: None,
        };
        if let Some(churn) = backend.platform.churn {
            for slot in 0..n_slots {
                let first_down = sample_exponential(&mut backend.rng, 1.0 / churn.mean_up);
                backend
                    .events
                    .schedule(first_down, SimEvent::SlotDown(slot));
            }
        }
        backend
    }

    /// (slot-down, slot-up) churn events observed so far.
    pub fn churn_events(&self) -> (u64, u64) {
        self.churn_events
    }

    /// Attaches a compiled chaos script. Scripted blackout windows are
    /// scheduled immediately as slot capacity events; per-attempt
    /// scenarios are consulted at every assignment.
    pub fn with_faults(mut self, script: FaultScript) -> Self {
        let n_slots = self.platform.slot_count();
        for (start, duration, first_slot, slot_count) in script.blackouts() {
            for slot in first_slot..(first_slot + slot_count).min(n_slots) {
                self.events.schedule(start, SimEvent::BlackoutDown(slot));
                self.events
                    .schedule(start + duration, SimEvent::BlackoutUp(slot));
            }
        }
        self.script = Some(script);
        self
    }

    /// Overrides the DAGMan-style submission throttle.
    pub fn with_throttle(mut self, throttle: usize) -> Self {
        self.throttle = throttle.max(1);
        self
    }

    /// The modelled platform.
    pub fn platform(&self) -> &PlatformModel {
        &self.platform
    }

    /// Attempts killed before completion — platform preemptions,
    /// churn/blackout evictions, scripted kills, and timeouts.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Lifetime depth/occupancy statistics of the discrete-event
    /// queue driving the simulation.
    pub fn queue_stats(&self) -> QueueStats {
        self.events.stats()
    }

    /// Events still pending in the discrete-event queue (0 after a
    /// run drains).
    pub fn queue_depth(&self) -> usize {
        self.events.len()
    }

    /// Folds the event-queue depth and calendar-bucket occupancy
    /// gauges into `registry` under this platform's `site` label.
    /// Callers gate this behind `--profile` so default expositions
    /// stay byte-identical.
    pub fn export_queue_metrics(&self, registry: &mut MetricsRegistry) {
        let stats = self.queue_stats();
        let site = self.platform.name.clone();
        let labels = [("site", site.as_str())];
        registry.declare_gauge(
            names::SIM_QUEUE_DEPTH,
            "Simulator event-queue depth at export time.",
        );
        registry.set(names::SIM_QUEUE_DEPTH, &labels, self.queue_depth() as f64);
        registry.declare_gauge(
            names::SIM_QUEUE_PEAK,
            "Peak simulator event-queue depth over the run.",
        );
        registry.set(names::SIM_QUEUE_PEAK, &labels, stats.peak_depth as f64);
        registry.declare_counter(
            names::SIM_EVENTS_SCHEDULED,
            "Events scheduled into the simulator queue over the run.",
        );
        registry.add(names::SIM_EVENTS_SCHEDULED, &labels, stats.scheduled as f64);
        registry.declare_gauge(
            names::SIM_CALENDAR_OCCUPANCY,
            "Peak occupied calendar-day buckets over the run.",
        );
        registry.set(
            names::SIM_CALENDAR_OCCUPANCY,
            &labels,
            stats.peak_buckets as f64,
        );
    }

    /// Mean slot utilisation over the elapsed simulated time.
    pub fn utilisation(&self) -> f64 {
        let denom = self.clock * self.platform.slot_count() as f64;
        if denom <= 0.0 {
            0.0
        } else {
            self.busy_seconds / denom
        }
    }

    fn assign(&mut self, key: Key) {
        let slot = self
            .free_slots
            .pop()
            .expect("assign called with a free slot");
        let speed = self.platform.slots[slot].speed.max(1e-9);
        let started = self.clock;

        debug_assert_eq!(self.down_votes[slot], 0, "assigned a downed slot");
        self.occupant[slot] = Some(key);
        let p = self.pending.get_mut(&key).expect("pending job exists");
        p.slot = slot;
        p.started = started;
        p.event_gen += 1;

        let install_dur = p.install_hint * self.platform.install_time_factor;
        let jitter = if self.platform.runtime_jitter_sigma > 0.0 {
            (self.platform.runtime_jitter_sigma * sample_standard_normal(&mut self.rng)).exp()
        } else {
            1.0
        };
        let mut exec_dur = p.runtime_hint / speed * jitter + self.platform.task_overhead;

        // The chaos script rules on this attempt from its fault-free
        // timing; its RNG is private, so platform sampling below stays
        // on the same stream whether or not a script is attached.
        let mut script_kill: Option<(f64, String)> = None;
        if let Some(script) = &self.script {
            let timing = AttemptTiming {
                start: started,
                install_duration: install_dur,
                exec_duration: exec_dur,
            };
            let name = self.names[p.job_id.idx()]
                .as_deref()
                .expect("names are recorded at submission while scripted");
            let decision = script.decide(name, p.attempt, &timing);
            exec_dur *= decision.slowdown;
            script_kill = decision.kill;
        }

        let busy = install_dur + exec_dur;
        let preempt_at = sample_exponential(&mut self.rng, self.platform.preemption_rate);

        // The earliest of: natural finish, platform preemption hazard,
        // scripted kill, per-attempt timeout.
        let mut finished = started + busy;
        let mut fail_reason: Option<String> = None;
        if preempt_at < busy {
            finished = started + preempt_at;
            fail_reason = Some(FaultReason::Preemption.reason());
        }
        if let Some((at, reason)) = script_kill {
            if at < finished {
                finished = at;
                fail_reason = Some(reason);
            }
        }
        if let Some(limit) = self.timeout {
            if started + limit < finished {
                finished = started + limit;
                fail_reason = Some(FaultReason::timeout_exceeded(limit));
            }
        }
        p.preempted = fail_reason.is_some();
        p.fail_reason = fail_reason;
        p.install_done = (started + install_dur).min(finished);
        p.finished = finished;
        let gen = p.event_gen;
        self.busy_seconds += finished - started;
        self.events.schedule(finished, SimEvent::Complete(key, gen));
    }

    /// One more cause holds `slot` out of the pool; on the first vote
    /// the occupant (if any) is evicted and completes *now* with
    /// `reason`.
    fn take_slot_down(&mut self, slot: usize, reason: &str) {
        self.down_votes[slot] += 1;
        if self.down_votes[slot] > 1 {
            return; // already out of the pool
        }
        self.free_slots.retain(|&s| s != slot);
        if let Some(key) = self.occupant[slot].take() {
            let clock = self.clock;
            let p = self.pending.get_mut(&key).expect("occupant is pending");
            // The scheduled completion at the original finish time is
            // now stale; deliver an eviction completion instead.
            self.busy_seconds -= p.finished - clock;
            p.preempted = true;
            p.fail_reason = Some(reason.to_string());
            p.finished = clock;
            p.install_done = p.install_done.min(clock);
            p.event_gen += 1;
            let gen = p.event_gen;
            self.events.schedule(clock, SimEvent::Complete(key, gen));
        }
    }

    /// One cause releases `slot`; when no cause holds it any more it
    /// rejoins the pool and immediately serves a waiter.
    fn bring_slot_up(&mut self, slot: usize) {
        debug_assert!(self.down_votes[slot] > 0, "slot-up without a down");
        self.down_votes[slot] = self.down_votes[slot].saturating_sub(1);
        if self.down_votes[slot] > 0 {
            return; // still held down by another cause
        }
        self.free_slots.push(slot);
        if let Some(next) = self.waiting.pop_front() {
            self.assign(next);
        }
    }

    /// A slot is reclaimed by its owner: evict the running job (it
    /// completes *now* as preempted) and take the slot out of the
    /// pool until its up event.
    fn on_slot_down(&mut self, slot: usize) {
        let churn = self.platform.churn.expect("churn events imply a model");
        self.churn_events.0 += 1;
        // Opportunistic reclaim is exactly the paper's OSG preemption,
        // so churn evictions keep the plain "preempted" reason.
        self.take_slot_down(slot, &FaultReason::Preemption.reason());
        let down_for = sample_exponential(&mut self.rng, 1.0 / churn.mean_down);
        self.events
            .schedule(self.clock + down_for, SimEvent::SlotUp(slot));
    }

    /// The slot returns from a churn outage.
    fn on_slot_up(&mut self, slot: usize) {
        let churn = self.platform.churn.expect("churn events imply a model");
        self.churn_events.1 += 1;
        self.bring_slot_up(slot);
        let up_for = sample_exponential(&mut self.rng, 1.0 / churn.mean_up);
        self.events
            .schedule(self.clock + up_for, SimEvent::SlotDown(slot));
    }

    fn on_eligible(&mut self, key: Key) {
        if self.free_slots.is_empty() {
            self.waiting.push_back(key);
        } else {
            self.assign(key);
        }
    }

    /// Releases a held job into the remote queue, honouring any
    /// backoff delay carried by the hold.
    fn release(&mut self, h: HeldJob) {
        let key = self.next_key;
        self.next_key += 1;
        self.released += 1;
        let submitted = self.clock + h.delay;
        let delay = self.platform.queue_delay.sample(&mut self.rng);
        let eligible_at = (submitted + delay).max(self.platform.startup_delay);
        self.pending.insert(
            key,
            PendingJob {
                job_id: h.job_id,
                attempt: h.attempt,
                runtime_hint: h.runtime_hint,
                install_hint: h.install_hint,
                submitted,
                started: 0.0,
                install_done: 0.0,
                finished: 0.0,
                slot: usize::MAX,
                preempted: false,
                fail_reason: None,
                event_gen: 0,
            },
        );
        self.events.schedule(eligible_at, SimEvent::Eligible(key));
    }

    fn on_complete(&mut self, key: Key) -> CompletionEvent {
        let p = self.pending.remove(&key).expect("completed job pending");
        // Free the slot only if this job still owns it (an evicted
        // job's slot left the pool with the churn event instead).
        if p.slot != usize::MAX && self.occupant[p.slot] == Some(key) {
            self.occupant[p.slot] = None;
            if self.down_votes[p.slot] == 0 {
                self.free_slots.push(p.slot);
            }
        }
        self.released -= 1;
        if p.preempted {
            self.preemptions += 1;
        }
        // Admit the next waiter into a freed slot.
        if !self.free_slots.is_empty() {
            if let Some(next) = self.waiting.pop_front() {
                self.assign(next);
            }
        }
        // Release throttled jobs into the vacated submission budget.
        while self.released < self.throttle {
            match self.held.pop_front() {
                Some(h) => self.release(h),
                None => break,
            }
        }
        CompletionEvent {
            job: p.job_id,
            attempt: p.attempt,
            outcome: if p.preempted {
                JobOutcome::Failure(
                    p.fail_reason
                        .unwrap_or_else(|| FaultReason::Preemption.reason()),
                )
            } else {
                JobOutcome::Success
            },
            times: JobTimes {
                submitted: p.submitted,
                started: p.started,
                install_done: p.install_done,
                finished: p.finished,
            },
        }
    }
}

impl ExecutionBackend for SimBackend {
    fn submit(&mut self, job: &ExecutableJob, attempt: u32) {
        self.submit_after(job, attempt, 0.0);
    }

    fn submit_after(&mut self, job: &ExecutableJob, attempt: u32, delay: f64) {
        assert!(
            self.platform.slot_count() > 0,
            "platform {} has no slots",
            self.platform.name
        );
        if self.script.is_some() {
            let idx = job.id.idx();
            if idx >= self.names.len() {
                self.names.resize(idx + 1, None);
            }
            if self.names[idx].is_none() {
                self.names[idx] = Some(Arc::from(job.name.as_str()));
            }
        }
        let h = HeldJob {
            job_id: job.id,
            attempt,
            runtime_hint: job.runtime_hint,
            install_hint: job.install_hint,
            delay: delay.max(0.0),
        };
        if self.released < self.throttle {
            self.release(h);
        } else {
            self.held.push_back(h);
        }
    }

    fn set_timeout(&mut self, timeout: Option<f64>) {
        self.timeout = timeout;
    }

    fn wait_any(&mut self) -> CompletionEvent {
        loop {
            let (time, ev) = self
                .events
                .pop()
                .expect("wait_any called with nothing in flight");
            self.clock = self.clock.max(time);
            match ev {
                SimEvent::Eligible(key) => self.on_eligible(key),
                SimEvent::Complete(key, gen) => {
                    // Skip stale completions of evicted generations.
                    let live = self.pending.get(&key).is_some_and(|p| p.event_gen == gen);
                    if live {
                        return self.on_complete(key);
                    }
                }
                SimEvent::SlotDown(slot) => self.on_slot_down(slot),
                SimEvent::SlotUp(slot) => self.on_slot_up(slot),
                SimEvent::BlackoutDown(slot) => {
                    self.take_slot_down(slot, &FaultReason::Eviction.tagged("blackout"))
                }
                SimEvent::BlackoutUp(slot) => self.bring_slot_up(slot),
            }
        }
    }

    fn now(&self) -> f64 {
        self.clock
    }

    fn slot_capacity(&self) -> Option<usize> {
        Some(self.platform.slot_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;
    use pegasus_wms::engine::{Engine, EngineConfig, NoopMonitor};
    use pegasus_wms::planner::{ExecutableWorkflow, JobKind};

    fn run_workflow(
        wf: &ExecutableWorkflow,
        be: &mut SimBackend,
        cfg: &EngineConfig,
    ) -> pegasus_wms::engine::WorkflowRun {
        Engine::run(be, wf, cfg, &mut NoopMonitor)
    }

    fn job(id: usize, runtime: f64, install: f64) -> ExecutableJob {
        ExecutableJob {
            id: JobId::new(id),
            name: format!("job{id}"),
            transformation: "work".into(),
            kind: JobKind::Compute,
            args: vec![],
            runtime_hint: runtime,
            install_hint: install,
            source_jobs: vec![],
        }
    }

    fn independent(jobs: Vec<ExecutableJob>) -> ExecutableWorkflow {
        ExecutableWorkflow {
            name: "w".into(),
            site: "sim".into(),
            jobs,
            edges: vec![],
        }
    }

    #[test]
    fn single_job_timing_is_exact_on_deterministic_platform() {
        let p = PlatformModel::uniform("t", 1, 1.0);
        let mut be = SimBackend::new(p, 1);
        let wf = independent(vec![job(0, 100.0, 20.0)]);
        let run = run_workflow(&wf, &mut be, &EngineConfig::default());
        assert!(run.succeeded());
        let t = run.records[0].times.unwrap();
        assert_eq!(t.waiting(), 0.0);
        assert_eq!(t.install(), 20.0);
        assert_eq!(t.kickstart(), 100.0);
        assert_eq!(run.wall_time, 120.0);
    }

    #[test]
    fn slot_speed_scales_kickstart_only() {
        let p = PlatformModel::uniform("fast", 1, 2.0);
        let mut be = SimBackend::new(p, 1);
        let wf = independent(vec![job(0, 100.0, 20.0)]);
        let run = run_workflow(&wf, &mut be, &EngineConfig::default());
        let t = run.records[0].times.unwrap();
        assert_eq!(t.kickstart(), 50.0);
        assert_eq!(t.install(), 20.0); // installs are network-bound
    }

    #[test]
    fn slot_contention_serialises_excess_jobs() {
        // 4 jobs of 10s on 2 slots: makespan 20s. With the default
        // DAGMan-style throttle (== slot count), the two excess jobs
        // are held at the submit host, so their *queue* waiting stays
        // zero — matching how pegasus-statistics reports waiting.
        let p = PlatformModel::uniform("two", 2, 1.0);
        let mut be = SimBackend::new(p, 1);
        let wf = independent((0..4).map(|i| job(i, 10.0, 0.0)).collect());
        let run = run_workflow(&wf, &mut be, &EngineConfig::default());
        assert_eq!(run.wall_time, 20.0);
        for rec in &run.records {
            assert_eq!(rec.times.unwrap().waiting(), 0.0);
        }
        assert!(be.utilisation() > 0.99);
    }

    #[test]
    fn raised_throttle_exposes_remote_queue_contention() {
        // Same workload, but all 4 jobs released at once: the two
        // excess jobs genuinely wait in the remote queue.
        let p = PlatformModel::uniform("two", 2, 1.0);
        let mut be = SimBackend::new(p, 1).with_throttle(4);
        let wf = independent((0..4).map(|i| job(i, 10.0, 0.0)).collect());
        let run = run_workflow(&wf, &mut be, &EngineConfig::default());
        assert_eq!(run.wall_time, 20.0);
        let waited = run
            .records
            .iter()
            .filter(|r| r.times.unwrap().waiting() > 0.0)
            .count();
        assert_eq!(waited, 2, "two jobs queue behind the first two");
    }

    #[test]
    fn throttle_preserves_fifo_release_order() {
        // 3 jobs, 1 slot: completion order must be submission order.
        let p = PlatformModel::uniform("one", 1, 1.0);
        let mut be = SimBackend::new(p, 1);
        let wf = independent((0..3).map(|i| job(i, 10.0 - i as f64, 0.0)).collect());
        let run = run_workflow(&wf, &mut be, &EngineConfig::default());
        let finishes: Vec<f64> = run
            .records
            .iter()
            .map(|r| r.times.unwrap().finished)
            .collect();
        assert!(finishes[0] < finishes[1] && finishes[1] < finishes[2]);
    }

    #[test]
    fn startup_delay_blocks_first_wave() {
        let mut p = PlatformModel::uniform("campus", 4, 1.0);
        p.startup_delay = 500.0;
        let mut be = SimBackend::new(p, 1);
        let wf = independent(vec![job(0, 10.0, 0.0)]);
        let run = run_workflow(&wf, &mut be, &EngineConfig::default());
        let t = run.records[0].times.unwrap();
        assert_eq!(t.waiting(), 500.0);
        assert_eq!(run.wall_time, 510.0);
    }

    #[test]
    fn queue_delay_adds_waiting_time() {
        let mut p = PlatformModel::uniform("queued", 4, 1.0);
        p.queue_delay = Dist::Fixed(30.0);
        let mut be = SimBackend::new(p, 1);
        let wf = independent(vec![job(0, 10.0, 0.0), job(1, 10.0, 0.0)]);
        let run = run_workflow(&wf, &mut be, &EngineConfig::default());
        for rec in &run.records {
            assert_eq!(rec.times.unwrap().waiting(), 30.0);
        }
        assert_eq!(run.wall_time, 40.0);
    }

    #[test]
    fn preemption_fails_and_engine_retries() {
        // Hazard so high every long attempt is preempted; with huge
        // retries the job still eventually... never succeeds, so keep
        // a moderate hazard and a seed where attempt 2 survives.
        let mut p = PlatformModel::uniform("grid", 1, 1.0);
        p.preemption_rate = 1.0 / 150.0; // mean preemption at 150s
        let mut be = SimBackend::new(p, 7);
        let wf = independent(vec![job(0, 100.0, 0.0)]);
        let run = run_workflow(&wf, &mut be, &EngineConfig::builder().retries(50).build());
        assert!(run.succeeded());
        let rec = &run.records[0];
        // With mean 150 vs duration 100 some attempts fail for seed 7
        // ... but even if none did, the record is consistent:
        assert_eq!(rec.failed_attempts.len() as u64, be.preemptions());
        let t = rec.times.unwrap();
        assert_eq!(t.kickstart(), 100.0, "successful attempt runs fully");
    }

    #[test]
    fn preemptions_land_as_labelled_fault_counters() {
        use pegasus_wms::metrics::{names, MetricsMonitor, MetricsRegistry};
        // Same hostile platform as above: every attempt is preempted,
        // the run fails, and each preemption must land in the registry
        // under its typed `reason` label.
        let mut p = PlatformModel::uniform("hostile", 1, 1.0);
        p.preemption_rate = 1.0;
        let mut be = SimBackend::new(p, 3);
        let wf = independent(vec![job(0, 1000.0, 0.0)]);
        let mut registry = MetricsRegistry::new();
        let run = {
            let mut mon = MetricsMonitor::new(&mut registry, "sim", "1");
            Engine::run(
                &mut be,
                &wf,
                &EngineConfig::builder().retries(3).build(),
                &mut mon,
            )
        };
        assert!(!run.succeeded());
        let labels = [("site", "sim"), ("n", "1"), ("reason", "preempted")];
        assert_eq!(
            registry.value(names::FAILURES, &labels),
            Some(4.0),
            "initial attempt + 3 retries, all preempted"
        );
        assert_eq!(
            registry.value(names::RETRIES, &labels),
            Some(3.0),
            "each failure but the last schedules a retry"
        );
        assert!(registry
            .render()
            .contains("pegasus_job_failures_total{n=\"1\",reason=\"preempted\",site=\"sim\"} 4"));
    }

    #[test]
    fn queue_stats_and_metrics_export_reflect_the_run() {
        use pegasus_wms::metrics::{names, MetricsRegistry};
        let p = PlatformModel::uniform("two", 2, 1.0);
        let mut be = SimBackend::new(p, 1);
        let wf = independent((0..4).map(|i| job(i, 10.0, 0.0)).collect());
        let run = run_workflow(&wf, &mut be, &EngineConfig::default());
        assert!(run.succeeded());
        let stats = be.queue_stats();
        // Every release schedules an Eligible and every assignment a
        // Complete: at least two events per job passed through.
        assert!(stats.scheduled >= 8, "{stats:?}");
        assert!(stats.peak_depth >= 1);
        assert!(stats.peak_buckets >= 1);
        assert_eq!(be.queue_depth(), 0, "a finished run drains the queue");
        let mut registry = MetricsRegistry::new();
        be.export_queue_metrics(&mut registry);
        let labels = [("site", "two")];
        assert_eq!(registry.value(names::SIM_QUEUE_DEPTH, &labels), Some(0.0));
        assert_eq!(
            registry.value(names::SIM_QUEUE_PEAK, &labels),
            Some(stats.peak_depth as f64)
        );
        assert_eq!(
            registry.value(names::SIM_EVENTS_SCHEDULED, &labels),
            Some(stats.scheduled as f64)
        );
        assert_eq!(
            registry.value(names::SIM_CALENDAR_OCCUPANCY, &labels),
            Some(stats.peak_buckets as f64)
        );
        let text = registry.render();
        assert!(
            text.contains("pegasus_sim_event_queue_peak_depth{site=\"two\"}"),
            "{text}"
        );
    }

    #[test]
    fn heavy_preemption_exhausts_retries() {
        let mut p = PlatformModel::uniform("hostile", 1, 1.0);
        p.preemption_rate = 1.0; // mean preemption after 1s
        let mut be = SimBackend::new(p, 3);
        let wf = independent(vec![job(0, 1000.0, 0.0)]);
        let run = run_workflow(&wf, &mut be, &EngineConfig::builder().retries(3).build());
        assert!(!run.succeeded());
        assert!(be.preemptions() >= 4);
    }

    #[test]
    fn install_factor_scales_install_phase() {
        let mut p = PlatformModel::uniform("slow_net", 1, 1.0);
        p.install_time_factor = 3.0;
        let mut be = SimBackend::new(p, 1);
        let wf = independent(vec![job(0, 10.0, 45.0)]);
        let run = run_workflow(&wf, &mut be, &EngineConfig::default());
        let t = run.records[0].times.unwrap();
        assert_eq!(t.install(), 135.0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let mut p = PlatformModel::uniform("jittery", 4, 1.0);
        p.queue_delay = Dist::lognormal_median(20.0, 1.0);
        p.runtime_jitter_sigma = 0.2;
        let wf = independent((0..16).map(|i| job(i, 50.0, 5.0)).collect());
        let run1 = run_workflow(
            &wf,
            &mut SimBackend::new(p.clone(), 9),
            &EngineConfig::default(),
        );
        let run2 = run_workflow(
            &wf,
            &mut SimBackend::new(p.clone(), 9),
            &EngineConfig::default(),
        );
        let run3 = run_workflow(&wf, &mut SimBackend::new(p, 10), &EngineConfig::default());
        assert_eq!(run1.wall_time, run2.wall_time);
        assert_ne!(run1.wall_time, run3.wall_time);
    }

    #[test]
    fn dag_dependencies_respected_in_sim_time() {
        // chain a(10) -> b(5): b's submission happens at a's finish.
        let p = PlatformModel::uniform("t", 4, 1.0);
        let mut be = SimBackend::new(p, 1);
        let wf = ExecutableWorkflow {
            name: "chain".into(),
            site: "sim".into(),
            jobs: vec![job(0, 10.0, 0.0), job(1, 5.0, 0.0)],
            edges: vec![(JobId::new(0), JobId::new(1))],
        };
        let run = run_workflow(&wf, &mut be, &EngineConfig::default());
        let ta = run.records[0].times.unwrap();
        let tb = run.records[1].times.unwrap();
        assert_eq!(ta.finished, 10.0);
        assert_eq!(tb.submitted, 10.0);
        assert_eq!(run.wall_time, 15.0);
    }

    #[test]
    fn churn_evicts_and_engine_recovers() {
        use crate::platform::ChurnModel;
        // One slot that stays up ~50s; a 200s job must be evicted at
        // least once and still finish under a generous retry budget.
        let mut p = PlatformModel::uniform("churny", 1, 1.0);
        p.churn = Some(ChurnModel {
            mean_up: 50.0,
            mean_down: 10.0,
        });
        let mut be = SimBackend::new(p, 11);
        let wf = independent(vec![job(0, 200.0, 0.0)]);
        let run = run_workflow(&wf, &mut be, &EngineConfig::builder().retries(200).build());
        assert!(run.succeeded());
        assert!(
            be.preemptions() >= 1,
            "a 200s job on a ~50s-up slot must be evicted"
        );
        let (downs, ups) = be.churn_events();
        assert!(downs >= 1 && ups >= 1);
        assert_eq!(
            run.records[0].failed_attempts.len() as u64,
            be.preemptions()
        );
        // The successful attempt ran to completion.
        assert_eq!(run.records[0].times.unwrap().kickstart(), 200.0);
    }

    #[test]
    fn stable_pool_without_churn_never_evicts() {
        let p = PlatformModel::uniform("stable", 2, 1.0);
        let mut be = SimBackend::new(p, 3);
        let wf = independent((0..6).map(|i| job(i, 50.0, 0.0)).collect());
        let run = run_workflow(&wf, &mut be, &EngineConfig::default());
        assert!(run.succeeded());
        assert_eq!(be.preemptions(), 0);
        assert_eq!(be.churn_events(), (0, 0));
    }

    #[test]
    fn churn_during_idle_periods_is_harmless() {
        use crate::platform::ChurnModel;
        // Short up periods but an even shorter job: the job may land
        // between churn events and finish first try; either way the
        // run must succeed and timings stay consistent.
        let mut p = PlatformModel::uniform("churny", 4, 1.0);
        p.churn = Some(ChurnModel {
            mean_up: 100.0,
            mean_down: 5.0,
        });
        let mut be = SimBackend::new(p, 5);
        let wf = independent((0..8).map(|i| job(i, 10.0, 0.0)).collect());
        let run = run_workflow(&wf, &mut be, &EngineConfig::builder().retries(50).build());
        assert!(run.succeeded());
        for rec in &run.records {
            let t = rec.times.unwrap();
            assert!(t.submitted <= t.started && t.started <= t.finished);
        }
    }

    #[test]
    fn scripted_storm_kills_and_reports_its_reason() {
        use crate::faults::{FaultPlan, FaultScript};
        // A probability-1 storm: every attempt overlapping [0, 150)
        // dies with the scripted reason. Exponential backoff walks the
        // retries out of the window, after which the job succeeds.
        let plan = FaultPlan::parse("preemption-storm start=0 duration=150 kill-probability=1.0\n")
            .unwrap();
        let p = PlatformModel::uniform("t", 1, 1.0);
        let mut be = SimBackend::new(p, 1).with_faults(FaultScript::new(plan, 5));
        let wf = independent(vec![job(0, 100.0, 0.0)]);
        let run = run_workflow(
            &wf,
            &mut be,
            &EngineConfig::builder()
                .policy(pegasus_wms::engine::RetryPolicy::exponential(20, 30.0))
                .build(),
        );
        assert!(run.succeeded());
        assert!(
            run.records[0].times.unwrap().started >= 150.0,
            "the surviving attempt must start after the storm"
        );
        let rec = &run.records[0];
        assert!(!rec.failure_reasons.is_empty());
        assert!(rec.failure_reasons.iter().all(|r| r == "preempted:storm"));
        assert_eq!(run.faults.preemptions as usize, rec.failure_reasons.len());
    }

    #[test]
    fn scripted_runs_replay_bit_for_bit() {
        use crate::faults::{FaultPlan, FaultScript};
        let plan = FaultPlan::parse(
            "preemption-storm start=50 duration=400 kill-probability=0.5\n\
             straggler start=0 duration=1000 slowdown=3 probability=0.3\n\
             install-failure-burst start=0 duration=200 fail-probability=0.4\n",
        )
        .unwrap();
        let mut p = PlatformModel::uniform("t", 4, 1.0);
        p.runtime_jitter_sigma = 0.1;
        let wf = independent((0..12).map(|i| job(i, 60.0, 10.0)).collect());
        let mut runs = Vec::new();
        for _ in 0..2 {
            let be = SimBackend::new(p.clone(), 21);
            let mut be = be.with_faults(FaultScript::new(plan.clone(), 21));
            runs.push(run_workflow(
                &wf,
                &mut be,
                &EngineConfig::builder().retries(30).build(),
            ));
        }
        assert_eq!(runs[0].wall_time, runs[1].wall_time);
        for (a, b) in runs[0].records.iter().zip(&runs[1].records) {
            assert_eq!(a.times, b.times);
            assert_eq!(a.failure_reasons, b.failure_reasons);
        }
        assert_eq!(runs[0].faults, runs[1].faults);
        // The typed provenance stream is part of the deterministic
        // surface: same seed + same plan write byte-identical event
        // logs, and the log replays back to the run exactly.
        assert_eq!(
            pegasus_wms::events::log::write(&runs[0].events),
            pegasus_wms::events::log::write(&runs[1].events)
        );
        let replayed = pegasus_wms::events::replay(&runs[0].events).unwrap();
        assert_eq!(&replayed, &runs[0]);
    }

    #[test]
    fn blackout_evicts_and_capacity_returns() {
        use crate::faults::{FaultPlan, FaultScript};
        // Both slots black out at t=20 for 100s: the two running jobs
        // are evicted, wait out the window, and finish after it.
        let plan =
            FaultPlan::parse("slot-blackout start=20 duration=100 first-slot=0 count=2\n").unwrap();
        let p = PlatformModel::uniform("t", 2, 1.0);
        let mut be = SimBackend::new(p, 1).with_faults(FaultScript::new(plan, 1));
        let wf = independent(vec![job(0, 50.0, 0.0), job(1, 50.0, 0.0)]);
        let run = run_workflow(&wf, &mut be, &EngineConfig::builder().retries(5).build());
        assert!(run.succeeded());
        assert_eq!(run.faults.evictions, 2);
        for rec in &run.records {
            assert_eq!(rec.failure_reasons, vec!["evicted:blackout".to_string()]);
            // Retried attempts could only start once the blackout lifted.
            assert!(rec.times.unwrap().finished >= 120.0 + 50.0);
        }
        assert_eq!(run.wall_time, 170.0);
    }

    #[test]
    fn timeout_kills_stragglers_for_resubmission() {
        use crate::faults::{FaultPlan, FaultScript};
        // Every attempt started in [0, 10) runs 100x slower; the 80s
        // timeout kills it and the retry (outside the window) succeeds.
        let plan = FaultPlan::parse("straggler start=0 duration=10 slowdown=100 probability=1.0\n")
            .unwrap();
        let p = PlatformModel::uniform("t", 1, 1.0);
        let mut be = SimBackend::new(p, 1).with_faults(FaultScript::new(plan, 2));
        let wf = independent(vec![job(0, 50.0, 0.0)]);
        let cfg = EngineConfig::builder()
            .policy(retry_with_timeout(3, 80.0))
            .build();
        let run = run_workflow(&wf, &mut be, &cfg);
        assert!(run.succeeded());
        let rec = &run.records[0];
        assert_eq!(rec.failure_reasons.len(), 1);
        assert!(rec.failure_reasons[0].starts_with("timeout"));
        assert_eq!(run.faults.timeouts, 1);
        // killed at 80, retried, ran clean for 50.
        assert_eq!(run.wall_time, 130.0);
    }

    fn retry_with_timeout(retries: u32, timeout: f64) -> pegasus_wms::engine::RetryPolicy {
        pegasus_wms::engine::RetryPolicy::flat(retries).with_timeout(timeout)
    }

    #[test]
    fn backoff_delay_is_honoured_in_sim_time() {
        use pegasus_wms::engine::RetryPolicy;
        // Force one scripted install failure, then retry with a 40s
        // backoff: the second attempt's submission is stamped 40s
        // after the first failure.
        use crate::faults::{FaultPlan, FaultScript};
        let plan =
            FaultPlan::parse("install-failure-burst start=0 duration=1 fail-probability=1.0\n")
                .unwrap();
        let p = PlatformModel::uniform("t", 1, 1.0);
        let mut be = SimBackend::new(p, 1).with_faults(FaultScript::new(plan, 3));
        let wf = independent(vec![job(0, 30.0, 10.0)]);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: 40.0,
            backoff_factor: 2.0,
            max_backoff: f64::INFINITY,
            jitter: 0.0,
            timeout: None,
        };
        let run = run_workflow(
            &wf,
            &mut be,
            &EngineConfig::builder().policy(policy).build(),
        );
        assert!(run.succeeded());
        let rec = &run.records[0];
        assert_eq!(run.faults.install_failures, 1);
        let failed_at = rec.failed_attempts[0].finished;
        let resubmitted = rec.times.unwrap().submitted;
        assert_eq!(resubmitted, failed_at + 40.0);
        assert_eq!(run.faults.backoff_wait, 40.0);
    }

    #[test]
    #[should_panic(expected = "no slots")]
    fn zero_slot_platform_panics_on_submit() {
        let p = PlatformModel {
            slots: vec![],
            ..PlatformModel::uniform("none", 1, 1.0)
        };
        let mut be = SimBackend::new(p, 1);
        let j = job(0, 1.0, 0.0);
        be.submit(&j, 0);
    }
}

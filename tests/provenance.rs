//! Provenance chain integration: one simulated paper-scale run emits
//! a single typed event stream, and every downstream consumer —
//! status monitor, timeline monitor, Condor user log, statistics,
//! analyzer, even the engine's own records — is re-derivable from a
//! replay of that stream. Where the old version of this test
//! cross-checked five independently maintained reconstructions, it
//! now reduces to assertions over one source of truth: the events.

use blast2cap3::workflow::{build_workflow, WorkflowParams};
use blast2cap3_pegasus::experiment::{calibrate_workload, calibrated_chunk_costs};
use condor::joblog::{EventCode, JobLogMonitor};
use gridsim::platforms::osg;
use gridsim::SimBackend;
use pegasus_wms::catalog::{paper_catalogs, ReplicaCatalog};
use pegasus_wms::engine::{Engine, EngineConfig};
use pegasus_wms::events::{self, EventSink, MonitorSink, WorkflowEvent};
use pegasus_wms::monitor::{MultiMonitor, StatusMonitor, TimelineMonitor};
use pegasus_wms::statistics::{compute, render_csv, render_summary_csv};

#[test]
fn every_consumer_is_a_fold_of_one_event_stream() {
    // A smallish calibrated workflow on the failure-prone OSG model,
    // so retries appear in the provenance.
    let cal = calibrate_workload(99);
    let costs = calibrated_chunk_costs(&cal, 40);
    let wf = build_workflow(&WorkflowParams::with_n(costs.len()).with_chunk_costs(costs));
    let (sites, tc) = paper_catalogs();
    let mut rc = ReplicaCatalog::new();
    rc.register("transcripts.fasta", "submit");
    rc.register("alignments.out", "submit");
    let exec = pegasus_wms::planner::plan(
        &wf,
        &sites,
        &tc,
        &rc,
        &pegasus_wms::planner::PlannerConfig::for_site("osg"),
    )
    .unwrap();

    let mut backend = SimBackend::new(osg(99), 99);
    let mut status = StatusMonitor::new(exec.jobs.len());
    let mut timeline = TimelineMonitor::new();
    let mut joblog = JobLogMonitor::new();
    let run = {
        let mut multi = MultiMonitor::new();
        multi.push(&mut status);
        multi.push(&mut timeline);
        multi.push(&mut joblog);
        Engine::run(
            &mut backend,
            &exec,
            &EngineConfig::builder().retries(20).build(),
            &mut multi,
        )
    };
    assert!(run.succeeded());

    // --- the stream itself vs the engine's records -----------------
    let submissions: u32 = run.records.iter().map(|r| r.attempts).sum();
    let count = |pred: fn(&WorkflowEvent) -> bool| run.events.iter().filter(|e| pred(e)).count();
    assert_eq!(
        count(|e| matches!(e, WorkflowEvent::Submitted { .. })) as u32,
        submissions
    );
    let failed_attempts: usize = run.records.iter().map(|r| r.failed_attempts.len()).sum();
    assert_eq!(
        count(|e| matches!(
            e,
            WorkflowEvent::Failed { .. } | WorkflowEvent::TimedOut { .. }
        )),
        failed_attempts
    );
    assert_eq!(
        count(|e| matches!(e, WorkflowEvent::Completed { .. })),
        exec.jobs.len()
    );
    assert_eq!(
        count(|e| matches!(e, WorkflowEvent::WorkflowFinished { .. })),
        1
    );

    // --- replay reconstructs the run exactly -----------------------
    let replayed = events::replay(&run.events).expect("replay");
    assert_eq!(replayed, run);

    // --- the text log round-trips the stream exactly ----------------
    let text = events::log::write(&run.events);
    let parsed = events::log::parse(&text).expect("parse event log");
    assert_eq!(parsed, run.events);

    // --- live monitors are folds of the stream ----------------------
    let mut status2 = StatusMonitor::new(exec.jobs.len());
    let mut timeline2 = TimelineMonitor::new();
    {
        let mut multi = MultiMonitor::new();
        multi.push(&mut status2);
        multi.push(&mut timeline2);
        let mut sink = MonitorSink::new(&exec.jobs, &mut multi);
        for ev in &parsed {
            sink.event(ev);
        }
    }
    assert_eq!(status2.history, status.history);
    assert_eq!(status2.done, status.done);
    assert_eq!(status2.submissions, status.submissions);
    assert_eq!(status2.failed_attempts, status.failed_attempts);
    assert_eq!(status2.retries, status.retries);
    assert_eq!(status2.backoff_wait, status.backoff_wait);
    assert_eq!(timeline2.entries, timeline.entries);
    assert_eq!(timeline2.peak_concurrency(), timeline.peak_concurrency());

    // --- the Condor user log is a fold of the stream ----------------
    let offline_log = JobLogMonitor::from_events(&exec.jobs, &parsed);
    assert_eq!(offline_log.events, joblog.events);
    assert_eq!(offline_log.to_text(), joblog.to_text());
    // Preemptions are machine-initiated, so they log as Condor "004"
    // evicted events, not aborts.
    let evictions = offline_log
        .events
        .iter()
        .filter(|e| e.code == EventCode::Evicted)
        .count();
    assert_eq!(evictions, failed_attempts, "every preemption is logged");
    assert!(
        offline_log
            .events
            .iter()
            .all(|e| e.code != EventCode::Aborted),
        "no user aborts in this run"
    );

    // --- statistics from the replay match the live run --------------
    let live = compute(&run);
    let offline = compute(&replayed);
    assert_eq!(render_csv(&offline), render_csv(&live));
    assert_eq!(render_summary_csv(&offline), render_summary_csv(&live));
    assert_eq!(live.retries as usize, failed_attempts);
    assert!(live.cumulative_badput > 0.0, "preemptions imply badput");

    // --- the analyzer agrees too ------------------------------------
    assert_eq!(
        pegasus_wms::analyzer::analyze(&replayed),
        pegasus_wms::analyzer::analyze(&run)
    );
}

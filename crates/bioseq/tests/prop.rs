//! Property-based tests for the sequence substrate.

use bioseq::codon::{reverse_translate, translate_frame};
use bioseq::fasta::{self, Record};
use bioseq::kmer;
use bioseq::seq::{DnaSeq, ProteinSeq};
use bioseq::stats::assembly_stats;
use proptest::prelude::*;

fn dna_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ACGTN]{0,200}").expect("valid regex")
}

fn canonical_dna_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ACGT]{1,200}").expect("valid regex")
}

fn protein_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ACDEFGHIKLMNPQRSTVWY]{1,120}").expect("valid regex")
}

fn fasta_id() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9_.:-]{1,24}").expect("valid regex")
}

proptest! {
    #[test]
    fn reverse_complement_is_involution(s in dna_string()) {
        let seq = DnaSeq::from_ascii(s.as_bytes()).unwrap();
        prop_assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn reverse_complement_preserves_length_and_gc(s in dna_string()) {
        let seq = DnaSeq::from_ascii(s.as_bytes()).unwrap();
        let rc = seq.reverse_complement();
        prop_assert_eq!(rc.len(), seq.len());
        // G+C count is strand-symmetric.
        prop_assert!((rc.gc_content() - seq.gc_content()).abs() < 1e-12);
        prop_assert_eq!(rc.n_count(), seq.n_count());
    }

    #[test]
    fn fasta_round_trip(ids in proptest::collection::vec(fasta_id(), 0..8),
                        seqs in proptest::collection::vec(dna_string(), 0..8),
                        width in 1usize..100) {
        let records: Vec<Record> = ids
            .iter()
            .zip(&seqs)
            .enumerate()
            .map(|(i, (id, s))| {
                Record::new(
                    format!("{id}_{i}"), // unique ids
                    "",
                    DnaSeq::from_ascii(s.as_bytes()).unwrap(),
                )
            })
            .collect();
        let mut text = String::new();
        for r in &records {
            text.push_str(&r.to_fasta_string(width));
        }
        let parsed = fasta::parse_str(&text).unwrap();
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn kmer_pack_unpack_round_trip(s in canonical_dna_string(), k in 1usize..33) {
        let bytes = s.as_bytes();
        if bytes.len() >= k {
            for (pos, packed) in kmer::KmerIter::new(bytes, k).unwrap() {
                prop_assert_eq!(&kmer::unpack(packed, k)[..], &bytes[pos..pos + k]);
            }
        }
    }

    #[test]
    fn kmer_count_matches_window_count(s in canonical_dna_string(), k in 1usize..33) {
        let bytes = s.as_bytes();
        let count = kmer::KmerIter::new(bytes, k).unwrap().count();
        let expected = bytes.len().saturating_sub(k - 1);
        prop_assert_eq!(count, expected);
    }

    #[test]
    fn translation_length_law(s in canonical_dna_string(), off in 0usize..3) {
        let dna = DnaSeq::from_ascii(s.as_bytes()).unwrap();
        let prot = translate_frame(&dna, off);
        prop_assert_eq!(prot.len(), dna.len().saturating_sub(off) / 3);
    }

    #[test]
    fn reverse_translate_round_trips(p in protein_string(), pick in 0usize..16) {
        let prot = ProteinSeq::from_ascii(p.as_bytes()).unwrap();
        let dna = reverse_translate(&prot, |i| i.wrapping_mul(31).wrapping_add(pick));
        prop_assert_eq!(dna.len(), prot.len() * 3);
        prop_assert_eq!(translate_frame(&dna, 0), prot);
    }

    #[test]
    fn n50_bounds(seqs in proptest::collection::vec(canonical_dna_string(), 1..20)) {
        let records: Vec<Record> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| Record::new(format!("s{i}"), "", DnaSeq::from_ascii(s.as_bytes()).unwrap()))
            .collect();
        let stats = assembly_stats(&records);
        prop_assert!(stats.n50 >= stats.min_len);
        prop_assert!(stats.n50 <= stats.max_len);
        prop_assert_eq!(stats.count, records.len());
        let mean_gap = stats.mean_len * records.len() as f64 - stats.total_len as f64;
        prop_assert!(mean_gap.abs() < 1e-6);
    }

    #[test]
    fn invalid_bytes_always_rejected(s in "[acgtnACGTN]{0,20}[!-@]{1}[acgtnACGTN]{0,20}") {
        prop_assert!(DnaSeq::from_ascii(s.as_bytes()).is_err());
    }
}

//! Nucleotide and amino-acid alphabets.
//!
//! Sequences are stored as upper-case ASCII bytes. The nucleotide
//! alphabet accepts the four canonical bases plus `N` (unknown); the
//! amino-acid alphabet accepts the 20 standard residues plus `X`
//! (unknown) and `*` (stop).

/// The four canonical DNA bases in encoding order (`A=0, C=1, G=2, T=3`).
pub const DNA_BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// The 20 standard amino acids, alphabetical by one-letter code.
pub const AMINO_ACIDS: [u8; 20] = [
    b'A', b'C', b'D', b'E', b'F', b'G', b'H', b'I', b'K', b'L', b'M', b'N', b'P', b'Q', b'R', b'S',
    b'T', b'V', b'W', b'Y',
];

/// Returns `true` if `b` (case-insensitive) is a canonical base or `N`.
#[inline]
pub fn is_dna(b: u8) -> bool {
    matches!(b.to_ascii_uppercase(), b'A' | b'C' | b'G' | b'T' | b'N')
}

/// Returns `true` if `b` (case-insensitive) is a canonical base (no `N`).
#[inline]
pub fn is_canonical_dna(b: u8) -> bool {
    matches!(b.to_ascii_uppercase(), b'A' | b'C' | b'G' | b'T')
}

/// Returns `true` if `b` (case-insensitive) is a standard residue, `X`, or `*`.
#[inline]
pub fn is_protein(b: u8) -> bool {
    let u = b.to_ascii_uppercase();
    u == b'X' || u == b'*' || AMINO_ACIDS.binary_search(&u).is_ok()
}

/// Watson–Crick complement of a single (possibly lower-case) base.
///
/// `N` complements to `N`; any other byte is returned unchanged so that
/// the caller's validation, not this function, decides policy.
#[inline]
pub fn complement(b: u8) -> u8 {
    match b {
        b'A' => b'T',
        b'T' => b'A',
        b'C' => b'G',
        b'G' => b'C',
        b'a' => b't',
        b't' => b'a',
        b'c' => b'g',
        b'g' => b'c',
        b'N' => b'N',
        b'n' => b'n',
        other => other,
    }
}

/// 2-bit code for a canonical base (`A=0, C=1, G=2, T=3`).
///
/// Returns `None` for `N` or any non-base byte.
#[inline]
pub fn base_code(b: u8) -> Option<u8> {
    match b.to_ascii_uppercase() {
        b'A' => Some(0),
        b'C' => Some(1),
        b'G' => Some(2),
        b'T' => Some(3),
        _ => None,
    }
}

/// Inverse of [`base_code`]: maps `0..=3` back to `ACGT`.
///
/// # Panics
/// Panics if `code > 3`.
#[inline]
pub fn code_base(code: u8) -> u8 {
    DNA_BASES[code as usize]
}

/// Dense index for an amino acid: `0..20` for the standard residues in
/// [`AMINO_ACIDS`] order, `20` for anything else (`X`, `*`, unknowns).
#[inline]
pub fn residue_index(b: u8) -> usize {
    AMINO_ACIDS
        .binary_search(&b.to_ascii_uppercase())
        .unwrap_or(20)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_bases_are_dna() {
        for b in DNA_BASES {
            assert!(is_dna(b));
            assert!(is_canonical_dna(b));
            assert!(is_dna(b.to_ascii_lowercase()));
        }
        assert!(is_dna(b'N'));
        assert!(!is_canonical_dna(b'N'));
        assert!(!is_dna(b'Q'));
        assert!(!is_dna(b' '));
    }

    #[test]
    fn complement_is_involution_on_bases() {
        for b in [b'A', b'C', b'G', b'T', b'N', b'a', b'c', b'g', b't'] {
            assert_eq!(complement(complement(b)), b);
        }
        assert_eq!(complement(b'A'), b'T');
        assert_eq!(complement(b'g'), b'c');
    }

    #[test]
    fn base_code_round_trips() {
        for (i, b) in DNA_BASES.iter().enumerate() {
            assert_eq!(base_code(*b), Some(i as u8));
            assert_eq!(code_base(i as u8), *b);
        }
        assert_eq!(base_code(b'N'), None);
        assert_eq!(base_code(b'a'), Some(0));
    }

    #[test]
    fn protein_alphabet_accepts_extended_codes() {
        for aa in AMINO_ACIDS {
            assert!(is_protein(aa));
            assert!(is_protein(aa.to_ascii_lowercase()));
        }
        assert!(is_protein(b'X'));
        assert!(is_protein(b'*'));
        assert!(!is_protein(b'B'));
        assert!(!is_protein(b'1'));
    }

    #[test]
    fn residue_index_is_dense_and_total() {
        for (i, aa) in AMINO_ACIDS.iter().enumerate() {
            assert_eq!(residue_index(*aa), i);
        }
        assert_eq!(residue_index(b'X'), 20);
        assert_eq!(residue_index(b'*'), 20);
        assert_eq!(residue_index(b'?'), 20);
    }

    #[test]
    fn amino_acids_are_sorted_for_binary_search() {
        let mut sorted = AMINO_ACIDS;
        sorted.sort_unstable();
        assert_eq!(sorted, AMINO_ACIDS);
    }
}

# Two blackout windows that double-count slots 4..8 at t=50..100.
plan overlap
slot-blackout start=0 duration=100 first-slot=0 count=8
slot-blackout start=50 duration=100 first-slot=4 count=8

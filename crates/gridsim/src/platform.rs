//! Platform models.
//!
//! A platform is a pool of slots with speeds, a queue-delay
//! distribution, an optional one-time allocation delay, an install
//! speed factor, a preemption hazard, and runtime jitter. Everything
//! the paper attributes to "campus cluster vs. opportunistic grid"
//! reduces to these knobs.

use crate::dist::Dist;

/// A single execution slot.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotSpec {
    /// Execution speed relative to the reference core (2.0 = twice as
    /// fast).
    pub speed: f64,
}

/// Slot availability churn: opportunistic slots alternate between
/// available and claimed-by-owner periods with exponential durations.
/// A slot going down evicts (preempts) whatever is running on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnModel {
    /// Mean seconds a slot stays available.
    pub mean_up: f64,
    /// Mean seconds a slot stays unavailable.
    pub mean_down: f64,
}

/// A model of one execution platform.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformModel {
    /// Platform handle (matches the site catalog handle).
    pub name: String,
    /// The slots the workflow can use concurrently.
    pub slots: Vec<SlotSpec>,
    /// Per-job delay between submission and slot eligibility
    /// (scheduler cycle + remote queue).
    pub queue_delay: Dist,
    /// No job starts before this absolute time — the one-time pool
    /// allocation wait of a campus cluster.
    pub startup_delay: f64,
    /// Multiplier on job `install_hint` (network/download speed of
    /// the platform; 0 disables install phases entirely).
    pub install_time_factor: f64,
    /// Preemption hazard rate per busy second (0 = never preempted).
    /// A preempted attempt fails and is retried by the engine.
    pub preemption_rate: f64,
    /// Multiplicative lognormal sigma applied to each execution
    /// duration (0 = deterministic runtimes).
    pub runtime_jitter_sigma: f64,
    /// Fixed per-task service seconds added to every execution (job
    /// wrapper start-up, per-task staging from the shared filesystem,
    /// scheduler dispatch). Counted inside kickstart time, like the
    /// real kickstart wrapper's own overhead.
    pub task_overhead: f64,
    /// Optional slot availability churn (opportunistic pools); `None`
    /// means slots never leave the pool.
    pub churn: Option<ChurnModel>,
}

impl PlatformModel {
    /// A deterministic single-speed test platform with `n` slots.
    pub fn uniform(name: impl Into<String>, n: usize, speed: f64) -> Self {
        PlatformModel {
            name: name.into(),
            slots: vec![SlotSpec { speed }; n],
            queue_delay: Dist::Fixed(0.0),
            startup_delay: 0.0,
            install_time_factor: 1.0,
            preemption_rate: 0.0,
            runtime_jitter_sigma: 0.0,
            task_overhead: 0.0,
            churn: None,
        }
    }

    /// Number of slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Mean slot speed.
    pub fn mean_speed(&self) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        self.slots.iter().map(|s| s.speed).sum::<f64>() / self.slots.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_platform_shape() {
        let p = PlatformModel::uniform("test", 8, 1.5);
        assert_eq!(p.slot_count(), 8);
        assert_eq!(p.mean_speed(), 1.5);
        assert_eq!(p.preemption_rate, 0.0);
        assert_eq!(p.startup_delay, 0.0);
    }

    #[test]
    fn empty_platform_mean_speed_is_zero() {
        let p = PlatformModel {
            slots: vec![],
            ..PlatformModel::uniform("x", 1, 1.0)
        };
        assert_eq!(p.mean_speed(), 0.0);
    }
}

//! Pairwise overlap detection.
//!
//! Candidate diagonals between two reads are found by voting with
//! shared k-mers; the best few diagonals are then evaluated exactly by
//! counting identities over the implied overlap region. This is the
//! substitution-tolerant, indel-light regime of transcript merging —
//! the same regime CAP3's banded alignment targets — at a fraction of
//! the cost.

use crate::params::Cap3Params;
use bioseq::fxhash::FxHashMap;
use bioseq::kmer::KmerIter;

/// An accepted overlap between oriented read `a` (forward) and read
/// `b` in orientation `flip` (false = forward, true = reverse
/// complement), with `b` starting at position `shift` of `a`'s frame
/// (negative when `b` hangs off `a`'s left end).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overlap {
    /// Index of read `a` in the caller's read set.
    pub a: u32,
    /// Index of read `b`.
    pub b: u32,
    /// Orientation of `b` relative to `a`.
    pub flip: bool,
    /// Start position of oriented `b` in `a`'s coordinate frame.
    pub shift: isize,
    /// Overlap length in bases.
    pub len: usize,
    /// Percent identity over the overlap.
    pub identity: f64,
}

impl Overlap {
    /// Score used to rank competing overlaps.
    pub fn score(&self) -> f64 {
        self.len as f64 * self.identity / 100.0
    }
}

/// Evaluates the overlap between `a` and `b` implied by diagonal
/// `shift` (`b[i]` pairs with `a[i + shift]`), returning
/// `(length, identity_percent)`; length 0 when the diagonal implies no
/// overlap.
pub fn evaluate_diagonal(a: &[u8], b: &[u8], shift: isize) -> (usize, f64) {
    let a_len = a.len() as isize;
    let b_len = b.len() as isize;
    let start_a = shift.max(0);
    let end_a = (shift + b_len).min(a_len);
    if end_a <= start_a {
        return (0, 0.0);
    }
    let len = (end_a - start_a) as usize;
    let mut matches = 0usize;
    for p in start_a..end_a {
        let qa = a[p as usize];
        let qb = b[(p - shift) as usize];
        if qa == qb && qa != b'N' {
            matches += 1;
        }
    }
    (len, 100.0 * matches as f64 / len as f64)
}

/// Finds the best acceptable overlap between `a` (forward) and the
/// oriented bytes of `b`, or `None` if no diagonal passes the cutoffs.
///
/// `a_idx`/`b_idx`/`flip` are carried through into the returned
/// [`Overlap`] untouched.
pub fn detect(
    a: &[u8],
    b: &[u8],
    a_idx: u32,
    b_idx: u32,
    flip: bool,
    params: &Cap3Params,
) -> Option<Overlap> {
    if a.len() < params.min_overlap_len || b.len() < params.min_overlap_len {
        return None;
    }
    // Index a's k-mers.
    let mut index: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    for (pos, km) in KmerIter::new(a, params.seed_k).ok()? {
        index.entry(km).or_default().push(pos);
    }
    // Vote on diagonals with b's k-mers.
    let mut votes: FxHashMap<isize, usize> = FxHashMap::default();
    for (bpos, km) in KmerIter::new(b, params.seed_k).ok()? {
        if let Some(apositions) = index.get(&km) {
            if apositions.len() > params.max_bucket {
                continue;
            }
            for &apos in apositions {
                *votes.entry(apos as isize - bpos as isize).or_insert(0) += 1;
            }
        }
    }
    if votes.is_empty() {
        return None;
    }
    // Evaluate the most-voted diagonals (plus slop neighbours).
    let mut ranked: Vec<(isize, usize)> = votes
        .iter()
        .filter(|&(_, &v)| v >= params.min_seed_votes)
        .map(|(&d, &v)| (d, v))
        .collect();
    ranked.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
    ranked.truncate(4);

    let mut best: Option<Overlap> = None;
    for (d, _) in ranked {
        let lo = d - params.diagonal_slop as isize;
        let hi = d + params.diagonal_slop as isize;
        for shift in lo..=hi {
            let (len, identity) = evaluate_diagonal(a, b, shift);
            if len < params.min_overlap_len || identity < params.min_overlap_identity {
                continue;
            }
            let cand = Overlap {
                a: a_idx,
                b: b_idx,
                flip,
                shift,
                len,
                identity,
            };
            if best.as_ref().is_none_or(|b0| cand.score() > b0.score()) {
                best = Some(cand);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::seq::DnaSeq;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dna(rng: &mut StdRng, len: usize) -> Vec<u8> {
        (0..len)
            .map(|_| bioseq::alphabet::DNA_BASES[rng.gen_range(0..4)])
            .collect()
    }

    fn params() -> Cap3Params {
        Cap3Params {
            min_overlap_len: 30,
            ..Default::default()
        }
    }

    #[test]
    fn evaluate_diagonal_counts_matches() {
        let a = b"ACGTACGTACGT";
        let b = b"ACGTACGT";
        let (len, id) = evaluate_diagonal(a, b, 0);
        assert_eq!(len, 8);
        assert!((id - 100.0).abs() < 1e-9);
        let (len, id) = evaluate_diagonal(a, b, 4);
        assert_eq!(len, 8);
        assert!((id - 100.0).abs() < 1e-9);
        // Diagonal pushing b fully past a.
        let (len, _) = evaluate_diagonal(a, b, 12);
        assert_eq!(len, 0);
        // Negative shift: b hangs off the left.
        let (len, id) = evaluate_diagonal(a, b, -4);
        assert_eq!(len, 4);
        assert!((id - 100.0).abs() < 1e-9);
    }

    #[test]
    fn n_bases_never_count_as_matches() {
        let (len, id) = evaluate_diagonal(b"NNNN", b"NNNN", 0);
        assert_eq!(len, 4);
        assert_eq!(id, 0.0);
    }

    #[test]
    fn detects_clean_suffix_prefix_overlap() {
        let mut rng = StdRng::seed_from_u64(1);
        let template = random_dna(&mut rng, 200);
        let a = &template[..120];
        let b = &template[80..];
        let ov = detect(a, b, 0, 1, false, &params()).expect("overlap");
        assert_eq!(ov.shift, 80);
        assert_eq!(ov.len, 40);
        assert!(ov.identity > 99.0);
    }

    #[test]
    fn detects_overlap_with_substitutions() {
        let mut rng = StdRng::seed_from_u64(2);
        let template = random_dna(&mut rng, 300);
        let a = &template[..200];
        let mut b = template[120..].to_vec();
        // ~2.5% substitutions in the overlap region.
        for i in (0..b.len()).step_by(40) {
            b[i] = if b[i] == b'A' { b'C' } else { b'A' };
        }
        let ov = detect(a, &b, 0, 1, false, &params()).expect("overlap survives noise");
        assert_eq!(ov.shift, 120);
        assert!(ov.identity >= 95.0);
    }

    #[test]
    fn rejects_low_identity() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_dna(&mut rng, 100);
        let b = random_dna(&mut rng, 100);
        assert!(detect(&a, &b, 0, 1, false, &params()).is_none());
    }

    #[test]
    fn rejects_short_overlap() {
        let mut rng = StdRng::seed_from_u64(4);
        let template = random_dna(&mut rng, 200);
        let a = &template[..110];
        let b = &template[90..]; // only 20 bases shared
        assert!(detect(a, b, 0, 1, false, &params()).is_none());
    }

    #[test]
    fn containment_is_detected() {
        let mut rng = StdRng::seed_from_u64(5);
        let template = random_dna(&mut rng, 200);
        let inner = &template[50..150];
        let ov = detect(&template, inner, 0, 1, false, &params()).expect("containment");
        assert_eq!(ov.shift, 50);
        assert_eq!(ov.len, 100);
    }

    #[test]
    fn reverse_complement_overlap_via_flip() {
        let mut rng = StdRng::seed_from_u64(6);
        let template = random_dna(&mut rng, 200);
        let a = &template[..120];
        let b_fwd = DnaSeq::from_ascii(&template[80..]).unwrap();
        let b_rc = b_fwd.reverse_complement();
        // Caller passes the oriented bytes; flip is just metadata.
        let ov = detect(
            a,
            b_rc.reverse_complement().as_bytes(),
            0,
            1,
            true,
            &params(),
        )
        .expect("flip overlap");
        assert!(ov.flip);
        assert_eq!(ov.shift, 80);
    }

    #[test]
    fn reads_shorter_than_cutoff_are_skipped() {
        let a = b"ACGTACGTACGTACGTACGTACGT"; // 24 < 30
        assert!(detect(a, a, 0, 1, false, &params()).is_none());
    }

    #[test]
    fn identical_reads_fully_overlap() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = random_dna(&mut rng, 80);
        let ov = detect(&a, &a, 0, 1, false, &params()).expect("self overlap");
        assert_eq!(ov.shift, 0);
        assert_eq!(ov.len, 80);
        assert!((ov.identity - 100.0).abs() < 1e-9);
    }
}

//! The BLOSUM62 amino-acid substitution matrix.
//!
//! Scores are exposed through [`blosum62`], which accepts any ASCII
//! residue byte (case-insensitive). Unknown residues (`X` and any
//! letter outside the 20 standard codes) score -1 against everything;
//! a stop (`*`) scores -4 against everything except another stop (+1),
//! matching NCBI conventions.

use bioseq::alphabet::{residue_index, AMINO_ACIDS};

/// Canonical BLOSUM62 row/column order used by the raw table below.
const CANONICAL: [u8; 20] = [
    b'A', b'R', b'N', b'D', b'C', b'Q', b'E', b'G', b'H', b'I', b'L', b'K', b'M', b'F', b'P', b'S',
    b'T', b'W', b'Y', b'V',
];

/// Raw BLOSUM62 in [`CANONICAL`] order.
#[rustfmt::skip]
const RAW: [[i8; 20]; 20] = [
    [ 4,-1,-2,-2, 0,-1,-1, 0,-2,-1,-1,-1,-1,-2,-1, 1, 0,-3,-2, 0],
    [-1, 5, 0,-2,-3, 1, 0,-2, 0,-3,-2, 2,-1,-3,-2,-1,-1,-3,-2,-3],
    [-2, 0, 6, 1,-3, 0, 0, 0, 1,-3,-3, 0,-2,-3,-2, 1, 0,-4,-2,-3],
    [-2,-2, 1, 6,-3, 0, 2,-1,-1,-3,-4,-1,-3,-3,-1, 0,-1,-4,-3,-3],
    [ 0,-3,-3,-3, 9,-3,-4,-3,-3,-1,-1,-3,-1,-2,-3,-1,-1,-2,-2,-1],
    [-1, 1, 0, 0,-3, 5, 2,-2, 0,-3,-2, 1, 0,-3,-1, 0,-1,-2,-1,-2],
    [-1, 0, 0, 2,-4, 2, 5,-2, 0,-3,-3, 1,-2,-3,-1, 0,-1,-3,-2,-2],
    [ 0,-2, 0,-1,-3,-2,-2, 6,-2,-4,-4,-2,-3,-3,-2, 0,-2,-2,-3,-3],
    [-2, 0, 1,-1,-3, 0, 0,-2, 8,-3,-3,-1,-2,-1,-2,-1,-2,-2, 2,-3],
    [-1,-3,-3,-3,-1,-3,-3,-4,-3, 4, 2,-3, 1, 0,-3,-2,-1,-3,-1, 3],
    [-1,-2,-3,-4,-1,-2,-3,-4,-3, 2, 4,-2, 2, 0,-3,-2,-1,-2,-1, 1],
    [-1, 2, 0,-1,-3, 1, 1,-2,-1,-3,-2, 5,-1,-3,-1, 0,-1,-3,-2,-2],
    [-1,-1,-2,-3,-1, 0,-2,-3,-2, 1, 2,-1, 5, 0,-2,-1,-1,-1,-1, 1],
    [-2,-3,-3,-3,-2,-3,-3,-3,-1, 0, 0,-3, 0, 6,-4,-2,-2, 1, 3,-1],
    [-1,-2,-2,-1,-3,-1,-1,-2,-2,-3,-3,-1,-2,-4, 7,-1,-1,-4,-3,-2],
    [ 1,-1, 1, 0,-1, 0, 0, 0,-1,-2,-2, 0,-1,-2,-1, 4, 1,-3,-2,-2],
    [ 0,-1, 0,-1,-1,-1,-1,-2,-2,-1,-1,-1,-1,-2,-1, 1, 5,-2,-2, 0],
    [-3,-3,-4,-4,-2,-2,-3,-2,-2,-3,-2,-3,-1, 1,-4,-3,-2,11, 2,-3],
    [-2,-2,-2,-3,-2,-1,-2,-3, 2,-1,-1,-2,-1, 3,-3,-2,-2, 2, 7,-1],
    [ 0,-3,-3,-3,-1,-2,-2,-3,-3, 3, 1,-2, 1,-1,-2,-2, 0,-3,-1, 4],
];

/// Matrix indexed by [`residue_index`] order (alphabetical + unknown),
/// built once at first use.
fn table() -> &'static [[i8; 21]; 21] {
    static TABLE: std::sync::OnceLock<[[i8; 21]; 21]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [[-1i8; 21]; 21];
        for (ci, &ca) in CANONICAL.iter().enumerate() {
            for (cj, &cb) in CANONICAL.iter().enumerate() {
                t[residue_index(ca)][residue_index(cb)] = RAW[ci][cj];
            }
        }
        t
    })
}

/// BLOSUM62 score between two ASCII residue bytes (case-insensitive).
#[inline]
pub fn blosum62(a: u8, b: u8) -> i32 {
    let au = a.to_ascii_uppercase();
    let bu = b.to_ascii_uppercase();
    if au == b'*' || bu == b'*' {
        return if au == bu { 1 } else { -4 };
    }
    table()[residue_index(au)][residue_index(bu)] as i32
}

/// Score of an ungapped alignment of two equal-length residue slices.
pub fn score_slices(a: &[u8], b: &[u8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| blosum62(x, y)).sum()
}

/// The maximum self-score of any residue (W/W = 11); useful for
/// bounding seed-word thresholds.
pub const MAX_SELF_SCORE: i32 = 11;

/// Verifies internal consistency of the remapped table (symmetry and
/// positive diagonal); used by tests and `debug_assert!`s.
pub fn is_consistent() -> bool {
    for &a in AMINO_ACIDS.iter() {
        if blosum62(a, a) <= 0 {
            return false;
        }
        for &b in AMINO_ACIDS.iter() {
            if blosum62(a, b) != blosum62(b, a) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_scores() {
        assert_eq!(blosum62(b'A', b'A'), 4);
        assert_eq!(blosum62(b'W', b'W'), 11);
        assert_eq!(blosum62(b'W', b'A'), -3);
        assert_eq!(blosum62(b'E', b'D'), 2);
        assert_eq!(blosum62(b'I', b'V'), 3);
        assert_eq!(blosum62(b'C', b'C'), 9);
        assert_eq!(blosum62(b'P', b'P'), 7);
        assert_eq!(blosum62(b'K', b'R'), 2);
        assert_eq!(blosum62(b'F', b'Y'), 3);
        assert_eq!(blosum62(b'G', b'G'), 6);
    }

    #[test]
    fn matrix_is_symmetric_with_positive_diagonal() {
        assert!(is_consistent());
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(blosum62(b'a', b'A'), 4);
        assert_eq!(blosum62(b'w', b'w'), 11);
    }

    #[test]
    fn unknowns_and_stops() {
        assert_eq!(blosum62(b'X', b'A'), -1);
        assert_eq!(blosum62(b'X', b'X'), -1);
        assert_eq!(blosum62(b'*', b'A'), -4);
        assert_eq!(blosum62(b'*', b'*'), 1);
        assert_eq!(blosum62(b'B', b'A'), -1); // non-standard letter
    }

    #[test]
    fn slice_scoring_sums_pairs() {
        assert_eq!(score_slices(b"AW", b"AW"), 4 + 11);
        assert_eq!(score_slices(b"AW", b"WA"), -3 + -3);
        assert_eq!(score_slices(b"", b""), 0);
    }

    #[test]
    fn max_self_score_is_tryptophan() {
        let max = AMINO_ACIDS.iter().map(|&a| blosum62(a, a)).max().unwrap();
        assert_eq!(max, MAX_SELF_SCORE);
    }
}

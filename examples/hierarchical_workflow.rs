//! Hierarchical workflows — Pegasus sub-DAX jobs.
//!
//! Builds a top-level pipeline in which the whole blast2cap3 workflow
//! of Fig. 2 is one placeholder job inside a larger analysis (upstream
//! assembly produces `transcripts.fasta` and `alignments.out`;
//! downstream annotation consumes `final.fasta`), then inlines the
//! sub-workflow and plans the flattened DAG.
//!
//! ```sh
//! cargo run --release --example hierarchical_workflow
//! ```

use blast2cap3::workflow::{build_workflow, WorkflowParams};
use pegasus_wms::catalog::{paper_catalogs, ReplicaCatalog};
use pegasus_wms::planner::{plan, PlannerConfig};
use pegasus_wms::workflow::{AbstractWorkflow, Job, LogicalFile};

fn main() {
    // Top-level analysis with a sub-DAX placeholder.
    let mut top = AbstractWorkflow::new("rnaseq_analysis");
    top.add_job(
        Job::new("assemble_reads", "assembler")
            .input(LogicalFile::sized("reads.fastq", 12_000_000_000))
            .output(LogicalFile::sized("transcripts.fasta", 404_000_000))
            .runtime(7200.0),
    )
    .unwrap();
    top.add_job(
        Job::new("align_proteins", "blastx")
            .input(LogicalFile::named("transcripts.fasta"))
            .output(LogicalFile::sized("alignments.out", 155_000_000))
            .runtime(5400.0),
    )
    .unwrap();
    let placeholder = top
        .add_job(
            Job::new("blast2cap3", "pegasus::dax")
                .input(LogicalFile::named("transcripts.fasta"))
                .input(LogicalFile::named("alignments.out"))
                .output(LogicalFile::named("final.fasta")),
        )
        .unwrap();
    top.add_job(
        Job::new("annotate", "annotator")
            .input(LogicalFile::named("final.fasta"))
            .output(LogicalFile::named("annotations.gff"))
            .runtime(1800.0),
    )
    .unwrap();

    let sub = build_workflow(&WorkflowParams::with_n(8));
    println!(
        "top-level: {} jobs; blast2cap3 sub-DAX: {} jobs",
        top.jobs.len(),
        sub.jobs.len()
    );

    let flat = top
        .with_inlined_subworkflow(placeholder, &sub)
        .expect("inline sub-DAX");
    println!(
        "flattened: {} jobs, width {}, depth {}",
        flat.jobs.len(),
        flat.width().unwrap(),
        flat.levels().unwrap().iter().max().unwrap() + 1
    );
    let (cp_len, cp) = flat.critical_path().unwrap();
    let names: Vec<&str> = cp.iter().map(|&i| flat.jobs[i.idx()].id.as_str()).collect();
    println!("critical path ({:.0}s): {}", cp_len, names.join(" -> "));

    // The flattened workflow plans like any other.
    let (sites, tc) = paper_catalogs();
    let mut rc = ReplicaCatalog::new();
    rc.register("reads.fastq", "submit");
    let exec = plan(
        &flat,
        &sites,
        &tc,
        &rc,
        &PlannerConfig::for_site("sandhills"),
    )
    .unwrap();
    println!(
        "planned for sandhills: {} jobs, {} edges",
        exec.jobs.len(),
        exec.edges.len()
    );
    assert!(flat.job_by_name("blast2cap3/split").is_some());
    assert!(flat.job_by_name("blast2cap3/run_cap3_0").is_some());
    println!("sub-DAX jobs are namespaced: blast2cap3/split, blast2cap3/run_cap3_0, ...");
}

//! A deterministic discrete-event queue.
//!
//! Events are ordered by simulated time; ties break by insertion
//! sequence so runs are reproducible regardless of floating-point
//! coincidences.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event of payload `T`.
#[derive(Debug, Clone)]
struct Scheduled<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour inside BinaryHeap (max-heap).
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap of timed events.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN.
    pub fn schedule(&mut self, time: f64, payload: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "c");
        q.schedule(1.0, "a");
        q.schedule(3.0, "b");
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((3.0, "b")));
        assert_eq!(q.pop(), Some((5.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "first");
        q.schedule(2.0, "second");
        q.schedule(2.0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_times_panic() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(10.0, 10);
        q.schedule(1.0, 1);
        assert_eq!(q.pop(), Some((1.0, 1)));
        q.schedule(5.0, 5);
        q.schedule(0.5, 0); // in the "past": still valid, pops first
        assert_eq!(q.pop(), Some((0.5, 0)));
        assert_eq!(q.pop(), Some((5.0, 5)));
        assert_eq!(q.pop(), Some((10.0, 10)));
    }
}

//! Property-based tests for the ClassAd expression machinery.

use condor::classad::{ClassAd, Expr, Value};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,10}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "true" | "false" | "True" | "False" | "TRUE" | "FALSE"
        )
    })
}

/// Builds a random but *syntactically valid* expression string plus an
/// ad that defines all referenced attributes, by composing comparison
/// leaves with && / || / ! connectives.
fn expr_and_ad() -> impl Strategy<Value = (String, ClassAd)> {
    let leaf = (
        ident(),
        0i64..100,
        0i64..100,
        proptest::sample::select(vec!["==", "!=", "<", "<=", ">", ">="]),
    )
        .prop_map(|(name, val, rhs, op)| {
            let text = format!("{name} {op} {rhs}");
            (text, name, val)
        });
    proptest::collection::vec(leaf, 1..6).prop_map(|leaves| {
        let mut ad = ClassAd::new();
        let mut parts = Vec::new();
        for (i, (text, name, val)) in leaves.into_iter().enumerate() {
            ad.insert(name, Value::Int(val));
            let wrapped = match i % 3 {
                0 => format!("({text})"),
                1 => format!("!({text})"),
                _ => text,
            };
            parts.push(wrapped);
        }
        let glue = ["&&", "||"];
        let mut expr = parts[0].clone();
        for (i, p) in parts.iter().enumerate().skip(1) {
            expr = format!("{expr} {} {p}", glue[i % 2]);
        }
        (expr, ad)
    })
}

proptest! {
    #[test]
    fn generated_expressions_parse_and_evaluate((text, ad) in expr_and_ad()) {
        let e = Expr::parse(&text).unwrap_or_else(|err| panic!("{text:?}: {err}"));
        // Evaluation is total and deterministic.
        let v1 = e.eval(&ad);
        let v2 = e.eval(&ad);
        prop_assert_eq!(v1, v2);
        // Double negation preserves truth for boolean-valued exprs.
        let neg = Expr::parse(&format!("!(!({text}))")).unwrap();
        prop_assert_eq!(neg.eval(&ad), v1);
    }

    #[test]
    fn numeric_comparison_semantics(a in -1000i64..1000, b in -1000i64..1000) {
        let ad = ClassAd::new().set("X", Value::Int(a));
        let cases = [
            ("==", a == b), ("!=", a != b),
            ("<", a < b), ("<=", a <= b),
            (">", a > b), (">=", a >= b),
        ];
        for (op, expected) in cases {
            let e = Expr::parse(&format!("X {op} {b}")).unwrap();
            prop_assert_eq!(e.eval(&ad), expected, "X({}) {} {}", a, op, b);
        }
    }

    #[test]
    fn undefined_attributes_never_match(name in ident(), rhs in 0i64..100) {
        let empty = ClassAd::new();
        for op in ["==", "!=", "<", ">"] {
            let e = Expr::parse(&format!("{name} {op} {rhs}")).unwrap();
            prop_assert!(!e.eval(&empty));
        }
    }

    #[test]
    fn random_bytes_never_panic_the_parser(garbage in "\\PC{0,40}") {
        // Parsing arbitrary text must return Ok or Err, never panic.
        let _ = Expr::parse(&garbage);
    }

    #[test]
    fn and_or_laws(p in any::<bool>(), q in any::<bool>()) {
        let ad = ClassAd::new()
            .set("P", Value::Bool(p))
            .set("Q", Value::Bool(q));
        let and = Expr::parse("P && Q").unwrap().eval(&ad);
        let or = Expr::parse("P || Q").unwrap().eval(&ad);
        prop_assert_eq!(and, p && q);
        prop_assert_eq!(or, p || q);
        // De Morgan.
        let dm = Expr::parse("!(P && Q)").unwrap().eval(&ad);
        let dm2 = Expr::parse("!P || !Q").unwrap().eval(&ad);
        prop_assert_eq!(dm, dm2);
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! A CAP3-like overlap–layout–consensus assembler.
//!
//! blast2cap3 hands each cluster of protein-sharing transcripts to
//! CAP3, which merges transcripts whose ends overlap with high
//! identity into contigs and reports everything else as singlets. This
//! crate implements that contract:
//!
//! * [`overlap`] — k-mer-seeded diagonal detection of suffix–prefix
//!   overlaps (both orientations) with CAP3-style length (`-o`) and
//!   identity (`-p`) cutoffs;
//! * [`layout`] — union-find clustering of accepted overlaps and a
//!   BFS placement that assigns every read an offset and orientation
//!   in its contig frame;
//! * [`consensus`] — per-column majority consensus over the layout;
//! * [`assemble`] — the public driver producing contigs + singlets,
//!   mirroring CAP3's `.cap.contigs` / `.cap.singlets` outputs.
//!
//! # Example
//!
//! ```
//! use bioseq::fasta::Record;
//! use bioseq::seq::DnaSeq;
//! use cap3::{Assembler, Cap3Params};
//!
//! // Two fragments of one template overlapping by 30 bases.
//! let template = "ACGTACGGTTCAGATCCGATAAGCTTGCGATCGATTACGGATCCGGGTTACGTAGCATGC";
//! let a = Record::new("a", "", DnaSeq::from_ascii(&template.as_bytes()[..40]).unwrap());
//! let b = Record::new("b", "", DnaSeq::from_ascii(&template.as_bytes()[10..]).unwrap());
//! let asm = Assembler::new(Cap3Params { min_overlap_len: 20, ..Default::default() });
//! let result = asm.assemble(&[a, b]);
//! assert_eq!(result.contigs.len(), 1);
//! assert_eq!(result.singlets.len(), 0);
//! assert_eq!(result.contigs[0].seq.as_bytes(), template.as_bytes());
//! ```

pub mod assemble;
pub mod consensus;
pub mod layout;
pub mod overlap;
pub mod params;

pub use assemble::{Assembler, Assembly};
pub use params::Cap3Params;

//! Criterion bench behind Fig. 4: simulated workflow wall time per
//! platform and cluster count. The *measured* quantity here is the
//! cost of running the planner + DAGMan engine + discrete-event
//! platform simulation end to end; the *reported paper series* is the
//! simulated wall time, which the `fig4` binary prints and asserts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use blast2cap3_pegasus::experiment::simulate_blast2cap3;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_walltime");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for site in ["sandhills", "osg"] {
        for n in [10usize, 100, 300, 500] {
            group.bench_with_input(BenchmarkId::new(site, n), &(site, n), |b, &(site, n)| {
                b.iter(|| {
                    // Generous retry budget: OSG n=10 chunks run
                    // ~8 simulated hours each and can be preempted
                    // repeatedly before one attempt survives.
                    let out = simulate_blast2cap3(site, n, 42, 100);
                    assert!(out.run.succeeded());
                    out.run.wall_time
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);

//! Fig. 2 / Fig. 3 — the blast2cap3 workflow DAG for both platforms.
//!
//! Builds the abstract workflow, plans it for Sandhills (Fig. 2: no
//! install phases) and for OSG (Fig. 3: every compute task carries a
//! download/install phase — the red rectangles), and prints the DAX,
//! the planned job table, and Graphviz dot for each.
//!
//! ```sh
//! cargo run --example workflow_dag -- 5          # n = 5
//! ```

use blast2cap3::workflow::{build_workflow, fig2_job_count, WorkflowParams};
use pegasus_wms::catalog::{paper_catalogs, ReplicaCatalog};
use pegasus_wms::dax;
use pegasus_wms::planner::{plan, JobKind, PlannerConfig};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);

    let wf = build_workflow(&WorkflowParams::with_n(n));
    println!(
        "abstract workflow: {} jobs (fig. 2 predicts {}), width {}",
        wf.jobs.len(),
        fig2_job_count(n),
        wf.width().unwrap()
    );
    println!("\n── DAX (truncated to 25 lines) ─────────────────────────────");
    for line in dax::to_dax(&wf).lines().take(25) {
        println!("{line}");
    }
    println!("  ...");

    let (sites, tc) = paper_catalogs();
    let mut rc = ReplicaCatalog::new();
    rc.register("transcripts.fasta", "submit");
    rc.register("alignments.out", "submit");

    for site in ["sandhills", "osg"] {
        let exec = plan(&wf, &sites, &tc, &rc, &PlannerConfig::for_site(site)).unwrap();
        let counts = exec.counts_by_kind();
        println!("\n── planned for {site} ───────────────────────────────────");
        println!(
            "jobs: {} compute, {} stage-in, {} stage-out, {} create-dir",
            counts.get(&JobKind::Compute).unwrap_or(&0),
            counts.get(&JobKind::StageIn).unwrap_or(&0),
            counts.get(&JobKind::StageOut).unwrap_or(&0),
            counts.get(&JobKind::CreateDir).unwrap_or(&0),
        );
        println!(
            "total download/install time attached: {:.0}s {}",
            exec.total_install_time(),
            if exec.total_install_time() > 0.0 {
                "(fig. 3: OSG tasks install Python/Biopython/CAP3 first)"
            } else {
                "(fig. 2: everything preinstalled on the campus cluster)"
            }
        );
        println!("graphviz: render with `dot -Tpng`:");
        for line in exec.to_dot().lines().take(12) {
            println!("  {line}");
        }
        println!("  ...");
    }
}

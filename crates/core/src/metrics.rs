//! A dependency-free metrics registry with a Prometheus text surface.
//!
//! Production workflow stacks (Pegasus's dashboard, the Montage-scale
//! and WaaS platform studies) compare platforms through per-phase,
//! per-site metric surfaces. This module is that surface for the
//! reproduction: typed counters, gauges, and fixed-bucket histograms
//! with `site`/`n`/`phase`/`reason` labels, rendered in the Prometheus
//! text exposition format — no client library, no serde.
//!
//! Two ways to populate a [`MetricsRegistry`]:
//!
//! * live: wire a [`MetricsMonitor`] (a [`WorkflowMonitor`]) into
//!   [`Engine::run`] — every submission, termination, and retry lands
//!   as a labelled observation with near-zero overhead;
//! * offline: [`record_events`] folds a recorded
//!   [`crate::events::WorkflowEvent`] stream (a live run's `events`
//!   field, one ensemble member, or a parsed `--events` log) through
//!   the *same* monitor via [`crate::events::MonitorSink`], so the
//!   rendered exposition is byte-identical to what the live wiring
//!   produced under the same seed.
//!
//! Rendering is fully deterministic: families sort by name, series by
//! label set, and numbers use Rust's shortest round-tripping float
//! format.
//!
//! [`Engine::run`]: crate::engine::Engine::run

use crate::engine::{CompletionEvent, FaultReason, JobOutcome, WorkflowMonitor};
use crate::error::WmsError;
use crate::events::{self, EventSink, MonitorSink, WorkflowEvent};
use crate::planner::{ExecutableJob, JobKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What a metric family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing total.
    Counter,
    /// Last-written value.
    Gauge,
    /// Fixed-bucket distribution with sum and count.
    Histogram,
}

impl MetricKind {
    fn exposition_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One histogram series: cumulative-style bucket counts (stored
/// per-bucket, cumulated at render time), plus sum and count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramState {
    /// Observations per bucket; one extra slot for `+Inf`.
    counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

#[derive(Debug, Clone)]
enum Series {
    Scalar(f64),
    Histogram(HistogramState),
}

#[derive(Debug, Clone)]
struct MetricFamily {
    help: String,
    kind: MetricKind,
    /// Upper bounds of the finite buckets (histograms only).
    buckets: Vec<f64>,
    /// Series keyed by their sorted label set.
    series: BTreeMap<Vec<(String, String)>, Series>,
}

/// The registry: a set of named metric families, each holding labelled
/// series. All mutation panics on kind mismatches or undeclared names
/// — metric names are static program structure, not runtime data, so
/// a mismatch is a bug worth failing loudly on.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    families: BTreeMap<String, MetricFamily>,
}

fn label_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut key: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    key.sort();
    key
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn declare(&mut self, name: &str, help: &str, kind: MetricKind, buckets: &[f64]) {
        let fam = self
            .families
            .entry(name.to_string())
            .or_insert_with(|| MetricFamily {
                help: help.to_string(),
                kind,
                buckets: buckets.to_vec(),
                series: BTreeMap::new(),
            });
        assert_eq!(
            fam.kind, kind,
            "metric {name} re-declared with a different kind"
        );
    }

    /// Declares a counter family (idempotent).
    ///
    /// # Panics
    /// Panics if `name` is already declared with a different kind.
    pub fn declare_counter(&mut self, name: &str, help: &str) {
        self.declare(name, help, MetricKind::Counter, &[]);
    }

    /// Declares a gauge family (idempotent).
    ///
    /// # Panics
    /// Panics if `name` is already declared with a different kind.
    pub fn declare_gauge(&mut self, name: &str, help: &str) {
        self.declare(name, help, MetricKind::Gauge, &[]);
    }

    /// Declares a histogram family with the given finite bucket upper
    /// bounds (a `+Inf` bucket is implicit). Idempotent.
    ///
    /// # Panics
    /// Panics if `name` is already declared with a different kind, or
    /// if `buckets` is empty or not strictly increasing.
    pub fn declare_histogram(&mut self, name: &str, help: &str, buckets: &[f64]) {
        assert!(!buckets.is_empty(), "histogram {name} needs buckets");
        assert!(
            buckets.windows(2).all(|w| w[0] < w[1]),
            "histogram {name} buckets must be strictly increasing"
        );
        self.declare(name, help, MetricKind::Histogram, buckets);
    }

    fn family_mut(&mut self, name: &str, kind: MetricKind) -> &mut MetricFamily {
        let fam = self
            .families
            .get_mut(name)
            .unwrap_or_else(|| panic!("metric {name} not declared"));
        assert_eq!(fam.kind, kind, "metric {name} is not a {kind:?}");
        fam
    }

    /// Adds `v` to a counter series.
    ///
    /// # Panics
    /// Panics if `name` is undeclared or not a counter.
    pub fn add(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let fam = self.family_mut(name, MetricKind::Counter);
        match fam
            .series
            .entry(label_key(labels))
            .or_insert(Series::Scalar(0.0))
        {
            Series::Scalar(total) => *total += v,
            Series::Histogram(_) => unreachable!("counter family holds scalars"),
        }
    }

    /// Increments a counter series by one.
    ///
    /// # Panics
    /// Panics if `name` is undeclared or not a counter.
    pub fn inc(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.add(name, labels, 1.0);
    }

    /// Sets a gauge series.
    ///
    /// # Panics
    /// Panics if `name` is undeclared or not a gauge.
    pub fn set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let fam = self.family_mut(name, MetricKind::Gauge);
        fam.series.insert(label_key(labels), Series::Scalar(v));
    }

    /// Reads back a counter or gauge series, if it exists.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.families.get(name)?.series.get(&label_key(labels))? {
            Series::Scalar(v) => Some(*v),
            Series::Histogram(_) => None,
        }
    }

    /// Records one observation into a histogram series.
    ///
    /// # Panics
    /// Panics if `name` is undeclared or not a histogram.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let fam = self.family_mut(name, MetricKind::Histogram);
        let slots = fam.buckets.len() + 1;
        let idx = fam
            .buckets
            .iter()
            .position(|&ub| v <= ub)
            .unwrap_or(fam.buckets.len());
        match fam.series.entry(label_key(labels)).or_insert_with(|| {
            Series::Histogram(HistogramState {
                counts: vec![0; slots],
                ..Default::default()
            })
        }) {
            Series::Histogram(h) => {
                h.counts[idx] += 1;
                h.sum += v;
                h.count += 1;
            }
            Series::Scalar(_) => unreachable!("histogram family holds histograms"),
        }
    }

    /// Reads back a histogram series, if it exists.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramState> {
        match self.families.get(name)?.series.get(&label_key(labels))? {
            Series::Histogram(h) => Some(h),
            Series::Scalar(_) => None,
        }
    }

    /// Estimates the `q`-quantile (0 ≤ q ≤ 1) of a histogram series by
    /// linear interpolation inside the bucket holding the target rank
    /// — the same estimate `histogram_quantile()` computes in PromQL.
    /// Observations in the `+Inf` bucket clamp to the largest finite
    /// bound. `None` when the series is missing or empty.
    pub fn quantile(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        let fam = self.families.get(name)?;
        let h = self.histogram(name, labels)?;
        if h.count == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * h.count as f64;
        let mut seen = 0u64;
        for (i, &c) in h.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c;
            if (next as f64) >= rank {
                let last_finite = *fam.buckets.last().expect("histograms have buckets");
                if i == fam.buckets.len() {
                    return Some(last_finite);
                }
                let lower = if i == 0 { 0.0 } else { fam.buckets[i - 1] };
                let upper = fam.buckets[i];
                let into = (rank - seen as f64) / c as f64;
                return Some(lower + (upper - lower) * into.clamp(0.0, 1.0));
            }
            seen = next;
        }
        fam.buckets.last().copied()
    }

    /// Renders every family in the Prometheus text exposition format:
    /// `# HELP` / `# TYPE` headers, one sample per line, histogram
    /// series expanded into cumulative `_bucket{le=...}` samples plus
    /// `_sum` and `_count`. Deterministic: families sort by name,
    /// series by label set.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            let _ = writeln!(out, "# HELP {name} {}", fam.help);
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind.exposition_name());
            for (labels, series) in &fam.series {
                match series {
                    Series::Scalar(v) => {
                        let _ = writeln!(out, "{name}{} {v}", render_labels(labels, None));
                    }
                    Series::Histogram(h) => {
                        let mut cum = 0u64;
                        for (i, &c) in h.counts.iter().enumerate() {
                            cum += c;
                            let le = fam
                                .buckets
                                .get(i)
                                .map(|b| b.to_string())
                                .unwrap_or_else(|| "+Inf".to_string());
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cum}",
                                render_labels(labels, Some(&le))
                            );
                        }
                        let _ =
                            writeln!(out, "{name}_sum{} {}", render_labels(labels, None), h.sum);
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            render_labels(labels, None),
                            h.count
                        );
                    }
                }
            }
        }
        out
    }
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Phase-duration histogram buckets, in seconds: ×2 geometric from 30 s
/// to ~34 h, spanning OSG queue waits (median 600 s) down at one end
/// and n = 10 kickstart chunks (~10 h) at the other.
pub const PHASE_BUCKETS: [f64; 13] = [
    30.0, 60.0, 120.0, 240.0, 480.0, 960.0, 1920.0, 3840.0, 7680.0, 15360.0, 30720.0, 61440.0,
    122880.0,
];

/// Derives the `n` label for a workflow: the decomposition size from a
/// `..._n<digits>` name suffix (the sweep's `blast2cap3_n300` naming
/// convention), falling back to the job count for workflows outside
/// the sweep.
pub fn n_label(workflow_name: &str, jobs: usize) -> String {
    workflow_name
        .rsplit_once("_n")
        .and_then(|(_, digits)| digits.parse::<usize>().ok())
        .map(|n| n.to_string())
        .unwrap_or_else(|| jobs.to_string())
}

/// The standard workflow metric names.
pub mod names {
    /// Counter `{site,n}`: attempts handed to the backend.
    pub const SUBMITTED: &str = "pegasus_jobs_submitted_total";
    /// Counter `{site,n}`: jobs that completed successfully.
    pub const COMPLETIONS: &str = "pegasus_job_completions_total";
    /// Counter `{site,n,reason}`: failed attempts by typed fault
    /// reason (`preempted`, `evicted`, `install`, `timeout`, `error`).
    pub const FAILURES: &str = "pegasus_job_failures_total";
    /// Counter `{site,n,reason}`: retries scheduled, by the reason of
    /// the failure being retried.
    pub const RETRIES: &str = "pegasus_retries_total";
    /// Counter `{site,n}`: cumulative backoff delay inserted before
    /// retries, in seconds.
    pub const BACKOFF_WAIT: &str = "pegasus_backoff_wait_seconds_total";
    /// Gauge `{site,n}`: attempts currently in flight.
    pub const IN_FLIGHT: &str = "pegasus_jobs_in_flight";
    /// Histogram `{site,n,phase}`: per-phase durations of successful
    /// compute-job attempts (`phase` ∈ `queue_wait` | `install` |
    /// `kickstart`), in seconds.
    pub const PHASE_SECONDS: &str = "pegasus_phase_seconds";
    /// Gauge `{site,n}`: Workflow Wall Time of the finished run.
    pub const WALL_TIME: &str = "pegasus_workflow_wall_time_seconds";
    /// Counter `{site,n,outcome}`: finished workflows by outcome
    /// (`success` | `failed`).
    pub const WORKFLOWS: &str = "pegasus_workflows_total";
    /// Histogram `{phase}`: wall-clock seconds the engine itself spent
    /// in each internal phase (`dax.parse`, `plan`, `engine.run`, …).
    /// Populated only under `--profile` via [`crate::prof::export`].
    pub const ENGINE_PHASE_SECONDS: &str = "pegasus_engine_phase_seconds";
    /// Gauge: simulator event-queue depth at the end of a run.
    pub const SIM_QUEUE_DEPTH: &str = "pegasus_sim_event_queue_depth";
    /// Gauge: peak simulator event-queue depth over a run.
    pub const SIM_QUEUE_PEAK: &str = "pegasus_sim_event_queue_peak_depth";
    /// Counter: events scheduled into the simulator queue over a run.
    pub const SIM_EVENTS_SCHEDULED: &str = "pegasus_sim_events_scheduled_total";
    /// Gauge: peak occupied calendar-day buckets over a run.
    pub const SIM_CALENDAR_OCCUPANCY: &str = "pegasus_sim_calendar_buckets_occupied_peak";
}

/// A [`WorkflowMonitor`] that lands every engine callback in a
/// [`MetricsRegistry`] as labelled counters, gauges, and phase
/// histograms. Constructing one declares the full
/// [standard metric set](names) (idempotently), so several monitors —
/// one per ensemble member, or one per sweep point — can share a
/// registry.
pub struct MetricsMonitor<'a> {
    registry: &'a mut MetricsRegistry,
    site: String,
    n: String,
}

impl<'a> MetricsMonitor<'a> {
    /// Wraps `registry`, labelling every sample with `site` and `n`.
    pub fn new(registry: &'a mut MetricsRegistry, site: &str, n: &str) -> Self {
        registry.declare_counter(names::SUBMITTED, "Attempts handed to the backend.");
        registry.declare_counter(names::COMPLETIONS, "Jobs that completed successfully.");
        registry.declare_counter(names::FAILURES, "Failed attempts by typed fault reason.");
        registry.declare_counter(names::RETRIES, "Retries scheduled, by failure reason.");
        registry.declare_counter(
            names::BACKOFF_WAIT,
            "Cumulative backoff delay before retries, in seconds.",
        );
        registry.declare_gauge(names::IN_FLIGHT, "Attempts currently in flight.");
        registry.declare_histogram(
            names::PHASE_SECONDS,
            "Per-phase durations of successful compute attempts, in seconds.",
            &PHASE_BUCKETS,
        );
        registry.declare_gauge(
            names::WALL_TIME,
            "Workflow Wall Time of the finished run, in seconds.",
        );
        registry.declare_counter(names::WORKFLOWS, "Finished workflows by outcome.");
        MetricsMonitor {
            registry,
            site: site.to_string(),
            n: n.to_string(),
        }
    }

    /// Splits the borrow: registry mutably, the label pair immutably.
    fn parts(&mut self) -> (&mut MetricsRegistry, [(&str, &str); 2]) {
        let MetricsMonitor { registry, site, n } = self;
        (registry, [("site", site.as_str()), ("n", n.as_str())])
    }
}

fn in_flight_delta(registry: &mut MetricsRegistry, labels: &[(&str, &str)], delta: f64) {
    let cur = registry.value(names::IN_FLIGHT, labels).unwrap_or(0.0);
    registry.set(names::IN_FLIGHT, labels, cur + delta);
}

impl WorkflowMonitor for MetricsMonitor<'_> {
    fn job_submitted(&mut self, _job: &ExecutableJob, _attempt: u32, _now: f64) {
        let (registry, labels) = self.parts();
        registry.inc(names::SUBMITTED, &labels);
        in_flight_delta(registry, &labels, 1.0);
    }

    fn job_terminated(&mut self, job: &ExecutableJob, event: &CompletionEvent) {
        let (registry, [site, n]) = self.parts();
        in_flight_delta(registry, &[site, n], -1.0);
        match &event.outcome {
            JobOutcome::Success => {
                registry.inc(names::COMPLETIONS, &[site, n]);
                if job.kind == JobKind::Compute {
                    for (phase, seconds) in [
                        ("queue_wait", event.times.waiting()),
                        ("install", event.times.install()),
                        ("kickstart", event.times.kickstart()),
                    ] {
                        registry.observe(
                            names::PHASE_SECONDS,
                            &[site, n, ("phase", phase)],
                            seconds,
                        );
                    }
                }
            }
            JobOutcome::Failure(detail) => {
                let reason = FaultReason::classify(detail);
                registry.inc(names::FAILURES, &[site, n, ("reason", reason.prefix())]);
            }
        }
    }

    fn job_retry(&mut self, _job: &ExecutableJob, _next_attempt: u32, delay: f64, reason: &str) {
        let kind = FaultReason::classify(reason);
        let (registry, [site, n]) = self.parts();
        registry.inc(names::RETRIES, &[site, n, ("reason", kind.prefix())]);
        registry.add(names::BACKOFF_WAIT, &[site, n], delay);
    }

    fn workflow_finished(&mut self, succeeded: bool, wall_time: f64) {
        let (registry, [site, n]) = self.parts();
        registry.set(names::WALL_TIME, &[site, n], wall_time);
        let outcome = if succeeded { "success" } else { "failed" };
        registry.inc(names::WORKFLOWS, &[site, n, ("outcome", outcome)]);
    }
}

/// Folds a recorded event stream into `registry` — the offline twin of
/// wiring a [`MetricsMonitor`] into a live run. The stream is replayed
/// through the same [`MonitorSink`] the engine drives, so under the
/// same seed the rendered exposition is byte-identical to the live
/// wiring's.
///
/// # Errors
/// Returns [`WmsError::EventLogParse`] when the stream is not a valid
/// engine emission (no header, undeclared jobs).
pub fn record_events(
    registry: &mut MetricsRegistry,
    stream: &[WorkflowEvent],
) -> Result<(), WmsError> {
    let run = events::replay(stream)?;
    // Reconstruct just enough of the executable job list for the
    // monitor callbacks: names, transformations, and kinds all ride on
    // the stream's manifest.
    let jobs: Vec<ExecutableJob> = run
        .records
        .iter()
        .map(|r| ExecutableJob {
            id: r.job,
            name: r.name.clone(),
            transformation: r.transformation.clone(),
            kind: r.kind,
            args: Vec::new(),
            runtime_hint: 0.0,
            install_hint: 0.0,
            source_jobs: Vec::new(),
        })
        .collect();
    let n = n_label(&run.name, jobs.len());
    let mut monitor = MetricsMonitor::new(registry, &run.site, &n);
    let mut sink = MonitorSink::new(&jobs, &mut monitor);
    for ev in stream {
        sink.event(ev);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::scripted::ScriptedBackend;
    use crate::engine::{Engine, EngineConfig, JobTimes, RetryPolicy};
    use crate::planner::ExecutableWorkflow;

    fn registry_with_histogram() -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.declare_histogram("h", "test", &[1.0, 10.0, 100.0]);
        r
    }

    #[test]
    fn counters_and_gauges_accumulate_per_label_set() {
        let mut r = MetricsRegistry::new();
        r.declare_counter("c", "test counter");
        r.declare_gauge("g", "test gauge");
        r.inc("c", &[("site", "osg")]);
        r.inc("c", &[("site", "osg")]);
        r.inc("c", &[("site", "sandhills")]);
        r.set("g", &[], 7.5);
        r.set("g", &[], 2.5);
        assert_eq!(r.value("c", &[("site", "osg")]), Some(2.0));
        assert_eq!(r.value("c", &[("site", "sandhills")]), Some(1.0));
        assert_eq!(r.value("g", &[]), Some(2.5));
        // Label order is irrelevant: keys sort internally.
        let mut r2 = MetricsRegistry::new();
        r2.declare_counter("c", "t");
        r2.inc("c", &[("a", "1"), ("b", "2")]);
        r2.inc("c", &[("b", "2"), ("a", "1")]);
        assert_eq!(r2.value("c", &[("a", "1"), ("b", "2")]), Some(2.0));
    }

    #[test]
    fn histogram_buckets_sum_count_and_quantiles() {
        let mut r = registry_with_histogram();
        for v in [0.5, 5.0, 5.0, 50.0, 500.0] {
            r.observe("h", &[], v);
        }
        let h = r.histogram("h", &[]).unwrap();
        assert_eq!(h.count, 5);
        assert!((h.sum - 560.5).abs() < 1e-9);
        // Median rank 2.5 lands in the (1, 10] bucket.
        let p50 = r.quantile("h", &[], 0.5).unwrap();
        assert!(p50 > 1.0 && p50 <= 10.0, "{p50}");
        // The +Inf observation clamps to the largest finite bound.
        assert_eq!(r.quantile("h", &[], 1.0), Some(100.0));
        assert_eq!(r.quantile("h", &[], 0.99), Some(100.0));
        assert_eq!(r.quantile("h", &[("x", "y")], 0.5), None);
        assert_eq!(registry_with_histogram().quantile("h", &[], 0.5), None);
    }

    #[test]
    fn render_is_valid_exposition_and_deterministic() {
        let mut r = MetricsRegistry::new();
        r.declare_counter("b_total", "second family");
        r.declare_counter("a_total", "first family");
        r.inc("b_total", &[("site", "osg"), ("n", "10")]);
        r.inc("a_total", &[]);
        r.declare_histogram("h", "hist", &[1.0, 2.0]);
        r.observe("h", &[("q", "z\"x")], 1.5);
        let text = r.render();
        // Families render name-sorted; labels render key-sorted.
        let a = text.find("a_total").unwrap();
        let b = text.find("b_total").unwrap();
        assert!(a < b);
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("b_total{n=\"10\",site=\"osg\"} 1"));
        assert!(text.contains("# TYPE h histogram"));
        assert!(text.contains("h_bucket{q=\"z\\\"x\",le=\"1\"} 0"));
        assert!(text.contains("h_bucket{q=\"z\\\"x\",le=\"2\"} 1"));
        assert!(text.contains("h_bucket{q=\"z\\\"x\",le=\"+Inf\"} 1"));
        assert!(text.contains("h_sum{q=\"z\\\"x\"} 1.5"));
        assert!(text.contains("h_count{q=\"z\\\"x\"} 1"));
        assert_eq!(text, r.render(), "rendering must be stable");
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn undeclared_metric_panics() {
        MetricsRegistry::new().inc("nope", &[]);
    }

    #[test]
    fn n_label_parses_sweep_names() {
        assert_eq!(n_label("blast2cap3_n300", 9), "300");
        assert_eq!(n_label("montage", 42), "42");
        assert_eq!(n_label("weird_nxyz", 3), "3");
    }

    fn chain() -> ExecutableWorkflow {
        let job = |id: usize, name: &str, runtime: f64, install: f64| ExecutableJob {
            id: crate::workflow::JobId::new(id),
            name: name.into(),
            transformation: name.into(),
            kind: JobKind::Compute,
            args: vec![],
            runtime_hint: runtime,
            install_hint: install,
            source_jobs: vec![],
        };
        ExecutableWorkflow {
            name: "chain_n3".into(),
            site: "test".into(),
            jobs: vec![
                job(0, "a", 10.0, 0.0),
                job(1, "b", 20.0, 3.0),
                job(2, "c", 5.0, 0.0),
            ],
            edges: vec![
                (
                    crate::workflow::JobId::new(0),
                    crate::workflow::JobId::new(1),
                ),
                (
                    crate::workflow::JobId::new(1),
                    crate::workflow::JobId::new(2),
                ),
            ],
        }
    }

    #[test]
    fn live_monitor_and_offline_record_render_identically() {
        let wf = chain();
        let mut be = ScriptedBackend::new();
        be.fail_plan.insert(("b".into(), 0));
        let cfg = EngineConfig::builder()
            .policy(RetryPolicy::exponential(3, 7.0))
            .build();
        let mut live = MetricsRegistry::new();
        let run = {
            let mut mon = MetricsMonitor::new(&mut live, "test", "3");
            Engine::run(&mut be, &wf, &cfg, &mut mon)
        };
        assert!(run.succeeded());

        let labels = [("site", "test"), ("n", "3")];
        assert_eq!(live.value(names::SUBMITTED, &labels), Some(4.0));
        assert_eq!(live.value(names::COMPLETIONS, &labels), Some(3.0));
        assert_eq!(live.value(names::IN_FLIGHT, &labels), Some(0.0));
        assert_eq!(
            live.value(
                names::FAILURES,
                &[("site", "test"), ("n", "3"), ("reason", "error")]
            ),
            Some(1.0)
        );
        assert_eq!(
            live.value(
                names::WORKFLOWS,
                &[("site", "test"), ("n", "3"), ("outcome", "success")]
            ),
            Some(1.0)
        );
        let h = live
            .histogram(
                names::PHASE_SECONDS,
                &[("site", "test"), ("n", "3"), ("phase", "kickstart")],
            )
            .unwrap();
        assert_eq!(h.count, 3);

        let mut offline = MetricsRegistry::new();
        record_events(&mut offline, &run.events).unwrap();
        assert_eq!(offline.render(), live.render());

        // And through the text log too, the full --from-events path.
        let mut from_log = MetricsRegistry::new();
        let parsed = events::log::parse(&events::log::write(&run.events)).unwrap();
        record_events(&mut from_log, &parsed).unwrap();
        assert_eq!(from_log.render(), live.render());
    }

    #[test]
    fn phase_histogram_splits_waiting_install_kickstart() {
        let mut r = MetricsRegistry::new();
        let mut mon = MetricsMonitor::new(&mut r, "s", "1");
        let wf = chain();
        let ev = CompletionEvent {
            job: crate::workflow::JobId::new(1),
            attempt: 0,
            outcome: JobOutcome::Success,
            times: JobTimes {
                submitted: 0.0,
                started: 100.0,
                install_done: 130.0,
                finished: 530.0,
            },
        };
        mon.job_terminated(&wf.jobs[1], &ev);
        for (phase, want) in [
            ("queue_wait", 100.0),
            ("install", 30.0),
            ("kickstart", 400.0),
        ] {
            let h = r
                .histogram(
                    names::PHASE_SECONDS,
                    &[("site", "s"), ("n", "1"), ("phase", phase)],
                )
                .unwrap();
            assert_eq!(h.count, 1, "{phase}");
            assert!((h.sum - want).abs() < 1e-9, "{phase}: {}", h.sum);
        }
    }
}

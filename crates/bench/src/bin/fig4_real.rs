//! Fig. 4 cross-validation with *real* execution.
//!
//! The `fig4` binary reproduces the paper's curve on the discrete-event
//! simulator. This binary validates the simulator against reality: the
//! same calibrated workload is executed by the actual DAGMan engine on
//! the actual `condor::LocalPool` (64 worker threads), with each task
//! sleeping for its calibrated duration scaled down by 10,000× (one
//! paper-second = 0.1 ms). Wall-clock times therefore come from real
//! thread scheduling, channel traffic, and engine bookkeeping — if the
//! simulated shape (n = 10 far slower; n ≥ 100 flat; diminishing
//! returns) were an artifact of the simulator, it would not survive
//! this re-measurement.
//!
//! Output: `target/experiments/fig4_real.csv`.

use blast2cap3::workflow::{build_workflow, WorkflowParams};
use blast2cap3_pegasus::experiment::{calibrate_workload, calibrated_chunk_costs};
use condor::pool::{LocalPool, PoolConfig, TaskRegistry};
use pegasus_wms::catalog::{paper_catalogs, ReplicaCatalog};
use pegasus_wms::engine::{Engine, EngineConfig, NoopMonitor};
use pegasus_wms::planner::{plan, PlannerConfig};
use wms_bench::{write_experiment_file, DEFAULT_SEED, PAPER_N_VALUES};

/// Real seconds of sleep per calibrated paper-second.
const TIME_SCALE: f64 = 1.0e-4;

/// Worker threads — the Sandhills allocation size.
const WORKERS: usize = 64;

fn main() {
    let calibration = calibrate_workload(DEFAULT_SEED);
    let (sites, tc) = paper_catalogs();
    let mut rc = ReplicaCatalog::new();
    rc.register("transcripts.fasta", "submit");
    rc.register("alignments.out", "submit");

    let mut csv = String::from("n,real_wall_s,paper_scale_equivalent_s\n");
    let mut results = Vec::new();
    for &n in &PAPER_N_VALUES {
        let chunk_costs = calibrated_chunk_costs(&calibration, n);
        let wf = build_workflow(
            &WorkflowParams::with_n(chunk_costs.len()).with_chunk_costs(chunk_costs),
        );
        let mut cfg = PlannerConfig::for_site("sandhills");
        cfg.stage_data = false;
        cfg.add_create_dir = false;
        let exec = plan(&wf, &sites, &tc, &rc, &cfg).expect("plan");

        // No registered kernels: every task sleeps runtime_hint *
        // TIME_SCALE on a real worker thread.
        let mut pool = LocalPool::new(
            PoolConfig {
                workers: WORKERS,
                workdir: std::env::temp_dir().join("fig4_real"),
                synthetic_time_scale: TIME_SCALE,
                install_time_scale: TIME_SCALE,
            },
            TaskRegistry::new(),
        );
        let run = Engine::run(
            &mut pool,
            &exec,
            &EngineConfig::builder().retries(0).build(),
            &mut NoopMonitor,
        );
        assert!(run.succeeded());
        let equivalent = run.wall_time / TIME_SCALE;
        println!(
            "n={n:<4} real wall {:>7.2}s  ->  {:>9.0} paper-seconds (sim fig4 for comparison: see fig4.csv)",
            run.wall_time, equivalent
        );
        csv.push_str(&format!("{n},{:.3},{equivalent:.0}\n", run.wall_time));
        results.push((n, equivalent));
    }

    // Shape checks: the real-threads curve must match the paper's.
    let w10 = results[0].1;
    let w100 = results[1].1;
    let w300 = results[2].1;
    let w500 = results[3].1;
    assert!(
        w10 > 3.0 * w100,
        "n=10 must be several times slower than n=100 ({w10:.0} vs {w100:.0})"
    );
    let hi = w100.max(w300).max(w500);
    let lo = w100.min(w300).min(w500);
    assert!(
        hi / lo < 1.6,
        "n>=100 must be comparatively flat: {w100:.0}/{w300:.0}/{w500:.0}"
    );
    println!(
        "\nshape check: n=10 is {:.1}x n=100; n>=100 band spread {:.2}x -> REPRODUCED with real threads",
        w10 / w100,
        hi / lo
    );
    let path = write_experiment_file("fig4_real.csv", &csv);
    println!("series written to {}", path.display());
}

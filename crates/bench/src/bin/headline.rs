//! Headline claim — "the Pegasus WMS implementation of blast2cap3
//! significantly reduces the running time compared to the current
//! serial implementation ... for more than 95 %".
//!
//! Two measurements:
//!
//! 1. **Simulated, paper scale** — the calibrated 100-hour serial
//!    workload vs. the simulated Sandhills workflow at n = 300
//!    (the configuration behind the paper's "3 hours in average").
//! 2. **Real, laptop scale** — the actual serial Rust blast2cap3 vs.
//!    the actual workflow executed through the DAGMan engine on the
//!    local Condor pool, real files and real CAP3 merging, on the
//!    same synthetic dataset. Absolute seconds are small, but the
//!    speedup is genuinely measured, not simulated.
//!
//! Output: `target/experiments/headline.csv`.

use bioseq::simulate::{generate, TranscriptomeConfig};
use blast2cap3::serial::run_serial;
use blast2cap3_pegasus::experiment::{real_local_run, simulate_blast2cap3};
use blastx::search::{SearchParams, Searcher};
use blastx::tabular::TabularRecord;
use cap3::Cap3Params;
use gridsim::platforms::SERIAL_REFERENCE_SECONDS;
use wms_bench::{human_duration, write_experiment_file, DEFAULT_SEED};

fn main() {
    let mut csv = String::from("experiment,serial_s,workflow_s,reduction\n");

    // 1. Simulated at paper scale.
    let sim = simulate_blast2cap3("sandhills", 300, DEFAULT_SEED, 3);
    assert!(sim.run.succeeded());
    let sim_reduction = 1.0 - sim.run.wall_time / SERIAL_REFERENCE_SECONDS;
    println!(
        "simulated paper scale : serial {} -> workflow {} ({:.1}% reduction; paper: 100h -> ~3h, >95%)",
        human_duration(SERIAL_REFERENCE_SECONDS),
        human_duration(sim.run.wall_time),
        100.0 * sim_reduction
    );
    csv.push_str(&format!(
        "simulated,{SERIAL_REFERENCE_SECONDS:.1},{:.1},{sim_reduction:.4}\n",
        sim.run.wall_time
    ));
    assert!(
        sim_reduction > 0.95,
        "simulated n=300 must reproduce the >95% headline"
    );

    // 2. Real execution at laptop scale: measure the serial Rust
    //    implementation, then the same dataset through the real
    //    workflow machinery.
    let n_families = 60;
    let seed = DEFAULT_SEED;
    let cfg = TranscriptomeConfig {
        n_families,
        family_size_mean: 5.0,
        family_size_cap: 24,
        ..TranscriptomeConfig::tiny(seed)
    };
    let data = generate(&cfg);
    let searcher = Searcher::new(data.proteins.clone(), SearchParams::default()).unwrap();
    let queries: Vec<(String, bioseq::seq::DnaSeq)> = data
        .transcripts
        .iter()
        .map(|r| (r.id.clone(), r.seq.clone()))
        .collect();
    let hsps = searcher.search_many(&queries, 0);
    let alignments: Vec<TabularRecord> = hsps.iter().map(TabularRecord::from).collect();

    let serial = run_serial(&data.transcripts, &alignments, &Cap3Params::default());
    let serial_s = serial.elapsed.as_secs_f64();

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let real = real_local_run(n_families, 4 * workers, workers, seed);
    assert!(real.run.succeeded());
    let workflow_s = real.run.wall_time;
    let real_reduction = 1.0 - workflow_s / serial_s.max(1e-9);
    println!(
        "real laptop scale     : serial {serial_s:.3}s -> workflow {workflow_s:.3}s ({:.1}% reduction, {} workers, real CAP3 on {} transcripts)",
        100.0 * real_reduction,
        workers,
        data.transcripts.len()
    );
    println!(
        "real output           : {} -> {} sequences ({} merged)",
        real.input_count,
        real.final_records.len(),
        serial.joined
    );
    csv.push_str(&format!(
        "real,{serial_s:.4},{workflow_s:.4},{real_reduction:.4}\n"
    ));
    std::fs::remove_dir_all(&real.workdir).ok();

    let path = write_experiment_file("headline.csv", &csv);
    println!("series written to {}", path.display());
}

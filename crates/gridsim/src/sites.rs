//! Declarative site definitions and the site registry.
//!
//! The paper's central object is the *execution site* — the Sandhills
//! campus cluster vs. the Open Science Grid — yet for seven PRs the
//! codebase modelled sites as bare strings with `match site { ... }`
//! dispatch copied across the experiment driver, the serve daemon,
//! and the CLI, plus three disconnected representations (the catalog
//! [`Site`], the [`crate::platforms`] constructor functions, and CLI
//! string switches) kept in sync by hand.
//!
//! This module fuses them into one model:
//!
//! * [`SiteDef`] — a single declarative record holding a site's name,
//!   aliases, catalog properties (shared filesystem, CPU speed,
//!   pre-staged replicas) and every [`PlatformModel`] knob (slots,
//!   queue-delay distribution, startup delay, install factor,
//!   preemption, jitter, churn), parsed from a line-oriented text
//!   format in the fault-plan idiom (`sites.def`) with round-trip
//!   parse/render and line-numbered errors;
//! * [`SiteRegistry`] — an interning table ([`SiteId`] per def) that
//!   every consumer routes through: name → id resolution over names
//!   *and* aliases, platform/backend construction, site-catalog and
//!   replica-catalog synthesis, the `--site both` sweep, and the
//!   "does this platform need fault handling" predicate.
//!
//! The built-in definitions ([`SiteRegistry::builtin`]) construct
//! `PlatformModel`s and catalog entries `assert_eq!`-identical to the
//! original [`crate::platforms`] constructors and
//! [`pegasus_wms::catalog::paper_catalogs`], so every committed golden
//! stays byte-identical — while `pegasus run --sites my_sites.def
//! --site my-cluster` executes a never-before-seen platform with zero
//! code changes.

use crate::backend::SimBackend;
use crate::dist::{sample_standard_normal, Dist};
use crate::platform::{ChurnModel, PlatformModel, SlotSpec};
use pegasus_wms::catalog::{ReplicaCatalog, Site, SiteCatalog};
use pegasus_wms::error::WmsError;
use pegasus_wms::symbols::{SiteId, SymbolTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// How a site's slot speeds are generated.
///
/// Stored in the ergonomic parameterisation (median/sigma, like
/// [`Dist::lognormal_median`]) so a parsed definition renders back to
/// the exact text it came from.
#[derive(Debug, Clone, PartialEq)]
pub enum SpeedSpec {
    /// Every slot runs at the same relative speed.
    Fixed(f64),
    /// Per-slot speeds drawn from a lognormal with the given median
    /// and sigma, seeded by the platform seed — the OSG heterogeneous
    /// pool.
    LognormalMedian {
        /// Median relative slot speed.
        median: f64,
        /// Sigma of the underlying normal.
        sigma: f64,
    },
}

impl SpeedSpec {
    /// Materialises the slot pool, consuming the rng in declaration
    /// order (one draw per slot for the lognormal case).
    fn slots(&self, count: usize, rng: &mut StdRng) -> Vec<SlotSpec> {
        match *self {
            SpeedSpec::Fixed(speed) => vec![SlotSpec { speed }; count],
            SpeedSpec::LognormalMedian { median, sigma } => (0..count)
                .map(|_| SlotSpec {
                    speed: (median.ln() + sigma * sample_standard_normal(rng)).exp(),
                })
                .collect(),
        }
    }
}

/// One declarative site definition: everything the planner, the
/// simulator, and the catalogs need to know about an execution site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteDef {
    /// Primary site name (a single whitespace-free token).
    pub name: String,
    /// Alternative names that resolve to this site.
    pub aliases: Vec<String>,
    /// When set, this def is a *variant* of another site: it shares
    /// that site's catalog entry (and platform handle) instead of
    /// contributing its own, like `osg_prestaged` sharing the `osg`
    /// catalog. Variants are excluded from the `--site both` sweep.
    pub catalog_site: Option<String>,
    /// Number of execution slots.
    pub slots: usize,
    /// Slot speed generator.
    pub speed: SpeedSpec,
    /// Per-job queue delay distribution.
    pub queue_delay: Dist,
    /// One-time pool allocation delay (seconds).
    pub startup_delay: f64,
    /// Multiplier on job install hints (0 disables install phases).
    pub install_time_factor: f64,
    /// Preemption hazard rate per busy second.
    pub preemption_rate: f64,
    /// Lognormal sigma on execution durations.
    pub runtime_jitter_sigma: f64,
    /// Fixed per-task service seconds.
    pub task_overhead: f64,
    /// Optional slot availability churn.
    pub churn: Option<ChurnModel>,
    /// Whether worker nodes share a filesystem with the submit host.
    pub shared_fs: bool,
    /// Relative CPU speed for the site-catalog entry.
    pub cpu_speed: f64,
    /// Submit-host ↔ site bandwidth in bytes/second.
    pub bandwidth_bps: f64,
    /// Software packages maintained on the site's worker nodes.
    pub packages: Vec<String>,
    /// Logical files pre-staged at this site (registered into the
    /// replica catalog under the site's catalog handle).
    pub replicas: Vec<String>,
}

impl SiteDef {
    /// A definition with the given name and the format's defaults:
    /// one reference-speed slot, no delays, no faults, install factor
    /// 1, no shared filesystem, default bandwidth.
    pub fn new(name: impl Into<String>) -> Self {
        SiteDef {
            name: name.into(),
            aliases: Vec::new(),
            catalog_site: None,
            slots: 1,
            speed: SpeedSpec::Fixed(1.0),
            queue_delay: Dist::Fixed(0.0),
            startup_delay: 0.0,
            install_time_factor: 1.0,
            preemption_rate: 0.0,
            runtime_jitter_sigma: 0.0,
            task_overhead: 0.0,
            churn: None,
            shared_fs: false,
            cpu_speed: 1.0,
            bandwidth_bps: 100.0e6,
            packages: Vec::new(),
            replicas: Vec::new(),
        }
    }
}

fn parse_err(line: usize, reason: impl Into<String>) -> WmsError {
    WmsError::SiteDefParse {
        line,
        reason: reason.into(),
    }
}

/// Splits `key=value` fields of one definition line into a lookup.
fn fields(rest: &str, line: usize) -> Result<Vec<(&str, &str)>, WmsError> {
    rest.split_whitespace()
        .map(|tok| {
            tok.split_once('=')
                .ok_or_else(|| parse_err(line, format!("expected key=value, got {tok:?}")))
        })
        .collect()
}

fn parse_f64(raw: &str, key: &str, line: usize) -> Result<f64, WmsError> {
    raw.parse()
        .map_err(|_| parse_err(line, format!("bad number for {key}: {raw:?}")))
}

fn parse_bool(raw: &str, key: &str, line: usize) -> Result<bool, WmsError> {
    match raw {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(parse_err(
            line,
            format!("bad boolean for {key}: {raw:?} (expected true or false)"),
        )),
    }
}

/// Splits a two-number `a,b` value.
fn parse_pair(raw: &str, key: &str, line: usize) -> Result<(f64, f64), WmsError> {
    let (a, b) = raw
        .split_once(',')
        .ok_or_else(|| parse_err(line, format!("{key} expects two comma-separated numbers")))?;
    Ok((parse_f64(a, key, line)?, parse_f64(b, key, line)?))
}

/// Splits a comma-separated name list, rejecting empty items.
fn parse_list(raw: &str, key: &str, line: usize) -> Result<Vec<String>, WmsError> {
    if raw.is_empty() {
        return Ok(Vec::new());
    }
    raw.split(',')
        .map(|item| {
            if item.is_empty() {
                Err(parse_err(line, format!("{key} contains an empty item")))
            } else {
                Ok(item.to_string())
            }
        })
        .collect()
}

/// Parses the `kind:args` distribution syntax:
/// `fixed:X`, `uniform:LO,HI`, `exponential:RATE`,
/// `lognormal:MU,SIGMA`, or the sugar `lognormal-median:MEDIAN,SIGMA`.
fn parse_dist(raw: &str, key: &str, line: usize) -> Result<Dist, WmsError> {
    let (kind, args) = raw
        .split_once(':')
        .ok_or_else(|| parse_err(line, format!("{key} expects kind:args, got {raw:?}")))?;
    match kind {
        "fixed" => Ok(Dist::Fixed(parse_f64(args, key, line)?)),
        "uniform" => {
            let (lo, hi) = parse_pair(args, key, line)?;
            Ok(Dist::Uniform(lo, hi))
        }
        "exponential" => Ok(Dist::Exponential(parse_f64(args, key, line)?)),
        "lognormal" => {
            let (mu, sigma) = parse_pair(args, key, line)?;
            Ok(Dist::LogNormal(mu, sigma))
        }
        "lognormal-median" => {
            let (median, sigma) = parse_pair(args, key, line)?;
            Ok(Dist::lognormal_median(median, sigma))
        }
        other => Err(parse_err(
            line,
            format!("unknown distribution kind {other:?} for {key}"),
        )),
    }
}

/// Renders a distribution in the syntax [`parse_dist`] accepts.
/// `{}` on `f64` prints the shortest string that round-trips, so
/// `parse_dist(render_dist(d)) == d` for finite parameters.
fn render_dist(d: &Dist) -> String {
    match *d {
        Dist::Fixed(v) => format!("fixed:{v}"),
        Dist::Uniform(lo, hi) => format!("uniform:{lo},{hi}"),
        Dist::Exponential(rate) => format!("exponential:{rate}"),
        Dist::LogNormal(mu, sigma) => format!("lognormal:{mu},{sigma}"),
    }
}

fn parse_speed(raw: &str, line: usize) -> Result<SpeedSpec, WmsError> {
    if let Some(args) = raw.strip_prefix("lognormal-median:") {
        let (median, sigma) = parse_pair(args, "speed", line)?;
        Ok(SpeedSpec::LognormalMedian { median, sigma })
    } else {
        Ok(SpeedSpec::Fixed(parse_f64(raw, "speed", line)?))
    }
}

fn render_speed(s: &SpeedSpec) -> String {
    match *s {
        SpeedSpec::Fixed(v) => format!("{v}"),
        SpeedSpec::LognormalMedian { median, sigma } => {
            format!("lognormal-median:{median},{sigma}")
        }
    }
}

/// A site name or alias: one whitespace-free token without the
/// characters the text format itself uses.
fn check_name(name: &str, what: &str, line: usize) -> Result<(), WmsError> {
    if name.is_empty() {
        return Err(parse_err(line, format!("{what} must not be empty")));
    }
    if let Some(bad) = name
        .chars()
        .find(|c| c.is_whitespace() || "=,#".contains(*c))
    {
        return Err(parse_err(
            line,
            format!("{what} {name:?} contains reserved character {bad:?}"),
        ));
    }
    Ok(())
}

/// Parses the line-oriented `sites.def` format without any
/// cross-definition checks (duplicate names and aliases survive, so
/// the lint pass can see and report them):
///
/// ```text
/// # comments and blank lines are ignored
/// site sandhills
/// aliases=campus,hcc
/// slots=64 speed=1
/// queue-delay=lognormal-median:20,0.8
/// startup-delay=600 install-factor=0 jitter=0.05 task-overhead=90
/// shared-fs=true packages=python,biopython,cap3
/// ```
///
/// Every non-blank line after a `site <name>` header is a run of
/// whitespace-separated `key=value` fields applied to that site;
/// repeating a key overrides the earlier value.
pub fn parse_defs(text: &str) -> Result<Vec<SiteDef>, WmsError> {
    let mut defs: Vec<SiteDef> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (word, rest) = trimmed
            .split_once(char::is_whitespace)
            .unwrap_or((trimmed, ""));
        if word == "site" {
            let name = rest.trim();
            check_name(name, "site name", line)?;
            defs.push(SiteDef::new(name));
            continue;
        }
        let Some(def) = defs.last_mut() else {
            return Err(parse_err(
                line,
                format!("{word:?} before any `site <name>` header"),
            ));
        };
        for (key, value) in fields(trimmed, line)? {
            match key {
                "aliases" => {
                    let aliases = parse_list(value, "aliases", line)?;
                    for a in &aliases {
                        check_name(a, "alias", line)?;
                    }
                    def.aliases = aliases;
                }
                "catalog-site" => {
                    check_name(value, "catalog-site", line)?;
                    def.catalog_site = Some(value.to_string());
                }
                "slots" => {
                    def.slots = value.parse().map_err(|_| {
                        parse_err(line, format!("bad integer for slots: {value:?}"))
                    })?;
                }
                "speed" => def.speed = parse_speed(value, line)?,
                "queue-delay" => def.queue_delay = parse_dist(value, "queue-delay", line)?,
                "startup-delay" => def.startup_delay = parse_f64(value, "startup-delay", line)?,
                "install-factor" => {
                    def.install_time_factor = parse_f64(value, "install-factor", line)?;
                }
                "preemption-rate" => {
                    def.preemption_rate = parse_f64(value, "preemption-rate", line)?;
                }
                "jitter" => def.runtime_jitter_sigma = parse_f64(value, "jitter", line)?,
                "task-overhead" => def.task_overhead = parse_f64(value, "task-overhead", line)?,
                "churn" => {
                    let (mean_up, mean_down) = parse_pair(value, "churn", line)?;
                    def.churn = Some(ChurnModel { mean_up, mean_down });
                }
                "shared-fs" => def.shared_fs = parse_bool(value, "shared-fs", line)?,
                "cpu-speed" => def.cpu_speed = parse_f64(value, "cpu-speed", line)?,
                "bandwidth" => def.bandwidth_bps = parse_f64(value, "bandwidth", line)?,
                "packages" => def.packages = parse_list(value, "packages", line)?,
                "replicas" => def.replicas = parse_list(value, "replicas", line)?,
                other => {
                    return Err(parse_err(line, format!("unknown site field {other:?}")));
                }
            }
        }
    }
    Ok(defs)
}

/// Renders definitions back into the text format — the inverse of
/// [`parse_defs`] up to whitespace, comments and distribution sugar
/// (a `lognormal-median:` queue delay renders in `lognormal:` form,
/// which parses back to the identical distribution).
pub fn render_defs(defs: &[SiteDef]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, def) in defs.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let _ = writeln!(out, "site {}", def.name);
        if !def.aliases.is_empty() {
            let _ = writeln!(out, "aliases={}", def.aliases.join(","));
        }
        if let Some(target) = &def.catalog_site {
            let _ = writeln!(out, "catalog-site={target}");
        }
        let _ = writeln!(
            out,
            "slots={} speed={}",
            def.slots,
            render_speed(&def.speed)
        );
        let _ = writeln!(out, "queue-delay={}", render_dist(&def.queue_delay));
        let _ = writeln!(
            out,
            "startup-delay={} install-factor={} preemption-rate={} jitter={} task-overhead={}",
            def.startup_delay,
            def.install_time_factor,
            def.preemption_rate,
            def.runtime_jitter_sigma,
            def.task_overhead
        );
        if let Some(churn) = def.churn {
            let _ = writeln!(out, "churn={},{}", churn.mean_up, churn.mean_down);
        }
        let _ = writeln!(
            out,
            "shared-fs={} cpu-speed={} bandwidth={}",
            def.shared_fs, def.cpu_speed, def.bandwidth_bps
        );
        if !def.packages.is_empty() {
            let _ = writeln!(out, "packages={}", def.packages.join(","));
        }
        if !def.replicas.is_empty() {
            let _ = writeln!(out, "replicas={}", def.replicas.join(","));
        }
    }
    out
}

/// The built-in definitions: the paper's two platforms plus the two
/// OSG variants, knob-for-knob identical to the original
/// [`crate::platforms`] constructors and
/// [`pegasus_wms::catalog::paper_catalogs`].
pub const BUILTIN_SITES_DEF: &str = "\
# Built-in sites: the paper's two platforms and the OSG variants.
# Calibration story in DESIGN.md \u{a7}4; equivalence with the
# original constructors is pinned by the unit tests below.

site sandhills
slots=64 speed=1
queue-delay=lognormal-median:20,0.8
startup-delay=600 install-factor=0 preemption-rate=0 jitter=0.05 task-overhead=90
shared-fs=true cpu-speed=1 bandwidth=100000000
packages=python,biopython,cap3

site osg
slots=150 speed=lognormal-median:1.35,0.15
queue-delay=lognormal-median:600,1
startup-delay=0 install-factor=1 preemption-rate=0.00005 jitter=0.15 task-overhead=5
shared-fs=false cpu-speed=1.35 bandwidth=100000000

# \u{a7}VII future-work variant: software pre-staged on the OSG nodes.
site osg_prestaged
catalog-site=osg
slots=150 speed=lognormal-median:1.35,0.15
queue-delay=lognormal-median:600,1
startup-delay=0 install-factor=0 preemption-rate=0.00005 jitter=0.15 task-overhead=5

# Eviction as explicit slot churn instead of the per-job hazard.
site osg_churning
catalog-site=osg
slots=150 speed=lognormal-median:1.35,0.15
queue-delay=lognormal-median:600,1
startup-delay=0 install-factor=1 preemption-rate=0 jitter=0.15 task-overhead=5
churn=21600,3600
";

/// An interned, resolved set of site definitions: the single source
/// of truth every consumer (planner config, simulation backends, the
/// serve daemon, CLI sweeps, lint) routes through.
#[derive(Debug, Clone, Default)]
pub struct SiteRegistry {
    defs: Vec<SiteDef>,
    names: SymbolTable<SiteId>,
    lookup: HashMap<String, SiteId>,
}

impl SiteRegistry {
    /// Builds a registry from parsed definitions, rejecting duplicate
    /// names and aliases (the lint pass reports the same conditions
    /// with line numbers; this is the load-time hard stop).
    pub fn from_defs(defs: Vec<SiteDef>) -> Result<Self, WmsError> {
        let mut names = SymbolTable::with_capacity(defs.len());
        let mut lookup = HashMap::new();
        for (idx, def) in defs.iter().enumerate() {
            let id = SiteId::new(idx);
            if names.get(&def.name).is_some() {
                return Err(parse_err(0, format!("duplicate site name {:?}", def.name)));
            }
            let interned: SiteId = names.intern(&def.name);
            debug_assert_eq!(interned, id);
            lookup.insert(def.name.clone(), id);
        }
        for (idx, def) in defs.iter().enumerate() {
            let id = SiteId::new(idx);
            for alias in &def.aliases {
                match lookup.insert(alias.clone(), id) {
                    None => {}
                    Some(_) => {
                        return Err(parse_err(
                            0,
                            format!("alias {alias:?} conflicts with another site name or alias"),
                        ));
                    }
                }
            }
        }
        Ok(SiteRegistry {
            defs,
            names,
            lookup,
        })
    }

    /// Parses a `sites.def` text into a registry.
    pub fn parse(text: &str) -> Result<Self, WmsError> {
        Self::from_defs(parse_defs(text)?)
    }

    /// The built-in registry: `sandhills`, `osg`, `osg_prestaged`,
    /// `osg_churning`.
    pub fn builtin() -> Self {
        Self::parse(BUILTIN_SITES_DEF).expect("built-in site definitions parse")
    }

    /// Resolves a site name or alias to its id, or a typed
    /// [`WmsError::UnknownSite`] listing the registered names.
    pub fn resolve(&self, name: &str) -> Result<SiteId, WmsError> {
        self.lookup.get(name).copied().ok_or_else(|| {
            let mut known: Vec<String> = self.defs.iter().map(|d| d.name.clone()).collect();
            known.sort();
            WmsError::UnknownSite {
                site: name.to_string(),
                known,
            }
        })
    }

    /// The definition behind an id.
    pub fn get(&self, id: SiteId) -> &SiteDef {
        &self.defs[id.idx()]
    }

    /// The primary name behind an id.
    pub fn name(&self, id: SiteId) -> &str {
        self.names.resolve(id)
    }

    /// The catalog handle a site plans and reports under: its own
    /// name, or — for variants — the end of its `catalog-site` chain.
    pub fn catalog_name(&self, id: SiteId) -> &str {
        let mut def = &self.defs[id.idx()];
        // The chain length is bounded by the def count; a cycle (which
        // lint reports as shadowing/self-reference) degrades to the
        // last name seen rather than hanging.
        for _ in 0..self.defs.len() {
            let Some(target) = &def.catalog_site else {
                return &def.name;
            };
            match self.lookup.get(target) {
                Some(&next) if !std::ptr::eq(&self.defs[next.idx()], def) => {
                    def = &self.defs[next.idx()];
                }
                // Unresolvable or self-referential target: take the
                // declared handle at face value.
                _ => return target,
            }
        }
        &def.name
    }

    /// Definitions in file order.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, &SiteDef)> {
        self.defs
            .iter()
            .enumerate()
            .map(|(i, d)| (SiteId::new(i), d))
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// `true` when the registry holds no definitions.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The sites a `--site both` sweep visits: every non-variant
    /// definition, in file order — `[sandhills, osg]` for the
    /// built-ins, exactly the historical sweep.
    pub fn sweep(&self) -> Vec<SiteId> {
        self.iter()
            .filter(|(_, d)| d.catalog_site.is_none())
            .map(|(id, _)| id)
            .collect()
    }

    /// Whether runs on this site exercise fault handling (a nonzero
    /// preemption hazard or slot churn) — drives retry-policy lint.
    pub fn faults_active(&self, id: SiteId) -> bool {
        let def = self.get(id);
        def.preemption_rate > 0.0 || def.churn.is_some()
    }

    /// Builds the platform model for one site. The model's handle is
    /// the site's *catalog* name, so variants report under their base
    /// site exactly like the original `osg_prestaged` constructor.
    pub fn platform(&self, id: SiteId, seed: u64) -> PlatformModel {
        let def = self.get(id);
        let mut rng = StdRng::seed_from_u64(seed);
        PlatformModel {
            name: self.catalog_name(id).to_string(),
            slots: def.speed.slots(def.slots, &mut rng),
            queue_delay: def.queue_delay.clone(),
            startup_delay: def.startup_delay,
            install_time_factor: def.install_time_factor,
            preemption_rate: def.preemption_rate,
            runtime_jitter_sigma: def.runtime_jitter_sigma,
            task_overhead: def.task_overhead,
            churn: def.churn,
        }
    }

    /// Builds a seeded simulation backend for one site.
    pub fn backend(&self, id: SiteId, seed: u64) -> SimBackend {
        SimBackend::new(self.platform(id, seed), seed)
    }

    /// Synthesises the site catalog: one entry per non-variant
    /// definition (variants share their base site's entry). For the
    /// built-ins this equals `paper_catalogs().0`.
    pub fn site_catalog(&self) -> SiteCatalog {
        let mut catalog = SiteCatalog::new();
        for (_, def) in self.iter().filter(|(_, d)| d.catalog_site.is_none()) {
            let mut site = Site::new(&def.name)
                .with_shared_fs(def.shared_fs)
                .with_cpu_speed(def.cpu_speed);
            site.bandwidth_bps = def.bandwidth_bps;
            for pkg in &def.packages {
                site = site.with_package(pkg);
            }
            catalog.add(site);
        }
        catalog
    }

    /// Registers every definition's pre-staged files into `rc`, under
    /// the definition's catalog handle.
    pub fn register_replicas(&self, rc: &mut ReplicaCatalog) {
        for (id, def) in self.iter() {
            for file in &def.replicas {
                rc.register(file.clone(), self.catalog_name(id));
            }
        }
    }

    /// Renders the registry's definitions back to text.
    pub fn to_text(&self) -> String {
        render_defs(&self.defs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::{osg, osg_churning, osg_prestaged, sandhills};

    #[test]
    fn builtin_platforms_match_the_original_constructors() {
        let reg = SiteRegistry::builtin();
        for seed in [0u64, 7, 42, 1234] {
            let sh = reg.resolve("sandhills").unwrap();
            assert_eq!(reg.platform(sh, seed), sandhills());
            let og = reg.resolve("osg").unwrap();
            assert_eq!(reg.platform(og, seed), osg(seed));
            let pre = reg.resolve("osg_prestaged").unwrap();
            assert_eq!(reg.platform(pre, seed), osg_prestaged(seed));
            let churn = reg.resolve("osg_churning").unwrap();
            assert_eq!(reg.platform(churn, seed), osg_churning(seed));
        }
    }

    #[test]
    fn builtin_catalog_matches_paper_catalogs() {
        let reg = SiteRegistry::builtin();
        let built = reg.site_catalog();
        let (paper, _) = pegasus_wms::catalog::paper_catalogs();
        let mut names = built.names();
        names.sort();
        let mut expected = paper.names();
        expected.sort();
        assert_eq!(names, expected);
        for name in &names {
            assert_eq!(built.get(name), paper.get(name), "{name}");
        }
    }

    #[test]
    fn variants_share_the_base_catalog_handle() {
        let reg = SiteRegistry::builtin();
        let pre = reg.resolve("osg_prestaged").unwrap();
        assert_eq!(reg.catalog_name(pre), "osg");
        assert_eq!(reg.name(pre), "osg_prestaged");
        let sh = reg.resolve("sandhills").unwrap();
        assert_eq!(reg.catalog_name(sh), "sandhills");
    }

    #[test]
    fn sweep_visits_the_non_variants_in_order() {
        let reg = SiteRegistry::builtin();
        let names: Vec<&str> = reg.sweep().into_iter().map(|id| reg.name(id)).collect();
        assert_eq!(names, vec!["sandhills", "osg"]);
    }

    #[test]
    fn faults_active_tracks_hazard_and_churn() {
        let reg = SiteRegistry::builtin();
        assert!(!reg.faults_active(reg.resolve("sandhills").unwrap()));
        assert!(reg.faults_active(reg.resolve("osg").unwrap()));
        assert!(reg.faults_active(reg.resolve("osg_prestaged").unwrap()));
        assert!(reg.faults_active(reg.resolve("osg_churning").unwrap()));
    }

    #[test]
    fn unknown_site_error_lists_registered_names() {
        let reg = SiteRegistry::builtin();
        let err = reg.resolve("mars").unwrap_err();
        let WmsError::UnknownSite { site, known } = err else {
            panic!("wrong variant");
        };
        assert_eq!(site, "mars");
        assert_eq!(
            known,
            vec!["osg", "osg_churning", "osg_prestaged", "sandhills"]
        );
    }

    #[test]
    fn aliases_resolve_to_the_same_id() {
        let text = "site alpha\naliases=campus,\u{43a}\u{43b}\u{430}\u{441}\u{442}\u{435}\u{440}\nslots=4\n";
        let reg = SiteRegistry::parse(text).unwrap();
        let a = reg.resolve("alpha").unwrap();
        assert_eq!(reg.resolve("campus").unwrap(), a);
        assert_eq!(
            reg.resolve("\u{43a}\u{43b}\u{430}\u{441}\u{442}\u{435}\u{440}")
                .unwrap(),
            a
        );
        assert_eq!(reg.name(a), "alpha");
    }

    #[test]
    fn duplicate_names_and_aliases_are_rejected_at_load() {
        let dup = "site a\nsite a\n";
        assert!(matches!(
            SiteRegistry::parse(dup),
            Err(WmsError::SiteDefParse { .. })
        ));
        let shadow = "site a\nsite b\naliases=a\n";
        assert!(matches!(
            SiteRegistry::parse(shadow),
            Err(WmsError::SiteDefParse { .. })
        ));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_defs("site ok\nslots=not-a-number\n").unwrap_err();
        let WmsError::SiteDefParse { line, reason } = err else {
            panic!("wrong variant");
        };
        assert_eq!(line, 2);
        assert!(reason.contains("slots"), "{reason}");

        let err = parse_defs("slots=3\n").unwrap_err();
        let WmsError::SiteDefParse { line, .. } = err else {
            panic!("wrong variant");
        };
        assert_eq!(line, 1);
    }

    #[test]
    fn render_round_trips_the_builtins() {
        let defs = parse_defs(BUILTIN_SITES_DEF).unwrap();
        let rendered = render_defs(&defs);
        assert_eq!(parse_defs(&rendered).unwrap(), defs);
    }

    #[test]
    fn catalog_site_chains_terminate() {
        // b -> a -> (none); c -> missing.
        let reg =
            SiteRegistry::parse("site a\nsite b\ncatalog-site=a\nsite c\ncatalog-site=ghost\n")
                .unwrap();
        assert_eq!(reg.catalog_name(reg.resolve("b").unwrap()), "a");
        assert_eq!(reg.catalog_name(reg.resolve("c").unwrap()), "ghost");
    }

    #[test]
    fn replicas_register_under_the_catalog_handle() {
        let text = "site base\nsite cached\ncatalog-site=base\nreplicas=big.db,ref.fa\n";
        let reg = SiteRegistry::parse(text).unwrap();
        let mut rc = ReplicaCatalog::new();
        reg.register_replicas(&mut rc);
        assert!(rc.has_replica("big.db", "base"));
        assert!(rc.has_replica("ref.fa", "base"));
        assert!(!rc.has_replica("big.db", "cached"));
    }
}

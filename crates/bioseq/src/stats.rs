//! Assembly summary statistics.
//!
//! The paper cites blast2cap3's effect on assembly quality (a 8–9 %
//! reduction in transcript count, fewer artificially fused sequences);
//! these summary statistics let tests and the `reduction` experiment
//! quantify the same effects on synthetic data.

use crate::fasta::Record;

/// Summary statistics over a set of sequences.
#[derive(Debug, Clone, PartialEq)]
pub struct AssemblyStats {
    /// Number of sequences.
    pub count: usize,
    /// Total bases across all sequences.
    pub total_len: usize,
    /// Length of the shortest sequence (0 if empty set).
    pub min_len: usize,
    /// Length of the longest sequence (0 if empty set).
    pub max_len: usize,
    /// Mean sequence length (0.0 if empty set).
    pub mean_len: f64,
    /// N50: length `L` such that sequences of length >= `L` cover at
    /// least half the total bases (0 if empty set).
    pub n50: usize,
    /// Overall GC fraction (0.0 if empty set).
    pub gc: f64,
}

/// Computes [`AssemblyStats`] over FASTA records.
pub fn assembly_stats(records: &[Record]) -> AssemblyStats {
    if records.is_empty() {
        return AssemblyStats {
            count: 0,
            total_len: 0,
            min_len: 0,
            max_len: 0,
            mean_len: 0.0,
            n50: 0,
            gc: 0.0,
        };
    }
    let mut lens: Vec<usize> = records.iter().map(|r| r.seq.len()).collect();
    let total_len: usize = lens.iter().sum();
    let gc_bases: usize = records
        .iter()
        .map(|r| {
            r.seq
                .as_bytes()
                .iter()
                .filter(|&&b| b == b'G' || b == b'C')
                .count()
        })
        .sum();
    lens.sort_unstable_by(|a, b| b.cmp(a));
    let half = total_len.div_ceil(2);
    let mut acc = 0usize;
    let mut n50 = 0usize;
    for &l in &lens {
        acc += l;
        if acc >= half {
            n50 = l;
            break;
        }
    }
    AssemblyStats {
        count: records.len(),
        total_len,
        min_len: *lens.last().expect("non-empty"),
        max_len: lens[0],
        mean_len: total_len as f64 / records.len() as f64,
        n50,
        gc: if total_len == 0 {
            0.0
        } else {
            gc_bases as f64 / total_len as f64
        },
    }
}

/// Relative reduction in sequence count going from `before` to
/// `after`, as a fraction in `[0, 1]` (0 if `before` is 0 or counts grew).
pub fn reduction_ratio(before: usize, after: usize) -> f64 {
    if before == 0 || after >= before {
        return 0.0;
    }
    (before - after) as f64 / before as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::DnaSeq;

    fn rec(id: &str, seq: &str) -> Record {
        Record::new(id, "", DnaSeq::from_ascii(seq.as_bytes()).unwrap())
    }

    #[test]
    fn empty_set_is_all_zero() {
        let s = assembly_stats(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.n50, 0);
        assert_eq!(s.gc, 0.0);
    }

    #[test]
    fn single_sequence() {
        let s = assembly_stats(&[rec("a", "GGCC")]);
        assert_eq!(s.count, 1);
        assert_eq!(s.total_len, 4);
        assert_eq!(s.min_len, 4);
        assert_eq!(s.max_len, 4);
        assert_eq!(s.n50, 4);
        assert!((s.gc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn n50_textbook_example() {
        // Lengths 80, 70, 50, 40, 30, 20 -> total 290, half 145.
        // Cumulative: 80, 150 -> N50 = 70.
        let recs: Vec<Record> = [80usize, 70, 50, 40, 30, 20]
            .iter()
            .enumerate()
            .map(|(i, &l)| rec(&format!("s{i}"), &"A".repeat(l)))
            .collect();
        let s = assembly_stats(&recs);
        assert_eq!(s.n50, 70);
        assert_eq!(s.min_len, 20);
        assert_eq!(s.max_len, 80);
    }

    #[test]
    fn n50_is_order_independent() {
        let mut recs = vec![rec("a", &"A".repeat(10)), rec("b", &"A".repeat(90))];
        let s1 = assembly_stats(&recs);
        recs.reverse();
        let s2 = assembly_stats(&recs);
        assert_eq!(s1, s2);
        assert_eq!(s1.n50, 90);
    }

    #[test]
    fn reduction_ratio_matches_paper_range() {
        // 236,529 -> ~8.5% reduction keeps ~216,424 transcripts.
        let r = reduction_ratio(236_529, 216_424);
        assert!(r > 0.08 && r < 0.09, "r={r}");
        assert_eq!(reduction_ratio(0, 10), 0.0);
        assert_eq!(reduction_ratio(10, 10), 0.0);
        assert_eq!(reduction_ratio(10, 12), 0.0);
        assert_eq!(reduction_ratio(10, 5), 0.5);
    }
}

//! The planner: mapping an abstract workflow onto a concrete site.
//!
//! Planning turns logical jobs into an *executable workflow*:
//!
//! * a `create_dir` job materialises the site work directory;
//! * `stage_in` jobs transfer external input files that the replica
//!   catalog says are absent from the target site;
//! * compute jobs gain a **download/install phase** when the site
//!   lacks packages the transformation requires — this is precisely
//!   how the paper's Fig. 2 (Sandhills, everything preinstalled)
//!   becomes Fig. 3 (OSG, red install rectangles on every task);
//! * `stage_out` jobs return final outputs to the submit host;
//! * optional *horizontal clustering* merges small same-transformation
//!   jobs on the same DAG level, Pegasus's remote-overhead reduction.

use crate::catalog::{ReplicaCatalog, SiteCatalog, TransformationCatalog};
use crate::error::WmsError;
use crate::graph::Csr;
use crate::symbols::{FileId, SymbolTable};
use crate::workflow::{AbstractWorkflow, Job, JobId, LogicalFile};
use std::collections::HashMap;

/// The role of an executable job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// Creates the site-side working directory.
    CreateDir,
    /// Transfers an input file to the site.
    StageIn,
    /// Runs a (possibly clustered) transformation.
    Compute,
    /// Transfers a final output back to the submit host.
    StageOut,
    /// Removes the site-side working directory after stage-out.
    Cleanup,
}

impl std::fmt::Display for JobKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JobKind::CreateDir => "create_dir",
            JobKind::StageIn => "stage_in",
            JobKind::Compute => "compute",
            JobKind::StageOut => "stage_out",
            JobKind::Cleanup => "cleanup",
        };
        f.write_str(s)
    }
}

/// A planned, site-bound job.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutableJob {
    /// Index within the executable workflow.
    pub id: JobId,
    /// Unique display name, e.g. `"stage_in_alignments.out"`.
    pub name: String,
    /// Transformation name (for compute jobs) or an auxiliary-kind
    /// marker (`"pegasus::transfer"`, `"pegasus::dirmanager"`).
    pub transformation: String,
    /// Role of the job.
    pub kind: JobKind,
    /// Arguments (compute jobs carry their abstract arguments).
    pub args: Vec<String>,
    /// Estimated execution seconds on a reference core.
    pub runtime_hint: f64,
    /// Seconds of download/install required before execution on this
    /// site (0 when the software is preinstalled).
    pub install_hint: f64,
    /// The abstract job ids folded into this job (empty for auxiliary
    /// jobs; more than one after clustering).
    pub source_jobs: Vec<String>,
}

/// A planned workflow bound to one execution site.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutableWorkflow {
    /// Workflow name, carried from the abstract workflow.
    pub name: String,
    /// Target site handle.
    pub site: String,
    /// Planned jobs; [`JobId`]s index into this.
    pub jobs: Vec<ExecutableJob>,
    /// Dependency edges (parent, child), deduped and sorted.
    pub edges: Vec<(JobId, JobId)>,
}

impl ExecutableWorkflow {
    /// Parent adjacency in CSR form: `parents()[j]` is `j`'s parent
    /// slice, `parents().degree(j)` its indegree in O(1).
    pub fn parents(&self) -> Csr {
        Csr::reverse(self.jobs.len(), &self.edges)
    }

    /// Child adjacency in CSR form: `children()[j]` is `j`'s child
    /// slice, `children().degree(j)` its outdegree in O(1).
    pub fn children(&self) -> Csr {
        Csr::forward(self.jobs.len(), &self.edges)
    }

    /// Number of jobs of each kind.
    pub fn counts_by_kind(&self) -> HashMap<JobKind, usize> {
        let mut m = HashMap::new();
        for j in &self.jobs {
            *m.entry(j.kind).or_insert(0) += 1;
        }
        m
    }

    /// Sum of install hints across all jobs — the total extra work a
    /// software-bare site imposes.
    pub fn total_install_time(&self) -> f64 {
        self.jobs.iter().map(|j| j.install_hint).sum()
    }

    /// Kahn topological order.
    ///
    /// The planner only produces DAGs, but this is exposed to engines
    /// and tests that may assemble executable workflows by hand.
    ///
    /// # Errors
    /// Returns [`WmsError::InvariantViolation`] when the edge set is
    /// cyclic — previously a `debug_assert!` that release builds
    /// silently ignored, returning a truncated order.
    pub fn topological_order(&self) -> Result<Vec<JobId>, WmsError> {
        let children = self.children();
        children.topological_order().ok_or_else(|| {
            // Re-run Kahn tracking which nodes stay stuck, to name
            // the cycle members in the error.
            let mut indeg = children.reverse_degrees();
            let mut queue: std::collections::VecDeque<JobId> =
                children.nodes().filter(|&v| indeg[v.idx()] == 0).collect();
            while let Some(u) = queue.pop_front() {
                for &v in children.neighbors(u) {
                    indeg[v.idx()] -= 1;
                    if indeg[v.idx()] == 0 {
                        queue.push_back(v);
                    }
                }
            }
            let stuck: Vec<&str> = (0..self.jobs.len())
                .filter(|&i| indeg[i] > 0)
                .map(|i| self.jobs[i].name.as_str())
                .collect();
            WmsError::InvariantViolation {
                invariant: "executable workflow is a DAG".into(),
                detail: format!("cycle through {}", stuck.join(", ")),
            }
        })
    }

    /// Graphviz dot rendering (compute ovals, install-annotated jobs
    /// as Fig. 3-style boxes, transfers as diamonds).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph workflow {\n  rankdir=TB;\n");
        for j in &self.jobs {
            let shape = match j.kind {
                JobKind::Compute if j.install_hint > 0.0 => "box",
                JobKind::Compute => "ellipse",
                JobKind::StageIn | JobKind::StageOut => "diamond",
                JobKind::CreateDir | JobKind::Cleanup => "folder",
            };
            let color = (j.install_hint > 0.0).then_some("red");
            out.push_str(&crate::csv::dot_node(j.id, &j.name, shape, color));
        }
        for &(p, c) in &self.edges {
            out.push_str(&crate::csv::dot_edge(p, c));
        }
        out.push_str("}\n");
        out
    }
}

/// Planner options.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Site to bind the workflow to.
    pub target_site: String,
    /// Insert the leading `create_dir` job.
    pub add_create_dir: bool,
    /// Insert stage-in/stage-out transfer jobs based on the replica
    /// catalog.
    pub stage_data: bool,
    /// Horizontal clustering factor: merge up to this many
    /// same-transformation jobs on one DAG level into one clustered
    /// job. `None` disables clustering.
    pub cluster_factor: Option<usize>,
    /// Workflow reduction (Pegasus "data reuse"): prune jobs whose
    /// outputs the replica catalog already provides, cascading to
    /// producers that become dead.
    pub data_reuse: bool,
    /// Append a cleanup job that removes the site work directory once
    /// all stage-outs complete.
    pub add_cleanup: bool,
}

impl PlannerConfig {
    /// Default options for a site.
    pub fn for_site(site: impl Into<String>) -> Self {
        PlannerConfig {
            target_site: site.into(),
            add_create_dir: true,
            stage_data: true,
            cluster_factor: None,
            data_reuse: false,
            add_cleanup: false,
        }
    }
}

/// Workflow reduction (Pegasus's data-reuse step): removes every job
/// whose outputs are all already replicated at `site` (or on the
/// submit host), then cascades upward — a producer all of whose
/// consumers were removed, and whose outputs are not workflow-final,
/// is dead and removed too. Files that lose their producer become
/// external inputs, so the staging logic fetches them from the
/// replicas instead.
pub fn reduce_workflow(
    wf: &AbstractWorkflow,
    replicas: &ReplicaCatalog,
    site: &str,
) -> Result<AbstractWorkflow, WmsError> {
    let available = |f: &LogicalFile| {
        replicas.has_replica(&f.name, site) || replicas.has_replica(&f.name, "submit")
    };
    let n = wf.jobs.len();
    let mut removed = vec![false; n];
    // Pass 1: outputs already available.
    for (i, job) in wf.jobs.iter().enumerate() {
        if !job.outputs.is_empty() && job.outputs.iter().all(&available) {
            removed[i] = true;
        }
    }
    // Pass 2: cascade upward over the reverse topological order.
    let order = wf.topological_order()?;
    let edges = wf.edges()?;
    let consumers = Csr::forward(n, &edges);
    // Borrow final-output names out of one owned Vec instead of
    // cloning every String into the set.
    let finals = wf.final_outputs();
    let final_names: std::collections::HashSet<&str> =
        finals.iter().map(|f| f.name.as_str()).collect();
    for &i in order.iter().rev() {
        if removed[i.idx()] {
            continue;
        }
        let job = &wf.jobs[i.idx()];
        let produces_final = job
            .outputs
            .iter()
            .any(|f| final_names.contains(f.name.as_str()));
        let has_consumers = consumers.degree(i) > 0;
        let all_consumers_removed = consumers[i].iter().all(|&c| removed[c.idx()]);
        if !produces_final && has_consumers && all_consumers_removed
            || (!job.outputs.is_empty() && job.outputs.iter().all(&available))
        {
            removed[i.idx()] = true;
        }
    }
    let mut out = AbstractWorkflow::new(wf.name.clone());
    // Old index -> new id, so explicit edges remap in O(1) instead of
    // the old name-set + job_by_name linear rescans. The surviving
    // jobs land in one batch (per-job add_job scans are quadratic).
    let mut new_id: Vec<Option<JobId>> = vec![None; n];
    let mut kept = Vec::with_capacity(n);
    let mut next = 0usize;
    for (i, job) in wf.jobs.iter().enumerate() {
        if !removed[i] {
            new_id[i] = Some(JobId::new(next));
            next += 1;
            kept.push(job.clone());
        }
    }
    out.add_jobs(kept)?;
    for &(p, c) in &wf.explicit_edges {
        if let (Some(np), Some(nc)) = (new_id[p.idx()], new_id[c.idx()]) {
            out.add_edge(np, nc)?;
        }
    }
    out.validate()?;
    Ok(out)
}

/// Horizontal clustering: merges same-level, same-transformation jobs
/// into groups of at most `factor`, summing runtimes and unioning file
/// sets. Returns a new abstract workflow; `factor <= 1` returns a
/// clone.
pub fn cluster_workflow(
    wf: &AbstractWorkflow,
    factor: usize,
) -> Result<AbstractWorkflow, WmsError> {
    if factor <= 1 {
        return Ok(wf.clone());
    }
    let levels = wf.levels()?;
    // Group job indices by (level, transformation).
    let mut groups: HashMap<(usize, &str), Vec<JobId>> = HashMap::new();
    for (i, job) in wf.jobs.iter().enumerate() {
        groups
            .entry((levels[i], job.transformation.as_str()))
            .or_default()
            .push(JobId::new(i));
    }
    // Old job index -> new (possibly merged) job id, assigned as jobs
    // are pushed — explicit edges then remap by direct lookup instead
    // of the old name-string round-trip through job_by_name.
    let mut out = AbstractWorkflow::new(wf.name.clone());
    let mut new_id_of: Vec<JobId> = vec![JobId::default(); wf.jobs.len()];
    let mut clustered: Vec<Job> = Vec::new();
    let mut keys: Vec<(usize, &str)> = groups.keys().copied().collect();
    keys.sort();
    for key in keys {
        let members = &groups[&key];
        for (ci, batch) in members.chunks(factor).enumerate() {
            if batch.len() == 1 {
                let j = &wf.jobs[batch[0].idx()];
                new_id_of[batch[0].idx()] = JobId::new(clustered.len());
                clustered.push(j.clone());
                continue;
            }
            let mut merged = Job::new(
                format!("cluster_{}_{}_{}", key.1, key.0, ci),
                key.1.to_string(),
            );
            let mut runtime = 0.0;
            for &m in batch {
                let j = &wf.jobs[m.idx()];
                runtime += j.runtime_hint;
                merged.args.extend(j.args.iter().cloned());
                for f in &j.inputs {
                    if !merged.inputs.contains(f) {
                        merged.inputs.push(f.clone());
                    }
                }
                for f in &j.outputs {
                    merged.outputs.push(f.clone());
                }
            }
            merged.runtime_hint = runtime;
            // Inputs produced inside the cluster are internal.
            let produced: std::collections::HashSet<&str> =
                merged.outputs.iter().map(|f| f.name.as_str()).collect();
            merged
                .inputs
                .retain(|f| !produced.contains(f.name.as_str()));
            let merged_id = JobId::new(clustered.len());
            clustered.push(merged);
            for &m in batch {
                new_id_of[m.idx()] = merged_id;
            }
        }
    }
    // One batched insert: keeps the DuplicateJob check (a synthetic
    // cluster name can collide with an unclustered job's) at hash-set
    // cost instead of per-add scans.
    out.add_jobs(clustered)?;
    // Remap explicit edges.
    for &(p, c) in &wf.explicit_edges {
        let (np, nc) = (new_id_of[p.idx()], new_id_of[c.idx()]);
        if np != nc {
            out.add_edge(np, nc)?;
        }
    }
    out.validate()?;
    Ok(out)
}

/// Plans `abstract_wf` onto the configured site.
pub fn plan(
    abstract_wf: &AbstractWorkflow,
    sites: &SiteCatalog,
    transformations: &TransformationCatalog,
    replicas: &ReplicaCatalog,
    config: &PlannerConfig,
) -> Result<ExecutableWorkflow, WmsError> {
    let _prof = crate::prof::scope("plan");
    let site = sites.get(&config.target_site).ok_or_else(|| {
        let mut known = sites.names();
        known.sort();
        WmsError::UnknownSite {
            site: config.target_site.clone(),
            known,
        }
    })?;
    // Validation happens exactly once per workflow that matters:
    // reduce/cluster validate internally, and the planned workflow is
    // checked by `validated_edges` below — no upfront `validate()`
    // (which would recompute the full edge list) and no `clone()` of
    // the abstract workflow when no transform rewrites it. Both are
    // per-job costs that dominate planning at millions of jobs.
    let reduced;
    let pre_cluster = if config.data_reuse {
        reduced = reduce_workflow(abstract_wf, replicas, &config.target_site)?;
        &reduced
    } else {
        abstract_wf
    };
    let clustered;
    let wf = match config.cluster_factor {
        Some(k) => {
            clustered = cluster_workflow(pre_cluster, k)?;
            &clustered
        }
        None => pre_cluster,
    };

    let mut jobs: Vec<ExecutableJob> = Vec::new();
    let mut edges: Vec<(JobId, JobId)> = Vec::new();
    // Logical file names are interned once; staging and producer
    // lookups below key on the dense FileId, not the String.
    let mut files: SymbolTable<FileId> = SymbolTable::new();
    let push_job = |jobs: &mut Vec<ExecutableJob>, mut j: ExecutableJob| -> JobId {
        let id = JobId::new(jobs.len());
        j.id = id;
        jobs.push(j);
        id
    };

    // 1. create_dir.
    let create_dir = if config.add_create_dir {
        Some(push_job(
            &mut jobs,
            ExecutableJob {
                id: JobId::default(),
                name: format!("create_dir_{}", site.name),
                transformation: "pegasus::dirmanager".into(),
                kind: JobKind::CreateDir,
                args: vec![],
                runtime_hint: 1.0,
                install_hint: 0.0,
                source_jobs: vec![],
            },
        ))
    } else {
        None
    };

    // 2. stage-in jobs for external inputs absent from the site.
    let mut stage_in_of: HashMap<FileId, JobId> = HashMap::new();
    if config.stage_data {
        for f in wf.external_inputs() {
            if replicas.has_replica(&f.name, &site.name) {
                continue;
            }
            let runtime = transfer_seconds(&f, site.bandwidth_bps);
            let fid = files.intern(&f.name);
            let id = push_job(
                &mut jobs,
                ExecutableJob {
                    id: JobId::default(),
                    name: format!("stage_in_{}", f.name),
                    transformation: "pegasus::transfer".into(),
                    kind: JobKind::StageIn,
                    args: vec![f.name.clone()],
                    runtime_hint: runtime,
                    install_hint: 0.0,
                    source_jobs: vec![],
                },
            );
            if let Some(cd) = create_dir {
                edges.push((cd, id));
            }
            stage_in_of.insert(fid, id);
        }
    }

    // 3. compute jobs with install phases.
    // Dense abstract-index -> executable-id map (every abstract job
    // plans to exactly one compute job, in order).
    let mut compute_id_of: Vec<JobId> = Vec::with_capacity(wf.jobs.len());
    for aj in wf.jobs.iter() {
        let missing = transformations.missing_packages(&aj.transformation, site);
        let install_hint = if missing.is_empty() {
            0.0
        } else {
            let t = transformations
                .get(&aj.transformation)
                .expect("missing packages implies catalog entry");
            if !t.installable {
                return Err(WmsError::UnresolvableTransformation {
                    transformation: aj.transformation.clone(),
                    site: site.name.clone(),
                });
            }
            missing.len() as f64 * t.install_cost_per_pkg
        };
        let source_jobs = vec![aj.id.clone()];
        let id = push_job(
            &mut jobs,
            ExecutableJob {
                id: JobId::default(),
                name: aj.id.clone(),
                transformation: aj.transformation.clone(),
                kind: JobKind::Compute,
                args: aj.args.clone(),
                runtime_hint: aj.runtime_hint,
                install_hint,
                source_jobs,
            },
        );
        compute_id_of.push(id);
        // Stage-in edges.
        for f in &aj.inputs {
            if let Some(&sid) = files.get(&f.name).and_then(|fid| stage_in_of.get(&fid)) {
                edges.push((sid, id));
            }
        }
        // Root computes depend on create_dir.
        if let Some(cd) = create_dir {
            edges.push((cd, id));
        }
    }

    // 4. abstract dependency edges (and the acyclicity/producer
    // checks, which ride on the same edge computation).
    for (p, c) in wf.validated_edges()? {
        edges.push((compute_id_of[p.idx()], compute_id_of[c.idx()]));
    }

    // 5. stage-out jobs for final outputs.
    if config.stage_data {
        // Producer lookup restricted to the finals: a workflow has
        // millions of intermediate outputs but a handful of final
        // ones, so interning every output name here would dwarf the
        // stage-out work itself.
        let finals = wf.final_outputs();
        let final_names: std::collections::HashSet<&str> =
            finals.iter().map(|f| f.name.as_str()).collect();
        let mut producer: HashMap<&str, JobId> = HashMap::with_capacity(finals.len());
        for (ai, aj) in wf.jobs.iter().enumerate() {
            for f in &aj.outputs {
                if final_names.contains(f.name.as_str()) {
                    producer.insert(f.name.as_str(), compute_id_of[ai]);
                }
            }
        }
        for f in &finals {
            let runtime = transfer_seconds(f, site.bandwidth_bps);
            let id = push_job(
                &mut jobs,
                ExecutableJob {
                    id: JobId::default(),
                    name: format!("stage_out_{}", f.name),
                    transformation: "pegasus::transfer".into(),
                    kind: JobKind::StageOut,
                    args: vec![f.name.clone()],
                    runtime_hint: runtime,
                    install_hint: 0.0,
                    source_jobs: vec![],
                },
            );
            if let Some(&p) = producer.get(f.name.as_str()) {
                edges.push((p, id));
            }
        }
    }

    // 6. cleanup job after every leaf.
    if config.add_cleanup && !jobs.is_empty() {
        let mut has_children = vec![false; jobs.len()];
        for &(p, _) in &edges {
            has_children[p.idx()] = true;
        }
        let leaves: Vec<JobId> = (0..jobs.len())
            .filter(|&i| !has_children[i])
            .map(JobId::new)
            .collect();
        let id = push_job(
            &mut jobs,
            ExecutableJob {
                id: JobId::default(),
                name: format!("cleanup_{}", site.name),
                transformation: "pegasus::cleanup".into(),
                kind: JobKind::Cleanup,
                args: vec![],
                runtime_hint: 1.0,
                install_hint: 0.0,
                source_jobs: vec![],
            },
        );
        for l in leaves {
            edges.push((l, id));
        }
    }

    edges.sort_unstable();
    edges.dedup();
    // Drop redundant create_dir->compute edges where another parent
    // already transitively implies them (keep simple: retain; engines
    // tolerate redundant edges).
    Ok(ExecutableWorkflow {
        name: wf.name.clone(),
        site: site.name.clone(),
        jobs,
        edges,
    })
}

/// Transfer time estimate: size over bandwidth with a 1-second floor
/// (connection setup), matching the coarse costs Pegasus planners use.
fn transfer_seconds(f: &LogicalFile, bandwidth_bps: f64) -> f64 {
    (f.size_bytes as f64 / bandwidth_bps.max(1.0)).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::paper_catalogs;

    /// A miniature blast2cap3-shaped workflow: 2 list jobs, split,
    /// n=3 run_cap3, merge, extract_unjoined.
    fn mini_blast2cap3(n: usize) -> AbstractWorkflow {
        let mut wf = AbstractWorkflow::new("blast2cap3");
        wf.add_job(
            Job::new("list_transcripts", "list_transcripts")
                .input(LogicalFile::sized("transcripts.fasta", 404_000_000))
                .output(LogicalFile::named("transcripts_dict.txt"))
                .runtime(120.0),
        )
        .unwrap();
        wf.add_job(
            Job::new("list_alignments", "list_alignments")
                .input(LogicalFile::sized("alignments.out", 155_000_000))
                .output(LogicalFile::named("alignments_list.txt"))
                .runtime(90.0),
        )
        .unwrap();
        let mut split = Job::new("split", "split")
            .input(LogicalFile::named("alignments_list.txt"))
            .runtime(60.0);
        for i in 0..n {
            split = split.output(LogicalFile::named(format!("protein_{i}.txt")));
        }
        wf.add_job(split).unwrap();
        for i in 0..n {
            wf.add_job(
                Job::new(format!("run_cap3_{i}"), "run_cap3")
                    .input(LogicalFile::named("transcripts_dict.txt"))
                    .input(LogicalFile::named(format!("protein_{i}.txt")))
                    .output(LogicalFile::named(format!("joined_{i}.fasta")))
                    .runtime(1000.0),
            )
            .unwrap();
        }
        let mut merge = Job::new("merge", "merge")
            .output(LogicalFile::named("joined_all.fasta"))
            .runtime(30.0);
        for i in 0..n {
            merge = merge.input(LogicalFile::named(format!("joined_{i}.fasta")));
        }
        wf.add_job(merge).unwrap();
        wf.add_job(
            Job::new("extract_unjoined", "extract_unjoined")
                .input(LogicalFile::named("transcripts_dict.txt"))
                .input(LogicalFile::named("joined_all.fasta"))
                .output(LogicalFile::named("final.fasta"))
                .runtime(45.0),
        )
        .unwrap();
        wf
    }

    fn catalogs_with_submit_replicas() -> (SiteCatalog, TransformationCatalog, ReplicaCatalog) {
        let (sites, tc) = paper_catalogs();
        let mut rc = ReplicaCatalog::new();
        rc.register("transcripts.fasta", "submit");
        rc.register("alignments.out", "submit");
        (sites, tc, rc)
    }

    #[test]
    fn unknown_site_fails() {
        let (sites, tc, rc) = catalogs_with_submit_replicas();
        let wf = mini_blast2cap3(3);
        let err = plan(&wf, &sites, &tc, &rc, &PlannerConfig::for_site("mars")).unwrap_err();
        assert_eq!(
            err,
            WmsError::UnknownSite {
                site: "mars".into(),
                known: vec!["osg".into(), "sandhills".into()],
            }
        );
    }

    #[test]
    fn sandhills_plan_has_no_install_time() {
        let (sites, tc, rc) = catalogs_with_submit_replicas();
        let wf = mini_blast2cap3(3);
        let exec = plan(&wf, &sites, &tc, &rc, &PlannerConfig::for_site("sandhills")).unwrap();
        assert_eq!(exec.total_install_time(), 0.0);
        let counts = exec.counts_by_kind();
        assert_eq!(counts[&JobKind::Compute], 3 + 3 + 2); // lists+split+cap3s+merge+extract = 8
        assert_eq!(counts[&JobKind::StageIn], 2);
        assert_eq!(counts[&JobKind::StageOut], 1);
        assert_eq!(counts[&JobKind::CreateDir], 1);
    }

    #[test]
    fn osg_plan_attaches_install_to_every_compute_job() {
        let (sites, tc, rc) = catalogs_with_submit_replicas();
        let wf = mini_blast2cap3(3);
        let exec = plan(&wf, &sites, &tc, &rc, &PlannerConfig::for_site("osg")).unwrap();
        assert!(exec.total_install_time() > 0.0);
        for j in &exec.jobs {
            match j.kind {
                JobKind::Compute => {
                    assert!(j.install_hint > 0.0, "{} must need install on OSG", j.name)
                }
                _ => assert_eq!(j.install_hint, 0.0),
            }
        }
        // run_cap3 needs 3 packages; list jobs need 1.
        let cap3 = exec.jobs.iter().find(|j| j.name == "run_cap3_0").unwrap();
        let list = exec
            .jobs
            .iter()
            .find(|j| j.name == "list_transcripts")
            .unwrap();
        assert!(cap3.install_hint > list.install_hint);
    }

    #[test]
    fn cyclic_executable_workflow_is_a_typed_error() {
        // Formerly a debug_assert!: release builds used to return a
        // silently truncated order for a cyclic edge set.
        let cyclic = ExecutableWorkflow {
            name: "w".into(),
            site: "test".into(),
            jobs: vec![
                ExecutableJob {
                    id: JobId::new(0),
                    name: "a".into(),
                    transformation: "t".into(),
                    kind: JobKind::Compute,
                    args: vec![],
                    runtime_hint: 1.0,
                    install_hint: 0.0,
                    source_jobs: vec![],
                },
                ExecutableJob {
                    id: JobId::new(1),
                    name: "b".into(),
                    transformation: "t".into(),
                    kind: JobKind::Compute,
                    args: vec![],
                    runtime_hint: 1.0,
                    install_hint: 0.0,
                    source_jobs: vec![],
                },
            ],
            edges: vec![
                (JobId::new(0), JobId::new(1)),
                (JobId::new(1), JobId::new(0)),
            ],
        };
        let err = cyclic.topological_order().unwrap_err();
        assert!(
            matches!(err, WmsError::InvariantViolation { .. }),
            "{err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains('a') && msg.contains('b'), "{msg}");
    }

    #[test]
    fn edges_respect_dataflow_and_staging() {
        let (sites, tc, rc) = catalogs_with_submit_replicas();
        let wf = mini_blast2cap3(2);
        let exec = plan(&wf, &sites, &tc, &rc, &PlannerConfig::for_site("sandhills")).unwrap();
        let name_of = |id: JobId| exec.jobs[id.idx()].name.as_str();
        let has_edge = |p: &str, c: &str| {
            exec.edges
                .iter()
                .any(|&(a, b)| name_of(a) == p && name_of(b) == c)
        };
        assert!(has_edge("stage_in_transcripts.fasta", "list_transcripts"));
        assert!(has_edge("stage_in_alignments.out", "list_alignments"));
        assert!(has_edge("list_alignments", "split"));
        assert!(has_edge("split", "run_cap3_0"));
        assert!(has_edge("run_cap3_1", "merge"));
        assert!(has_edge("merge", "extract_unjoined"));
        assert!(has_edge("extract_unjoined", "stage_out_final.fasta"));
        // The planned graph is a DAG covering every job.
        assert_eq!(exec.topological_order().unwrap().len(), exec.jobs.len());
    }

    #[test]
    fn replicas_at_site_suppress_stage_in() {
        let (sites, tc, mut rc) = catalogs_with_submit_replicas();
        rc.register("transcripts.fasta", "sandhills");
        rc.register("alignments.out", "sandhills");
        let wf = mini_blast2cap3(2);
        let exec = plan(&wf, &sites, &tc, &rc, &PlannerConfig::for_site("sandhills")).unwrap();
        assert_eq!(exec.counts_by_kind().get(&JobKind::StageIn), None);
    }

    #[test]
    fn staging_can_be_disabled() {
        let (sites, tc, rc) = catalogs_with_submit_replicas();
        let mut cfg = PlannerConfig::for_site("sandhills");
        cfg.stage_data = false;
        cfg.add_create_dir = false;
        let exec = plan(&mini_blast2cap3(2), &sites, &tc, &rc, &cfg).unwrap();
        let counts = exec.counts_by_kind();
        assert_eq!(counts.len(), 1);
        assert!(counts.contains_key(&JobKind::Compute));
    }

    #[test]
    fn not_installable_transformation_fails_on_bare_site() {
        let (sites, mut tc, rc) = catalogs_with_submit_replicas();
        tc.add(
            crate::catalog::Transformation::new("run_cap3")
                .requires_pkg("cap3")
                .not_installable(),
        );
        let err = plan(
            &mini_blast2cap3(2),
            &sites,
            &tc,
            &rc,
            &PlannerConfig::for_site("osg"),
        )
        .unwrap_err();
        assert!(matches!(err, WmsError::UnresolvableTransformation { .. }));
    }

    #[test]
    fn clustering_reduces_job_count_and_preserves_work() {
        let wf = mini_blast2cap3(6);
        let clustered = cluster_workflow(&wf, 3).unwrap();
        // 6 run_cap3 jobs -> 2 clustered jobs; other singles unchanged.
        assert_eq!(clustered.jobs.len(), wf.jobs.len() - 6 + 2);
        let total: f64 = wf.jobs.iter().map(|j| j.runtime_hint).sum();
        let total_c: f64 = clustered.jobs.iter().map(|j| j.runtime_hint).sum();
        assert!((total - total_c).abs() < 1e-9);
        clustered.validate().unwrap();
        // Clustered workflow still plans.
        let (sites, tc, rc) = catalogs_with_submit_replicas();
        let mut cfg = PlannerConfig::for_site("sandhills");
        cfg.cluster_factor = Some(3);
        let exec = plan(&wf, &sites, &tc, &rc, &cfg).unwrap();
        let cap3_jobs = exec
            .jobs
            .iter()
            .filter(|j| j.transformation == "run_cap3")
            .count();
        assert_eq!(cap3_jobs, 2);
    }

    #[test]
    fn cluster_factor_one_is_identity() {
        let wf = mini_blast2cap3(4);
        assert_eq!(cluster_workflow(&wf, 1).unwrap(), wf);
        assert_eq!(cluster_workflow(&wf, 0).unwrap(), wf);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let small = LogicalFile::sized("s", 1_000);
        let big = LogicalFile::sized("b", 10_000_000_000);
        assert_eq!(transfer_seconds(&small, 100e6), 1.0); // floor
        assert!(transfer_seconds(&big, 100e6) > 99.0);
    }

    #[test]
    fn dot_export_marks_install_jobs_red() {
        let (sites, tc, rc) = catalogs_with_submit_replicas();
        let wf = mini_blast2cap3(2);
        let osg = plan(&wf, &sites, &tc, &rc, &PlannerConfig::for_site("osg")).unwrap();
        let dot = osg.to_dot();
        assert!(dot.contains("color=red"));
        assert!(dot.contains("digraph"));
        let sh = plan(&wf, &sites, &tc, &rc, &PlannerConfig::for_site("sandhills")).unwrap();
        assert!(!sh.to_dot().contains("color=red"));
    }

    #[test]
    fn data_reuse_prunes_replicated_outputs() {
        // Register every run_cap3 output as already available: the
        // reduction must prune the cap3 jobs AND the now-dead split
        // and list_alignments producers, keeping merge/extract (their
        // inputs come from replicas via stage-in).
        let (sites, tc, mut rc) = catalogs_with_submit_replicas();
        let wf = mini_blast2cap3(3);
        for i in 0..3 {
            rc.register(format!("joined_{i}.fasta"), "sandhills");
        }
        let reduced = reduce_workflow(&wf, &rc, "sandhills").unwrap();
        assert!(reduced.job_by_name("run_cap3_0").is_none());
        assert!(reduced.job_by_name("run_cap3_1").is_none());
        assert!(reduced.job_by_name("split").is_none(), "split is dead");
        assert!(
            reduced.job_by_name("list_alignments").is_none(),
            "list_alignments is dead"
        );
        // list_transcripts survives: extract_unjoined consumes its dict.
        assert!(reduced.job_by_name("list_transcripts").is_some());
        assert!(reduced.job_by_name("merge").is_some());
        assert!(reduced.job_by_name("extract_unjoined").is_some());

        // Planning the reduced workflow stages the replicated chunks in.
        let mut cfg = PlannerConfig::for_site("sandhills");
        cfg.data_reuse = true;
        let exec = plan(&wf, &sites, &tc, &rc, &cfg).unwrap();
        let computes = exec.counts_by_kind()[&JobKind::Compute];
        assert_eq!(computes, 3); // list_transcripts, merge, extract_unjoined
                                 // joined_i come from replicas at the site: no stage-in needed
                                 // for them, but the original external inputs still stage.
        assert_eq!(exec.topological_order().unwrap().len(), exec.jobs.len());
    }

    #[test]
    fn data_reuse_keeps_everything_without_replicas() {
        let (_, _, rc) = catalogs_with_submit_replicas();
        let wf = mini_blast2cap3(3);
        let reduced = reduce_workflow(&wf, &rc, "sandhills").unwrap();
        assert_eq!(reduced.jobs.len(), wf.jobs.len());
    }

    #[test]
    fn data_reuse_never_prunes_final_output_producers() {
        let (_, _, mut rc) = catalogs_with_submit_replicas();
        let wf = mini_blast2cap3(2);
        // Even with every intermediate replicated, the final producer
        // stays unless final.fasta itself is replicated.
        for i in 0..2 {
            rc.register(format!("joined_{i}.fasta"), "sandhills");
        }
        rc.register("joined_all.fasta", "sandhills");
        rc.register("joined_ids_all.txt", "sandhills");
        rc.register("transcripts_dict.txt", "sandhills");
        let reduced = reduce_workflow(&wf, &rc, "sandhills").unwrap();
        assert_eq!(reduced.jobs.len(), 1);
        assert!(reduced.job_by_name("extract_unjoined").is_some());
    }

    #[test]
    fn cleanup_job_is_appended_after_all_leaves() {
        let (sites, tc, rc) = catalogs_with_submit_replicas();
        let mut cfg = PlannerConfig::for_site("sandhills");
        cfg.add_cleanup = true;
        let exec = plan(&mini_blast2cap3(2), &sites, &tc, &rc, &cfg).unwrap();
        let counts = exec.counts_by_kind();
        assert_eq!(counts[&JobKind::Cleanup], 1);
        // The cleanup job is the unique sink.
        let children = exec.children();
        let sinks: Vec<JobId> = children
            .nodes()
            .filter(|&i| children.degree(i) == 0)
            .collect();
        assert_eq!(sinks.len(), 1);
        assert_eq!(exec.jobs[sinks[0].idx()].kind, JobKind::Cleanup);
        assert_eq!(exec.topological_order().unwrap().len(), exec.jobs.len());
    }

    #[test]
    fn all_planner_options_compose() {
        // Reduction + clustering + cleanup + staging together must
        // still yield a valid DAG with conserved compute runtime for
        // the surviving jobs.
        let (sites, tc, mut rc) = catalogs_with_submit_replicas();
        // Two cap3 outputs already replicated: those jobs are pruned.
        rc.register("joined_0.fasta", "osg");
        rc.register("joined_ids_0.txt", "osg");
        let wf = mini_blast2cap3(6);
        let mut cfg = PlannerConfig::for_site("osg");
        cfg.cluster_factor = Some(2);
        cfg.data_reuse = true;
        cfg.add_cleanup = true;
        let exec = plan(&wf, &sites, &tc, &rc, &cfg).unwrap();
        assert_eq!(exec.topological_order().unwrap().len(), exec.jobs.len());
        let counts = exec.counts_by_kind();
        assert_eq!(counts[&JobKind::Cleanup], 1);
        assert_eq!(counts[&JobKind::CreateDir], 1);
        // run_cap3_0 was pruned by data reuse; the remaining 5 cap3
        // jobs cluster into ceil(5/2) = 3 jobs.
        let cap3_jobs = exec
            .jobs
            .iter()
            .filter(|j| j.transformation == "run_cap3")
            .count();
        assert_eq!(cap3_jobs, 3);
        // Every OSG compute job still carries its install phase.
        for j in &exec.jobs {
            if j.kind == JobKind::Compute {
                assert!(j.install_hint > 0.0, "{}", j.name);
            }
        }
    }

    #[test]
    fn fig2_shape_job_counts_scale_with_n() {
        // Fig. 2: 2 list tasks + split + n cap3 + merge + extract.
        let (sites, tc, rc) = catalogs_with_submit_replicas();
        for n in [10usize, 100, 300] {
            let exec = plan(
                &mini_blast2cap3(n),
                &sites,
                &tc,
                &rc,
                &PlannerConfig::for_site("sandhills"),
            )
            .unwrap();
            let counts = exec.counts_by_kind();
            assert_eq!(counts[&JobKind::Compute], n + 5, "n={n}");
        }
    }
}

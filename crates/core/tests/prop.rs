//! Property-based tests for the WMS core: DAX round-trips over
//! generated workflows, topological-order laws, planner invariants,
//! and engine determinism on the scripted backend model.

use pegasus_wms::catalog::{paper_catalogs, ReplicaCatalog};
use pegasus_wms::dax;
use pegasus_wms::engine::scripted::ScriptedBackend;
use pegasus_wms::engine::{Engine, EngineConfig, JobState, NoopMonitor, WorkflowOutcome};
use pegasus_wms::ensemble::{Ensemble, EnsembleConfig, Submission};
use pegasus_wms::events;
use pegasus_wms::graph::Csr;
use pegasus_wms::lint;
use pegasus_wms::planner::{cluster_workflow, plan, JobKind, PlannerConfig};
use pegasus_wms::rescue::RescueDag;
use pegasus_wms::serve;
use pegasus_wms::statistics::{compute, render_summary_csv};
use pegasus_wms::symbols::{FileId, SymbolTable};
use pegasus_wms::workflow::JobId;
use pegasus_wms::workflow::{AbstractWorkflow, Job, LogicalFile};
use proptest::prelude::*;
use std::collections::HashMap;

/// Generates a random *layered* DAG workflow: `layers` layers of up to
/// `width` jobs; each job consumes a random subset of the previous
/// layer's outputs. Layered construction guarantees acyclicity while
/// exercising arbitrary fan-in/fan-out.
fn layered_workflow(layers: usize, width: usize, edge_bits: u64) -> AbstractWorkflow {
    let mut wf = AbstractWorkflow::new("generated");
    let mut prev_outputs: Vec<String> = Vec::new();
    let mut bit = 0u32;
    let mut next_bit = move || {
        let b = (edge_bits >> (bit % 64)) & 1 == 1;
        bit += 1;
        b
    };
    for layer in 0..layers {
        let mut outputs_this_layer = Vec::new();
        for w in 0..width {
            let id = format!("j_{layer}_{w}");
            let mut job = Job::new(&id, format!("t{}", (layer + w) % 3))
                .runtime(1.0 + (layer * width + w) as f64);
            let out = format!("f_{layer}_{w}");
            job = job.output(LogicalFile::named(&out));
            for prev in &prev_outputs {
                if next_bit() {
                    job = job.input(LogicalFile::named(prev));
                }
            }
            outputs_this_layer.push(out);
            wf.add_job(job).expect("unique ids");
        }
        prev_outputs = outputs_this_layer;
    }
    wf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_workflows_validate(layers in 1usize..5, width in 1usize..5, bits: u64) {
        let wf = layered_workflow(layers, width, bits);
        prop_assert!(wf.validate().is_ok());
    }

    #[test]
    fn topological_order_is_a_valid_linearisation(
        layers in 1usize..5, width in 1usize..5, bits: u64
    ) {
        let wf = layered_workflow(layers, width, bits);
        let order = wf.topological_order().unwrap();
        prop_assert_eq!(order.len(), wf.jobs.len());
        let pos: HashMap<JobId, usize> =
            order.iter().enumerate().map(|(i, &j)| (j, i)).collect();
        for (p, c) in wf.edges().unwrap() {
            prop_assert!(pos[&p] < pos[&c]);
        }
    }

    #[test]
    fn dax_round_trip_preserves_workflows(
        layers in 1usize..5, width in 1usize..5, bits: u64
    ) {
        let wf = layered_workflow(layers, width, bits);
        let text = dax::to_dax(&wf);
        let back = dax::from_dax(&text).unwrap();
        prop_assert_eq!(back.jobs.len(), wf.jobs.len());
        for (a, b) in back.jobs.iter().zip(&wf.jobs) {
            prop_assert_eq!(&a.id, &b.id);
            prop_assert_eq!(&a.transformation, &b.transformation);
            prop_assert_eq!(&a.inputs, &b.inputs);
            prop_assert_eq!(&a.outputs, &b.outputs);
        }
        prop_assert_eq!(back.edges().unwrap(), wf.edges().unwrap());
    }

    #[test]
    fn planning_preserves_compute_work(
        layers in 1usize..4, width in 1usize..5, bits: u64
    ) {
        let wf = layered_workflow(layers, width, bits);
        let (sites, tc) = paper_catalogs();
        let rc = ReplicaCatalog::new();
        for site in ["sandhills", "osg"] {
            let exec = plan(&wf, &sites, &tc, &rc, &PlannerConfig::for_site(site)).unwrap();
            // Every abstract job appears exactly once as a compute job.
            let computes = exec
                .jobs
                .iter()
                .filter(|j| j.kind == JobKind::Compute)
                .count();
            prop_assert_eq!(computes, wf.jobs.len());
            // Total compute runtime is preserved by planning.
            let total_abstract: f64 = wf.jobs.iter().map(|j| j.runtime_hint).sum();
            let total_planned: f64 = exec
                .jobs
                .iter()
                .filter(|j| j.kind == JobKind::Compute)
                .map(|j| j.runtime_hint)
                .sum();
            prop_assert!((total_abstract - total_planned).abs() < 1e-9);
            // The planned graph stays a DAG.
            prop_assert_eq!(exec.topological_order().unwrap().len(), exec.jobs.len());
        }
    }

    #[test]
    fn clustering_preserves_total_runtime(
        layers in 1usize..4, width in 2usize..6, bits: u64, factor in 2usize..5
    ) {
        let wf = layered_workflow(layers, width, bits);
        let clustered = cluster_workflow(&wf, factor).unwrap();
        prop_assert!(clustered.jobs.len() <= wf.jobs.len());
        let before: f64 = wf.jobs.iter().map(|j| j.runtime_hint).sum();
        let after: f64 = clustered.jobs.iter().map(|j| j.runtime_hint).sum();
        prop_assert!((before - after).abs() < 1e-9);
        prop_assert!(clustered.validate().is_ok());
    }

    /// Chaos: random failure plans over random layered workflows.
    /// Engine invariants that must hold no matter what fails:
    /// * every job ends Done, Failed, or Unready;
    /// * a Failed job consumed exactly `max_retries + 1` attempts;
    /// * every Unready job has a Failed or Unready ancestor;
    /// * on failure, resubmitting with the rescue DAG on a healthy
    ///   backend completes the workflow and re-runs no Done job.
    #[test]
    fn engine_chaos_invariants(
        layers in 1usize..4,
        width in 1usize..4,
        bits: u64,
        fail_mask in 0u64..u64::MAX,
        max_retries in 0u32..3,
    ) {
        let wf = layered_workflow(layers, width, bits);
        let (sites, tc) = paper_catalogs();
        let rc = ReplicaCatalog::new();
        let mut cfg = PlannerConfig::for_site("sandhills");
        cfg.add_create_dir = false;
        cfg.stage_data = false;
        let exec = plan(&wf, &sites, &tc, &rc, &cfg).unwrap();

        let mut be = ScriptedBackend::new();
        // Fail plan: job i fails attempts 0..=k where k comes from
        // fail_mask nibbles (0 = never fails).
        for (i, j) in exec.jobs.iter().enumerate() {
            let k = ((fail_mask >> ((i % 16) * 4)) & 0xF) as u32;
            for attempt in 0..k.min(5) {
                be.fail_plan.insert((j.name.clone(), attempt));
            }
        }
        let run = Engine::run(
            &mut be,
            &exec,
            &EngineConfig::builder().retries(max_retries).build(),
            &mut NoopMonitor,
        );

        let parents = exec.parents();
        for rec in &run.records {
            match rec.state {
                JobState::Done => {
                    prop_assert!(rec.times.is_some());
                    prop_assert!(rec.attempts >= 1);
                }
                JobState::Failed => {
                    prop_assert_eq!(rec.attempts, max_retries + 1);
                    prop_assert_eq!(rec.failed_attempts.len() as u32, rec.attempts);
                }
                JobState::Unready => {
                    prop_assert_eq!(rec.attempts, 0);
                    // Some ancestor failed or was itself unready.
                    let blocked = parents[rec.job].iter().any(|&p| {
                        matches!(
                            run.records[p.idx()].state,
                            JobState::Failed | JobState::Unready
                        )
                    });
                    prop_assert!(blocked, "unready {} with live parents", rec.name);
                }
                JobState::SkippedDone => prop_assert!(false, "no skips configured"),
            }
        }

        match &run.outcome {
            WorkflowOutcome::Success => {
                prop_assert!(run
                    .records
                    .iter()
                    .all(|r| r.state == JobState::Done));
            }
            WorkflowOutcome::Failed(rescue) => {
                // Resume on a healthy backend completes everything.
                let mut healthy = ScriptedBackend::new();
                let resumed = Engine::run(
                    &mut healthy,
                    &exec,
                    &EngineConfig::builder().rescue(rescue).build(),
                    &mut NoopMonitor,
                );
                prop_assert!(resumed.succeeded());
                let skipped: std::collections::HashSet<&str> = resumed
                    .records
                    .iter()
                    .filter(|r| r.state == JobState::SkippedDone)
                    .map(|r| r.name.as_str())
                    .collect();
                for name in &rescue.done {
                    prop_assert!(skipped.contains(name.as_str()));
                }
                // Healthy backend never re-ran a rescued job.
                for (name, _) in &healthy.log {
                    prop_assert!(!rescue.done.contains(name));
                }
            }
        }
    }

    /// Offline provenance equals live provenance: for any workflow
    /// shape, fail plan, and retry budget, writing the event stream to
    /// its text log, parsing it back, and replaying it reconstructs
    /// the run exactly — same statistics CSVs, and (on failure) the
    /// same rescue DAG text.
    #[test]
    fn event_log_round_trip_preserves_statistics_and_rescue(
        layers in 1usize..4,
        width in 1usize..4,
        bits: u64,
        fail_mask in 0u64..u64::MAX,
        max_retries in 0u32..3,
    ) {
        let wf = layered_workflow(layers, width, bits);
        let (sites, tc) = paper_catalogs();
        let rc = ReplicaCatalog::new();
        let mut cfg = PlannerConfig::for_site("sandhills");
        cfg.add_create_dir = false;
        cfg.stage_data = false;
        let exec = plan(&wf, &sites, &tc, &rc, &cfg).unwrap();

        let mut be = ScriptedBackend::new();
        for (i, j) in exec.jobs.iter().enumerate() {
            let k = ((fail_mask >> ((i % 16) * 4)) & 0xF) as u32;
            for attempt in 0..k.min(5) {
                be.fail_plan.insert((j.name.clone(), attempt));
            }
        }
        let run = Engine::run(
            &mut be,
            &exec,
            &EngineConfig::builder().retries(max_retries).build(),
            &mut NoopMonitor,
        );

        let text = events::log::write(&run.events);
        let parsed = events::log::parse(&text).unwrap();
        prop_assert_eq!(&parsed, &run.events);
        let replayed = events::replay(&parsed).unwrap();
        prop_assert_eq!(
            render_summary_csv(&compute(&replayed)),
            render_summary_csv(&compute(&run))
        );
        if let WorkflowOutcome::Failed(rescue) = &run.outcome {
            let offline = events::rescue_from_events(&parsed)
                .unwrap()
                .expect("failed run must yield a rescue DAG");
            prop_assert_eq!(offline.to_text(), rescue.to_text());
        }
        prop_assert_eq!(replayed, run);
    }

    /// Submit-host crash at an arbitrary event index, then resume from
    /// the rescue DAG: the resumed run must finish with the same final
    /// states and per-job attempt counts as an uninterrupted run, and
    /// must never re-execute a job the rescue recorded as DONE.
    #[test]
    fn crash_and_resume_matches_uninterrupted_run(
        layers in 1usize..4,
        width in 1usize..4,
        bits: u64,
        fail_mask in 0u64..u64::MAX,
        crash_at in 1u64..40,
    ) {
        let wf = layered_workflow(layers, width, bits);
        let (sites, tc) = paper_catalogs();
        let rc = ReplicaCatalog::new();
        let mut cfg = PlannerConfig::for_site("sandhills");
        cfg.add_create_dir = false;
        cfg.stage_data = false;
        let exec = plan(&wf, &sites, &tc, &rc, &cfg).unwrap();

        // Deterministic fail plan: job i fails its first k < 3 attempts,
        // then succeeds; with 3 retries the workflow always completes.
        let scripted = |exec: &pegasus_wms::planner::ExecutableWorkflow| {
            let mut be = ScriptedBackend::new();
            for (i, j) in exec.jobs.iter().enumerate() {
                let k = ((fail_mask >> ((i % 21) * 3)) & 0b11) as u32;
                for attempt in 0..k {
                    be.fail_plan.insert((j.name.clone(), attempt));
                }
            }
            be
        };

        let baseline = Engine::run(
            &mut scripted(&exec),
            &exec,
            &EngineConfig::builder().retries(3).build(),
            &mut NoopMonitor,
        );
        prop_assert!(baseline.succeeded());

        let crash_cfg = EngineConfig::builder()
            .retries(3)
            .crash_after_events(crash_at)
            .build();
        let crashed = Engine::run(&mut scripted(&exec), &exec, &crash_cfg, &mut NoopMonitor);

        match &crashed.outcome {
            WorkflowOutcome::Success => {
                // The crash index landed at or past the final event: a
                // clean finish, identical to the baseline.
                prop_assert!(crashed.records.iter().all(|r| r.state == JobState::Done));
            }
            WorkflowOutcome::Failed(rescue) => {
                let mut resume_be = scripted(&exec);
                let resumed = Engine::run(
                    &mut resume_be,
                    &exec,
                    &EngineConfig::builder().retries(3).rescue(rescue).build(),
                    &mut NoopMonitor,
                );
                prop_assert!(resumed.succeeded(), "resume must complete");
                for (r, b) in resumed.records.iter().zip(&baseline.records) {
                    prop_assert_eq!(&r.name, &b.name);
                    match r.state {
                        // Re-run jobs replay the same scripted failures,
                        // so their attempt counts match the baseline.
                        JobState::Done => prop_assert_eq!(r.attempts, b.attempts),
                        JobState::SkippedDone => {
                            prop_assert!(rescue.done.contains(&r.name));
                        }
                        other => prop_assert!(false, "{} ended {:?}", r.name, other),
                    }
                }
                // The backend never saw a rescued job again.
                for (name, _) in &resume_be.log {
                    prop_assert!(!rescue.done.contains(name));
                }
            }
        }
    }

    /// An ensemble of exactly one workflow must be indistinguishable
    /// from `Engine::run` — same submission tape on the backend, same
    /// per-job records, byte-identical summary CSV — for any workflow
    /// shape, fail plan, and retry budget.
    #[test]
    fn ensemble_of_one_equals_engine_run(
        layers in 1usize..4,
        width in 1usize..4,
        bits: u64,
        fail_mask in 0u64..u64::MAX,
        max_retries in 0u32..3,
        seed: u64,
    ) {
        let wf = layered_workflow(layers, width, bits);
        let (sites, tc) = paper_catalogs();
        let rc = ReplicaCatalog::new();
        let mut pcfg = PlannerConfig::for_site("sandhills");
        pcfg.add_create_dir = false;
        pcfg.stage_data = false;
        let exec = plan(&wf, &sites, &tc, &rc, &pcfg).unwrap();

        let scripted = || {
            let mut be = ScriptedBackend::new();
            for (i, j) in exec.jobs.iter().enumerate() {
                let k = ((fail_mask >> ((i % 16) * 4)) & 0xF) as u32;
                for attempt in 0..k.min(5) {
                    be.fail_plan.insert((j.name.clone(), attempt));
                }
            }
            be
        };
        let cfg = EngineConfig::builder()
            .policy(pegasus_wms::engine::RetryPolicy::exponential(max_retries, 13.0))
            .seed(seed)
            .build();

        let mut single_be = scripted();
        let single = Engine::run(&mut single_be, &exec, &cfg, &mut NoopMonitor);

        let mut ens_be = scripted();
        let ens = Ensemble::run_to_completion(
            &mut ens_be,
            vec![Submission::new(exec.clone(), cfg)],
            &EnsembleConfig::default(),
        )
        .unwrap();

        prop_assert_eq!(&single_be.log, &ens_be.log, "submission tapes diverge");
        let e = &ens.runs[0];
        prop_assert_eq!(single.wall_time, e.wall_time);
        prop_assert_eq!(single.succeeded(), e.succeeded());
        for (a, b) in single.records.iter().zip(&e.records) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.state, b.state);
            prop_assert_eq!(a.attempts, b.attempts);
            prop_assert_eq!(a.times, b.times);
            prop_assert_eq!(&a.failure_reasons, &b.failure_reasons);
        }
        prop_assert_eq!(
            render_summary_csv(&compute(&single)),
            render_summary_csv(&compute(e))
        );
    }

    /// Catalog files round-trip arbitrary site/transformation shapes.
    #[test]
    fn catalog_io_round_trip(
        site_specs in proptest::collection::vec(
            ("[a-z][a-z0-9_]{0,12}", proptest::collection::vec("[a-z]{2,8}", 0..4), any::<bool>(), 1u32..100, 1u32..40),
            1..5
        ),
        tc_specs in proptest::collection::vec(
            ("[a-z][a-z0-9_]{0,12}", proptest::collection::vec("[a-z]{2,8}", 0..4), 1u32..200),
            0..4
        ),
    ) {
        use pegasus_wms::catalog::{Site, SiteCatalog, Transformation, TransformationCatalog};
        use pegasus_wms::catalog_io;
        let mut sites = SiteCatalog::new();
        for (name, pkgs, shared, bw, speed10) in &site_specs {
            let mut s = Site::new(name.clone())
                .with_shared_fs(*shared)
                .with_cpu_speed(*speed10 as f64 / 10.0);
            s.bandwidth_bps = *bw as f64 * 1.0e6;
            for p in pkgs {
                s.preinstalled.insert(p.clone());
            }
            sites.add(s);
        }
        let mut tc = TransformationCatalog::new();
        for (name, reqs, cost) in &tc_specs {
            let mut t = Transformation::new(name.clone()).install_cost(*cost as f64);
            // Dedupe requirements: the text format merges repeats.
            let mut seen = std::collections::BTreeSet::new();
            for r in reqs {
                if seen.insert(r.clone()) {
                    t.requires.push(r.clone());
                }
            }
            tc.add(t);
        }
        let rc = ReplicaCatalog::new();
        let text = catalog_io::to_text(&sites, &tc, &rc, &[]);
        let back = catalog_io::parse(&text).unwrap();
        for (name, ..) in &site_specs {
            let a = sites.get(name).unwrap();
            let b = back.sites.get(name).unwrap();
            prop_assert_eq!(&a.preinstalled, &b.preinstalled);
            prop_assert_eq!(a.shared_fs, b.shared_fs);
            prop_assert!((a.cpu_speed - b.cpu_speed).abs() < 1e-9);
            prop_assert!((a.bandwidth_bps - b.bandwidth_bps).abs() < 1.0);
        }
        for (name, ..) in &tc_specs {
            let a = tc.get(name).unwrap();
            let b = back.transformations.get(name).unwrap();
            let a_sorted: std::collections::BTreeSet<_> = a.requires.iter().collect();
            let b_sorted: std::collections::BTreeSet<_> = b.requires.iter().collect();
            prop_assert_eq!(a_sorted, b_sorted);
            prop_assert!((a.install_cost_per_pkg - b.install_cost_per_pkg).abs() < 1e-9);
        }
    }

    /// The linter is total: any generated workflow shape, any fan
    /// limit, with or without a catalog, lints and renders without
    /// panicking, and the diagnostics it emits all carry registered
    /// codes.
    #[test]
    fn lint_never_panics_on_generated_workflows(
        layers in 1usize..5, width in 1usize..5, bits: u64, fan in 1usize..8
    ) {
        let wf = layered_workflow(layers, width, bits);
        let (_sites, tc) = paper_catalogs();
        let text = dax::to_dax(&wf);
        for catalog in [None, Some(&tc)] {
            let opts = lint::DaxLintOptions { fan_limit: fan, source: Some(&text) };
            let diags = lint::resolve(
                lint::check_workflow(&wf, "gen.dax", catalog, &opts),
                &lint::LintConfig::default(),
            );
            for d in &diags {
                prop_assert!(lint::rule(d.code).is_some(), "unregistered {}", d.code);
            }
            let _ = lint::render_text(&diags);
            let _ = lint::render_json(&diags);
        }
    }

    /// Mangled DAX text — a valid document truncated anywhere with
    /// arbitrary junk appended — either parses (and then lints) or
    /// classifies into a parse diagnostic. No input may panic.
    #[test]
    fn lint_never_panics_on_mangled_dax_text(
        layers in 1usize..4, width in 1usize..4, bits: u64,
        cut in 0usize..4096, junk in "\\PC{0,80}",
    ) {
        let wf = layered_workflow(layers, width, bits);
        let mut text = dax::to_dax(&wf);
        // to_dax emits ASCII, so any cut lands on a char boundary.
        text.truncate(cut.min(text.len()));
        text.push_str(&junk);
        match dax::from_dax_unvalidated(&text) {
            Ok(parsed) => {
                let opts = lint::DaxLintOptions { fan_limit: 500, source: Some(&text) };
                let _ = lint::check_workflow(&parsed, "cut.dax", None, &opts);
            }
            Err(e) => {
                let d = lint::classify_parse_error(&e, "cut.dax");
                prop_assert!(d.code == "E0101" || d.code == "E0102", "{}", d.code);
            }
        }
    }

    /// The sanitizer accepts what the engine emits: for any workflow
    /// shape, fail plan, and retry budget — success or failure — the
    /// written log parses back and sanitizes with zero diagnostics.
    #[test]
    fn sanitizer_accepts_every_engine_event_stream(
        layers in 1usize..4,
        width in 1usize..4,
        bits: u64,
        fail_mask in 0u64..u64::MAX,
        max_retries in 0u32..3,
    ) {
        let wf = layered_workflow(layers, width, bits);
        let (sites, tc) = paper_catalogs();
        let rc = ReplicaCatalog::new();
        let mut cfg = PlannerConfig::for_site("sandhills");
        cfg.add_create_dir = false;
        cfg.stage_data = false;
        let exec = plan(&wf, &sites, &tc, &rc, &cfg).unwrap();

        let mut be = ScriptedBackend::new();
        for (i, j) in exec.jobs.iter().enumerate() {
            let k = ((fail_mask >> ((i % 16) * 4)) & 0xF) as u32;
            for attempt in 0..k.min(5) {
                be.fail_plan.insert((j.name.clone(), attempt));
            }
        }
        let run = Engine::run(
            &mut be,
            &exec,
            &EngineConfig::builder().retries(max_retries).build(),
            &mut NoopMonitor,
        );

        let text = events::log::write(&run.events);
        let parsed = events::log::parse_lines(&text).unwrap();
        let diags = lint::check_events(&parsed, "run.events");
        prop_assert!(diags.is_empty(), "{}", lint::render_text(&diags));
    }

    #[test]
    fn rescue_text_round_trip(names in proptest::collection::vec("[a-z0-9_.]{1,20}", 0..20)) {
        let rescue = RescueDag {
            workflow_name: "wf".into(),
            site: "osg".into(),
            done: names,
        };
        let back = RescueDag::from_text(&rescue.to_text()).unwrap();
        prop_assert_eq!(back, rescue);
    }

    /// Symbol tables intern and resolve any mix of names — including
    /// non-ASCII ones and names that are strict prefixes of each other
    /// (`run_cap3_1` / `run_cap3_10`) — idempotently, with dense ids
    /// handed out in first-appearance order.
    #[test]
    fn symbol_table_intern_resolve_round_trips(
        names in proptest::collection::vec("[a-zа-яё0-9_.]{1,10}", 1..24),
    ) {
        // Salt the pool with prefix-extensions of every generated name
        // so the table always faces duplicate-prefix lookups.
        let mut pool = names.clone();
        for n in &names {
            pool.push(format!("{n}0"));
            pool.push(format!("{n}00"));
        }
        let mut table: SymbolTable<FileId> = SymbolTable::new();
        let mut first_seen: Vec<String> = Vec::new();
        for name in &pool {
            let fresh = table.get(name).is_none();
            let id = table.intern(name);
            prop_assert_eq!(table.intern(name), id, "intern must be idempotent");
            prop_assert_eq!(table.resolve(id), name.as_str());
            prop_assert_eq!(table.get(name), Some(id));
            if fresh {
                prop_assert_eq!(id.idx(), first_seen.len(), "ids are dense");
                first_seen.push(name.clone());
            }
        }
        prop_assert_eq!(table.len(), first_seen.len());
        for (k, name) in first_seen.iter().enumerate() {
            prop_assert_eq!(table.resolve(FileId::new(k)), name.as_str());
        }
        let collected: Vec<String> = table.iter().map(|(_, n)| n.to_string()).collect();
        prop_assert_eq!(collected, first_seen);
    }

    /// CSR adjacency is observationally equal to the `HashMap`-of-Vecs
    /// representation it replaced: same neighbor lists, same degrees
    /// and indegrees, same Kahn topological order, and the same
    /// reachable set from every root.
    #[test]
    fn csr_adjacency_equals_hashmap_reference(
        layers in 1usize..5, width in 1usize..5, bits: u64
    ) {
        let wf = layered_workflow(layers, width, bits);
        let n = wf.jobs.len();
        let edges = wf.edges().unwrap();
        let fwd = Csr::forward(n, &edges);
        let rev = Csr::reverse(n, &edges);

        // Reference: push-based adjacency, exactly as pre-CSR code
        // built it.
        let mut children: HashMap<JobId, Vec<JobId>> = HashMap::new();
        let mut parents: HashMap<JobId, Vec<JobId>> = HashMap::new();
        for &(p, c) in &edges {
            children.entry(p).or_default().push(c);
            parents.entry(c).or_default().push(p);
        }
        let empty: Vec<JobId> = Vec::new();
        for v in (0..n).map(JobId::new) {
            let want_children = children.get(&v).unwrap_or(&empty);
            prop_assert_eq!(fwd.neighbors(v), want_children.as_slice());
            prop_assert_eq!(fwd.degree(v), want_children.len());
            let want_parents = parents.get(&v).unwrap_or(&empty);
            prop_assert_eq!(rev.neighbors(v), want_parents.as_slice());
            prop_assert_eq!(rev.degree(v), want_parents.len());
        }
        let want_indeg: Vec<u32> = (0..n)
            .map(|v| parents.get(&JobId::new(v)).map_or(0, |p| p.len() as u32))
            .collect();
        prop_assert_eq!(fwd.reverse_degrees(), want_indeg.clone());

        // Kahn over the HashMap reference, index-seeded and FIFO
        // tie-broken like the CSR implementation claims to be.
        let mut indeg = want_indeg;
        let mut queue: std::collections::VecDeque<JobId> =
            (0..n).map(JobId::new).filter(|v| indeg[v.idx()] == 0).collect();
        let mut reference_order = Vec::with_capacity(n);
        while let Some(v) = queue.pop_front() {
            reference_order.push(v);
            for &c in children.get(&v).unwrap_or(&empty) {
                indeg[c.idx()] -= 1;
                if indeg[c.idx()] == 0 {
                    queue.push_back(c);
                }
            }
        }
        prop_assert_eq!(fwd.topological_order().unwrap(), reference_order);

        // Reachability from every root agrees between representations.
        for root in (0..n).map(JobId::new) {
            let mut seen_csr = vec![false; n];
            let mut stack = vec![root];
            while let Some(v) = stack.pop() {
                if std::mem::replace(&mut seen_csr[v.idx()], true) {
                    continue;
                }
                stack.extend(fwd.neighbors(v).iter().copied());
            }
            let mut seen_map = vec![false; n];
            let mut stack = vec![root];
            while let Some(v) = stack.pop() {
                if std::mem::replace(&mut seen_map[v.idx()], true) {
                    continue;
                }
                stack.extend(children.get(&v).unwrap_or(&empty).iter().copied());
            }
            prop_assert_eq!(&seen_csr, &seen_map);
        }
    }

    /// The event-log text format round-trips in *both* directions:
    /// events → text → events (structural), and text → events → text
    /// (byte-identical). Interned `JobId`s in memory never leak into
    /// or corrupt the name-keyed text format.
    #[test]
    fn event_log_text_round_trips_byte_identically(
        layers in 1usize..4,
        width in 1usize..4,
        bits: u64,
        fail_mask in 0u64..u64::MAX,
    ) {
        let wf = layered_workflow(layers, width, bits);
        let (sites, tc) = paper_catalogs();
        let rc = ReplicaCatalog::new();
        let exec = plan(&wf, &sites, &tc, &rc, &PlannerConfig::for_site("sandhills")).unwrap();
        let mut be = ScriptedBackend::new();
        for (i, j) in exec.jobs.iter().enumerate() {
            if (fail_mask >> (i % 64)) & 1 == 1 {
                be.fail_plan.insert((j.name.clone(), 0));
            }
        }
        let run = Engine::run(
            &mut be,
            &exec,
            &EngineConfig::builder().retries(1).build(),
            &mut NoopMonitor,
        );
        let text = events::log::write(&run.events);
        let parsed = events::log::parse(&text).unwrap();
        prop_assert_eq!(&parsed, &run.events);
        prop_assert_eq!(events::log::write(&parsed), text);
    }
}

/// Strategy for a well-formed submit request: tokens for tenant/site,
/// optional knobs encoded as (present, value) pairs, and either a
/// generated size or a DAX path that may contain interior spaces
/// (tail field).
fn submit_request_strategy() -> impl Strategy<Value = serve::SubmitRequest> {
    (
        "[a-z][a-z0-9_-]{0,11}",
        "[a-z][a-z0-9_-]{0,11}",
        (any::<bool>(), any::<u64>()),
        (any::<bool>(), 0u32..50),
        (-100i32..100, (any::<bool>(), any::<u64>())),
        (any::<bool>(), 1usize..100_000, "[a-zA-Z0-9_./ -]{1,40}"),
    )
        .prop_map(
            |(
                tenant,
                site,
                (has_seed, seed),
                (has_retries, retries),
                (priority, (has_trace, trace)),
                src,
            )| {
                let (generated, n, path) = src;
                let source = if generated {
                    serve::SubmitSource::Generated { n }
                } else {
                    // Tail fields survive interior spaces but the
                    // cursor trims the line edges; keep the path
                    // trimmed and non-empty so render∘parse is exact.
                    let trimmed = path.trim();
                    let path = if trimmed.is_empty() {
                        "wf.dax"
                    } else {
                        trimmed
                    };
                    serve::SubmitSource::Dax { path: path.into() }
                };
                serve::SubmitRequest {
                    tenant,
                    site,
                    seed: if has_seed { Some(seed) } else { None },
                    retries: if has_retries { Some(retries) } else { None },
                    priority,
                    trace: has_trace.then(|| pegasus_wms::TraceId::new(trace)),
                    source,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `pegasus serve` protocol: parse ∘ render is the identity over
    /// every well-formed request — the submission line format cannot
    /// drop or mangle a field.
    #[test]
    fn serve_requests_round_trip(sub in submit_request_strategy(), id: usize) {
        let reqs = vec![
            serve::Request::Submit(sub),
            serve::Request::Cancel { id },
            serve::Request::Trace { id },
            serve::Request::Run,
            serve::Request::Status,
            serve::Request::Rollup,
            serve::Request::Metrics,
            serve::Request::Ping,
            serve::Request::Shutdown,
        ];
        for req in reqs {
            let text = serve::render_request(&req);
            prop_assert_eq!(serve::parse_request(&text).unwrap(), req);
        }
    }

    /// Journal entries round-trip, and a journal assembled from valid
    /// entries replays into a ledger that accounts for every
    /// submission exactly once.
    #[test]
    fn serve_journal_round_trips_and_replays(
        subs in proptest::collection::vec(submit_request_strategy(), 1..8),
        seed: u64,
        cancel_mask: u64,
    ) {
        let mut text = String::new();
        text.push_str(serve::JOURNAL_HEADER);
        text.push('\n');
        let mut cancelled = Vec::new();
        for (id, sub) in subs.iter().enumerate() {
            let entry = serve::JournalEntry::Submission { id, sub: sub.clone() };
            let line = serve::render_journal_entry(&entry);
            prop_assert_eq!(serve::parse_journal_entry(&line, 1).unwrap(), entry);
            text.push_str(&line);
            text.push('\n');
            if (cancel_mask >> (id % 64)) & 1 == 1 {
                cancelled.push(id);
                text.push_str(&serve::render_journal_entry(&serve::JournalEntry::Cancel { id }));
                text.push('\n');
            }
        }
        let members: Vec<usize> =
            (0..subs.len()).filter(|id| !cancelled.contains(id)).collect();
        if !members.is_empty() {
            let entry = serve::JournalEntry::RoundStarted {
                round: 0,
                seed,
                members: members.clone(),
            };
            let line = serve::render_journal_entry(&entry);
            prop_assert_eq!(serve::parse_journal_entry(&line, 1).unwrap(), entry);
            text.push_str(&line);
            text.push('\n');
        }
        let ledger = serve::Ledger::replay(&text).unwrap();
        prop_assert_eq!(ledger.submissions.len(), subs.len());
        prop_assert_eq!(&ledger.cancelled, &cancelled);
        if members.is_empty() {
            prop_assert!(ledger.interrupted().is_none());
            prop_assert!(ledger.queued().is_empty());
        } else {
            let open = ledger.interrupted().expect("round never finished");
            prop_assert_eq!(open.seed, seed);
            prop_assert_eq!(&open.members, &members);
            prop_assert!(ledger.queued().is_empty(), "every live id is claimed");
        }
    }

    /// Status lines round-trip, including the `-` placeholders and
    /// names with spaces (tail field).
    #[test]
    fn serve_status_lines_round_trip(
        id: usize,
        tenant in "[a-z][a-z0-9_-]{0,11}",
        site in "[a-z][a-z0-9_-]{0,11}",
        state_pick in 0usize..4,
        jobs in (any::<bool>(), any::<usize>()),
        wall_raw in (any::<bool>(), 0u64..1_000_000_000),
        wait_raw in (any::<bool>(), 0u64..1_000_000_000),
        name in "[a-zA-Z0-9_. =-]{1,40}",
    ) {
        use pegasus_wms::ensemble::MemberState;
        let state = [
            MemberState::Queued,
            MemberState::Cancelled,
            MemberState::Succeeded,
            MemberState::Failed,
        ][state_pick];
        let trimmed = name.trim();
        let name = if trimmed.is_empty() { "wf" } else { trimmed };
        // f64 Display round-trips exactly, so arbitrary finite values
        // are safe; derive them from integers to dodge NaN/inf.
        let line = serve::StatusLine {
            id,
            tenant,
            site,
            state,
            jobs: jobs.0.then_some(jobs.1),
            wall_time: wall_raw.0.then(|| wall_raw.1 as f64 / 64.0),
            queue_wait: wait_raw.0.then(|| wait_raw.1 as f64 / 64.0),
            name: name.into(),
        };
        let text = serve::render_status_line(&line);
        prop_assert_eq!(serve::parse_status_line(&text).unwrap(), line);
    }
}

//! Property-based tests for the discrete-event simulator.

use gridsim::dist::Dist;
use gridsim::event::EventQueue;
use gridsim::platform::PlatformModel;
use gridsim::SimBackend;
use pegasus_wms::engine::{Engine, EngineConfig, NoopMonitor, WorkflowRun};
use pegasus_wms::planner::{ExecutableJob, ExecutableWorkflow, JobKind};
use proptest::prelude::*;

fn run_workflow(
    wf: &ExecutableWorkflow,
    backend: &mut SimBackend,
    cfg: &EngineConfig,
) -> WorkflowRun {
    Engine::run(backend, wf, cfg, &mut NoopMonitor)
}

fn job(id: usize, runtime: f64, install: f64) -> ExecutableJob {
    ExecutableJob {
        id,
        name: format!("job{id}"),
        transformation: "work".into(),
        kind: JobKind::Compute,
        args: vec![],
        runtime_hint: runtime,
        install_hint: install,
        source_jobs: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..50)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn makespan_bounds_hold(
        runtimes in proptest::collection::vec(1.0f64..100.0, 1..40),
        slots in 1usize..16,
        seed in 0u64..10_000,
    ) {
        let platform = PlatformModel::uniform("u", slots, 1.0);
        let wf = ExecutableWorkflow {
            name: "flat".into(),
            site: "sim".into(),
            jobs: runtimes
                .iter()
                .enumerate()
                .map(|(i, &r)| job(i, r, 0.0))
                .collect(),
            edges: vec![],
        };
        let mut backend = SimBackend::new(platform, seed);
        let run = run_workflow(&wf, &mut backend, &EngineConfig::default());
        prop_assert!(run.succeeded());
        let total: f64 = runtimes.iter().sum();
        let max: f64 = runtimes.iter().cloned().fold(0.0, f64::max);
        // Classic makespan bounds for independent jobs on identical
        // machines: max(longest job, total/slots) <= makespan <= total.
        let lower = (total / slots as f64).max(max);
        prop_assert!(run.wall_time >= lower - 1e-6,
            "wall {} < lower bound {}", run.wall_time, lower);
        prop_assert!(run.wall_time <= total + 1e-6,
            "wall {} > serial bound {}", run.wall_time, total);
    }

    #[test]
    fn job_times_are_monotone_and_consistent(
        runtimes in proptest::collection::vec(1.0f64..50.0, 1..20),
        installs in proptest::collection::vec(0.0f64..20.0, 1..20),
        slots in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let n = runtimes.len().min(installs.len());
        let mut platform = PlatformModel::uniform("u", slots, 1.0);
        platform.queue_delay = Dist::Uniform(0.0, 10.0);
        let wf = ExecutableWorkflow {
            name: "flat".into(),
            site: "sim".into(),
            jobs: (0..n).map(|i| job(i, runtimes[i], installs[i])).collect(),
            edges: vec![],
        };
        let mut backend = SimBackend::new(platform, seed);
        let run = run_workflow(&wf, &mut backend, &EngineConfig::default());
        for rec in &run.records {
            let t = rec.times.unwrap();
            prop_assert!(t.submitted <= t.started);
            prop_assert!(t.started <= t.install_done);
            prop_assert!(t.install_done <= t.finished);
            prop_assert!((t.install() - installs[rec.job]).abs() < 1e-9);
            prop_assert!((t.kickstart() - runtimes[rec.job]).abs() < 1e-9);
            prop_assert!(t.finished <= run.wall_time + 1e-9);
        }
    }

    #[test]
    fn simulation_is_seed_deterministic(
        runtimes in proptest::collection::vec(1.0f64..50.0, 1..20),
        seed in 0u64..10_000,
    ) {
        let mut platform = PlatformModel::uniform("u", 4, 1.0);
        platform.queue_delay = Dist::lognormal_median(30.0, 1.0);
        platform.runtime_jitter_sigma = 0.3;
        let wf = ExecutableWorkflow {
            name: "flat".into(),
            site: "sim".into(),
            jobs: runtimes.iter().enumerate().map(|(i, &r)| job(i, r, 0.0)).collect(),
            edges: vec![],
        };
        let run1 = run_workflow(&wf, &mut SimBackend::new(platform.clone(), seed), &EngineConfig::default());
        let run2 = run_workflow(&wf, &mut SimBackend::new(platform, seed), &EngineConfig::default());
        prop_assert_eq!(run1.wall_time, run2.wall_time);
        for (a, b) in run1.records.iter().zip(&run2.records) {
            prop_assert_eq!(a.times, b.times);
        }
    }

    #[test]
    fn speed_scales_kickstart_inverse_linearly(
        runtime in 10.0f64..1000.0,
        speed in 0.25f64..4.0,
    ) {
        let platform = PlatformModel::uniform("u", 1, speed);
        let wf = ExecutableWorkflow {
            name: "one".into(),
            site: "sim".into(),
            jobs: vec![job(0, runtime, 0.0)],
            edges: vec![],
        };
        let mut backend = SimBackend::new(platform, 1);
        let run = run_workflow(&wf, &mut backend, &EngineConfig::default());
        let t = run.records[0].times.unwrap();
        prop_assert!((t.kickstart() - runtime / speed).abs() < 1e-6);
    }
}

//! Workflow task kernels.
//!
//! Each public function corresponds to one oval of the paper's Fig. 2
//! workflow (and Fig. 3's OSG variant, which wraps the same kernels
//! with install steps):
//!
//! | Fig. 2 task            | kernel                     |
//! |------------------------|----------------------------|
//! | `list_transcripts()`   | [`make_transcript_dict`]   |
//! | `list_alignments()`    | [`parse_alignments`]       |
//! | `split()`              | [`crate::split::split_clusters`] (after [`crate::cluster::cluster_by_best_hit`]) |
//! | `run_cap3()` × n       | [`run_cap3_chunk`]         |
//! | `merge()`              | [`merge_contigs`]          |
//! | `extract_unjoined()`   | [`extract_unjoined`]       |
//!
//! The kernels are pure over their inputs so the workflow engine can
//! run them on any thread, retry them after simulated failures, and
//! check file-level dataflow.

use crate::split::Chunk;
use bioseq::fasta::Record;
use blastx::tabular::{self, TabularRecord};
use cap3::{Assembler, Cap3Params};
use std::collections::{HashMap, HashSet};

/// The `transcripts_dict.txt` artifact: transcript id -> record.
#[derive(Debug, Clone, Default)]
pub struct TranscriptDict {
    map: HashMap<String, Record>,
    /// Input order of ids, for deterministic iteration.
    order: Vec<String>,
}

impl TranscriptDict {
    /// Number of transcripts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks a transcript up by id.
    pub fn get(&self, id: &str) -> Option<&Record> {
        self.map.get(id)
    }

    /// Records in original input order.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.order.iter().filter_map(|id| self.map.get(id))
    }
}

/// `list_transcripts()`: indexes the transcript FASTA by id.
/// Later duplicates of an id are ignored (first record wins), matching
/// dictionary-building semantics of the original script.
pub fn make_transcript_dict(records: &[Record]) -> TranscriptDict {
    let mut dict = TranscriptDict::default();
    for rec in records {
        if !dict.map.contains_key(&rec.id) {
            dict.order.push(rec.id.clone());
            dict.map.insert(rec.id.clone(), rec.clone());
        }
    }
    dict
}

/// `list_alignments()`: parses the BLASTX tabular text.
pub fn parse_alignments(text: &str) -> Result<Vec<TabularRecord>, tabular::TabularError> {
    tabular::parse_str(text)
}

/// Output of one `run_cap3()` task.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChunkOutput {
    /// Contigs produced in this chunk, named `<protein>_Contig<k>`.
    pub contigs: Vec<Record>,
    /// Ids of transcripts that were merged into some contig.
    pub joined_ids: Vec<String>,
}

/// `run_cap3()`: assembles every cluster in `chunk` independently.
///
/// Cluster members missing from `dict` are skipped (a stale alignment
/// row must not fail the task — the original script logs and moves
/// on). Singlets stay out of `joined_ids`, so they are re-emitted by
/// [`extract_unjoined`].
pub fn run_cap3_chunk(dict: &TranscriptDict, chunk: &Chunk, params: &Cap3Params) -> ChunkOutput {
    let assembler = Assembler::new(params.clone());
    let mut out = ChunkOutput::default();
    for (protein, members) in &chunk.clusters {
        let reads: Vec<Record> = members
            .iter()
            .filter_map(|id| dict.get(id).cloned())
            .collect();
        if reads.len() < 2 {
            continue; // nothing to merge
        }
        let asm = assembler.assemble(&reads);
        if asm.contigs.is_empty() {
            continue;
        }
        let singlet_ids: HashSet<&str> = asm.singlets.iter().map(|r| r.id.as_str()).collect();
        for rec in &reads {
            if !singlet_ids.contains(rec.id.as_str()) {
                out.joined_ids.push(rec.id.clone());
            }
        }
        for (k, contig) in asm.contigs.into_iter().enumerate() {
            out.contigs.push(Record::new(
                format!("{protein}_Contig{}", k + 1),
                contig.desc,
                contig.seq,
            ));
        }
    }
    out
}

/// `merge()`: concatenates the per-chunk contigs into the
/// `joined_transcripts` artifact, renumbering globally.
pub fn merge_contigs(outputs: &[ChunkOutput]) -> Vec<Record> {
    let mut merged = Vec::new();
    for out in outputs {
        for contig in &out.contigs {
            merged.push(Record::new(
                format!("Contig{}", merged.len() + 1),
                format!("source={} {}", contig.id, contig.desc),
                contig.seq.clone(),
            ));
        }
    }
    merged
}

/// `extract_unjoined()`: every input transcript that was not merged
/// into any contig, in input order.
pub fn extract_unjoined(dict: &TranscriptDict, outputs: &[ChunkOutput]) -> Vec<Record> {
    let joined: HashSet<&str> = outputs
        .iter()
        .flat_map(|o| o.joined_ids.iter().map(String::as_str))
        .collect();
    dict.records()
        .filter(|r| !joined.contains(r.id.as_str()))
        .cloned()
        .collect()
}

/// Final concatenation: merged contigs followed by unjoined
/// transcripts — the protein-guided assembly result.
pub fn finalize(merged: Vec<Record>, unjoined: Vec<Record>) -> Vec<Record> {
    let mut out = merged;
    out.extend(unjoined);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clusters;
    use bioseq::seq::DnaSeq;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_template(seed: u64, len: usize) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| bioseq::alphabet::DNA_BASES[rng.gen_range(0..4)])
            .collect()
    }

    fn rec(id: &str, bytes: &[u8]) -> Record {
        Record::new(id, "", DnaSeq::from_ascii(bytes).unwrap())
    }

    fn chunk_of(clusters: &[(&str, &[&str])]) -> Chunk {
        Chunk {
            clusters: clusters
                .iter()
                .map(|(p, ms)| (p.to_string(), ms.iter().map(|m| m.to_string()).collect()))
                .collect(),
        }
    }

    #[test]
    fn dict_deduplicates_and_preserves_order() {
        let t = random_template(1, 60);
        let records = vec![rec("a", &t), rec("b", &t), rec("a", &t[..30])];
        let dict = make_transcript_dict(&records);
        assert_eq!(dict.len(), 2);
        assert_eq!(dict.get("a").unwrap().seq.len(), 60, "first record wins");
        let ids: Vec<&str> = dict.records().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["a", "b"]);
    }

    #[test]
    fn run_cap3_chunk_merges_overlapping_cluster() {
        let t = random_template(2, 300);
        let dict = make_transcript_dict(&[rec("t1", &t[..200]), rec("t2", &t[140..])]);
        let chunk = chunk_of(&[("p1", &["t1", "t2"])]);
        let out = run_cap3_chunk(&dict, &chunk, &Cap3Params::default());
        assert_eq!(out.contigs.len(), 1);
        assert!(out.contigs[0].id.starts_with("p1_Contig"));
        let mut joined = out.joined_ids.clone();
        joined.sort();
        assert_eq!(joined, vec!["t1", "t2"]);
    }

    #[test]
    fn non_overlapping_cluster_members_stay_unjoined() {
        let dict = make_transcript_dict(&[
            rec("t1", &random_template(3, 200)),
            rec("t2", &random_template(4, 200)),
        ]);
        let chunk = chunk_of(&[("p1", &["t1", "t2"])]);
        let out = run_cap3_chunk(&dict, &chunk, &Cap3Params::default());
        assert!(out.contigs.is_empty());
        assert!(out.joined_ids.is_empty());
    }

    #[test]
    fn singleton_clusters_are_skipped() {
        let dict = make_transcript_dict(&[rec("t1", &random_template(5, 200))]);
        let chunk = chunk_of(&[("p1", &["t1"])]);
        let out = run_cap3_chunk(&dict, &chunk, &Cap3Params::default());
        assert!(out.contigs.is_empty());
        assert!(out.joined_ids.is_empty());
    }

    #[test]
    fn missing_dict_entries_do_not_fail_the_task() {
        let t = random_template(6, 300);
        let dict = make_transcript_dict(&[rec("t1", &t[..200]), rec("t2", &t[140..])]);
        let chunk = chunk_of(&[("p1", &["t1", "t2", "ghost"])]);
        let out = run_cap3_chunk(&dict, &chunk, &Cap3Params::default());
        assert_eq!(out.contigs.len(), 1);
    }

    #[test]
    fn merge_renumbers_globally() {
        let t = random_template(7, 100);
        let c1 = ChunkOutput {
            contigs: vec![rec("p1_Contig1", &t)],
            joined_ids: vec!["a".into()],
        };
        let c2 = ChunkOutput {
            contigs: vec![rec("p2_Contig1", &t), rec("p2_Contig2", &t)],
            joined_ids: vec!["b".into()],
        };
        let merged = merge_contigs(&[c1, c2]);
        let ids: Vec<&str> = merged.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["Contig1", "Contig2", "Contig3"]);
        assert!(merged[1].desc.contains("p2_Contig1"));
    }

    #[test]
    fn extract_unjoined_returns_complement_in_input_order() {
        let t = random_template(8, 100);
        let dict = make_transcript_dict(&[rec("a", &t), rec("b", &t), rec("c", &t)]);
        let out = ChunkOutput {
            contigs: vec![],
            joined_ids: vec!["b".into()],
        };
        let unjoined = extract_unjoined(&dict, &[out]);
        let ids: Vec<&str> = unjoined.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["a", "c"]);
    }

    #[test]
    fn finalize_concatenates() {
        let t = random_template(9, 50);
        let merged = vec![rec("Contig1", &t)];
        let unjoined = vec![rec("x", &t)];
        let all = finalize(merged, unjoined);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].id, "Contig1");
        assert_eq!(all[1].id, "x");
    }

    #[test]
    fn parse_alignments_delegates_to_tabular() {
        let text = "q\ts\t99.0\t80\t1\t0\t2\t241\t1\t80\t3e-42\t170.3\n";
        assert_eq!(parse_alignments(text).unwrap().len(), 1);
        assert!(parse_alignments("bad\tline").is_err());
    }

    #[test]
    fn end_to_end_kernels_compose() {
        // Two families: fam A (2 overlapping tx), fam B (1 tx), plus a
        // no-hit transcript.
        let ta = random_template(10, 300);
        let tb = random_template(11, 200);
        let records = vec![
            rec("a1", &ta[..200]),
            rec("a2", &ta[140..]),
            rec("b1", &tb),
            rec("orphan", &random_template(12, 150)),
        ];
        let dict = make_transcript_dict(&records);
        let clusters = Clusters {
            groups: vec![
                ("pA".into(), vec!["a1".into(), "a2".into()]),
                ("pB".into(), vec!["b1".into()]),
            ],
        };
        let chunks = crate::split::split_clusters(&clusters, 2);
        let outputs: Vec<ChunkOutput> = chunks
            .iter()
            .map(|c| run_cap3_chunk(&dict, c, &Cap3Params::default()))
            .collect();
        let merged = merge_contigs(&outputs);
        let unjoined = extract_unjoined(&dict, &outputs);
        let final_out = finalize(merged, unjoined);
        // a1+a2 merge into 1 contig; b1 and orphan pass through.
        assert_eq!(final_out.len(), 3);
        assert_eq!(final_out[0].id, "Contig1");
        assert_eq!(final_out[0].seq.as_bytes(), &ta[..]);
        let ids: HashSet<&str> = final_out.iter().map(|r| r.id.as_str()).collect();
        assert!(ids.contains("b1"));
        assert!(ids.contains("orphan"));
    }
}

//! Slot matchmaking.
//!
//! A pool advertises machine slots as ClassAds; jobs carry a
//! requirements expression. The matchmaker pairs each job with a slot
//! whose ad satisfies the requirements, preferring less-loaded slots —
//! the essentials of the Condor negotiator cycle.

use crate::classad::{AdError, ClassAd, Expr, Value};

/// One advertised slot.
#[derive(Debug, Clone)]
pub struct Slot {
    /// Slot name, e.g. `"slot1@node07"`.
    pub name: String,
    /// The machine ad the slot advertises.
    pub ad: ClassAd,
    /// Jobs currently assigned (the matchmaker prefers lower values).
    pub assigned: usize,
}

impl Slot {
    /// Creates a slot.
    pub fn new(name: impl Into<String>, ad: ClassAd) -> Self {
        Slot {
            name: name.into(),
            ad,
            assigned: 0,
        }
    }
}

/// A set of slots with matchmaking.
#[derive(Debug, Clone, Default)]
pub struct Matchmaker {
    slots: Vec<Slot>,
}

impl Matchmaker {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a slot.
    pub fn add_slot(&mut self, slot: Slot) {
        self.slots.push(slot);
    }

    /// Number of advertised slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no slots are advertised.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Finds the least-loaded slot satisfying `requirements`,
    /// increments its assignment count, and returns its name.
    pub fn claim(&mut self, requirements: &str) -> Result<Option<String>, AdError> {
        let expr = Expr::parse(requirements)?;
        let best = self
            .slots
            .iter_mut()
            .filter(|s| expr.eval(&s.ad))
            .min_by_key(|s| (s.assigned, s.name.clone()));
        Ok(best.map(|s| {
            s.assigned += 1;
            s.name.clone()
        }))
    }

    /// Releases one assignment from the named slot.
    pub fn release(&mut self, slot_name: &str) {
        if let Some(s) = self.slots.iter_mut().find(|s| s.name == slot_name) {
            s.assigned = s.assigned.saturating_sub(1);
        }
    }

    /// Builds a uniform pool of `n` slots sharing `base` attributes.
    pub fn uniform(n: usize, base: ClassAd) -> Self {
        let mut mm = Matchmaker::new();
        for i in 0..n {
            mm.add_slot(Slot::new(format!("slot{}", i + 1), base.clone()));
        }
        mm
    }
}

/// A convenience machine ad for a campus-cluster-style node with
/// the blast2cap3 software preinstalled.
pub fn campus_node_ad(memory_mb: i64, cpus: i64) -> ClassAd {
    ClassAd::new()
        .set("Memory", Value::Int(memory_mb))
        .set("Cpus", Value::Int(cpus))
        .set("Arch", Value::Str("X86_64".into()))
        .set("HasPython", Value::Bool(true))
        .set("HasBiopython", Value::Bool(true))
        .set("HasCap3", Value::Bool(true))
}

/// A bare opportunistic-grid node ad: no guaranteed software.
pub fn grid_node_ad(memory_mb: i64, cpus: i64) -> ClassAd {
    ClassAd::new()
        .set("Memory", Value::Int(memory_mb))
        .set("Cpus", Value::Int(cpus))
        .set("Arch", Value::Str("X86_64".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_matches_requirements() {
        let mut mm = Matchmaker::uniform(2, campus_node_ad(4096, 8));
        let got = mm.claim("Memory >= 1024 && HasCap3").unwrap();
        assert_eq!(got, Some("slot1".into()));
    }

    #[test]
    fn claim_prefers_least_loaded() {
        let mut mm = Matchmaker::uniform(2, campus_node_ad(4096, 8));
        assert_eq!(mm.claim("true").unwrap(), Some("slot1".into()));
        assert_eq!(mm.claim("true").unwrap(), Some("slot2".into()));
        assert_eq!(mm.claim("true").unwrap(), Some("slot1".into()));
        mm.release("slot2");
        mm.release("slot2");
        assert_eq!(mm.claim("true").unwrap(), Some("slot2".into()));
    }

    #[test]
    fn unsatisfiable_requirements_match_nothing() {
        let mut mm = Matchmaker::uniform(3, grid_node_ad(2048, 4));
        assert_eq!(mm.claim("HasCap3").unwrap(), None);
        assert_eq!(mm.claim("Memory >= 100000").unwrap(), None);
    }

    #[test]
    fn campus_vs_grid_ads_encode_software_contrast() {
        let mut campus = Matchmaker::uniform(1, campus_node_ad(4096, 8));
        let mut grid = Matchmaker::uniform(1, grid_node_ad(4096, 8));
        let req = "HasPython && HasBiopython && HasCap3";
        assert!(campus.claim(req).unwrap().is_some());
        assert!(grid.claim(req).unwrap().is_none());
    }

    #[test]
    fn bad_requirements_are_an_error() {
        let mut mm = Matchmaker::uniform(1, grid_node_ad(1024, 1));
        assert!(mm.claim("Memory >=").is_err());
    }

    #[test]
    fn release_unknown_slot_is_a_noop() {
        let mut mm = Matchmaker::uniform(1, grid_node_ad(1024, 1));
        mm.release("nope");
        assert_eq!(mm.len(), 1);
        assert!(!mm.is_empty());
    }
}

//! ClassAd-lite: typed attribute lists and requirement expressions.
//!
//! HTCondor matchmaking pairs job ads with machine ads by evaluating
//! each side's `Requirements` expression against the other's
//! attributes. This module implements the subset that slot
//! matchmaking needs: integer/float/boolean/string attributes and
//! expressions with comparisons, `&&`, `||`, `!`, and parentheses.
//! Undefined attributes make a comparison evaluate to `false`, like
//! Condor's `UNDEFINED` semantics under strict evaluation.

use std::collections::BTreeMap;
use std::fmt;

/// An attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer attribute (e.g. `Memory = 2048`).
    Int(i64),
    /// Floating-point attribute.
    Float(f64),
    /// Boolean attribute (e.g. `HasCap3 = true`).
    Bool(bool),
    /// String attribute (e.g. `Arch = "X86_64"`).
    Str(String),
}

impl Value {
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

/// An attribute list.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassAd {
    attrs: BTreeMap<String, Value>,
}

impl ClassAd {
    /// Creates an empty ad.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: sets an attribute.
    pub fn set(mut self, key: impl Into<String>, value: Value) -> Self {
        self.attrs.insert(key.into(), value);
        self
    }

    /// Inserts an attribute in place.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        self.attrs.insert(key.into(), value);
    }

    /// Looks an attribute up (case-sensitive, like new ClassAds).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.attrs.get(key)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// `true` when the ad carries no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }
}

impl fmt::Display for ClassAd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[")?;
        for (k, v) in &self.attrs {
            writeln!(f, "  {k} = {v};")?;
        }
        write!(f, "]")
    }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// Parsed requirements expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// Attribute reference, resolved against the target ad.
    Attr(String),
    /// Comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Expression parse/eval errors.
#[derive(Debug, Clone, PartialEq)]
pub enum AdError {
    /// Lexing or parsing failed at a byte offset.
    Parse {
        /// Byte offset of the failure.
        pos: usize,
        /// Description.
        reason: String,
    },
}

impl fmt::Display for AdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdError::Parse { pos, reason } => write!(f, "parse error at byte {pos}: {reason}"),
        }
    }
}

impl std::error::Error for AdError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Num(f64),
    Str(String),
    Op(&'static str),
}

fn lex(s: &str) -> Result<Vec<(usize, Token)>, AdError> {
    let b = s.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' => {
                out.push((i, Token::Op("(")));
                i += 1;
            }
            b')' => {
                out.push((i, Token::Op(")")));
                i += 1;
            }
            b'&' => {
                if b.get(i + 1) == Some(&b'&') {
                    out.push((i, Token::Op("&&")));
                    i += 2;
                } else {
                    return Err(AdError::Parse {
                        pos: i,
                        reason: "single '&'".into(),
                    });
                }
            }
            b'|' => {
                if b.get(i + 1) == Some(&b'|') {
                    out.push((i, Token::Op("||")));
                    i += 2;
                } else {
                    return Err(AdError::Parse {
                        pos: i,
                        reason: "single '|'".into(),
                    });
                }
            }
            b'=' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((i, Token::Op("==")));
                    i += 2;
                } else {
                    return Err(AdError::Parse {
                        pos: i,
                        reason: "single '=' (use ==)".into(),
                    });
                }
            }
            b'!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((i, Token::Op("!=")));
                    i += 2;
                } else {
                    out.push((i, Token::Op("!")));
                    i += 1;
                }
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((i, Token::Op("<=")));
                    i += 2;
                } else {
                    out.push((i, Token::Op("<")));
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((i, Token::Op(">=")));
                    i += 2;
                } else {
                    out.push((i, Token::Op(">")));
                    i += 1;
                }
            }
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'"' {
                    j += 1;
                }
                if j == b.len() {
                    return Err(AdError::Parse {
                        pos: i,
                        reason: "unterminated string".into(),
                    });
                }
                out.push((i, Token::Str(s[start..j].to_string())));
                i = j + 1;
            }
            b'0'..=b'9' | b'.' | b'-' => {
                let start = i;
                i += 1;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.' || b[i] == b'e') {
                    i += 1;
                }
                let text = &s[start..i];
                let num: f64 = text.parse().map_err(|_| AdError::Parse {
                    pos: start,
                    reason: format!("bad number {text:?}"),
                })?;
                out.push((start, Token::Num(num)));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    i += 1;
                }
                out.push((start, Token::Ident(s[start..i].to_string())));
            }
            other => {
                return Err(AdError::Parse {
                    pos: i,
                    reason: format!("unexpected byte 0x{other:02x}"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, reason: impl Into<String>) -> AdError {
        let pos = self
            .tokens
            .get(self.pos)
            .map(|(p, _)| *p)
            .unwrap_or(usize::MAX);
        AdError::Parse {
            pos,
            reason: reason.into(),
        }
    }

    // or := and ('||' and)*
    fn parse_or(&mut self) -> Result<Expr, AdError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Token::Op("||")) {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    // and := cmp ('&&' cmp)*
    fn parse_and(&mut self) -> Result<Expr, AdError> {
        let mut lhs = self.parse_cmp()?;
        while self.peek() == Some(&Token::Op("&&")) {
            self.bump();
            let rhs = self.parse_cmp()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    // cmp := unary (CMPOP unary)?
    fn parse_cmp(&mut self) -> Result<Expr, AdError> {
        let lhs = self.parse_unary()?;
        let op = match self.peek() {
            Some(Token::Op("==")) => Some(CmpOp::Eq),
            Some(Token::Op("!=")) => Some(CmpOp::Ne),
            Some(Token::Op("<")) => Some(CmpOp::Lt),
            Some(Token::Op("<=")) => Some(CmpOp::Le),
            Some(Token::Op(">")) => Some(CmpOp::Gt),
            Some(Token::Op(">=")) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_unary()?;
            return Ok(Expr::Cmp(Box::new(lhs), op, Box::new(rhs)));
        }
        Ok(lhs)
    }

    // unary := '!' unary | '(' or ')' | literal | ident
    fn parse_unary(&mut self) -> Result<Expr, AdError> {
        match self.peek() {
            Some(Token::Op("!")) => {
                self.bump();
                Ok(Expr::Not(Box::new(self.parse_unary()?)))
            }
            Some(Token::Op("(")) => {
                self.bump();
                let inner = self.parse_or()?;
                if self.bump() != Some(Token::Op(")")) {
                    return Err(self.err("expected ')'"));
                }
                Ok(inner)
            }
            Some(Token::Num(_)) => {
                if let Some(Token::Num(n)) = self.bump() {
                    Ok(Expr::Lit(Value::Float(n)))
                } else {
                    unreachable!()
                }
            }
            Some(Token::Str(_)) => {
                if let Some(Token::Str(s)) = self.bump() {
                    Ok(Expr::Lit(Value::Str(s)))
                } else {
                    unreachable!()
                }
            }
            Some(Token::Ident(id)) => {
                let id = id.clone();
                self.bump();
                match id.as_str() {
                    "true" | "TRUE" | "True" => Ok(Expr::Lit(Value::Bool(true))),
                    "false" | "FALSE" | "False" => Ok(Expr::Lit(Value::Bool(false))),
                    _ => Ok(Expr::Attr(id)),
                }
            }
            _ => Err(self.err("expected expression")),
        }
    }
}

impl Expr {
    /// Parses a requirements expression.
    ///
    /// ```
    /// use condor::classad::{ClassAd, Expr, Value};
    ///
    /// let machine = ClassAd::new()
    ///     .set("Memory", Value::Int(4096))
    ///     .set("HasCap3", Value::Bool(true));
    /// let req = Expr::parse("Memory >= 1024 && HasCap3").unwrap();
    /// assert!(req.eval(&machine));
    /// ```
    pub fn parse(s: &str) -> Result<Expr, AdError> {
        let tokens = lex(s)?;
        let mut p = Parser { tokens, pos: 0 };
        let e = p.parse_or()?;
        if p.pos != p.tokens.len() {
            return Err(p.err("trailing tokens"));
        }
        Ok(e)
    }

    /// Evaluates the expression against `target` (the other side's
    /// ad). Undefined attributes and type mismatches yield `false`
    /// for the enclosing comparison.
    pub fn eval(&self, target: &ClassAd) -> bool {
        self.eval_value(target)
            .map(|v| matches!(v, Value::Bool(true)))
            .unwrap_or(false)
    }

    fn eval_value(&self, target: &ClassAd) -> Option<Value> {
        match self {
            Expr::Lit(v) => Some(v.clone()),
            Expr::Attr(name) => target.get(name).cloned(),
            Expr::Not(e) => match e.eval_value(target) {
                Some(Value::Bool(b)) => Some(Value::Bool(!b)),
                _ => Some(Value::Bool(false)),
            },
            Expr::And(a, b) => Some(Value::Bool(a.eval(target) && b.eval(target))),
            Expr::Or(a, b) => Some(Value::Bool(a.eval(target) || b.eval(target))),
            Expr::Cmp(a, op, b) => {
                let av = a.eval_value(target)?;
                let bv = b.eval_value(target)?;
                let res = match (&av, &bv) {
                    (Value::Str(x), Value::Str(y)) => match op {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    },
                    (Value::Bool(x), Value::Bool(y)) => match op {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        _ => return Some(Value::Bool(false)),
                    },
                    _ => {
                        let x = av.as_f64()?;
                        let y = bv.as_f64()?;
                        match op {
                            CmpOp::Eq => x == y,
                            CmpOp::Ne => x != y,
                            CmpOp::Lt => x < y,
                            CmpOp::Le => x <= y,
                            CmpOp::Gt => x > y,
                            CmpOp::Ge => x >= y,
                        }
                    }
                };
                Some(Value::Bool(res))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> ClassAd {
        ClassAd::new()
            .set("Memory", Value::Int(4096))
            .set("Cpus", Value::Int(8))
            .set("Arch", Value::Str("X86_64".into()))
            .set("HasCap3", Value::Bool(true))
            .set("LoadAvg", Value::Float(0.25))
    }

    #[test]
    fn simple_comparisons() {
        let m = machine();
        assert!(Expr::parse("Memory >= 1024").unwrap().eval(&m));
        assert!(!Expr::parse("Memory < 1024").unwrap().eval(&m));
        assert!(Expr::parse("Arch == \"X86_64\"").unwrap().eval(&m));
        assert!(Expr::parse("Arch != \"ARM\"").unwrap().eval(&m));
        assert!(Expr::parse("LoadAvg <= 0.5").unwrap().eval(&m));
    }

    #[test]
    fn boolean_attributes_and_literals() {
        let m = machine();
        assert!(Expr::parse("HasCap3").unwrap().eval(&m));
        assert!(Expr::parse("HasCap3 == true").unwrap().eval(&m));
        assert!(Expr::parse("true").unwrap().eval(&m));
        assert!(!Expr::parse("false").unwrap().eval(&m));
        assert!(Expr::parse("!false").unwrap().eval(&m));
    }

    #[test]
    fn logical_combinations_and_precedence() {
        let m = machine();
        assert!(Expr::parse("Memory >= 1024 && HasCap3").unwrap().eval(&m));
        assert!(Expr::parse("Memory < 10 || Cpus == 8").unwrap().eval(&m));
        // && binds tighter than ||.
        assert!(Expr::parse("false && false || true").unwrap().eval(&m));
        assert!(!Expr::parse("false && (false || true)").unwrap().eval(&m));
    }

    #[test]
    fn undefined_attributes_are_false() {
        let m = machine();
        assert!(!Expr::parse("Gpus >= 1").unwrap().eval(&m));
        assert!(!Expr::parse("MissingFlag").unwrap().eval(&m));
        // But an OR can still rescue the match.
        assert!(Expr::parse("Gpus >= 1 || Memory >= 1024").unwrap().eval(&m));
    }

    #[test]
    fn int_float_comparisons_coerce() {
        let m = machine();
        assert!(Expr::parse("Memory == 4096.0").unwrap().eval(&m));
        assert!(Expr::parse("LoadAvg < 1").unwrap().eval(&m));
    }

    #[test]
    fn parse_errors_carry_position() {
        match Expr::parse("Memory = 10") {
            Err(AdError::Parse { pos, .. }) => assert_eq!(pos, 7),
            other => panic!("unexpected {other:?}"),
        }
        assert!(Expr::parse("a &&").is_err());
        assert!(Expr::parse("(a").is_err());
        assert!(Expr::parse("\"open").is_err());
        assert!(Expr::parse("a ) b").is_err());
    }

    #[test]
    fn display_round_trips_ad_shape() {
        let m = machine();
        let text = m.to_string();
        assert!(text.contains("Memory = 4096;"));
        assert!(text.contains("Arch = \"X86_64\";"));
        assert_eq!(m.len(), 5);
        assert!(!m.is_empty());
    }

    #[test]
    fn type_mismatch_comparisons_are_false() {
        let m = machine();
        assert!(!Expr::parse("Arch >= 5").unwrap().eval(&m));
        assert!(!Expr::parse("HasCap3 < true").unwrap().eval(&m));
    }
}

//! Regex-subset string generation.
//!
//! Supports the pattern language the workspace's tests use:
//!
//! * literal characters (anything not special);
//! * character classes `[...]` with literal members and `a-z` ranges
//!   (a `-` first or last is literal, `]` first is literal);
//! * `\PC` — any printable (non-control) character, drawn from ASCII
//!   printables plus a handful of non-ASCII code points so parsers
//!   still meet multi-byte UTF-8;
//! * `\d`, `\w`, `\s` shorthand classes and `\\`-escaped literals;
//! * repetition suffixes `{n}`, `{n,m}`, `?`, `*`, `+` (unbounded
//!   forms cap at 32, mirroring upstream's default size bounds).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// Cap for `*` and `+` repetitions, which regex leaves unbounded.
const UNBOUNDED_CAP: u32 = 32;

/// A handful of non-ASCII printables mixed into `\PC` so that
/// "arbitrary text" exercises multi-byte UTF-8 paths.
const NON_ASCII_PRINTABLES: &[char] = &['é', 'ß', 'λ', 'Ж', '中', '✓', '—', '𝛼'];

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

fn err<T>(message: impl Into<String>) -> Result<T, Error> {
    Err(Error {
        message: message.into(),
    })
}

/// One alternative set of characters to draw from.
#[derive(Debug, Clone)]
enum CharSet {
    /// Explicit members plus inclusive ranges.
    Class {
        singles: Vec<char>,
        ranges: Vec<(char, char)>,
    },
    /// `\PC`: printable, non-control.
    Printable,
}

impl CharSet {
    fn size(&self) -> usize {
        match self {
            CharSet::Class { singles, ranges } => {
                singles.len()
                    + ranges
                        .iter()
                        .map(|&(lo, hi)| (hi as usize) - (lo as usize) + 1)
                        .sum::<usize>()
            }
            CharSet::Printable => 95 + NON_ASCII_PRINTABLES.len(),
        }
    }

    fn pick(&self, rng: &mut StdRng) -> char {
        match self {
            CharSet::Class { singles, ranges } => {
                let mut idx = rng.gen_range(0..self.size());
                if idx < singles.len() {
                    return singles[idx];
                }
                idx -= singles.len();
                for &(lo, hi) in ranges {
                    let span = (hi as usize) - (lo as usize) + 1;
                    if idx < span {
                        return char::from_u32(lo as u32 + idx as u32)
                            .expect("ranges only span valid scalar runs");
                    }
                    idx -= span;
                }
                unreachable!("index within size()")
            }
            CharSet::Printable => {
                let idx = rng.gen_range(0..self.size());
                if idx < 95 {
                    char::from_u32(0x20 + idx as u32).expect("printable ASCII")
                } else {
                    NON_ASCII_PRINTABLES[idx - 95]
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Atom {
    set: CharSet,
    min: u32,
    max: u32,
}

/// A compiled pattern: a sequence of repeated character sets.
#[derive(Debug, Clone)]
pub struct CompiledRegex {
    atoms: Vec<Atom>,
}

impl CompiledRegex {
    pub fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(atom.set.pick(rng));
            }
        }
        out
    }
}

fn shorthand_class(c: char) -> Option<CharSet> {
    match c {
        'd' => Some(CharSet::Class {
            singles: vec![],
            ranges: vec![('0', '9')],
        }),
        'w' => Some(CharSet::Class {
            singles: vec!['_'],
            ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9')],
        }),
        's' => Some(CharSet::Class {
            singles: vec![' ', '\t', '\n', '\r'],
            ranges: vec![],
        }),
        _ => None,
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<CharSet, Error> {
    let mut singles = Vec::new();
    let mut ranges = Vec::new();
    let mut pending: Option<char> = None;
    let mut first = true;
    loop {
        let c = match chars.next() {
            Some(c) => c,
            None => return err("unterminated character class"),
        };
        match c {
            ']' if !first => {
                if let Some(p) = pending.take() {
                    singles.push(p);
                }
                return Ok(CharSet::Class { singles, ranges });
            }
            '\\' => {
                let esc = match chars.next() {
                    Some(e) => e,
                    None => return err("dangling escape in class"),
                };
                if let Some(p) = pending.take() {
                    singles.push(p);
                }
                match esc {
                    'n' => pending = Some('\n'),
                    't' => pending = Some('\t'),
                    'r' => pending = Some('\r'),
                    _ => pending = Some(esc),
                }
            }
            '-' => {
                // A range if we have a pending start and a next member.
                match (pending.take(), chars.peek().copied()) {
                    (Some(lo), Some(hi)) if hi != ']' => {
                        chars.next();
                        let hi = if hi == '\\' {
                            match chars.next() {
                                Some(e) => e,
                                None => return err("dangling escape in class"),
                            }
                        } else {
                            hi
                        };
                        if lo > hi {
                            return err(format!("reversed class range {lo}-{hi}"));
                        }
                        // Reject ranges that cross the surrogate gap.
                        if (lo as u32) < 0xD800 && (hi as u32) > 0xDFFF {
                            return err("class range crosses surrogate gap");
                        }
                        ranges.push((lo, hi));
                    }
                    (p, _) => {
                        if let Some(p) = p {
                            singles.push(p);
                        }
                        singles.push('-');
                    }
                }
            }
            other => {
                if let Some(p) = pending.take() {
                    singles.push(p);
                }
                pending = Some(other);
            }
        }
        first = false;
    }
}

fn parse_repeat(
    chars: &mut std::iter::Peekable<std::str::Chars>,
) -> Result<Option<(u32, u32)>, Error> {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => return err("unterminated repetition {..}"),
                }
            }
            let parts: Vec<&str> = spec.split(',').collect();
            let parse_n = |s: &str| -> Result<u32, Error> {
                s.trim().parse::<u32>().map_err(|_| Error {
                    message: format!("bad repetition count {s:?}"),
                })
            };
            match parts.as_slice() {
                [n] => {
                    let n = parse_n(n)?;
                    Ok(Some((n, n)))
                }
                [lo, hi] => {
                    let (lo, hi) = (parse_n(lo)?, parse_n(hi)?);
                    if lo > hi {
                        return err(format!("reversed repetition {{{lo},{hi}}}"));
                    }
                    Ok(Some((lo, hi)))
                }
                _ => err(format!("unsupported repetition {{{spec}}}")),
            }
        }
        Some('?') => {
            chars.next();
            Ok(Some((0, 1)))
        }
        Some('*') => {
            chars.next();
            Ok(Some((0, UNBOUNDED_CAP)))
        }
        Some('+') => {
            chars.next();
            Ok(Some((1, UNBOUNDED_CAP)))
        }
        _ => Ok(None),
    }
}

/// Compiles a pattern in the supported subset.
pub fn compile(pattern: &str) -> Result<CompiledRegex, Error> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => parse_class(&mut chars)?,
            '\\' => match chars.next() {
                Some('P') => match chars.next() {
                    Some('C') => CharSet::Printable,
                    other => {
                        return err(format!("unsupported \\P category {other:?}"));
                    }
                },
                Some(e) => {
                    if let Some(set) = shorthand_class(e) {
                        set
                    } else {
                        let lit = match e {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            other => other,
                        };
                        CharSet::Class {
                            singles: vec![lit],
                            ranges: vec![],
                        }
                    }
                }
                None => return err("dangling escape"),
            },
            '.' => CharSet::Printable,
            '{' | '}' | '?' | '*' | '+' | '(' | ')' | '|' | '^' | '$' => {
                return err(format!("unsupported regex syntax {c:?} in {pattern:?}"));
            }
            lit => CharSet::Class {
                singles: vec![lit],
                ranges: vec![],
            },
        };
        if set.size() == 0 {
            return err("empty character class");
        }
        let (min, max) = parse_repeat(&mut chars)?.unwrap_or((1, 1));
        atoms.push(Atom { set, min, max });
    }
    Ok(CompiledRegex { atoms })
}

/// A strategy generating strings matching a compiled pattern.
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    compiled: CompiledRegex,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        self.compiled.generate(rng)
    }
}

/// `string::string_regex(pattern)`: like upstream, fallible at
/// construction so invalid patterns surface at strategy build time.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    Ok(RegexGeneratorStrategy {
        compiled: compile(pattern)?,
    })
}

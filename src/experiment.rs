//! The shared experiment harness.
//!
//! Everything the figure binaries, Criterion benches, and integration
//! tests need to re-run the paper's evaluation:
//!
//! * [`WorkloadCalibration`] — a synthetic per-cluster CAP3 cost
//!   distribution with the heavy tail the wheat data exhibits, scaled
//!   so the serial total equals the paper's 100 hours;
//! * [`calibrated_chunk_costs`] — the `split`-equivalent partition of
//!   those cluster costs into `n` chunk costs;
//! * [`simulate_blast2cap3`] — plan the Fig. 2 workflow onto a
//!   simulated platform (Sandhills or OSG) and execute it under the
//!   DAGMan engine, returning the run and its pegasus-statistics;
//! * [`real_local_run`] — generate a laptop-scale synthetic dataset,
//!   run the *real* workflow (real FASTA/tabular files, real CAP3)
//!   through the local Condor pool, and return outputs + timings.

use bioseq::fasta;
use bioseq::simulate::{generate, TranscriptomeConfig};
use blast2cap3::files::names;
use blast2cap3::workflow::{build_workflow, WorkflowParams};
use blastx::search::{SearchParams, Searcher};
use blastx::tabular::TabularRecord;
use cap3::Cap3Params;
use condor::pool::{LocalPool, PoolConfig};
use gridsim::platforms::SERIAL_REFERENCE_SECONDS;
use gridsim::sites::SiteRegistry;
use gridsim::SimBackend;
use pegasus_wms::catalog::{paper_catalogs, ReplicaCatalog};
use pegasus_wms::engine::{Engine, EngineConfig, NoopMonitor, WorkflowRun};
use pegasus_wms::ensemble::{Ensemble, EnsembleConfig, EnsembleRun, Submission};
use pegasus_wms::error::WmsError;
use pegasus_wms::planner::{plan, ExecutableWorkflow, PlannerConfig};
use pegasus_wms::statistics::{compute, compute_ensemble, EnsembleStatistics, WorkflowStatistics};
use pegasus_wms::symbols::SiteId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::OnceLock;

/// The process-wide built-in [`SiteRegistry`] — the paper's two
/// platforms plus the OSG variants. The string-keyed convenience
/// wrappers below resolve against it; callers with their own
/// `sites.def` build a registry and use the `_at` entry points.
pub fn builtin_registry() -> &'static SiteRegistry {
    static REG: OnceLock<SiteRegistry> = OnceLock::new();
    REG.get_or_init(SiteRegistry::builtin)
}

/// The calibrated per-cluster cost model.
#[derive(Debug, Clone)]
pub struct WorkloadCalibration {
    /// CAP3 seconds per protein cluster, heavy-tailed.
    pub cluster_costs: Vec<f64>,
    /// Sum of all cluster costs — the serial runtime, calibrated to
    /// the paper's 100 hours.
    pub serial_total: f64,
}

impl WorkloadCalibration {
    /// The largest single cluster cost — the floor no decomposition
    /// can beat (a cluster cannot straddle chunks).
    pub fn max_cluster_cost(&self) -> f64 {
        self.cluster_costs.iter().copied().fold(0.0, f64::max)
    }
}

/// Number of protein clusters in the calibrated workload. The paper's
/// run clusters 236,529 transcripts by shared protein hit; a few tens
/// of thousands of clusters is the matching order of magnitude while
/// staying cheap to partition.
pub const CALIBRATION_CLUSTERS: usize = 20_000;

/// Builds the calibrated workload: cluster sizes from the same
/// heavy-tailed family-size law the transcriptome simulator uses,
/// cost quadratic in cluster size (CAP3's all-pairs overlap stage),
/// totals scaled to [`SERIAL_REFERENCE_SECONDS`].
pub fn calibrate_workload(seed: u64) -> WorkloadCalibration {
    let mut rng = StdRng::seed_from_u64(seed);
    let shape = 1.3f64;
    let mean = 4.0f64;
    let cap = 64usize;
    let x_m = mean * (shape - 1.0) / shape;
    let sizes: Vec<usize> = (0..CALIBRATION_CLUSTERS)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            ((x_m / u.powf(1.0 / shape)).round() as usize).clamp(1, cap)
        })
        .collect();
    // cost = base + k * size^2, with k chosen to hit the serial total.
    let base = 2.0f64;
    let sq_sum: f64 = sizes.iter().map(|&s| (s * s) as f64).sum();
    let k = (SERIAL_REFERENCE_SECONDS - base * sizes.len() as f64) / sq_sum;
    let cluster_costs: Vec<f64> = sizes.iter().map(|&s| base + k * (s * s) as f64).collect();
    let serial_total = cluster_costs.iter().sum();
    WorkloadCalibration {
        cluster_costs,
        serial_total,
    }
}

/// Partitions the cluster costs into `n` chunks the way the `split`
/// task does: largest cluster first onto the lightest chunk. Returns
/// the per-chunk cost sums (length `min(n, clusters)`).
pub fn calibrated_chunk_costs(calibration: &WorkloadCalibration, n: usize) -> Vec<f64> {
    let n = n.max(1).min(calibration.cluster_costs.len().max(1));
    let mut order: Vec<usize> = (0..calibration.cluster_costs.len()).collect();
    order.sort_by(|&a, &b| {
        calibration.cluster_costs[b]
            .partial_cmp(&calibration.cluster_costs[a])
            .expect("finite costs")
    });
    // Binary-heap of (cost, index) as a min-heap via Reverse ordering
    // on an integer key would lose precision; linear scan is fine at
    // n <= 500.
    let mut chunks = vec![0.0f64; n];
    for idx in order {
        let (min_i, _) = chunks
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("n >= 1");
        chunks[min_i] += calibration.cluster_costs[idx];
    }
    chunks
}

/// One simulated experiment result.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// The engine-level run record.
    pub run: WorkflowRun,
    /// Its pegasus-statistics.
    pub stats: WorkflowStatistics,
}

impl ExperimentOutcome {
    /// The run's provenance event log in the `--events` text format.
    ///
    /// Writing this to a file makes the whole experiment
    /// re-analysable offline: `pegasus statistics --from-events` and
    /// `pegasus analyze --from-events` recompute everything in
    /// [`Self::stats`] from it without re-running the simulation.
    pub fn event_log(&self) -> String {
        pegasus_wms::events::log::write(&self.run.events)
    }

    /// The run's per-task phase breakdown row (Fig. 7–8 decomposition),
    /// computed from the provenance stream alone.
    ///
    /// # Panics
    /// Panics if the run carries no valid event stream (engine runs
    /// always do).
    pub fn breakdown(&self) -> pegasus_wms::breakdown::BreakdownRow {
        pegasus_wms::breakdown::from_events(&self.run.events).expect("engine streams replay")
    }
}

/// Simulates the paper's experiment: the Fig. 2 workflow with `n`
/// clusters, planned for `site` (any name or alias in the built-in
/// registry), executed on the matching platform model.
///
/// # Panics
/// Panics on an unknown site name or if planning fails.
pub fn simulate_blast2cap3(site: &str, n: usize, seed: u64, retries: u32) -> ExperimentOutcome {
    simulate_blast2cap3_with(
        site,
        n,
        seed,
        &EngineConfig::builder().retries(retries).build(),
        None,
    )
}

/// Like [`simulate_blast2cap3`], but with a caller-supplied engine
/// configuration and an optional seeded chaos script injected into the
/// simulated platform — the entry point the fault-injection benches
/// and determinism tests share.
///
/// # Panics
/// Panics on an unknown site name or if planning fails.
pub fn simulate_blast2cap3_with(
    site: &str,
    n: usize,
    seed: u64,
    engine_cfg: &EngineConfig,
    script: Option<gridsim::FaultScript>,
) -> ExperimentOutcome {
    let reg = builtin_registry();
    let id = reg.resolve(site).expect("site in the built-in registry");
    simulate_blast2cap3_at(reg, id, n, seed, engine_cfg, script)
}

/// Registry-parameterised simulation: plan the Fig. 2 workflow for
/// the registered site `id` and execute it on that site's platform
/// model. This is the core entry point; the string-keyed wrappers
/// resolve against [`builtin_registry`] and call it.
///
/// # Panics
/// Panics if planning fails.
pub fn simulate_blast2cap3_at(
    registry: &SiteRegistry,
    id: SiteId,
    n: usize,
    seed: u64,
    engine_cfg: &EngineConfig,
    script: Option<gridsim::FaultScript>,
) -> ExperimentOutcome {
    let exec = plan_blast2cap3_at(registry, id, n, seed);
    let mut backend = registry.backend(id, seed);
    if let Some(script) = script {
        backend = backend.with_faults(script);
    }
    let run = Engine::run(&mut backend, &exec, engine_cfg, &mut NoopMonitor);
    let stats = compute(&run);
    ExperimentOutcome { run, stats }
}

/// Plans the Fig. 2 workflow with `n` chunks for `site`, returning the
/// executable DAG named `blast2cap3_n{n}` so ensemble members remain
/// distinguishable in rollup reports.
///
/// # Panics
/// Panics on an unknown site name or if planning fails.
pub fn plan_blast2cap3(site: &str, n: usize, seed: u64) -> ExecutableWorkflow {
    let reg = builtin_registry();
    let id = reg.resolve(site).expect("site in the built-in registry");
    plan_blast2cap3_at(reg, id, n, seed)
}

/// Registry-parameterised planning. Variants plan under their base
/// site's catalog entry (the registry resolves the `catalog-site`
/// chain — what used to be a hand-written `osg_prestaged → osg`
/// special case), and any files the definition pre-stages are
/// registered into the replica catalog.
///
/// # Panics
/// Panics if planning fails.
pub fn plan_blast2cap3_at(
    registry: &SiteRegistry,
    id: SiteId,
    n: usize,
    seed: u64,
) -> ExecutableWorkflow {
    let calibration = calibrate_workload(seed);
    let chunk_costs = calibrated_chunk_costs(&calibration, n);
    let n_effective = chunk_costs.len();
    let params = WorkflowParams::with_n(n_effective).with_chunk_costs(chunk_costs);
    let wf = build_workflow(&params);

    let sites = registry.site_catalog();
    let (_, tc) = paper_catalogs();
    let mut rc = ReplicaCatalog::new();
    rc.register("transcripts.fasta", "submit");
    rc.register("alignments.out", "submit");
    registry.register_replicas(&mut rc);
    let mut exec = plan(
        &wf,
        &sites,
        &tc,
        &rc,
        &PlannerConfig::for_site(registry.catalog_name(id)),
    )
    .expect("planning the paper workflow");
    exec.name = format!("blast2cap3_n{n}");
    exec
}

/// Builds the simulated platform backend for `site`, or a typed
/// [`WmsError::UnknownSite`] listing the registered names.
pub fn sim_backend_for(site: &str, seed: u64) -> Result<SimBackend, WmsError> {
    let reg = builtin_registry();
    Ok(reg.backend(reg.resolve(site)?, seed))
}

/// One simulated ensemble result.
#[derive(Debug, Clone)]
pub struct EnsembleOutcome {
    /// Per-member runs plus the ensemble makespan.
    pub run: EnsembleRun,
    /// Per-workflow statistics and the rollup.
    pub stats: EnsembleStatistics,
}

/// Simulates the paper's decomposition sweep as one *ensemble*: every
/// `n` in `sizes` is planned as its own Fig. 2 workflow and all of
/// them contend for the same simulated platform under the shared slot
/// budget (`None` defers to the backend's capacity). One seed
/// determines the whole run, so the rollup CSV is reproducible
/// byte-for-byte.
///
/// # Panics
/// Panics on an unknown site name or if planning fails.
pub fn simulate_blast2cap3_ensemble(
    site: &str,
    sizes: &[usize],
    seed: u64,
    engine_cfg: &EngineConfig,
    slot_budget: Option<usize>,
) -> EnsembleOutcome {
    let reg = builtin_registry();
    let id = reg.resolve(site).expect("site in the built-in registry");
    simulate_blast2cap3_ensemble_at(reg, id, sizes, seed, engine_cfg, slot_budget)
}

/// Registry-parameterised ensemble sweep.
///
/// # Panics
/// Panics if planning fails.
pub fn simulate_blast2cap3_ensemble_at(
    registry: &SiteRegistry,
    id: SiteId,
    sizes: &[usize],
    seed: u64,
    engine_cfg: &EngineConfig,
    slot_budget: Option<usize>,
) -> EnsembleOutcome {
    let submissions: Vec<Submission> = sizes
        .iter()
        .map(|&n| {
            Submission::new(
                plan_blast2cap3_at(registry, id, n, seed),
                engine_cfg.clone(),
            )
        })
        .collect();
    let mut backend = registry.backend(id, seed);
    let ens_cfg = match slot_budget {
        Some(b) => EnsembleConfig::with_slot_budget(b),
        None => EnsembleConfig::default(),
    };
    let run = Ensemble::run_to_completion(&mut backend, submissions, &ens_cfg)
        .expect("planner output always has dense job ids");
    let stats = compute_ensemble(&run);
    EnsembleOutcome { run, stats }
}

/// Result of a real local workflow run.
#[derive(Debug)]
pub struct RealRunOutcome {
    /// The engine-level run record (real wall-clock seconds).
    pub run: WorkflowRun,
    /// pegasus-statistics over the real run.
    pub stats: WorkflowStatistics,
    /// The final protein-guided assembly read back from disk.
    pub final_records: Vec<bioseq::fasta::Record>,
    /// Number of input transcripts written.
    pub input_count: usize,
    /// The work directory (left on disk for inspection).
    pub workdir: PathBuf,
}

/// Generates a synthetic dataset of `n_families` gene families, runs
/// BLASTX to produce `alignments.out`, then executes the *real*
/// Fig. 2 workflow (n = `n_chunks`) on a [`LocalPool`] of `workers`
/// threads, exchanging genuine files in a fresh work directory.
pub fn real_local_run(
    n_families: usize,
    n_chunks: usize,
    workers: usize,
    seed: u64,
) -> RealRunOutcome {
    // 1. Synthetic inputs.
    let cfg = TranscriptomeConfig {
        n_families,
        family_size_mean: 4.0,
        family_size_cap: 16,
        ..TranscriptomeConfig::tiny(seed)
    };
    let data = generate(&cfg);
    let searcher =
        Searcher::new(data.proteins.clone(), SearchParams::default()).expect("non-empty db");
    let queries: Vec<(String, bioseq::seq::DnaSeq)> = data
        .transcripts
        .iter()
        .map(|r| (r.id.clone(), r.seq.clone()))
        .collect();
    let hsps = searcher.search_many(&queries, workers);
    let alignments: Vec<TabularRecord> = hsps.iter().map(TabularRecord::from).collect();

    let workdir = std::env::temp_dir().join(format!(
        "blast2cap3_real_run_{}_{}",
        std::process::id(),
        seed
    ));
    std::fs::remove_dir_all(&workdir).ok();
    std::fs::create_dir_all(&workdir).expect("create workdir");
    fasta::write_file(workdir.join(names::TRANSCRIPTS), &data.transcripts)
        .expect("write transcripts");
    blastx::tabular::write_file(workdir.join(names::ALIGNMENTS), &alignments)
        .expect("write alignments");

    // 2. Plan without staging (the files are already local).
    let params = WorkflowParams {
        n_clusters: n_chunks,
        transcripts_bytes: 0,
        alignments_bytes: 0,
        ..Default::default()
    };
    let wf = build_workflow(&params);
    let (sites, tc) = paper_catalogs();
    let mut cfg = PlannerConfig::for_site("sandhills");
    cfg.stage_data = false;
    cfg.add_create_dir = false;
    let exec = plan(&wf, &sites, &tc, &ReplicaCatalog::new(), &cfg).expect("plan local workflow");

    // 3. Execute for real.
    let mut pool = LocalPool::new(
        PoolConfig {
            workers,
            workdir: workdir.clone(),
            ..Default::default()
        },
        crate::registry::build_registry(Cap3Params::default()),
    );
    let run = Engine::run(
        &mut pool,
        &exec,
        &EngineConfig::builder().retries(0).build(),
        &mut NoopMonitor,
    );
    let stats = compute(&run);
    let final_records = if run.succeeded() {
        fasta::read_file(workdir.join(names::FINAL)).expect("final.fasta written")
    } else {
        Vec::new()
    };
    RealRunOutcome {
        run,
        stats,
        final_records,
        input_count: data.transcripts.len(),
        workdir,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_totals_match_the_paper() {
        let c = calibrate_workload(1);
        assert_eq!(c.cluster_costs.len(), CALIBRATION_CLUSTERS);
        assert!(
            (c.serial_total - SERIAL_REFERENCE_SECONDS).abs() < 1.0,
            "total={}",
            c.serial_total
        );
        assert!(c.cluster_costs.iter().all(|&x| x > 0.0));
        // Heavy tail: the largest cluster is much bigger than the mean.
        let mean = c.serial_total / c.cluster_costs.len() as f64;
        assert!(c.max_cluster_cost() > 20.0 * mean);
    }

    #[test]
    fn chunk_costs_partition_the_total() {
        let c = calibrate_workload(2);
        for n in [10usize, 100, 300, 500] {
            let chunks = calibrated_chunk_costs(&c, n);
            assert_eq!(chunks.len(), n);
            let total: f64 = chunks.iter().sum();
            assert!((total - c.serial_total).abs() < 1.0, "n={n}");
            // Balanced: max chunk is at least total/n and at least the
            // biggest cluster, and not wildly above.
            let max = chunks.iter().copied().fold(0.0f64, f64::max);
            let lower = (c.serial_total / n as f64).max(c.max_cluster_cost());
            assert!(max >= lower - 1.0, "n={n}: max={max} lower={lower}");
            assert!(
                max <= lower + c.max_cluster_cost() + 1.0,
                "n={n}: max={max}"
            );
        }
    }

    #[test]
    fn max_chunk_cost_decreases_with_n() {
        let c = calibrate_workload(3);
        let max_of = |n: usize| {
            calibrated_chunk_costs(&c, n)
                .iter()
                .copied()
                .fold(0.0f64, f64::max)
        };
        let m10 = max_of(10);
        let m100 = max_of(100);
        let m300 = max_of(300);
        assert!(m10 > m100, "{m10} > {m100}");
        assert!(m100 > m300, "{m100} > {m300}");
        // But never below the single biggest cluster.
        assert!(m300 >= c.max_cluster_cost() - 1.0);
    }

    #[test]
    fn simulated_sandhills_beats_serial_by_95_percent() {
        let out = simulate_blast2cap3("sandhills", 300, 7, 3);
        assert!(out.run.succeeded());
        let reduction = 1.0 - out.run.wall_time / SERIAL_REFERENCE_SECONDS;
        assert!(
            reduction > 0.95,
            "workflow must cut >95% of serial time; wall={} reduction={reduction}",
            out.run.wall_time
        );
    }

    #[test]
    fn ensemble_sweep_shares_one_platform_and_all_members_finish() {
        let cfg = EngineConfig::builder().retries(3).build();
        let out = simulate_blast2cap3_ensemble("sandhills", &[10, 50], 7, &cfg, None);
        assert_eq!(out.run.runs.len(), 2);
        assert!(out.run.succeeded());
        assert_eq!(out.stats.workflows_failed, 0);
        assert_eq!(out.run.runs[0].name, "blast2cap3_n10");
        assert_eq!(out.run.runs[1].name, "blast2cap3_n50");
        let max_wall = out
            .run
            .runs
            .iter()
            .map(|r| r.wall_time)
            .fold(0.0f64, f64::max);
        assert!((out.run.makespan - max_wall).abs() < 1e-9);
    }

    #[test]
    fn real_local_run_produces_final_assembly() {
        let out = real_local_run(8, 4, 2, 11);
        assert!(out.run.succeeded(), "records: {:?}", out.run.records);
        assert!(!out.final_records.is_empty());
        assert!(
            out.final_records.len() < out.input_count,
            "merging must reduce transcript count: {} -> {}",
            out.input_count,
            out.final_records.len()
        );
        assert!(out.stats.jobs_failed == 0);
        std::fs::remove_dir_all(&out.workdir).ok();
    }
}

//! Rescue DAGs.
//!
//! When a Pegasus workflow fails, DAGMan leaves behind a *rescue file*
//! marking every node that already completed; resubmitting the
//! workflow with the rescue file skips that work. The paper relies on
//! this on OSG, where job preemption makes partial failures routine.
//!
//! The text format here mirrors DAGMan's rescue files: a header, then
//! one `DONE <job-name>` line per completed node.

use crate::error::WmsError;

/// The re-submittable remainder of a partially executed workflow.
///
/// ```
/// use pegasus_wms::rescue::RescueDag;
///
/// let rescue = RescueDag {
///     workflow_name: "blast2cap3".into(),
///     site: "osg".into(),
///     done: vec!["split".into(), "run_cap3_0".into()],
/// };
/// let text = rescue.to_text();
/// assert!(text.contains("DONE split"));
/// assert_eq!(RescueDag::from_text(&text).unwrap(), rescue);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RescueDag {
    /// Name of the workflow the rescue belongs to.
    pub workflow_name: String,
    /// Site the failed run targeted.
    pub site: String,
    /// Names of jobs that completed successfully.
    pub done: Vec<String>,
}

impl RescueDag {
    /// Fraction of `total_jobs` already completed.
    pub fn completion_fraction(&self, total_jobs: usize) -> f64 {
        if total_jobs == 0 {
            return 1.0;
        }
        self.done.len() as f64 / total_jobs as f64
    }

    /// Serializes to the DAGMan-style rescue text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# Rescue DAG (DAGMan-style)\n");
        out.push_str(&format!("WORKFLOW {}\n", self.workflow_name));
        out.push_str(&format!("SITE {}\n", self.site));
        out.push_str(&format!("TOTAL_DONE {}\n", self.done.len()));
        for name in &self.done {
            out.push_str(&format!("DONE {name}\n"));
        }
        out
    }

    /// Parses the rescue text format.
    pub fn from_text(text: &str) -> Result<RescueDag, WmsError> {
        let mut rescue = RescueDag::default();
        let mut declared: Option<usize> = None;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (keyword, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let rest = rest.trim();
            match keyword {
                "WORKFLOW" => rescue.workflow_name = rest.to_string(),
                "SITE" => rescue.site = rest.to_string(),
                "TOTAL_DONE" => {
                    declared = Some(rest.parse().map_err(|_| {
                        WmsError::RescueParse(format!(
                            "line {}: bad TOTAL_DONE value {rest:?}",
                            lineno + 1
                        ))
                    })?)
                }
                "DONE" => {
                    if rest.is_empty() {
                        return Err(WmsError::RescueParse(format!(
                            "line {}: DONE with no job name",
                            lineno + 1
                        )));
                    }
                    rescue.done.push(rest.to_string());
                }
                other => {
                    return Err(WmsError::RescueParse(format!(
                        "line {}: unknown keyword {other:?}",
                        lineno + 1
                    )))
                }
            }
        }
        if let Some(n) = declared {
            if n != rescue.done.len() {
                return Err(WmsError::RescueParse(format!(
                    "TOTAL_DONE {} does not match {} DONE lines",
                    n,
                    rescue.done.len()
                )));
            }
        }
        Ok(rescue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RescueDag {
        RescueDag {
            workflow_name: "blast2cap3".into(),
            site: "osg".into(),
            done: vec!["create_dir_osg".into(), "stage_in_alignments.out".into()],
        }
    }

    #[test]
    fn round_trip() {
        let r = sample();
        let text = r.to_text();
        assert!(text.contains("DONE create_dir_osg"));
        let back = RescueDag::from_text(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn completion_fraction() {
        let r = sample();
        assert!((r.completion_fraction(4) - 0.5).abs() < 1e-12);
        assert_eq!(r.completion_fraction(0), 1.0);
    }

    #[test]
    fn blank_lines_and_comments_tolerated() {
        let text = "# comment\n\nWORKFLOW w\nSITE s\nDONE a\n\n# trailing\n";
        let r = RescueDag::from_text(text).unwrap();
        assert_eq!(r.done, vec!["a"]);
        assert_eq!(r.workflow_name, "w");
    }

    #[test]
    fn job_names_with_spaces_survive() {
        let mut r = sample();
        r.done.push("stage_in_my file.txt".into());
        let back = RescueDag::from_text(&r.to_text()).unwrap();
        assert_eq!(back.done.last().unwrap(), "stage_in_my file.txt");
    }

    #[test]
    fn mismatched_total_is_rejected() {
        let text = "WORKFLOW w\nTOTAL_DONE 3\nDONE a\n";
        assert!(RescueDag::from_text(text).is_err());
    }

    #[test]
    fn unknown_keyword_is_rejected() {
        let err = RescueDag::from_text("FROBNICATE yes\n").unwrap_err();
        assert!(err.to_string().contains("FROBNICATE"));
    }

    #[test]
    fn empty_done_line_is_rejected() {
        assert!(RescueDag::from_text("DONE \n").is_err());
        assert!(RescueDag::from_text("DONE\n").is_err());
    }
}

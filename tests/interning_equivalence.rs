//! Byte-level equivalence harness for the interned-id engine.
//!
//! The goldens under `tests/fixtures/equivalence/` were captured from
//! the tree *before* the interning/CSR/calendar-queue refactor landed
//! (ISSUE 6). Every observable artifact of a run — the statistics CSV,
//! the provenance event log, the phase-breakdown CSV, and the
//! Prometheus metrics exposition — must stay byte-identical across
//! seeds, sites, and workflow sizes, or the refactor changed
//! behaviour, not just representation.
//!
//! Regenerate (only when an *intentional* format change lands) with:
//!
//! ```sh
//! PEGASUS_BLESS=1 cargo test --test interning_equivalence
//! ```

use blast2cap3_pegasus::experiment::{plan_blast2cap3, simulate_blast2cap3_with};
use pegasus_wms::breakdown;
use pegasus_wms::engine::EngineConfig;
use pegasus_wms::metrics::{self, MetricsRegistry};
use pegasus_wms::statistics::{compute, render_csv};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

const SEEDS: [u64; 3] = [7, 11, 42];
const SITES: [&str; 2] = ["sandhills", "osg"];
const SIZES: [usize; 2] = [10, 300];

/// Retry budget used for every golden run: deep enough that OSG's
/// preemption hazard cannot sink small workflows under any golden
/// seed (n=10 puts only ten eggs in the preemption basket, so one
/// unlucky task needs a long leash; seed 42 needs more than the
/// `pegasus breakdown` default of 20).
const RETRIES: u32 = 50;

/// The four rendered artifacts of one simulated run.
#[derive(Clone)]
struct Artifacts {
    stats_csv: String,
    event_log: String,
    breakdown_csv: String,
    prom: String,
}

fn artifacts_for(site: &str, n: usize, seed: u64) -> Artifacts {
    let cfg = EngineConfig::builder().retries(RETRIES).seed(seed).build();
    let out = simulate_blast2cap3_with(site, n, seed, &cfg, None);
    assert!(
        out.run.succeeded(),
        "{site} n={n} seed={seed}: golden runs must succeed"
    );
    let mut registry = MetricsRegistry::new();
    metrics::record_events(&mut registry, &out.run.events).expect("engine streams replay");
    Artifacts {
        stats_csv: render_csv(&compute(&out.run)),
        event_log: out.event_log(),
        breakdown_csv: breakdown::render_csv(&[out.breakdown()]),
        prom: registry.render(),
    }
}

/// Runs each (site, n, seed) combination exactly once per test
/// process, whichever artifact test asks first.
fn cached(site: &str, n: usize, seed: u64) -> Artifacts {
    type Cache = Mutex<HashMap<(String, usize, u64), Artifacts>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().unwrap().get(&(site.to_string(), n, seed)) {
        return hit.clone();
    }
    let made = artifacts_for(site, n, seed);
    cache
        .lock()
        .unwrap()
        .insert((site.to_string(), n, seed), made.clone());
    made
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/equivalence")
        .join(name)
}

fn blessing() -> bool {
    std::env::var_os("PEGASUS_BLESS").is_some()
}

/// Compares `content` against the committed golden, or rewrites the
/// golden under `PEGASUS_BLESS=1`.
fn check_golden(name: &str, content: &str) {
    let path = fixture_path(name);
    if blessing() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create fixtures dir");
        std::fs::write(&path, content).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with PEGASUS_BLESS=1", name));
    if golden != content {
        // Locate the first differing line so the failure is readable
        // without dumping two multi-kilobyte artifacts.
        let mismatch = golden
            .lines()
            .zip(content.lines())
            .position(|(g, c)| g != c)
            .map(|i| {
                format!(
                    "first diff at line {}:\n  golden: {}\n  actual: {}",
                    i + 1,
                    golden.lines().nth(i).unwrap_or(""),
                    content.lines().nth(i).unwrap_or("")
                )
            })
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: golden {} vs actual {}",
                    golden.lines().count(),
                    content.lines().count()
                )
            });
        panic!("{name} is not byte-identical to the pre-interning golden\n{mismatch}");
    }
}

fn for_all_combos(mut f: impl FnMut(&str, usize, u64)) {
    for site in SITES {
        for n in SIZES {
            for seed in SEEDS {
                f(site, n, seed);
            }
        }
    }
}

#[test]
fn statistics_csv_is_byte_identical_to_pre_interning_goldens() {
    for_all_combos(|site, n, seed| {
        let a = cached(site, n, seed);
        check_golden(&format!("{site}_n{n}_s{seed}.stats.csv"), &a.stats_csv);
    });
}

#[test]
fn event_log_is_byte_identical_to_pre_interning_goldens() {
    for_all_combos(|site, n, seed| {
        let a = cached(site, n, seed);
        check_golden(&format!("{site}_n{n}_s{seed}.events"), &a.event_log);
    });
}

#[test]
fn breakdown_csv_is_byte_identical_to_pre_interning_goldens() {
    for_all_combos(|site, n, seed| {
        let a = cached(site, n, seed);
        check_golden(
            &format!("{site}_n{n}_s{seed}.breakdown.csv"),
            &a.breakdown_csv,
        );
    });
}

#[test]
fn metrics_exposition_is_byte_identical_to_pre_interning_goldens() {
    for_all_combos(|site, n, seed| {
        let a = cached(site, n, seed);
        check_golden(&format!("{site}_n{n}_s{seed}.prom"), &a.prom);
    });
}

/// Satellite regression for the `to_dot` dedupe: the rendered DOT
/// graph (shapes, colors, install-phase highlighting, edge list) must
/// not change when the formatting moves through the shared writer.
#[test]
fn planner_to_dot_output_is_unchanged() {
    for site in SITES {
        let exec = plan_blast2cap3(site, 10, 7);
        check_golden(&format!("to_dot_{site}_n10.dot"), &exec.to_dot());
    }
}

//! The standard genetic code and frame translation.
//!
//! BLASTX conceptually translates the nucleotide query in all six
//! reading frames and searches each translation against the protein
//! database; [`six_frame_translations`] provides exactly that.

use crate::alphabet::base_code;
use crate::seq::{DnaSeq, ProteinSeq};

/// One-letter amino-acid codes of the standard genetic code, indexed
/// by `16*a + 4*b + c` where `a`, `b`, `c` are the 2-bit codes of the
/// codon bases (`A=0, C=1, G=2, T=3`). `*` denotes a stop codon.
pub const STANDARD_CODE: [u8; 64] = {
    let mut table = [b'X'; 64];
    // Build the table codon-by-codon; index = a*16 + b*4 + c.
    // Row order below follows base codes A, C, G, T.
    let mut i = 0;
    // Codons listed in index order (AAA, AAC, AAG, AAT, ACA, ...).
    let flat: &[u8; 64] = b"KNKNTTTTRSRSIIMIQHQHPPPPRRRRLLLLEDEDAAAAGGGGVVVV*Y*YSSSS*CWCLFLF";
    while i < 64 {
        table[i] = flat[i];
        i += 1;
    }
    table
};

/// Translates one codon (three 2-bit base codes) to an amino acid.
#[inline]
pub fn translate_codon_codes(a: u8, b: u8, c: u8) -> u8 {
    STANDARD_CODE[(a as usize) * 16 + (b as usize) * 4 + c as usize]
}

/// Translates one codon given as ASCII bases; any ambiguous base
/// yields `X`.
#[inline]
pub fn translate_codon(bases: [u8; 3]) -> u8 {
    match (
        base_code(bases[0]),
        base_code(bases[1]),
        base_code(bases[2]),
    ) {
        (Some(a), Some(b), Some(c)) => translate_codon_codes(a, b, c),
        _ => b'X',
    }
}

/// Translates `dna` starting at `offset` (0, 1, or 2) on the forward
/// strand; trailing partial codons are dropped. Stops are emitted as
/// `*` — the aligner decides what to do with them.
pub fn translate_frame(dna: &DnaSeq, offset: usize) -> ProteinSeq {
    debug_assert!(offset < 3);
    let bytes = dna.as_bytes();
    let mut out = Vec::with_capacity(bytes.len().saturating_sub(offset) / 3);
    let mut i = offset;
    while i + 3 <= bytes.len() {
        out.push(translate_codon([bytes[i], bytes[i + 1], bytes[i + 2]]));
        i += 3;
    }
    ProteinSeq::from_ascii_unchecked(out)
}

/// A reading frame identifier matching BLASTX conventions:
/// `+1, +2, +3` on the forward strand, `-1, -2, -3` on the reverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frame(pub i8);

impl Frame {
    /// All six frames in BLASTX order.
    pub const ALL: [Frame; 6] = [
        Frame(1),
        Frame(2),
        Frame(3),
        Frame(-1),
        Frame(-2),
        Frame(-3),
    ];

    /// `true` for forward-strand frames.
    #[inline]
    pub fn is_forward(self) -> bool {
        self.0 > 0
    }

    /// The 0-based codon offset within the (possibly
    /// reverse-complemented) strand.
    #[inline]
    pub fn offset(self) -> usize {
        (self.0.unsigned_abs() as usize) - 1
    }

    /// Maps a protein-coordinate position in this frame's translation
    /// back to the 0-based nucleotide start position on the *original
    /// forward* sequence of length `dna_len`.
    pub fn protein_to_dna(self, prot_pos: usize, dna_len: usize) -> usize {
        let on_strand = self.offset() + 3 * prot_pos;
        if self.is_forward() {
            on_strand
        } else {
            // Position counted from the 3' end of the forward strand;
            // the codon occupies [res-2, res] on the forward strand.
            dna_len - 1 - on_strand - 2
        }
    }
}

impl std::fmt::Display for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:+}", self.0)
    }
}

/// All six frame translations of `dna`, in [`Frame::ALL`] order.
pub fn six_frame_translations(dna: &DnaSeq) -> [(Frame, ProteinSeq); 6] {
    let rc = dna.reverse_complement();
    [
        (Frame(1), translate_frame(dna, 0)),
        (Frame(2), translate_frame(dna, 1)),
        (Frame(3), translate_frame(dna, 2)),
        (Frame(-1), translate_frame(&rc, 0)),
        (Frame(-2), translate_frame(&rc, 1)),
        (Frame(-3), translate_frame(&rc, 2)),
    ]
}

/// Reverse-translates a protein into one valid coding DNA sequence,
/// choosing for each residue the codon given by `pick` (a value in
/// `0..n_codons` is reduced modulo the number of synonymous codons).
///
/// Used by the transcriptome simulator to manufacture mRNA whose
/// translation provably matches a generated protein.
pub fn reverse_translate(protein: &ProteinSeq, mut pick: impl FnMut(usize) -> usize) -> DnaSeq {
    // Build the inverse table once per call; 64 entries is trivially cheap.
    let mut by_aa: [Vec<[u8; 3]>; 21] = Default::default();
    for a in 0..4u8 {
        for b in 0..4u8 {
            for c in 0..4u8 {
                let aa = translate_codon_codes(a, b, c);
                let idx = crate::alphabet::residue_index(aa);
                let codon = [
                    crate::alphabet::code_base(a),
                    crate::alphabet::code_base(b),
                    crate::alphabet::code_base(c),
                ];
                if aa != b'*' {
                    by_aa[idx].push(codon);
                }
            }
        }
    }
    let mut out = Vec::with_capacity(protein.len() * 3);
    for (i, &aa) in protein.as_bytes().iter().enumerate() {
        let idx = crate::alphabet::residue_index(aa);
        let choices = &by_aa[idx];
        if choices.is_empty() {
            // Stop or unknown residue: encode as TAA / NNN respectively.
            if aa == b'*' {
                out.extend_from_slice(b"TAA");
            } else {
                out.extend_from_slice(b"NNN");
            }
            continue;
        }
        let codon = choices[pick(i) % choices.len()];
        out.extend_from_slice(&codon);
    }
    DnaSeq::from_ascii_unchecked(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_codons_translate_correctly() {
        assert_eq!(translate_codon(*b"ATG"), b'M');
        assert_eq!(translate_codon(*b"TGG"), b'W');
        assert_eq!(translate_codon(*b"TAA"), b'*');
        assert_eq!(translate_codon(*b"TAG"), b'*');
        assert_eq!(translate_codon(*b"TGA"), b'*');
        assert_eq!(translate_codon(*b"AAA"), b'K');
        assert_eq!(translate_codon(*b"TTT"), b'F');
        assert_eq!(translate_codon(*b"GGG"), b'G');
        assert_eq!(translate_codon(*b"GCT"), b'A');
        assert_eq!(translate_codon(*b"CGA"), b'R');
    }

    #[test]
    fn ambiguous_bases_give_x() {
        assert_eq!(translate_codon(*b"ANG"), b'X');
        assert_eq!(translate_codon(*b"NNN"), b'X');
    }

    #[test]
    fn table_has_expected_composition() {
        let stops = STANDARD_CODE.iter().filter(|&&a| a == b'*').count();
        assert_eq!(stops, 3);
        let mets = STANDARD_CODE.iter().filter(|&&a| a == b'M').count();
        assert_eq!(mets, 1);
        let leus = STANDARD_CODE.iter().filter(|&&a| a == b'L').count();
        assert_eq!(leus, 6);
        let args = STANDARD_CODE.iter().filter(|&&a| a == b'R').count();
        assert_eq!(args, 6);
        let trps = STANDARD_CODE.iter().filter(|&&a| a == b'W').count();
        assert_eq!(trps, 1);
    }

    #[test]
    fn frame_translation_drops_partial_codons() {
        let dna = DnaSeq::from_ascii(b"ATGAAAT").unwrap();
        assert_eq!(translate_frame(&dna, 0).as_bytes(), b"MK");
        assert_eq!(translate_frame(&dna, 1).as_bytes(), b"*N");
        assert_eq!(translate_frame(&dna, 2).as_bytes(), b"E"); // GAA + partial AT
    }

    #[test]
    fn six_frames_have_expected_lengths() {
        let dna = DnaSeq::from_ascii(b"ATGAAACCCGGGTTT").unwrap(); // 15 nt
        let frames = six_frame_translations(&dna);
        assert_eq!(frames[0].1.len(), 5);
        assert_eq!(frames[1].1.len(), 4);
        assert_eq!(frames[2].1.len(), 4);
        assert_eq!(frames[3].1.len(), 5);
        assert_eq!(frames[0].0, Frame(1));
        assert_eq!(frames[5].0, Frame(-3));
    }

    #[test]
    fn reverse_translate_round_trips_through_translation() {
        let prot = ProteinSeq::from_ascii(b"MKWLFARNDCEQGHIPSTVY").unwrap();
        for variant in 0..5usize {
            let dna = reverse_translate(&prot, |i| i * 7 + variant);
            let back = translate_frame(&dna, 0);
            assert_eq!(back, prot, "variant {variant}");
        }
    }

    #[test]
    fn frame_coordinate_mapping_forward() {
        let f = Frame(2);
        // protein position 0 in frame +2 starts at nucleotide 1
        assert_eq!(f.protein_to_dna(0, 30), 1);
        assert_eq!(f.protein_to_dna(3, 30), 10);
    }

    #[test]
    fn frame_coordinate_mapping_reverse() {
        let f = Frame(-1);
        // First codon of frame -1 covers the last three forward bases.
        assert_eq!(f.protein_to_dna(0, 30), 27);
        let f = Frame(-2);
        assert_eq!(f.protein_to_dna(0, 30), 26);
    }

    #[test]
    fn display_format_is_signed() {
        assert_eq!(Frame(1).to_string(), "+1");
        assert_eq!(Frame(-3).to_string(), "-3");
    }
}

//! Property tests for `pegasus_wms::verify`: the soundness half of
//! the verifier's test suite.
//!
//! The mutation harness (`tests/verify_mutation.rs`) shows corrupted
//! streams are flagged; these properties show honest streams never
//! are. For random synthetic DAG shapes, sizes, seeds, retry
//! policies, and scripted fault plans, on both simulated platforms:
//!
//! * the planner's output passes the whole-plan dataflow verifier
//!   (layer 2) with no findings, and
//! * the engine's event stream — serialized through the log format
//!   and re-parsed, exactly the path `pegasus verify --from-events`
//!   takes — satisfies the full temporal invariant catalog (layer 1),
//!   including the backoff/jitter envelope against the very policy
//!   the run was configured with.

use blast2cap3_pegasus::experiment::builtin_registry;
use gridsim::{FaultPlan, FaultScript};
use pegasus_wms::catalog::{paper_catalogs, ReplicaCatalog};
use pegasus_wms::engine::{Engine, EngineConfig, NoopMonitor, RetryPolicy};
use pegasus_wms::events::log;
use pegasus_wms::planner::{plan, PlannerConfig};
use pegasus_wms::synthetic;
use pegasus_wms::verify::{self, DataflowOptions, VerifyOptions};
use pegasus_wms::workflow::AbstractWorkflow;
use proptest::prelude::*;

const SITES: [&str; 2] = ["sandhills", "osg"];

fn shape(kind: usize, size: usize) -> AbstractWorkflow {
    match kind % 4 {
        0 => synthetic::montage(size),
        1 => synthetic::cybershake(size),
        2 => synthetic::epigenomics(2, size.div_ceil(2).max(1)),
        _ => synthetic::ligo_inspiral(size.div_ceil(5).max(1), 5),
    }
}

/// A scripted fault plan drawn from the two hazard families the
/// paper's OSG runs exhibit: preemption storms (kill + retry) and
/// stragglers (slowdown, no failure).
fn fault_text(kind: usize, start: f64, duration: f64, p: f64) -> Option<String> {
    match kind % 3 {
        0 => None,
        1 => Some(format!(
            "plan prop\npreemption-storm start={start} duration={duration} kill-probability={p}\n"
        )),
        _ => Some(format!(
            "plan prop\nstraggler start={start} duration={duration} slowdown=2.5 probability={p}\n"
        )),
    }
}

/// Plans `wf` at `site`, runs it, and returns every verifier finding
/// from both layers. The property under test: this is always empty.
fn findings(
    wf: &AbstractWorkflow,
    site: &str,
    seed: u64,
    policy: &RetryPolicy,
    faults: Option<&str>,
) -> Vec<pegasus_wms::lint::Diagnostic> {
    let registry = builtin_registry();
    let id = registry.resolve(site).expect("builtin site resolves");
    let sites = registry.site_catalog();
    let (_, tc) = paper_catalogs();
    let mut rc = ReplicaCatalog::new();
    rc.register("transcripts.fasta", "submit");
    rc.register("alignments.out", "submit");
    registry.register_replicas(&mut rc);
    let exec = plan(
        wf,
        &sites,
        &tc,
        &rc,
        &PlannerConfig::for_site(registry.catalog_name(id)),
    )
    .expect("planning a synthetic DAG");

    let label = format!("<{} on {site} seed={seed}>", wf.name);
    let mut diags = verify::check_plan(
        wf,
        &exec,
        &rc,
        registry.catalog_name(id),
        &label,
        &DataflowOptions::default(),
    );

    let cfg = EngineConfig::builder()
        .policy(policy.clone())
        .seed(seed)
        .build();
    let mut backend = registry.backend(id, seed);
    if let Some(text) = faults {
        let plan = FaultPlan::parse(text).expect("fault plan parses");
        backend = backend.with_faults(FaultScript::new(plan, seed));
    }
    let run = Engine::run(&mut backend, &exec, &cfg, &mut NoopMonitor);

    // Round-trip through the log format, exactly like --from-events.
    let text = log::write(&run.events);
    let events = log::parse_lines(&text).expect("engine streams serialize");
    let opts = VerifyOptions {
        slot_capacity: None,
        retry: Some(policy.clone()),
    };
    diags.extend(verify::check_stream(&events, &label, &opts));
    diags
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_streams_satisfy_the_catalog_on_both_sites(
        kind in 0usize..4,
        size in 2usize..16,
        seed in 0u64..1_000_000,
        fault_kind in 0usize..3,
        start in 0.0f64..2000.0,
        duration in 100.0f64..3000.0,
        p in 0.05f64..0.9,
        backoff in 0.0f64..60.0,
        jitter in 0.0f64..0.5,
    ) {
        let wf = shape(kind, size);
        // Deep retries so storms exhaust before the budget does: the
        // soundness property covers failed runs too, but mostly-
        // succeeding cases exercise more of the catalog. A drawn base
        // below 1s means "no backoff": the flat-policy half of the
        // space.
        let policy = if backoff >= 1.0 {
            RetryPolicy::exponential(50, backoff).with_jitter(jitter)
        } else {
            RetryPolicy::flat(50)
        };
        let faults = fault_text(fault_kind, start, duration, p);
        for site in SITES {
            let diags = findings(&wf, site, seed, &policy, faults.as_deref());
            prop_assert!(
                diags.is_empty(),
                "{} size={size} seed={seed} on {site}: honest stream flagged:\n{}",
                wf.name,
                pegasus_wms::lint::render_text(&diags)
            );
        }
    }
}

//! End-to-end tests of `pegasus trace`: the span layer's CLI surface,
//! run as a real process.
//!
//! The invariant under test is the one every provenance surface in
//! this repo upholds: the *live* fold (simulate, then fold the
//! in-memory stream) and the *offline* fold (parse the written event
//! log, then fold) must render byte-identically — for the plain-text
//! tree and for the Chrome Trace Event JSON, across seeds and sites.
//! On top of that, the Chrome export must be structurally valid:
//! balanced, one event per line, timestamps monotone per track.

use std::path::{Path, PathBuf};
use std::process::Command;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("b2c3_trace_tests")
        .join(format!("{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn pegasus() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pegasus"))
}

fn run_ok(cmd: &mut Command) {
    let out = cmd.output().expect("spawn pegasus");
    assert!(
        out.status.success(),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// One live run that writes its event log, then the offline fold of
/// that log, in `format`; returns `(live, offline)` rendered bytes.
fn live_and_offline(dir: &Path, site: &str, seed: u64, format: &str) -> (String, String) {
    let log = dir.join(format!("{site}-{seed}.events"));
    let live = dir.join(format!("{site}-{seed}-live.{format}"));
    let offline = dir.join(format!("{site}-{seed}-offline.{format}"));
    run_ok(
        pegasus()
            .args(["trace", "--site", site, "--n", "30"])
            .args(["--seed", &seed.to_string(), "--format", format])
            .args(["--events", log.to_str().unwrap()])
            .args(["--out", live.to_str().unwrap(), "--quiet"]),
    );
    run_ok(
        pegasus()
            .args(["trace", "--from-events", log.to_str().unwrap()])
            .args(["--format", format])
            .args(["--out", offline.to_str().unwrap(), "--quiet"]),
    );
    (
        std::fs::read_to_string(live).unwrap(),
        std::fs::read_to_string(offline).unwrap(),
    )
}

#[test]
fn live_and_offline_folds_are_byte_identical_across_seeds_and_sites() {
    let dir = tmpdir("equiv");
    for site in ["sandhills", "osg"] {
        for seed in [7u64, 11, 42] {
            for format in ["text", "chrome"] {
                let (live, offline) = live_and_offline(&dir, site, seed, format);
                assert_eq!(
                    live, offline,
                    "{site} seed {seed} {format}: live and offline must be byte-identical"
                );
                assert!(!live.is_empty());
            }
            // The written log carries the derived trace id, and the
            // text tree leads with it.
            let log = std::fs::read_to_string(dir.join(format!("{site}-{seed}.events"))).unwrap();
            let id = pegasus_wms::trace::trace_from_log(&log).expect("log carries a trace id");
            assert_eq!(id, pegasus_wms::trace::TraceId::derive(seed, 0));
            let text =
                std::fs::read_to_string(dir.join(format!("{site}-{seed}-live.text"))).unwrap();
            assert!(text.starts_with(&format!("trace {id} ")), "{text}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chrome_export_is_structurally_valid_with_monotone_tracks() {
    let dir = tmpdir("chrome");
    let (json, _) = live_and_offline(&dir, "osg", 42, "chrome");

    assert!(json.starts_with("{\"traceEvents\":[\n"), "{json}");
    assert!(json.ends_with("]}\n"), "{json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());

    // One event object per line; every line but the framing ones is a
    // complete object, optionally comma-terminated.
    let lines: Vec<&str> = json.lines().collect();
    assert!(lines.len() > 4, "a 30-cluster run has many spans");
    let field = |line: &str, key: &str| -> Option<i64> {
        let rest = &line[line.find(&format!("\"{key}\":"))? + key.len() + 3..];
        let end = rest.find([',', '}']).unwrap();
        rest[..end].parse().ok()
    };
    let mut tracks: std::collections::BTreeMap<(i64, i64), i64> = std::collections::BTreeMap::new();
    let mut saw_metadata = false;
    let mut saw_complete = false;
    for line in &lines[1..lines.len() - 1] {
        let body = line.strip_suffix(',').unwrap_or(line);
        assert!(body.starts_with('{') && body.ends_with('}'), "{line}");
        if body.contains("\"ph\":\"M\"") {
            saw_metadata = true;
            continue;
        }
        assert!(body.contains("\"ph\":\"X\""), "only M and X events: {line}");
        saw_complete = true;
        let pid = field(body, "pid").expect("pid");
        let tid = field(body, "tid").expect("tid");
        let ts = field(body, "ts").expect("ts");
        let dur = field(body, "dur").expect("dur");
        assert!(dur >= 0, "negative duration: {line}");
        let last = tracks.entry((pid, tid)).or_insert(i64::MIN);
        assert!(
            ts >= *last,
            "track ({pid},{tid}) ts must be monotone: {line}"
        );
        *last = ts;
    }
    assert!(saw_metadata && saw_complete);
    std::fs::remove_dir_all(&dir).ok();
}

/// The committed Chrome-trace goldens (n=100, seed 20140519, both
/// sites) pin the whole pipeline — simulation, fold, export — to the
/// byte. Regenerate with:
/// `pegasus trace --site <site> --n 100 --seed 20140519 --format
/// chrome --out tests/fixtures/trace/<site>_n100.json`.
#[test]
fn golden_chrome_traces_are_byte_stable() {
    let dir = tmpdir("golden");
    for site in ["sandhills", "osg"] {
        let out = dir.join(format!("{site}.json"));
        run_ok(
            pegasus()
                .args(["trace", "--site", site, "--n", "100"])
                .args(["--seed", "20140519", "--format", "chrome"])
                .args(["--out", out.to_str().unwrap(), "--quiet"]),
        );
        let got = std::fs::read_to_string(&out).unwrap();
        let golden = std::fs::read_to_string(format!(
            "{}/tests/fixtures/trace/{site}_n100.json",
            env!("CARGO_MANIFEST_DIR")
        ))
        .unwrap();
        assert_eq!(
            got, golden,
            "{site}: Chrome trace drifted from the committed golden"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn events_dir_mode_folds_every_member_of_a_serve_state_directory() {
    let dir = tmpdir("events-dir");
    let members = dir.join("members");
    std::fs::create_dir_all(&members).unwrap();
    // Two member logs written the way the daemon writes them: one
    // live traced run each, ids derived from distinct seeds.
    for (i, seed) in [7u64, 11].into_iter().enumerate() {
        run_ok(
            pegasus()
                .args(["trace", "--site", "sandhills", "--n", "10"])
                .args(["--seed", &seed.to_string(), "--quiet"])
                .args(["--out", dir.join("ignore.txt").to_str().unwrap()])
                .args([
                    "--events",
                    members.join(format!("m{i}.events")).to_str().unwrap(),
                ]),
        );
    }
    let out = dir.join("all.txt");
    run_ok(
        pegasus()
            .args(["trace", "--events-dir", dir.to_str().unwrap()])
            .args(["--out", out.to_str().unwrap(), "--quiet"]),
    );
    let text = std::fs::read_to_string(&out).unwrap();
    let trees: Vec<&str> = text.lines().filter(|l| l.starts_with("trace ")).collect();
    assert_eq!(trees.len(), 2, "one tree per member: {text}");
    assert!(trees[0].contains(&pegasus_wms::trace::TraceId::derive(7, 0).to_string()));
    assert!(trees[1].contains(&pegasus_wms::trace::TraceId::derive(11, 0).to_string()));
    std::fs::remove_dir_all(&dir).ok();
}

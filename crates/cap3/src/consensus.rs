//! Per-column majority consensus over a contig layout.

use crate::layout::Layout;
use bioseq::seq::DnaSeq;

/// Builds the consensus sequence for `layout` over the oriented reads.
///
/// `reads[i]` must be the forward sequence of read `i`; flipped
/// placements are reverse-complemented on the fly. Columns covered by
/// no read (possible only with inconsistent layouts) are emitted as
/// `N`. Ties are broken in `ACGT` order for determinism.
pub fn consensus(layout: &Layout, reads: &[DnaSeq]) -> DnaSeq {
    let mut end = 0usize;
    for p in &layout.placements {
        let len = reads[p.read as usize].len();
        end = end.max(p.offset as usize + len);
    }
    if end == 0 {
        return DnaSeq::default();
    }
    // counts[col][code]: votes per base; N votes are ignored.
    let mut counts = vec![[0u32; 4]; end];
    let mut covered = vec![false; end];
    for p in &layout.placements {
        let fwd = &reads[p.read as usize];
        let oriented;
        let bytes: &[u8] = if p.flipped {
            oriented = fwd.reverse_complement();
            oriented.as_bytes()
        } else {
            fwd.as_bytes()
        };
        let off = p.offset as usize;
        for (i, &b) in bytes.iter().enumerate() {
            covered[off + i] = true;
            if let Some(code) = bioseq::alphabet::base_code(b) {
                counts[off + i][code as usize] += 1;
            }
        }
    }
    let mut out = Vec::with_capacity(end);
    for col in 0..end {
        if !covered[col] {
            out.push(b'N');
            continue;
        }
        let votes = &counts[col];
        let (mut best_code, mut best_votes) = (0usize, votes[0]);
        #[allow(clippy::needless_range_loop)] // `code` is a base code, not just an index
        for code in 1..4 {
            if votes[code] > best_votes {
                best_code = code;
                best_votes = votes[code];
            }
        }
        if best_votes == 0 {
            out.push(b'N'); // covered only by N bases
        } else {
            out.push(bioseq::alphabet::code_base(best_code as u8));
        }
    }
    DnaSeq::from_ascii_unchecked(out)
}

/// Quality-weighted consensus: like [`consensus`], but each base's
/// vote carries its Phred score (so one confident base outvotes
/// several sloppy ones — the behaviour real CAP3 gets from `.qual`
/// files). `quals[i]` must parallel `reads[i]`; flipped placements
/// reverse the quality track alongside the bases.
pub fn consensus_weighted(layout: &Layout, reads: &[DnaSeq], quals: &[Vec<u8>]) -> DnaSeq {
    debug_assert_eq!(reads.len(), quals.len());
    let mut end = 0usize;
    for p in &layout.placements {
        end = end.max(p.offset as usize + reads[p.read as usize].len());
    }
    if end == 0 {
        return DnaSeq::default();
    }
    let mut weights = vec![[0u64; 4]; end];
    let mut covered = vec![false; end];
    for p in &layout.placements {
        let fwd = &reads[p.read as usize];
        let q = &quals[p.read as usize];
        debug_assert_eq!(fwd.len(), q.len());
        let oriented;
        let (bytes, qiter): (&[u8], Box<dyn Iterator<Item = u8>>) = if p.flipped {
            oriented = fwd.reverse_complement();
            (oriented.as_bytes(), Box::new(q.iter().rev().copied()))
        } else {
            (fwd.as_bytes(), Box::new(q.iter().copied()))
        };
        let off = p.offset as usize;
        for (i, (&b, qv)) in bytes.iter().zip(qiter).enumerate() {
            covered[off + i] = true;
            if let Some(code) = bioseq::alphabet::base_code(b) {
                // Weight 1 + q so even Q0 bases retain a minimal vote.
                weights[off + i][code as usize] += 1 + qv as u64;
            }
        }
    }
    let mut out = Vec::with_capacity(end);
    for col in 0..end {
        if !covered[col] {
            out.push(b'N');
            continue;
        }
        let w = &weights[col];
        let (mut best, mut best_w) = (0usize, w[0]);
        #[allow(clippy::needless_range_loop)] // `code` is a base code, not just an index
        for code in 1..4 {
            if w[code] > best_w {
                best = code;
                best_w = w[code];
            }
        }
        if best_w == 0 {
            out.push(b'N');
        } else {
            out.push(bioseq::alphabet::code_base(best as u8));
        }
    }
    DnaSeq::from_ascii_unchecked(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Placement;

    fn seq(s: &str) -> DnaSeq {
        DnaSeq::from_ascii(s.as_bytes()).unwrap()
    }

    fn place(read: u32, offset: isize, flipped: bool) -> Placement {
        Placement {
            read,
            offset,
            flipped,
        }
    }

    #[test]
    fn single_read_consensus_is_the_read() {
        let layout = Layout {
            placements: vec![place(0, 0, false)],
        };
        let reads = vec![seq("ACGTACGT")];
        assert_eq!(consensus(&layout, &reads), reads[0]);
    }

    #[test]
    fn overlapping_reads_extend_each_other() {
        let reads = vec![seq("ACGTACGT"), seq("ACGTTTTT")];
        let layout = Layout {
            placements: vec![place(0, 0, false), place(1, 4, false)],
        };
        // Positions 4..8 agree (ACGT); read 1 extends to 12.
        assert_eq!(consensus(&layout, &reads).as_bytes(), b"ACGTACGTTTTT");
    }

    #[test]
    fn majority_vote_corrects_errors() {
        // Three identical reads, one with an error in the middle.
        let reads = vec![seq("ACGTACGT"), seq("ACGAACGT"), seq("ACGTACGT")];
        let layout = Layout {
            placements: vec![place(0, 0, false), place(1, 0, false), place(2, 0, false)],
        };
        assert_eq!(consensus(&layout, &reads).as_bytes(), b"ACGTACGT");
    }

    #[test]
    fn flipped_read_contributes_reverse_complement() {
        let reads = vec![seq("ACGT"), seq("ACGT")];
        // Read 1 flipped at the same offset: rc(ACGT) == ACGT, so the
        // consensus is unchanged; use an asymmetric sequence instead.
        let reads2 = vec![seq("AACC"), seq("GGTT")]; // rc(GGTT) = AACC
        let layout = Layout {
            placements: vec![place(0, 0, false), place(1, 0, true)],
        };
        assert_eq!(consensus(&layout, &reads2).as_bytes(), b"AACC");
        let _ = reads;
    }

    #[test]
    fn n_bases_lose_to_real_bases() {
        let reads = vec![seq("ANNT"), seq("ACGT")];
        let layout = Layout {
            placements: vec![place(0, 0, false), place(1, 0, false)],
        };
        assert_eq!(consensus(&layout, &reads).as_bytes(), b"ACGT");
    }

    #[test]
    fn all_n_column_stays_n() {
        let reads = vec![seq("ANT")];
        let layout = Layout {
            placements: vec![place(0, 0, false)],
        };
        assert_eq!(consensus(&layout, &reads).as_bytes(), b"ANT");
    }

    #[test]
    fn uncovered_gap_becomes_n() {
        // Inconsistent layout: two reads with a hole between them.
        let reads = vec![seq("AAAA"), seq("TTTT")];
        let layout = Layout {
            placements: vec![place(0, 0, false), place(1, 6, false)],
        };
        assert_eq!(consensus(&layout, &reads).as_bytes(), b"AAAANNTTTT");
    }

    #[test]
    fn empty_layout_gives_empty_consensus() {
        let layout = Layout { placements: vec![] };
        assert!(consensus(&layout, &[]).is_empty());
    }

    #[test]
    fn weighted_consensus_lets_quality_win() {
        // Two low-quality reads say T, one high-quality read says A.
        let reads = vec![seq("T"), seq("T"), seq("A")];
        let quals = vec![vec![3u8], vec![3u8], vec![40u8]];
        let layout = Layout {
            placements: vec![place(0, 0, false), place(1, 0, false), place(2, 0, false)],
        };
        assert_eq!(consensus_weighted(&layout, &reads, &quals).as_bytes(), b"A");
        // Unweighted majority would say T.
        assert_eq!(consensus(&layout, &reads).as_bytes(), b"T");
    }

    #[test]
    fn weighted_consensus_reverses_quality_with_flips() {
        // Read 1 flipped: its quality track must flip too. Forward
        // read says AC with strong A, weak C; flipped read GG (rc =
        // CC) with weak-then-strong quality: after flipping, strong
        // quality lands on the *first* C.
        let reads = vec![seq("AC"), seq("GG")];
        let quals = vec![vec![10u8, 10], vec![2u8, 40]];
        let layout = Layout {
            placements: vec![place(0, 0, false), place(1, 0, true)],
        };
        // rc(GG) = CC with reversed quals [40, 2]: column 0 gets C@41
        // vs A@11 -> C; column 1 gets C@3 vs C... wait read0 col1 is
        // C@11 and read1 col1 is C@3 -> C either way.
        assert_eq!(
            consensus_weighted(&layout, &reads, &quals).as_bytes(),
            b"CC"
        );
    }

    #[test]
    fn weighted_matches_unweighted_for_uniform_quality() {
        let reads = vec![seq("ACGTACGT"), seq("ACGAACGT"), seq("ACGTACGT")];
        let quals = vec![vec![30u8; 8], vec![30u8; 8], vec![30u8; 8]];
        let layout = Layout {
            placements: vec![place(0, 0, false), place(1, 0, false), place(2, 0, false)],
        };
        assert_eq!(
            consensus_weighted(&layout, &reads, &quals),
            consensus(&layout, &reads)
        );
    }

    #[test]
    fn tie_breaks_in_acgt_order() {
        let reads = vec![seq("G"), seq("C")];
        let layout = Layout {
            placements: vec![place(0, 0, false), place(1, 0, false)],
        };
        // One vote each: C (code 1) beats G (code 2) in ACGT order.
        assert_eq!(consensus(&layout, &reads).as_bytes(), b"C");
    }
}

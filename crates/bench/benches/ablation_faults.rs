//! Fault-injection ablations: what each chaos scenario costs the
//! n = 300 OSG run, and what the retry policy buys back.
//!
//! Two sweeps are printed once per bench invocation:
//!
//! * scenario ablation — the same seeded run under no faults, a
//!   preemption storm, a slot blackout, straggler nodes, an
//!   install-failure burst, and all of them combined;
//! * policy ablation — the full-chaos run under a flat retry limit vs
//!   exponential backoff vs jittered exponential backoff plus a
//!   straggler-killing timeout.
//!
//! The benchmarked quantity is the end-to-end plan+simulate cost of a
//! chaos run, so regressions in the fault bookkeeping itself show up.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use blast2cap3_pegasus::experiment::{simulate_blast2cap3_with, ExperimentOutcome};
use gridsim::{FaultPlan, FaultScript};
use pegasus_wms::engine::{EngineConfig, RetryPolicy};

// Window placement: the n = 300 OSG run executes its chunks in
// roughly [3000 s, 13000 s] simulated time, so the timed scenarios sit
// inside that band.
const STORM: &str = "preemption-storm start=3000 duration=4000 kill-probability=0.5\n";
const BLACKOUT: &str = "slot-blackout start=4000 duration=3000 first-slot=0 count=16\n";
const STRAGGLER: &str = "straggler start=0 duration=1e9 slowdown=4 probability=0.1\n";
const INSTALL: &str = "install-failure-burst start=0 duration=1e9 fail-probability=0.3\n";

fn chaos_run(plan_text: &str, policy: RetryPolicy, n: usize, seed: u64) -> ExperimentOutcome {
    let script = (!plan_text.is_empty())
        .then(|| FaultScript::new(FaultPlan::parse(plan_text).expect("valid plan"), seed));
    let cfg = EngineConfig::builder().policy(policy).seed(seed).build();
    simulate_blast2cap3_with("osg", n, seed, &cfg, script)
}

fn bench_ablation_faults(c: &mut Criterion) {
    let full_chaos = format!("{STORM}{BLACKOUT}{STRAGGLER}{INSTALL}");
    let policy = || RetryPolicy::exponential(15, 30.0);

    println!("scenario ablation @ OSG n=300 (exponential backoff, 15 retries):");
    for (label, plan) in [
        ("no faults", String::new()),
        ("preemption storm", STORM.into()),
        ("slot blackout", BLACKOUT.into()),
        ("stragglers", STRAGGLER.into()),
        ("install burst", INSTALL.into()),
        ("full chaos", full_chaos.clone()),
    ] {
        let out = chaos_run(&plan, policy(), 300, 42);
        let f = &out.stats.faults;
        println!(
            "  {label:<16} wall={:>7.0}s retries={:<4} preempted={} evicted={} install={} timeout={} succeeded={}",
            out.run.wall_time,
            f.retries,
            f.preemptions,
            f.evictions,
            f.install_failures,
            f.timeouts,
            out.run.succeeded()
        );
    }

    println!("policy ablation  @ OSG n=300 (full chaos):");
    for (label, p) in [
        ("flat retries", RetryPolicy::flat(15)),
        ("exp backoff", RetryPolicy::exponential(15, 30.0)),
        (
            "exp+jitter+timeout",
            RetryPolicy::exponential(15, 30.0)
                .with_jitter(0.5)
                .with_timeout(6_000.0),
        ),
    ] {
        let out = chaos_run(&full_chaos, p, 300, 42);
        let f = &out.stats.faults;
        println!(
            "  {label:<18} wall={:>7.0}s retries={:<4} backoff-wait={:>7.0}s timeouts={} succeeded={}",
            out.run.wall_time,
            f.retries,
            f.backoff_wait,
            f.timeouts,
            out.run.succeeded()
        );
    }

    let mut group = c.benchmark_group("ablation_faults");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("osg_no_faults", |b| {
        b.iter(|| chaos_run("", policy(), 100, 42).run.wall_time)
    });
    group.bench_function("osg_full_chaos", |b| {
        b.iter(|| chaos_run(&full_chaos, policy(), 100, 42).run.wall_time)
    });
    group.finish();
}

criterion_group!(benches, bench_ablation_faults);
criterion_main!(benches);

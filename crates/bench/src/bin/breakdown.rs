//! Phase-breakdown benchmark — `BENCH_breakdown.json`.
//!
//! Runs the paper's decomposition sweep (n ∈ {10, 100, 300, 500}) on
//! both sites under [`DEFAULT_SEED`] and emits the per-phase means
//! from [`pegasus_wms::breakdown`] as a deterministic JSON file at the
//! repository root, so later PRs can diff the per-task cost profile
//! the way `target/experiments/*.csv` diffs the figures.
//!
//! Output: `BENCH_breakdown.json` (repo root) plus the usual terminal
//! table.

use std::fmt::Write as _;

use blast2cap3_pegasus::experiment::simulate_blast2cap3;
use pegasus_wms::breakdown::{render_table, BreakdownRow};
use wms_bench::{DEFAULT_SEED, PAPER_N_VALUES};

const RETRIES: u32 = 10;

fn main() {
    let mut rows = Vec::new();
    for site in ["sandhills", "osg"] {
        for &n in &PAPER_N_VALUES {
            let out = simulate_blast2cap3(site, n, DEFAULT_SEED, RETRIES);
            assert!(out.run.succeeded(), "{site} n={n} failed");
            rows.push(out.breakdown());
        }
    }
    print!("{}", render_table(&rows));

    let json = render_json(&rows);
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_breakdown.json");
    std::fs::write(&path, json).expect("write BENCH_breakdown.json");
    println!("\nbench series written to {}", path.display());
}

/// Hand-rolled, key-ordered JSON — byte-stable for a given seed so the
/// committed file diffs cleanly across PRs.
fn render_json(rows: &[BreakdownRow]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"breakdown\",");
    let _ = writeln!(out, "  \"seed\": {DEFAULT_SEED},");
    let _ = writeln!(out, "  \"retries\": {RETRIES},");
    let _ = writeln!(out, "  \"unit\": \"seconds\",");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"site\": \"{}\", \"n\": {}, \"compute_jobs\": {}, \"completed\": {}, \
             \"queue_wait_mean\": {:.3}, \"install_mean\": {:.3}, \"kickstart_mean\": {:.3}, \
             \"post_overhead_mean\": {:.3}, \"retry_badput_mean\": {:.3}, \"total_mean\": {:.3}}}",
            r.site,
            r.n,
            r.compute_jobs,
            r.completed,
            r.queue_wait_mean,
            r.install_mean,
            r.kickstart_mean,
            r.post_overhead_mean,
            r.retry_badput_mean,
            r.total_mean,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

//! Transformation-name → task-kernel wiring for real execution.

use blast2cap3::files;
use cap3::Cap3Params;
use condor::pool::{TaskContext, TaskRegistry};

fn parse_n(args: &[String]) -> Result<usize, String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "-n" {
            return it
                .next()
                .ok_or_else(|| "-n with no value".to_string())?
                .parse()
                .map_err(|e| format!("bad -n value: {e}"));
        }
    }
    Err(format!("missing -n in args {args:?}"))
}

fn parse_index(args: &[String]) -> Result<usize, String> {
    args.first()
        .ok_or_else(|| "missing chunk index argument".to_string())?
        .parse()
        .map_err(|e| format!("bad chunk index: {e}"))
}

/// Builds the registry executing the six Fig. 2 transformations over
/// real files in each task's work directory. `cap3_params` configures
/// the merge cutoffs used by every `run_cap3` task.
pub fn build_registry(cap3_params: Cap3Params) -> TaskRegistry {
    let mut reg = TaskRegistry::new();
    reg.register("list_transcripts", |ctx: &TaskContext| {
        files::task_list_transcripts(&ctx.workdir)
    });
    reg.register("list_alignments", |ctx: &TaskContext| {
        files::task_list_alignments(&ctx.workdir)
    });
    reg.register("split", |ctx: &TaskContext| {
        files::task_split(&ctx.workdir, parse_n(&ctx.args)?)
    });
    let params = cap3_params.clone();
    reg.register("run_cap3", move |ctx: &TaskContext| {
        files::task_run_cap3(&ctx.workdir, parse_index(&ctx.args)?, &params)
    });
    reg.register("merge", |ctx: &TaskContext| {
        files::task_merge(&ctx.workdir, parse_n(&ctx.args)?)
    });
    reg.register("extract_unjoined", |ctx: &TaskContext| {
        files::task_extract_unjoined(&ctx.workdir)
    });
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_six_transformations() {
        let reg = build_registry(Cap3Params::default());
        for t in [
            "list_transcripts",
            "list_alignments",
            "split",
            "run_cap3",
            "merge",
            "extract_unjoined",
        ] {
            assert!(reg.get(t).is_some(), "{t} missing");
        }
        assert_eq!(reg.len(), 6);
    }

    #[test]
    fn arg_parsers() {
        assert_eq!(parse_n(&["-n".into(), "300".into()]).unwrap(), 300);
        assert_eq!(parse_n(&["x".into(), "-n".into(), "7".into()]).unwrap(), 7);
        assert!(parse_n(&[]).is_err());
        assert!(parse_n(&["-n".into()]).is_err());
        assert!(parse_n(&["-n".into(), "many".into()]).is_err());
        assert_eq!(parse_index(&["12".into()]).unwrap(), 12);
        assert!(parse_index(&[]).is_err());
        assert!(parse_index(&["x".into()]).is_err());
    }
}

//! Site, transformation, and replica catalogs.
//!
//! Pegasus plans against three catalogs: the *site catalog* describes
//! execution sites (what software is maintained there, how jobs wait,
//! how fast the network is), the *transformation catalog* maps logical
//! transformation names to executables and their software
//! requirements, and the *replica catalog* maps logical files to the
//! sites that already hold a copy. The paper's central contrast —
//! Sandhills has Python/Biopython/CAP3 preinstalled, OSG does not — is
//! expressed entirely through these catalogs.

use std::collections::{HashMap, HashSet};

/// An execution site entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Site {
    /// Site handle, e.g. `"sandhills"` or `"osg"`.
    pub name: String,
    /// Software packages maintained on the site's worker nodes.
    pub preinstalled: HashSet<String>,
    /// Whether worker nodes share a filesystem with the submit host
    /// (campus clusters usually do; OSG worker nodes do not).
    pub shared_fs: bool,
    /// Sustained network bandwidth between submit host and site, in
    /// bytes/second, used to cost stage-in/stage-out jobs.
    pub bandwidth_bps: f64,
    /// Relative CPU speed of the site's nodes (1.0 = reference core).
    pub cpu_speed: f64,
}

impl Site {
    /// Creates a site with no preinstalled software.
    pub fn new(name: impl Into<String>) -> Self {
        Site {
            name: name.into(),
            preinstalled: HashSet::new(),
            shared_fs: false,
            bandwidth_bps: 100.0e6,
            cpu_speed: 1.0,
        }
    }

    /// Builder: marks `pkg` preinstalled.
    pub fn with_package(mut self, pkg: impl Into<String>) -> Self {
        self.preinstalled.insert(pkg.into());
        self
    }

    /// Builder: sets the shared-filesystem flag.
    pub fn with_shared_fs(mut self, shared: bool) -> Self {
        self.shared_fs = shared;
        self
    }

    /// Builder: sets node CPU speed relative to the reference core.
    pub fn with_cpu_speed(mut self, speed: f64) -> Self {
        self.cpu_speed = speed;
        self
    }
}

/// The site catalog.
#[derive(Debug, Clone, Default)]
pub struct SiteCatalog {
    sites: HashMap<String, Site>,
}

impl SiteCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds or replaces a site.
    pub fn add(&mut self, site: Site) {
        self.sites.insert(site.name.clone(), site);
    }

    /// Looks a site up by handle.
    pub fn get(&self, name: &str) -> Option<&Site> {
        self.sites.get(name)
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// All site handles (unsorted).
    pub fn names(&self) -> Vec<String> {
        self.sites.keys().cloned().collect()
    }

    /// `true` when no sites are registered.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

/// A transformation catalog entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Transformation {
    /// Logical name, e.g. `"run_cap3"`.
    pub name: String,
    /// Software packages the transformation needs on the worker node
    /// (e.g. `python`, `biopython`, `cap3`).
    pub requires: Vec<String>,
    /// Seconds to download+install one missing package on a bare
    /// worker node (the Fig. 3 red-rectangle cost, per package).
    pub install_cost_per_pkg: f64,
    /// Whether missing packages *can* be installed at runtime. When
    /// `false` and the site lacks a package, planning fails.
    pub installable: bool,
}

impl Transformation {
    /// Creates an installable transformation with no requirements.
    pub fn new(name: impl Into<String>) -> Self {
        Transformation {
            name: name.into(),
            requires: Vec::new(),
            install_cost_per_pkg: 60.0,
            installable: true,
        }
    }

    /// Builder: adds a required package.
    pub fn requires_pkg(mut self, pkg: impl Into<String>) -> Self {
        self.requires.push(pkg.into());
        self
    }

    /// Builder: sets the per-package install cost in seconds.
    pub fn install_cost(mut self, seconds: f64) -> Self {
        self.install_cost_per_pkg = seconds;
        self
    }

    /// Builder: forbids runtime installation.
    pub fn not_installable(mut self) -> Self {
        self.installable = false;
        self
    }
}

/// The transformation catalog.
#[derive(Debug, Clone, Default)]
pub struct TransformationCatalog {
    map: HashMap<String, Transformation>,
}

impl TransformationCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds or replaces a transformation.
    pub fn add(&mut self, t: Transformation) {
        self.map.insert(t.name.clone(), t);
    }

    /// Looks a transformation up by logical name.
    pub fn get(&self, name: &str) -> Option<&Transformation> {
        self.map.get(name)
    }

    /// All transformation names (unsorted).
    pub fn names(&self) -> Vec<String> {
        self.map.keys().cloned().collect()
    }

    /// Packages of `transformation` missing at `site`; empty when the
    /// transformation is unknown (unknown transformations are treated
    /// as requiring nothing, like a plain staged binary).
    pub fn missing_packages(&self, transformation: &str, site: &Site) -> Vec<String> {
        match self.map.get(transformation) {
            Some(t) => t
                .requires
                .iter()
                .filter(|p| !site.preinstalled.contains(*p))
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }
}

/// The replica catalog: which sites hold which logical files.
#[derive(Debug, Clone, Default)]
pub struct ReplicaCatalog {
    /// logical file name -> set of site handles holding a replica.
    map: HashMap<String, HashSet<String>>,
}

impl ReplicaCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a replica of `file` at `site`.
    pub fn register(&mut self, file: impl Into<String>, site: impl Into<String>) {
        self.map.entry(file.into()).or_default().insert(site.into());
    }

    /// `true` if `site` holds a replica of `file`.
    pub fn has_replica(&self, file: &str, site: &str) -> bool {
        self.map.get(file).is_some_and(|s| s.contains(site))
    }

    /// All sites holding `file`, sorted.
    pub fn sites_for(&self, file: &str) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .map
            .get(file)
            .map(|s| s.iter().map(String::as_str).collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }
}

/// Builds the paper's two-site catalog set: `"sandhills"` (campus
/// cluster: Python, Biopython, and CAP3 maintained, shared filesystem)
/// and `"osg"` (opportunistic grid: bare nodes, faster CPUs on
/// average, no shared filesystem). The transformation catalog contains
/// the six blast2cap3 workflow transformations.
pub fn paper_catalogs() -> (SiteCatalog, TransformationCatalog) {
    let mut sites = SiteCatalog::new();
    sites.add(
        Site::new("sandhills")
            .with_package("python")
            .with_package("biopython")
            .with_package("cap3")
            .with_shared_fs(true)
            .with_cpu_speed(1.0),
    );
    // Section VII: ignoring waiting and install time, OSG kickstart
    // times beat Sandhills — the opportunistic nodes are newer.
    sites.add(Site::new("osg").with_shared_fs(false).with_cpu_speed(1.35));

    let mut tc = TransformationCatalog::new();
    for name in [
        "list_transcripts",
        "list_alignments",
        "split",
        "merge",
        "extract_unjoined",
    ] {
        tc.add(
            Transformation::new(name)
                .requires_pkg("python")
                .install_cost(45.0),
        );
    }
    tc.add(
        Transformation::new("run_cap3")
            .requires_pkg("python")
            .requires_pkg("biopython")
            .requires_pkg("cap3")
            .install_cost(45.0),
    );
    (sites, tc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_builder_accumulates() {
        let s = Site::new("x")
            .with_package("python")
            .with_package("cap3")
            .with_shared_fs(true)
            .with_cpu_speed(1.2);
        assert!(s.preinstalled.contains("python"));
        assert!(s.preinstalled.contains("cap3"));
        assert!(s.shared_fs);
        assert_eq!(s.cpu_speed, 1.2);
    }

    #[test]
    fn site_catalog_lookup() {
        let mut sc = SiteCatalog::new();
        assert!(sc.is_empty());
        sc.add(Site::new("a"));
        sc.add(Site::new("b"));
        assert_eq!(sc.len(), 2);
        assert!(sc.get("a").is_some());
        assert!(sc.get("zzz").is_none());
    }

    #[test]
    fn missing_packages_reflect_site_inventory() {
        let (_, tc) = paper_catalogs();
        let bare = Site::new("bare");
        let rich = Site::new("rich")
            .with_package("python")
            .with_package("biopython")
            .with_package("cap3");
        let mut missing = tc.missing_packages("run_cap3", &bare);
        missing.sort();
        assert_eq!(missing, vec!["biopython", "cap3", "python"]);
        assert!(tc.missing_packages("run_cap3", &rich).is_empty());
    }

    #[test]
    fn unknown_transformation_requires_nothing() {
        let tc = TransformationCatalog::new();
        assert!(tc.missing_packages("mystery", &Site::new("s")).is_empty());
    }

    #[test]
    fn replica_catalog_tracks_locations() {
        let mut rc = ReplicaCatalog::new();
        rc.register("transcripts.fasta", "submit");
        rc.register("transcripts.fasta", "sandhills");
        assert!(rc.has_replica("transcripts.fasta", "submit"));
        assert!(!rc.has_replica("transcripts.fasta", "osg"));
        assert_eq!(
            rc.sites_for("transcripts.fasta"),
            vec!["sandhills", "submit"]
        );
        assert!(rc.sites_for("nothing").is_empty());
    }

    #[test]
    fn paper_catalogs_encode_the_contrast() {
        let (sites, tc) = paper_catalogs();
        let sandhills = sites.get("sandhills").unwrap();
        let osg = sites.get("osg").unwrap();
        // The whole Fig. 3 story: nothing missing on Sandhills,
        // everything missing on OSG.
        assert!(tc.missing_packages("run_cap3", sandhills).is_empty());
        assert_eq!(tc.missing_packages("run_cap3", osg).len(), 3);
        // And the Section VII observation: OSG nodes are faster.
        assert!(osg.cpu_speed > sandhills.cpu_speed);
        assert!(sandhills.shared_fs && !osg.shared_fs);
    }

    #[test]
    fn transformation_builder() {
        let t = Transformation::new("x")
            .requires_pkg("a")
            .requires_pkg("b")
            .install_cost(30.0)
            .not_installable();
        assert_eq!(t.requires, vec!["a", "b"]);
        assert_eq!(t.install_cost_per_pkg, 30.0);
        assert!(!t.installable);
    }
}
